//! Collection strategies (`proptest::collection` analogue).

use crate::strategy::Strategy;
use crate::TestRng;
use std::ops::Range;

/// Length specification for [`vec`]: an exact length or a `[min, max)`
/// range, mirroring `proptest::collection::SizeRange` conversions.
#[derive(Clone, Debug)]
pub struct SizeRange {
    min: usize,
    /// Exclusive.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> SizeRange {
        SizeRange {
            min: exact,
            max: exact + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range {r:?}");
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

/// Strategy for a `Vec` with element strategy `S` (see [`vec`]).
pub struct VecStrategy<S> {
    elem: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let span = (self.size.max - self.size.min) as u64;
        let len = self.size.min
            + if span > 0 {
                rng.below(span) as usize
            } else {
                0
            };
        (0..len).map(|_| self.elem.sample(rng)).collect()
    }
}

/// Generates vectors whose elements come from `elem` and whose length is
/// drawn from `size` (an exact `usize` or a `Range<usize>`).
pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        elem,
        size: size.into(),
    }
}
