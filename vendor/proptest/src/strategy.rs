//! Value-generation strategies: the subset of `proptest::strategy` the
//! workspace's tests draw on.  A strategy is a pure sampling function over
//! the deterministic [`TestRng`](crate::TestRng); shrinking is not
//! implemented (see the crate docs for the trade-off).

use crate::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A source of random values for one test-case argument.
pub trait Strategy {
    /// The type of value produced.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms produced values (`proptest`'s `prop_map`).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Chains a dependent strategy (`proptest`'s `prop_flat_map`).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`](crate::prop_oneof)).
    fn boxed(self) -> Box<dyn Strategy<Value = Self::Value>>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

/// Strategy yielding a fixed value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Uniform choice among type-erased arms (see [`prop_oneof!`](crate::prop_oneof)).
pub struct Union<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Builds a union; panics on an empty arm list.
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].sample(rng)
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy {:?}", self);
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() - *self.start()) as u64 + 1;
                self.start() + rng.below(span) as $t
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy {:?}", self);
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategies {
    ($(($($n:ident $idx:tt),+))*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
}

/// A `Vec` of strategies samples each element in order (`proptest` models
/// this the same way; netsim's random-topology strategy relies on it).
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        self.iter().map(|s| s.sample(rng)).collect()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_ints!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

/// Strategy for any value of `T` (see [`any`]).
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for a type: `any::<u64>()` etc.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
