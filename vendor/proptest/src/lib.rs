//! Minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment for this repository has no access to crates.io,
//! so the real `proptest` cannot be fetched.  This crate reimplements the
//! slice of its API the workspace's property tests use — the `proptest!`
//! macro, `Strategy` with `prop_map`/`prop_flat_map`, `Just`, `any`,
//! ranges, tuples, `collection::vec`, `prop_oneof!`, and the
//! `prop_assert*` family — over a deterministic in-house RNG.
//!
//! Differences from the real crate (accepted for offline builds):
//!
//! * **No shrinking.**  A failing case reports the case number and the
//!   assertion message; tests here already format the relevant inputs
//!   into their messages.
//! * **Fixed derivation of case seeds.**  Each case's RNG is seeded from
//!   (test name, case index), so failures replay bit-for-bit forever and
//!   runs never flake.  Set `PROPTEST_CASES` to scale case counts.

pub mod strategy;

pub mod collection;

/// Test-runner configuration (`proptest::test_runner::Config` analogue).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases (the only knob our tests use).
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// Why a single test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the test as a whole fails.
    Fail(String),
    /// A `prop_assume!` precondition was not met; the case is skipped.
    Reject,
}

impl TestCaseError {
    /// Constructs a failure with a message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }
}

/// Deterministic RNG handed to strategies (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds a generator.
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "empty sampling range");
        self.next_u64() % bound
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

fn case_count(cfg: &ProptestConfig) -> u32 {
    match std::env::var("PROPTEST_CASES") {
        Ok(v) => v.parse().unwrap_or(cfg.cases),
        Err(_) => cfg.cases,
    }
}

/// Drives one property test: runs `cases` successful cases (skipping
/// rejected ones, with a cap), panicking on the first failure.
pub fn run_cases(
    cfg: &ProptestConfig,
    name: &str,
    mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    let cases = case_count(cfg);
    // Stable per-test base seed: FNV-1a over the test name.
    let mut base: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        base ^= b as u64;
        base = base.wrapping_mul(0x1000_0000_01b3);
    }
    let mut passed = 0u32;
    let mut attempts = 0u64;
    let max_attempts = (cases as u64) * 16 + 64;
    while passed < cases {
        assert!(
            attempts < max_attempts,
            "[{name}] too many rejected cases ({attempts} attempts for {cases} cases)"
        );
        let mut rng = TestRng::new(base ^ attempts.wrapping_mul(0xA24B_AED4_963E_E407));
        attempts += 1;
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => continue,
            Err(TestCaseError::Fail(msg)) => {
                panic!("[{name}] case {passed} (attempt {attempts}) failed: {msg}")
            }
        }
    }
}

/// One-stop import mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        ProptestConfig, TestCaseError,
    };
}

/// Declares property tests.  Mirrors `proptest::proptest!`: an optional
/// `#![proptest_config(..)]` header, then `#[test]` functions whose
/// arguments are drawn from strategies with `pat in strategy` syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg = $cfg;
                $crate::run_cases(&cfg, stringify!($name), |__proptest_rng| {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), __proptest_rng);)+
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                });
            }
        )*
    };
}

/// Strategy that picks uniformly among the given strategies (all arms must
/// yield the same value type).  The real macro supports weighted arms; our
/// tests only use the unweighted form.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($arm)),+])
    };
}

/// `assert!` that fails the current case instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond),
                file!(),
                line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!(
                "{} at {}:{}",
                format!($($fmt)+),
                file!(),
                line!()
            )));
        }
    };
}

/// `assert_eq!` that fails the current case instead of panicking.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&($left), &($right)) {
            (l, r) => {
                if !(*l == *r) {
                    return Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `{:?}` == `{:?}` at {}:{}",
                        l,
                        r,
                        file!(),
                        line!()
                    )));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&($left), &($right)) {
            (l, r) => {
                if !(*l == *r) {
                    return Err($crate::TestCaseError::fail(format!(
                        "{}: `{:?}` != `{:?}` at {}:{}",
                        format!($($fmt)+),
                        l,
                        r,
                        file!(),
                        line!()
                    )));
                }
            }
        }
    };
}

/// `assert_ne!` that fails the current case instead of panicking.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&($left), &($right)) {
            (l, r) => {
                if *l == *r {
                    return Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `{:?}` != `{:?}` at {}:{}",
                        l,
                        r,
                        file!(),
                        line!()
                    )));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&($left), &($right)) {
            (l, r) => {
                if *l == *r {
                    return Err($crate::TestCaseError::fail(format!(
                        "{}: both `{:?}` at {}:{}",
                        format!($($fmt)+),
                        l,
                        file!(),
                        line!()
                    )));
                }
            }
        }
    };
}

/// Skips the current case unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)+)?) => {
        if !($cond) {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(a in 3u64..17, b in 2usize..=6, f in 0.5f64..1.5) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((2..=6).contains(&b));
            prop_assert!((0.5..1.5).contains(&f), "f = {f}");
        }

        #[test]
        fn combinators_compose(
            v in crate::collection::vec(0u8..10, 1..5),
            (x, y) in (0u32..4, 0u32..4),
            pick in prop_oneof![Just(1u32), Just(2), Just(3)],
            n in (1usize..4).prop_flat_map(|n| crate::collection::vec(Just(0u8), n)),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|&e| e < 10));
            prop_assert!(x < 4 && y < 4);
            prop_assert!((1..=3).contains(&pick));
            prop_assert!(!n.is_empty() && n.len() < 4);
        }

        #[test]
        fn assume_rejects_without_failing(a in 0u64..10) {
            prop_assume!(a % 2 == 0);
            prop_assert_eq!(a % 2, 0);
            prop_assert_ne!(a % 2, 1);
        }
    }

    #[test]
    fn identical_names_replay_identically() {
        let mut first = Vec::new();
        let mut second = Vec::new();
        for out in [&mut first, &mut second] {
            crate::run_cases(&ProptestConfig::with_cases(10), "replay", |rng| {
                out.push(rng.next_u64());
                Ok(())
            });
        }
        assert_eq!(first, second);
    }

    #[test]
    #[should_panic(expected = "too many rejected")]
    fn unsatisfiable_assumption_reports() {
        crate::run_cases(&ProptestConfig::with_cases(4), "never", |_| {
            Err(crate::TestCaseError::Reject)
        });
    }
}
