//! Minimal, dependency-free stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so the real `criterion`
//! cannot be fetched.  This crate covers the API the workspace's benches
//! use — `Criterion`, `benchmark_group`, `bench_function`,
//! `bench_with_input`, `Throughput`, `BenchmarkId`, and the
//! `criterion_group!`/`criterion_main!` macros — timing with
//! `std::time::Instant` and printing one summary line per benchmark.
//!
//! Compared to the real crate there is no statistical analysis, HTML
//! report, or regression detection: each benchmark warms up briefly, then
//! runs timed batches until a wall-clock budget is spent and reports the
//! mean iteration time (plus throughput when configured).  Set
//! `CRITERION_QUICK=1` to shrink the budget for smoke runs.

use std::time::{Duration, Instant};

/// Work performed per iteration, for derived rates in the summary line.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: function name plus a parameter rendering.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// `name/parameter`, as the real crate renders it.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            full: format!("{}/{}", name.into(), parameter),
        }
    }
}

/// Drives the timing loop inside one benchmark body.
pub struct Bencher {
    /// Measured mean time per iteration, filled in by [`Bencher::iter`].
    elapsed_per_iter: Duration,
    budget: Duration,
}

impl Bencher {
    /// Times the closure: short warm-up, then batches until the budget is
    /// spent; records the mean time per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: one iteration always; more only while cheap.
        let warm_start = Instant::now();
        std::hint::black_box(f());
        let first = warm_start.elapsed();
        let mut batch: u64 = if first.is_zero() {
            64
        } else {
            (self.budget.as_nanos() / 20 / first.as_nanos().max(1)).clamp(1, 4096) as u64
        };
        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        while total < self.budget {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            total += start.elapsed();
            iters += batch;
            batch = batch.saturating_mul(2).min(1 << 20);
        }
        self.elapsed_per_iter = total / iters.max(1) as u32;
    }
}

fn default_budget() -> Duration {
    if std::env::var("CRITERION_QUICK").is_ok_and(|v| v != "0") {
        Duration::from_millis(50)
    } else {
        Duration::from_millis(400)
    }
}

fn run_one(
    name: &str,
    throughput: Option<Throughput>,
    budget: Duration,
    f: impl FnOnce(&mut Bencher),
) {
    let mut b = Bencher {
        elapsed_per_iter: Duration::ZERO,
        budget,
    };
    f(&mut b);
    let per = b.elapsed_per_iter;
    let rate = match throughput {
        Some(Throughput::Bytes(n)) if !per.is_zero() => {
            format!(
                "  thrpt: {:.1} MiB/s",
                n as f64 / per.as_secs_f64() / (1024.0 * 1024.0)
            )
        }
        Some(Throughput::Elements(n)) if !per.is_zero() => {
            format!("  thrpt: {:.0} elem/s", n as f64 / per.as_secs_f64())
        }
        _ => String::new(),
    };
    println!("{name:<48} time: {per:>12.3?}{rate}");
}

/// The benchmark manager handed to every `criterion_group!` function.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            budget: default_budget(),
        }
    }
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function(
        &mut self,
        name: impl std::fmt::Display,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Criterion {
        run_one(&name.to_string(), None, self.budget, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let budget = self.budget;
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            throughput: None,
            budget,
        }
    }
}

/// A group of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    budget: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration work for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API compatibility; this harness sizes runs by wall
    /// clock, not sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(
        &mut self,
        id: impl std::fmt::Display,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id),
            self.throughput,
            self.budget,
            f,
        );
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id.full),
            self.throughput,
            self.budget,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// Re-export so benches may use `criterion::black_box`.
pub use std::hint::black_box;

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench binary's `main`, running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher {
            elapsed_per_iter: Duration::ZERO,
            budget: Duration::from_millis(5),
        };
        b.iter(|| std::hint::black_box(1u64 + 1));
        // Smoke test: iter() must complete and record a finite measurement.
        assert!(b.elapsed_per_iter < Duration::from_secs(60));
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion {
            budget: Duration::from_millis(2),
        };
        c.bench_function("standalone", |b| b.iter(|| 2 + 2));
        let mut g = c.benchmark_group("grp");
        g.throughput(Throughput::Bytes(1024));
        g.sample_size(10);
        g.bench_function("inner", |b| b.iter(|| 3 * 3));
        g.bench_with_input(BenchmarkId::new("param", 7), &7u32, |b, &x| {
            b.iter(|| x * x)
        });
        g.finish();
    }
}
