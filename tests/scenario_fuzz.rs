//! Audited workload fuzzing over the scenario DSL: random flash crowds,
//! churn, and regional outages compiled through [`ScenarioPlan`] must
//! always end in full delivery with a clean invariant audit, and every
//! cell must be bit-identical however the engine is sharded.
//!
//! The properties here are the generalization of the fixed grid in
//! `sharqfec_bench::scenario` (`scenario_sweep`): the grid pins a dozen
//! hand-picked cells, this file walks the surrounding space.  The two
//! fuzzer-found protocol bugs this harness surfaced are pinned as named
//! regression tests next to their fixes:
//! `restart_mid_recovery_forgets_dead_request_timers` (crates/core) and
//! `correlated_zone_outage_escalates_past_futile_local_nacks`
//! (crates/bench).

use proptest::prelude::*;
use sharqfec_bench::scenario::{run_cell, ScenarioCell};
use sharqfec_repro::netsim::prelude::AuditConfig;
use sharqfec_repro::netsim::{RunSpec, ScenarioPlan, SimTime, TrafficClass};
use sharqfec_repro::protocol::{setup_sharqfec_scenario_builder, SfAgent, SharqfecConfig};
use sharqfec_repro::topology::chain;

proptest! {
    // Each case runs three full engines (shards 1, 2, 4); a handful of
    // cases per CI run still sweeps fresh (cell, seed) points every time.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Any mix of flash crowd, churn, and regional outage on a scaled
    /// tree delivers everything under a clean audit — and the run is a
    /// pure function of (cell, seed): sharding the engine over zone
    /// subtrees changes nothing but throughput.
    #[test]
    fn random_scenarios_deliver_audited_and_shard_identically(
        seed in 0u64..10_000,
        receivers in 150usize..400,
        flash in 0usize..=16,
        churn in any::<bool>(),
        outage in any::<bool>(),
    ) {
        let cell = ScenarioCell { receivers, flash, churn, outage };
        let serial = run_cell(cell, seed, 24, 1);
        prop_assert_eq!(
            serial.unrecovered, 0,
            "{} seed {} left packets unrecovered", serial.label, seed
        );
        prop_assert_eq!(
            serial.audit.violations, 0,
            "{} seed {}: {}", serial.label, seed, serial.audit.summary
        );
        for shards in [2usize, 4] {
            let sharded = run_cell(cell, seed, 24, shards);
            prop_assert_eq!(&serial.label, &sharded.label);
            prop_assert_eq!(serial.unrecovered, sharded.unrecovered);
            prop_assert_eq!(serial.flash_repairs, sharded.flash_repairs);
            prop_assert_eq!(serial.nacks, sharded.nacks, "shards={}", shards);
            prop_assert_eq!(serial.repairs, sharded.repairs, "shards={}", shards);
            prop_assert_eq!(serial.events, sharded.events, "shards={}", shards);
            prop_assert_eq!(&serial.audit, &sharded.audit, "shards={}", shards);
        }
    }

    /// Sender handoff at a random mid-stream instant: the stream always
    /// completes, exactly the handed-over split of fresh data hits the
    /// wire, and the single-sender invariant stays clean.
    #[test]
    fn random_handoff_instant_keeps_one_active_sender(
        seed in 0u64..10_000,
        // Handoff somewhere strictly inside the 6.0-6.64 s stream.
        handoff_ms in 6_010u64..6_630,
    ) {
        let built = chain(4);
        let standby = *built.receivers.last().unwrap();
        let cfg = SharqfecConfig {
            total_packets: 64,
            ..SharqfecConfig::full()
        };
        let handoff_at = SimTime::from_millis(handoff_ms);
        let head = cfg.seqs_sent_before(handoff_at) as usize;
        let plan = ScenarioPlan::new().handoff(handoff_at, built.source, standby, &[]);
        let mut builder = setup_sharqfec_scenario_builder(
            &built,
            seed,
            cfg,
            SimTime::from_secs(1),
            plan,
            Some(standby),
        );
        builder.audit(AuditConfig::default());
        let mut engine = builder.build();
        engine.advance(RunSpec::to(SimTime::from_secs(120)));
        for &r in &built.receivers {
            if r == standby {
                continue;
            }
            let a = engine.agent::<SfAgent>(r).expect("receiver");
            prop_assert!(
                a.complete(),
                "receiver {} missing {} after handoff at {} ms (seed {})",
                r, a.missing(), handoff_ms, seed
            );
        }
        let fresh_by = |n| {
            engine
                .recorder()
                .transmissions
                .iter()
                .filter(|t| t.node == n && t.class == TrafficClass::Data)
                .count()
        };
        prop_assert_eq!(fresh_by(built.source), head, "retiring sender overran");
        prop_assert_eq!(fresh_by(standby), 64 - head, "standby sent the wrong tail");
        let report = engine.audit_report().expect("auditor attached");
        prop_assert!(report.ok(), "handoff at {} ms: {}", handoff_ms, report.summary());
    }
}
