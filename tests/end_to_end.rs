//! End-to-end integration: the full stack (topology → zones → session →
//! protocol → FEC) delivering reliably across every variant, plus
//! object-level byte fidelity through the real codec.

use sharqfec_repro::fec::group::{GroupDecoder, GroupEncoder};
use sharqfec_repro::netsim::{RunSpec, SimTime, TrafficClass};
use sharqfec_repro::protocol::{setup_sharqfec_sim, SfAgent, SharqfecConfig, Variant};
use sharqfec_repro::topology::{figure10, national, Figure10Params, NationalParams};

fn missing_total(
    engine: &sharqfec_repro::netsim::Engine<sharqfec_repro::protocol::SfMsg>,
    built: &sharqfec_repro::topology::BuiltTopology,
) -> u32 {
    built
        .receivers
        .iter()
        .map(|&r| engine.agent::<SfAgent>(r).expect("receiver").missing())
        .sum()
}

#[test]
fn all_variants_deliver_reliably_on_figure10() {
    let built = figure10(&Figure10Params::default());
    for v in [
        Variant::Ecsrm,
        Variant::NoScopingNoInjection,
        Variant::NoScoping,
        Variant::NoInjection,
        Variant::Full,
    ] {
        let cfg = SharqfecConfig {
            total_packets: 96,
            ..SharqfecConfig::variant(v)
        };
        let mut engine = setup_sharqfec_sim(&built, 17, cfg, SimTime::from_secs(1));
        engine.advance(RunSpec::to(SimTime::from_secs(120)));
        assert_eq!(
            missing_total(&engine, &built),
            0,
            "{} left packets unrecovered",
            v.label()
        );
    }
}

#[test]
fn national_hierarchy_delivers_reliably() {
    let built = national(&NationalParams::small());
    let cfg = SharqfecConfig {
        total_packets: 96,
        ..SharqfecConfig::full()
    };
    let mut engine = setup_sharqfec_sim(&built, 23, cfg, SimTime::from_secs(1));
    engine.advance(RunSpec::to(SimTime::from_secs(120)));
    assert_eq!(missing_total(&engine, &built), 0);
}

#[test]
fn object_bytes_survive_the_network() {
    // The newspaper scenario at test scale: real bytes through the
    // simulated protocol, byte-compared at every receiver.
    const K: usize = 16;
    const PAYLOAD: usize = 200;
    const HEADROOM: usize = 48;
    let object: Vec<u8> = (0..40_000u32)
        .map(|i| (i.wrapping_mul(2_654_435_761) >> 24) as u8)
        .collect();
    let enc = GroupEncoder::new(K, HEADROOM, PAYLOAD).expect("shape");
    let groups = enc.encode_object(&object).expect("encode");
    let n_groups = groups.len();

    // A 6-node chain with loss so repairs actually happen (the lossless
    // shape `chain(6)` would make this test vacuous).
    let built = {
        use sharqfec_repro::netsim::{LinkParams, SimDuration, TopologyBuilder};
        use sharqfec_repro::scoping::ZoneHierarchyBuilder;
        let mut b = TopologyBuilder::new();
        let ids = b.add_nodes("c", 6);
        for (i, w) in ids.windows(2).enumerate() {
            let loss = if i == 1 { 0.15 } else { 0.03 };
            b.add_link(
                w[0],
                w[1],
                LinkParams::new(SimDuration::from_millis(20), 10_000_000, loss),
            );
        }
        let mut zb = ZoneHierarchyBuilder::new(6);
        let root = zb.root(&ids);
        zb.child(root, &ids[1..]).expect("nests");
        sharqfec_repro::topology::BuiltTopology {
            topology: b.build(),
            source: ids[0],
            receivers: ids[1..].to_vec(),
            hierarchy: zb.build().expect("valid"),
            designed_zcrs: vec![ids[0], ids[1]],
        }
    };

    let cfg = SharqfecConfig {
        total_packets: (n_groups * K) as u32,
        packet_bytes: PAYLOAD as u32,
        ..SharqfecConfig::full()
    };
    let mut engine = setup_sharqfec_sim(&built, 5, cfg, SimTime::from_secs(1));
    engine.advance(RunSpec::to(SimTime::from_secs(120)));

    for &r in &built.receivers {
        let agent = engine.agent::<SfAgent>(r).expect("receiver");
        assert!(agent.complete(), "receiver {r} incomplete");
        let mut dec = GroupDecoder::new(K, HEADROOM, PAYLOAD, n_groups).expect("decoder");
        for g in 0..n_groups as u32 {
            let mut fed = 0;
            for idx in agent.held_indices(g) {
                let idx = idx as usize;
                let shard: &[u8] = if idx < K {
                    &groups[g as usize].data[idx]
                } else {
                    assert!(idx - K < HEADROOM, "FEC index {idx} beyond headroom");
                    &groups[g as usize].parity[idx - K]
                };
                dec.push(g as u64, idx, shard).expect("push");
                fed += 1;
                if fed >= K {
                    break;
                }
            }
        }
        assert_eq!(dec.finish().expect("reassemble"), object, "receiver {r}");
    }
}

#[test]
fn runs_are_deterministic_per_seed_and_differ_across_seeds() {
    let built = figure10(&Figure10Params::default());
    let fingerprint = |seed: u64| {
        let cfg = SharqfecConfig {
            total_packets: 48,
            ..SharqfecConfig::full()
        };
        let mut engine = setup_sharqfec_sim(&built, seed, cfg, SimTime::from_secs(1));
        engine.advance(RunSpec::to(SimTime::from_secs(60)));
        let rec = engine.recorder();
        (
            rec.transmissions.len(),
            rec.deliveries.len(),
            rec.drops.len(),
            rec.deliveries.last().map(|d| (d.time, d.node)),
        )
    };
    assert_eq!(fingerprint(123), fingerprint(123));
    assert_ne!(fingerprint(123), fingerprint(124));
}

#[test]
fn lossless_network_never_nacks_or_repairs_reactively() {
    let built = figure10(&Figure10Params::lossless());
    let cfg = SharqfecConfig {
        total_packets: 64,
        ..SharqfecConfig::full()
    };
    let mut engine = setup_sharqfec_sim(&built, 3, cfg, SimTime::from_secs(1));
    engine.advance(RunSpec::to(SimTime::from_secs(60)));
    assert_eq!(missing_total(&engine, &built), 0);
    let nacks = engine
        .recorder()
        .transmissions
        .iter()
        .filter(|t| t.class == TrafficClass::Nack)
        .count();
    assert_eq!(nacks, 0, "no losses, no NACKs");
}
