//! Property-based tests over the protocol stack: reliability and core
//! invariants must hold across random seeds, loss scalings, group sizes,
//! and variants — not just the hand-picked configurations.

use proptest::prelude::*;
use sharqfec_repro::netsim::{RunSpec, SimTime, TrafficClass};
use sharqfec_repro::protocol::{setup_sharqfec_sim, SfAgent, SharqfecConfig, Variant};
use sharqfec_repro::topology::{figure10, random_tree, Figure10Params, RandomTreeParams};

fn variant_strategy() -> impl Strategy<Value = Variant> {
    prop_oneof![
        Just(Variant::Full),
        Just(Variant::NoInjection),
        Just(Variant::NoScoping),
        Just(Variant::NoScopingNoInjection),
        Just(Variant::Ecsrm),
    ]
}

proptest! {
    // Whole-protocol runs are costly; a modest case count still sweeps a
    // meaningful slice of the space every CI run.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Reliability is unconditional: any variant, any seed, any loss
    /// scaling up to 1.5x the paper's, any group size — every receiver
    /// reconstructs every group.
    #[test]
    fn any_configuration_delivers_reliably(
        seed in 0u64..1000,
        loss_scale in 0.0f64..1.5,
        group_size in prop_oneof![Just(8u32), Just(16), Just(32)],
        variant in variant_strategy(),
    ) {
        let built = figure10(&Figure10Params::default().scaled_loss(loss_scale));
        let cfg = SharqfecConfig {
            total_packets: 64,
            group_size,
            ..SharqfecConfig::variant(variant)
        };
        let mut engine = setup_sharqfec_sim(&built, seed, cfg, SimTime::from_secs(1));
        engine.advance(RunSpec::to(SimTime::from_secs(150)));
        for &r in &built.receivers {
            let agent = engine.agent::<SfAgent>(r).expect("receiver");
            prop_assert_eq!(
                agent.missing(), 0,
                "receiver {} incomplete under {:?} seed {} loss x{}",
                r, variant, seed, loss_scale
            );
        }
    }

    /// Robustness on networks nobody designed: full SHARQFEC over random
    /// trees with random latencies/loss and automatically derived zones
    /// still delivers everything.
    #[test]
    fn random_topologies_deliver_reliably(
        topo_seed in any::<u64>(),
        run_seed in any::<u64>(),
        receivers in 6usize..30,
        max_fanout in 2usize..5,
    ) {
        let params = RandomTreeParams {
            receivers,
            max_fanout,
            ..RandomTreeParams::default()
        };
        let built = random_tree(&params, topo_seed);
        let cfg = SharqfecConfig {
            total_packets: 48,
            ..SharqfecConfig::full()
        };
        let mut engine = setup_sharqfec_sim(&built, run_seed, cfg, SimTime::from_secs(1));
        engine.advance(RunSpec::to(SimTime::from_secs(120)));
        for &r in &built.receivers {
            let agent = engine.agent::<SfAgent>(r).expect("receiver");
            prop_assert_eq!(
                agent.missing(), 0,
                "receiver {} incomplete on random topology (topo_seed {}, run_seed {})",
                r, topo_seed, run_seed
            );
        }
    }

    /// Conservation: every delivered or dropped packet was transmitted
    /// (no packets materialize inside the network), and data deliveries
    /// never exceed transmissions x receivers.
    #[test]
    fn traffic_conservation(seed in 0u64..1000) {
        let built = figure10(&Figure10Params::default());
        let cfg = SharqfecConfig {
            total_packets: 32,
            ..SharqfecConfig::full()
        };
        let mut engine = setup_sharqfec_sim(&built, seed, cfg, SimTime::from_secs(1));
        engine.advance(RunSpec::to(SimTime::from_secs(60)));
        let rec = engine.recorder();
        for class in [TrafficClass::Data, TrafficClass::Repair, TrafficClass::Nack] {
            let sent = rec.transmissions.iter().filter(|t| t.class == class).count();
            let delivered = rec.deliveries.iter().filter(|d| d.class == class).count();
            let dropped = rec.drops.iter().filter(|d| d.class == class).count();
            // Hop-by-hop: every delivery or drop requires a transmission
            // upstream of it; with 112 receivers each transmission yields
            // at most 112 deliveries.
            prop_assert!(delivered + dropped <= sent * 112,
                "{class:?}: {delivered}+{dropped} vs {sent} sent");
            if sent > 0 && class == TrafficClass::Data {
                prop_assert!(delivered > 0, "data was sent but nothing arrived");
            }
            if class == TrafficClass::Nack {
                prop_assert_eq!(dropped, 0, "NACKs are lossless by 6.2");
            }
        }
    }
}
