//! Integration tests for the parallel sweep runner against the real
//! protocol stack: figure runs through the runner must be bit-identical
//! to direct serial runs, at any worker count, and the JSON summary must
//! land on disk.

use sharqfec::Variant;
use sharqfec_bench::{Scenario, TrafficRun, Workload};
use sharqfec_netsim::runner::{grid, run_sweep, Cell};
use std::num::NonZeroUsize;

fn small(seed: u64) -> Workload {
    Workload {
        packets: 32,
        seed,
        tail_secs: 10,
    }
}

/// Exact comparison: every series bit-for-bit, every total equal.
fn assert_runs_identical(a: &TrafficRun, b: &TrafficRun) {
    assert_eq!(a.label, b.label);
    let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<u64>>();
    assert_eq!(bits(&a.data_repair), bits(&b.data_repair), "data_repair");
    assert_eq!(bits(&a.nacks), bits(&b.nacks), "nacks");
    assert_eq!(
        bits(&a.source_data_repair),
        bits(&b.source_data_repair),
        "source_data_repair"
    );
    assert_eq!(bits(&a.source_nacks), bits(&b.source_nacks), "source_nacks");
    assert_eq!(a.unrecovered, b.unrecovered);
    assert_eq!(a.total_repairs, b.total_repairs);
    assert_eq!(a.total_nacks, b.total_nacks);
}

#[test]
fn runner_reproduces_figure_runs_bit_for_bit_at_seed_42() {
    let direct_full = Scenario::variant(Variant::Full, small(42)).run_traffic(42);
    let direct_ecsrm = Scenario::variant(Variant::Ecsrm, small(42)).run_traffic(42);

    let cells = vec![Cell::new("ecsrm", 42), Cell::new("full", 42)];
    let swept = run_sweep(cells, NonZeroUsize::new(4).unwrap(), |c| {
        let variant = match c.scenario.as_str() {
            "ecsrm" => Variant::Ecsrm,
            "full" => Variant::Full,
            other => panic!("unexpected scenario {other}"),
        };
        Scenario::variant(variant, small(c.seed)).run_traffic(c.seed)
    })
    .into_values();

    assert_runs_identical(&swept[0], &direct_ecsrm);
    assert_runs_identical(&swept[1], &direct_full);
}

#[test]
fn seed_sweep_is_invariant_under_thread_count() {
    let seeds: Vec<u64> = (1..=8).collect();
    let sweep = |threads: usize| {
        run_sweep(
            grid(&["full"], &seeds),
            NonZeroUsize::new(threads).unwrap(),
            |c| Scenario::variant(Variant::Full, small(c.seed)).run_traffic(c.seed),
        )
        .into_values()
    };
    let serial = sweep(1);
    let parallel = sweep(4);
    assert_eq!(serial.len(), 8);
    for (a, b) in serial.iter().zip(&parallel) {
        assert_runs_identical(a, b);
    }
}

#[test]
fn sweep_json_summary_is_written_and_names_failing_seeds() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/target/tmp/sweep_runner_test");
    let results = run_sweep(
        grid(&["smoke"], &[7, 8]),
        NonZeroUsize::new(2).unwrap(),
        |c| {
            if c.seed == 8 {
                panic!("synthetic failure");
            }
            Scenario::variant(Variant::Full, small(c.seed))
                .run_traffic(c.seed)
                .total_repairs
        },
    );
    assert_eq!(results.ok_count(), 1);
    let failures = results.failures();
    assert_eq!(failures.len(), 1);
    assert!(failures[0].result.as_ref().unwrap_err().contains("seed 8"));

    let path = results
        .write_json(dir, "smoke", |&repairs| {
            vec![("total_repairs".to_string(), repairs as f64)]
        })
        .expect("summary written");
    let json = std::fs::read_to_string(&path).expect("summary readable");
    assert!(json.contains("\"status\": \"ok\""));
    assert!(json.contains("\"status\": \"panicked\""));
    assert!(json.contains("synthetic failure"));
    assert!(json.contains("\"total_repairs\""));
    std::fs::remove_dir_all(dir).ok();
}
