//! The paper's evaluation claims, asserted at test scale.
//!
//! Each test pins one qualitative *shape* from the evaluation section —
//! who wins, roughly by how much, in which metric.  The full-scale numbers
//! live in EXPERIMENTS.md; these tests keep the shapes from regressing.

use sharqfec_bench::{RttExperiment, Scenario, Workload};
use sharqfec_repro::netsim::{NodeId, SimTime};
use sharqfec_repro::protocol::Variant;

fn w(seed: u64) -> Workload {
    Workload {
        packets: 96,
        seed,
        tail_secs: 30,
    }
}

/// Figures 14/15: hybrid ARQ/FEC (ECSRM) beats pure ARQ (SRM) on both
/// repair volume and NACK volume.
#[test]
fn ecsrm_beats_srm() {
    let srm = Scenario::srm_baseline(w(11)).run_traffic(11);
    let ecsrm = Scenario::variant(Variant::Ecsrm, w(11)).run_traffic(11);
    assert_eq!(ecsrm.unrecovered, 0);

    let sum = |v: &[f64]| v.iter().sum::<f64>();
    assert!(
        sum(&ecsrm.data_repair) < 0.7 * sum(&srm.data_repair),
        "ECSRM should carry far less data+repair: {} vs {}",
        sum(&ecsrm.data_repair),
        sum(&srm.data_repair)
    );
    assert!(
        sum(&ecsrm.nacks) < 0.4 * sum(&srm.nacks),
        "count-based NACKs should collapse request volume: {} vs {}",
        sum(&ecsrm.nacks),
        sum(&srm.nacks)
    );
}

/// Figure 17: adding scoping improves on the unscoped hybrid — receivers
/// see no more traffic and the peaks shrink.
#[test]
fn scoping_beats_unscoped_hybrid() {
    let ecsrm = Scenario::variant(Variant::Ecsrm, w(12)).run_traffic(12);
    let full = Scenario::variant(Variant::Full, w(12)).run_traffic(12);
    assert_eq!(full.unrecovered, 0);
    let sum = |v: &[f64]| v.iter().sum::<f64>();
    let peak = |v: &[f64]| v.iter().copied().fold(0.0, f64::max);
    assert!(
        sum(&full.data_repair) <= 1.05 * sum(&ecsrm.data_repair),
        "scoped total {} should not exceed unscoped {}",
        sum(&full.data_repair),
        sum(&ecsrm.data_repair)
    );
    assert!(
        peak(&full.data_repair) < peak(&ecsrm.data_repair),
        "scoping should shave the peaks: {} vs {}",
        peak(&full.data_repair),
        peak(&ecsrm.data_repair)
    );
}

/// Figure 18: preemptive FEC injection does not increase bandwidth
/// (Rubenstein et al.'s result, revalidated in the hierarchy).
#[test]
fn injection_is_bandwidth_neutral() {
    let ni = Scenario::variant(Variant::NoInjection, w(13)).run_traffic(13);
    let full = Scenario::variant(Variant::Full, w(13)).run_traffic(13);
    let sum = |v: &[f64]| v.iter().sum::<f64>();
    let (a, b) = (sum(&full.data_repair), sum(&ni.data_repair));
    assert!(
        (a - b).abs() / b < 0.15,
        "injection should be ~bandwidth neutral: {a} vs {b}"
    );
}

/// Figure 19: hierarchy + injection suppresses NACKs below the unscoped
/// protocol ("less than or equal to the minimum seen for ECSRM").
#[test]
fn full_sharqfec_suppresses_nacks() {
    let ecsrm = Scenario::variant(Variant::Ecsrm, w(14)).run_traffic(14);
    let full = Scenario::variant(Variant::Full, w(14)).run_traffic(14);
    let sum = |v: &[f64]| v.iter().sum::<f64>();
    assert!(
        sum(&full.nacks) < 0.6 * sum(&ecsrm.nacks),
        "scoped NACK exposure should collapse: {} vs {}",
        sum(&full.nacks),
        sum(&ecsrm.nacks)
    );
}

/// Figures 20/21: the source (the network core) is insulated by the
/// hierarchy.
#[test]
fn source_is_insulated_by_scoping() {
    let ecsrm = Scenario::variant(Variant::Ecsrm, w(15)).run_traffic(15);
    let full = Scenario::variant(Variant::Full, w(15)).run_traffic(15);
    let sum = |v: &[f64]| v.iter().sum::<f64>();
    assert!(
        sum(&full.source_data_repair) < sum(&ecsrm.source_data_repair),
        "core data+repair: {} vs {}",
        sum(&full.source_data_repair),
        sum(&ecsrm.source_data_repair)
    );
    assert!(
        sum(&full.source_nacks) < 0.5 * sum(&ecsrm.source_nacks),
        "core NACKs: {} vs {}",
        sum(&full.source_nacks),
        sum(&ecsrm.source_nacks)
    );
}

/// Figures 11–13: "more than 50% of receivers were able to estimate the
/// RTT to a NACK's sender to within a few percent."
#[test]
fn indirect_rtt_estimates_are_accurate() {
    let probers = [NodeId(3), NodeId(25), NodeId(36)];
    let times: Vec<SimTime> = (0..3).map(|i| SimTime::from_secs(9 + 3 * i)).collect();
    for res in RttExperiment::new(&probers, &times).run(7) {
        let last_seq = res.ratios.iter().map(|(_, s, _)| *s).max().unwrap();
        let last: Vec<f64> = res
            .ratios
            .iter()
            .filter(|(_, s, _)| *s == last_seq)
            .filter_map(|(_, _, r)| *r)
            .collect();
        assert!(
            last.len() > 100,
            "probe from {} reached {} receivers",
            res.prober,
            last.len()
        );
        let close = last.iter().filter(|r| (**r - 1.0).abs() < 0.05).count();
        assert!(
            close as f64 > 0.5 * last.len() as f64,
            "prober {}: only {close}/{} within 5%",
            res.prober,
            last.len()
        );
    }
}
