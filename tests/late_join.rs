//! Late joins (paper §7: "This same hierarchy also provides the means for
//! localizing late-join traffic").
//!
//! A receiver that joins mid-stream missed entire groups; its audit path
//! detects them and its NACKs walk the scope ladder from its smallest
//! zone outward, so recovery of the missed history is served locally
//! where possible.
//!
//! The late joiner is declared with a [`ScenarioPlan`] join event: the
//! setup strips it from its channels' initial membership, the plan's
//! compiled Join events re-admit it mid-stream, and its agent start is
//! overridden to the join instant — the same machinery the scenario
//! sweep's flash crowds run through at 10⁴-receiver scale.

use sharqfec_repro::netsim::{NodeId, RunSpec, ScenarioPlan, SimTime, TrafficClass};
use sharqfec_repro::protocol::{
    member_channels, setup_sharqfec_scenario_builder, SfAgent, SharqfecConfig,
};
use sharqfec_repro::topology::{figure10, Figure10Params};

/// Build the standard simulation with one receiver joining late, as a
/// scenario-plan join event.
fn sim_with_late_joiner(
    late: NodeId,
    join_at: SimTime,
) -> (
    sharqfec_repro::netsim::Engine<sharqfec_repro::protocol::SfMsg>,
    sharqfec_repro::topology::BuiltTopology,
) {
    let built = figure10(&Figure10Params::default());
    let cfg = SharqfecConfig {
        total_packets: 96,
        ..SharqfecConfig::full()
    };
    let chans = member_channels(&built.hierarchy, late);
    let plan = ScenarioPlan::new().join_at(join_at, late, &chans);
    let builder =
        setup_sharqfec_scenario_builder(&built, 31, cfg, SimTime::from_secs(1), plan, None);
    (builder.build(), built)
}

#[test]
fn late_joiner_recovers_the_full_history() {
    // Receiver 58 (a leaf in the worst-loss tree) joins at t = 10 s —
    // four seconds into the 9.6-second stream, having missed ~40 packets.
    let late = NodeId(58);
    let (mut engine, built) = sim_with_late_joiner(late, SimTime::from_secs(10));
    engine.advance(RunSpec::to(SimTime::from_secs(150)));

    for &r in &built.receivers {
        let agent = engine.agent::<SfAgent>(r).expect("receiver");
        assert_eq!(
            agent.missing(),
            0,
            "receiver {r} (late={}) still missing packets",
            r == late
        );
    }
}

#[test]
fn late_join_recovery_is_scoped() {
    // The joiner's repair requests must start at its smallest zone; the
    // history it missed is held by its zone-mates, so most recovery
    // traffic never reaches the source.
    let late = NodeId(58);
    let (mut engine, _built) = sim_with_late_joiner(late, SimTime::from_secs(10));
    engine.advance(RunSpec::to(SimTime::from_secs(150)));

    let rec = engine.recorder();
    // NACKs transmitted by the late joiner, by channel.
    let mut by_channel: std::collections::HashMap<u32, usize> = Default::default();
    for t in &rec.transmissions {
        if t.node == late && t.class == TrafficClass::Nack {
            *by_channel.entry(t.channel.0).or_default() += 1;
        }
    }
    let total: usize = by_channel.values().sum();
    assert!(total > 0, "the joiner must have requested its history");
    // Channel 0 is the root/data channel; everything else is scoped.
    let at_root = by_channel.get(&0).copied().unwrap_or(0);
    assert!(
        at_root * 2 <= total,
        "most late-join NACKs should stay scoped: {at_root}/{total} at root ({by_channel:?})"
    );
    // And the joiner did end up complete.
    assert_eq!(engine.agent::<SfAgent>(late).unwrap().missing(), 0);
}
