//! The §7 receiver-report summarization extension, end to end: during a
//! lossy SHARQFEC run, per-receiver reception quality rolls up the ZCR
//! hierarchy, and the source's aggregate converges to the session-wide
//! truth without any receiver announcing beyond its own zone.

use sharqfec_repro::netsim::{RunSpec, SimTime, TrafficClass};
use sharqfec_repro::protocol::{setup_sharqfec_sim, SfAgent, SharqfecConfig};
use sharqfec_repro::scoping::ZoneId;
use sharqfec_repro::topology::{figure10, Figure10Params};

#[test]
fn source_learns_session_quality_from_zone_summaries() {
    let built = figure10(&Figure10Params::default());
    let cfg = SharqfecConfig {
        total_packets: 192,
        ..SharqfecConfig::full()
    };
    let mut engine = setup_sharqfec_sim(&built, 77, cfg, SimTime::from_secs(1));
    engine.advance(RunSpec::to(SimTime::from_secs(60)));

    let source_agent = engine.agent::<SfAgent>(built.source).expect("source");
    let report = source_agent
        .session()
        .aggregate_report(ZoneId::ROOT)
        .expect("the source must have aggregated reports");

    // Coverage: the summary must speak for a large share of the session —
    // every mesh-node ZCR folds its subtree in, so the count approaches
    // the full 112 receivers.
    assert!(
        report.receivers >= 80,
        "summary covers only {} receivers",
        report.receivers
    );

    // Quality: the mean observed loss must be in the plausible band of the
    // Figure 10 loss plan (leaf losses 13-28%, but repairs keep per-group
    // identifier spans a bit above k, so fractions land slightly lower).
    assert!(
        report.mean_loss > 0.05 && report.mean_loss < 0.35,
        "mean loss {} outside the plausible band",
        report.mean_loss
    );
    // The worst report must come from the high-loss region and exceed the
    // mean by a real margin.
    assert!(
        report.worst_loss > report.mean_loss * 1.2,
        "worst {} should clearly exceed mean {}",
        report.worst_loss,
        report.mean_loss
    );

    // Scalability: deep receivers never announced beyond their own zone —
    // root-channel session senders stay the source + the 7 mesh ZCRs.
    let root_chan = sharqfec_repro::netsim::ChannelId(0);
    let mut senders = std::collections::HashSet::new();
    for t in &engine.recorder().transmissions {
        if t.channel == root_chan && t.class == TrafficClass::Session {
            senders.insert(t.node);
        }
    }
    assert!(
        senders.len() <= 8,
        "RR summarization must not widen session scope: {senders:?}"
    );
}

#[test]
fn zcr_summaries_reflect_their_zones() {
    let built = figure10(&Figure10Params::default());
    let cfg = SharqfecConfig {
        total_packets: 192,
        ..SharqfecConfig::full()
    };
    let mut engine = setup_sharqfec_sim(&built, 78, cfg, SimTime::from_secs(1));
    engine.advance(RunSpec::to(SimTime::from_secs(60)));

    // Tree 3 (worst backbone) vs tree 5 (best): their mesh-node ZCRs'
    // zone aggregates must order accordingly.
    let mesh3 = sharqfec_repro::topology::figure10::mesh_node(3);
    let mesh5 = sharqfec_repro::topology::figure10::mesh_node(5);
    let zone_of = |n| built.hierarchy.smallest_zone(n);
    let agg = |n| {
        engine
            .agent::<SfAgent>(n)
            .expect("agent")
            .session()
            .aggregate_report(zone_of(n))
            .expect("zone aggregate")
    };
    let worst_tree = agg(mesh3);
    let best_tree = agg(mesh5);
    assert!(
        worst_tree.mean_loss > best_tree.mean_loss,
        "tree 3 ({}) should report more loss than tree 5 ({})",
        worst_tree.mean_loss,
        best_tree.mean_loss
    );
}
