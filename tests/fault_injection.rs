//! Fault-plan integration tests: the declarative fault subsystem
//! (`netsim::faults`) driving the full protocol stack.
//!
//! * Full SHARQFEC keeps 100 % delivery under Gilbert–Elliott burst loss
//!   *plus* a mid-stream backbone link flap (the recovery machinery,
//!   not the network, provides reliability).
//! * The ZCR election re-converges after a link fault partitions a zone
//!   and heals (the `zcr_failover` example's scenario, asserted tightly).
//! * Fault-plan runs are bit-identical at any sweep thread count.

use sharqfec_bench::{Scenario, Workload};
use sharqfec_repro::netsim::faults::FaultPlan;
use sharqfec_repro::netsim::prelude::*;
use sharqfec_repro::netsim::runner::{run_sweep, Cell};
use sharqfec_repro::protocol::SharqfecConfig;
use sharqfec_repro::scoping::ZoneHierarchyBuilder;
use sharqfec_repro::session::{
    ProbePlan, SessionAgent, SessionConfig, SessionCore, SessionWire, ZcrSeeding,
};
use sharqfec_repro::topology::{figure10, Figure10Params};
use std::num::NonZeroUsize;
use std::sync::Arc;

/// The Figure 10 backbone link feeding tree 3.  Link ids depend only on
/// construction order, so a throwaway build identifies the link for
/// every identically-shaped topology.
fn tree3_backbone() -> sharqfec_repro::netsim::graph::LinkId {
    let built = figure10(&Figure10Params::default());
    built
        .topology
        .link_between(built.source, sharqfec_topology::figure10::mesh_node(3))
        .expect("figure 10 wires every mesh router to the source")
}

fn burst_flap_scenario(label: &str, mean_burst: f64, packets: u32) -> Scenario {
    let workload = Workload {
        packets,
        seed: 0,
        tail_secs: 52,
    };
    // Down at 7 s the stream is mid-flight; 16 receivers lose their only
    // path (figure 10 is a tree) until the heal at 9 s.
    let flap = FaultPlan::new().link_flap(
        tree3_backbone(),
        SimTime::from_secs(7),
        SimTime::from_secs(9),
    );
    Scenario::sharqfec(label, SharqfecConfig::full(), workload)
        .with_burst(mean_burst)
        .with_faults(flap)
        .streaming()
}

#[test]
fn full_delivery_under_burst_loss_and_backbone_flap() {
    let outcome = burst_flap_scenario("ge-burst+flap", 4.0, 128).run(42);
    assert!(
        outcome.dropped > 0,
        "the Gilbert-Elliott plan must actually drop traffic"
    );
    assert!(
        outcome.repairs > 0,
        "recovery must have engaged to mask the loss"
    );
    assert_eq!(
        outcome.unrecovered, 0,
        "SHARQFEC must deliver everything despite burst loss and a 2 s \
         partition of tree 3 ({} dropped, {} repairs)",
        outcome.dropped, outcome.repairs
    );
}

#[test]
fn zcr_election_reconverges_after_partition_heals() {
    // Chain src - r1 - r2 - r3 - r4 plus a slow src - r2 bypass; the
    // r1 - r2 link flaps, cutting the designed ZCR r1 off from the rest
    // of its zone while r1 itself stays healthy.
    let mut t = TopologyBuilder::new();
    let src = t.add_node("src");
    let r1 = t.add_node("r1");
    let r2 = t.add_node("r2");
    let r3 = t.add_node("r3");
    let r4 = t.add_node("r4");
    let fast = |ms| LinkParams::lossless(SimDuration::from_millis(ms), 10_000_000);
    t.add_link(src, r1, fast(10));
    let flappy = t.add_link(r1, r2, fast(10));
    t.add_link(src, r2, fast(50));
    t.add_link(r2, r3, fast(10));
    t.add_link(r3, r4, fast(10));
    let topo = t.build();

    let members = [src, r1, r2, r3, r4];
    let receivers = [r1, r2, r3, r4];
    let mut h = ZoneHierarchyBuilder::new(members.len());
    let root = h.root(&members);
    let zone = h.child(root, &receivers).expect("receiver zone nests");
    let hier = Arc::new(h.build().expect("valid hierarchy"));

    let mut builder: EngineBuilder<SessionWire> = EngineBuilder::new(topo, 5);
    builder.fault_plan(FaultPlan::new().link_flap(
        flappy,
        SimTime::from_secs(8),
        SimTime::from_secs(30),
    ));
    let channels: Arc<Vec<ChannelId>> = Arc::new(
        hier.zones()
            .iter()
            .map(|z| builder.add_channel(&z.members))
            .collect(),
    );
    let root_channel = channels[root.idx()];
    let seeding = ZcrSeeding::Designed(vec![src, r1]);
    for member in members {
        let core = SessionCore::new(
            member,
            Arc::clone(&hier),
            SessionConfig::default(),
            &seeding,
        );
        builder.add_agent_at(
            member,
            Box::new(SessionAgent::new(
                core,
                Arc::clone(&channels),
                root_channel,
                ProbePlan::default(),
            )),
            SimTime::from_secs(1),
        );
    }
    let mut engine = builder.build();
    let view = |engine: &Engine<SessionWire>, node: NodeId| {
        engine
            .agent::<SessionAgent>(node)
            .expect("agent")
            .core()
            .zcr_of(zone)
    };

    // Before the fault everyone agrees on the designed ZCR.
    engine.advance(RunSpec::to(SimTime::from_secs(7)));
    for r in receivers {
        assert_eq!(view(&engine, r), Some(r1), "designed ZCR before the fault");
    }

    // Mid-partition: the orphaned side elects the bypass owner; r1 keeps
    // serving its own side (no split-brain oscillation).
    engine.advance(RunSpec::to(SimTime::from_secs(29)));
    for r in [r2, r3, r4] {
        assert_eq!(view(&engine, r), Some(r2), "orphans elect a stand-in");
    }
    assert_eq!(view(&engine, r1), Some(r1), "r1 keeps its side");

    // After the heal the closer original reasserts and the stand-in
    // concedes — every member converges back to r1.
    engine.advance(RunSpec::to(SimTime::from_secs(60)));
    for r in receivers {
        assert_eq!(view(&engine, r), Some(r1), "re-convergence after heal");
    }
}

#[test]
fn fault_plan_outcomes_are_thread_invariant() {
    // Each cell is a pure function of (scenario, seed): scheduling the
    // sweep on 1, 4, or 8 workers must not change a single metric.
    let specs = [
        burst_flap_scenario("mb=4", 4.0, 64),
        burst_flap_scenario("mb=8", 8.0, 64),
        burst_flap_scenario("mb=16", 16.0, 64),
    ];
    let run = |threads: usize| {
        let cells: Vec<Cell> = specs
            .iter()
            .map(|s| Cell::new(s.label.clone(), 7))
            .collect();
        let threads = NonZeroUsize::new(threads).unwrap();
        run_sweep(cells, threads, |cell| {
            specs
                .iter()
                .find(|s| s.label == cell.scenario)
                .expect("cell matches a planned scenario")
                .run(cell.seed)
        })
        .into_values()
    };
    let serial = run(1);
    assert_eq!(serial.len(), specs.len());
    assert_eq!(serial, run(4), "4 workers must match serial");
    assert_eq!(serial, run(8), "8 workers must match serial");
}
