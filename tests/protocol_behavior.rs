//! Focused behavioural tests for the protocol mechanics the paper
//! describes: shared-loss suppression, ZCR upstream requests, injection
//! decay, and scope escalation under unrepairable zones.

use sharqfec_repro::netsim::{
    Engine, LinkParams, NodeId, RunSpec, SimDuration, SimTime, TopologyBuilder, TrafficClass,
};
use sharqfec_repro::protocol::{setup_sharqfec_sim, PolicyKind, SfAgent, SfMsg, SharqfecConfig};
use sharqfec_repro::scoping::ZoneHierarchyBuilder;
use sharqfec_repro::topology::BuiltTopology;

/// src —(lossy)— gw —(clean)— {r1, r2}: every loss is shared by the whole
/// child zone.
fn shared_loss_topology(loss: f64) -> BuiltTopology {
    let mut b = TopologyBuilder::new();
    let src = b.add_node("src");
    let gw = b.add_node("gw");
    let r1 = b.add_node("r1");
    let r2 = b.add_node("r2");
    b.add_link(
        src,
        gw,
        LinkParams::new(SimDuration::from_millis(30), 10_000_000, loss),
    );
    b.add_link(
        gw,
        r1,
        LinkParams::lossless(SimDuration::from_millis(10), 10_000_000),
    );
    b.add_link(
        gw,
        r2,
        LinkParams::lossless(SimDuration::from_millis(10), 10_000_000),
    );
    let topology = b.build();
    let mut zb = ZoneHierarchyBuilder::new(4);
    let root = zb.root(&[src, gw, r1, r2]);
    zb.child(root, &[gw, r1, r2]).expect("nests");
    BuiltTopology {
        topology,
        source: src,
        receivers: vec![gw, r1, r2],
        hierarchy: zb.build().expect("valid"),
        designed_zcrs: vec![src, gw],
    }
}

fn run(built: &BuiltTopology, cfg: SharqfecConfig, seed: u64, until: u64) -> Engine<SfMsg> {
    let mut engine = setup_sharqfec_sim(built, seed, cfg, SimTime::from_secs(1));
    engine.advance(RunSpec::to(SimTime::from_secs(until)));
    engine
}

/// Paper §4's suppression: when a loss is shared by the whole zone, the
/// zone representative's NACK covers everyone — downstream members stay
/// silent.
#[test]
fn shared_losses_produce_one_nack_stream() {
    let built = shared_loss_topology(0.25);
    let cfg = SharqfecConfig {
        total_packets: 128,
        ..SharqfecConfig::full()
    };
    let engine = run(&built, cfg, 13, 60);
    let gw = built.receivers[0];

    for &r in &built.receivers {
        assert_eq!(engine.agent::<SfAgent>(r).unwrap().missing(), 0);
    }
    let nacks_by = |node: NodeId| {
        engine
            .recorder()
            .transmissions
            .iter()
            .filter(|t| t.node == node && t.class == TrafficClass::Nack)
            .count()
    };
    let gw_nacks = nacks_by(gw);
    let leaf_nacks = nacks_by(built.receivers[1]) + nacks_by(built.receivers[2]);
    assert!(
        gw_nacks > 0,
        "the representative must have requested repairs"
    );
    // Suppression is probabilistic (overlapping timer windows), so the
    // leaves occasionally win the race — but the representative must carry
    // the majority, and in aggregate a shared loss must cost ~one NACK,
    // not one per receiver.
    assert!(
        leaf_nacks < gw_nacks,
        "the representative should dominate: leaves {leaf_nacks} vs gw {gw_nacks}"
    );
    let data_drops = engine
        .recorder()
        .drops
        .iter()
        .filter(|d| d.class == TrafficClass::Data)
        .count();
    let total = gw_nacks + leaf_nacks;
    assert!(
        total < data_drops * 3 / 2,
        "suppression failing: {total} NACKs for {data_drops} shared losses (3 receivers)"
    );
}

/// The zone representative asks upstream: its NACKs go to the parent
/// (root) channel, where the only holder — the source — can answer.
#[test]
fn zcr_requests_go_upstream() {
    let built = shared_loss_topology(0.25);
    let cfg = SharqfecConfig {
        total_packets: 128,
        ..SharqfecConfig::full()
    };
    let engine = run(&built, cfg, 9, 60);
    let gw = built.receivers[0];
    let (mut at_root, mut at_child) = (0, 0);
    for t in &engine.recorder().transmissions {
        if t.node == gw && t.class == TrafficClass::Nack {
            if t.channel.0 == 0 {
                at_root += 1;
            } else {
                at_child += 1;
            }
        }
    }
    assert!(at_root > 0, "gw must request at the parent scope");
    assert_eq!(
        at_child, 0,
        "asking its own zone is futile: everything gw lost, its subtree lost"
    );
}

/// §4: the injection prediction "decays over time" — on a lossless
/// network, a deliberately inflated initial prediction produces early
/// injected FEC that dies away within a few groups.
#[test]
fn injection_decays_on_a_clean_network() {
    let built = shared_loss_topology(0.0);
    let mut cfg = SharqfecConfig {
        total_packets: 320, // 20 groups
        ..SharqfecConfig::full()
    };
    cfg.policy.kind = PolicyKind::Ewma {
        gain: 0.25,
        initial_pred: 4.0,
    };
    let engine = run(&built, cfg, 10, 60);
    let repairs: Vec<SimTime> = engine
        .recorder()
        .transmissions
        .iter()
        .filter(|t| t.class == TrafficClass::Repair)
        .map(|t| t.time)
        .collect();
    assert!(
        !repairs.is_empty(),
        "the inflated prediction must inject something at first"
    );
    // Stream spans t = 6.0 .. 9.2 s; all injections must stop in the
    // first half once the EWMA has decayed (0.75^4 of 4 rounds to < 0.5
    // within ~5 groups).
    let late = repairs.iter().filter(|t| t.as_secs_f64() > 7.6).count();
    assert_eq!(
        late, 0,
        "prediction failed to decay: {late} injections in the second half"
    );
    // And no NACKs at all on a clean network.
    assert_eq!(
        engine
            .recorder()
            .transmissions
            .iter()
            .filter(|t| t.class == TrafficClass::Nack)
            .count(),
        0
    );
}

/// Scope escalation: when a whole zone misses packets that nobody inside
/// holds, requests escalate outward until someone (the source) answers —
/// and recovery still completes even at savage loss rates.
#[test]
fn escalation_survives_savage_loss() {
    let built = shared_loss_topology(0.6);
    let cfg = SharqfecConfig {
        total_packets: 64,
        ..SharqfecConfig::full()
    };
    let engine = run(&built, cfg, 11, 200);
    for &r in &built.receivers {
        let agent = engine.agent::<SfAgent>(r).unwrap();
        assert_eq!(
            agent.missing(),
            0,
            "receiver {r} incomplete at 60% shared loss"
        );
    }
}

/// Duplicate identifiers never happen: across any run, each (group, idx)
/// pair is transmitted by at most... actually concurrent repairers MAY
/// duplicate an id in rare races; what must hold is that every receiver
/// still reconstructs (deficit counts distinct ids only) and the source's
/// initial packets are unique.
#[test]
fn group_completion_counts_distinct_indices() {
    let built = shared_loss_topology(0.3);
    let cfg = SharqfecConfig {
        total_packets: 64,
        ..SharqfecConfig::full()
    };
    let engine = run(&built, cfg, 12, 90);
    for &r in &built.receivers {
        let agent = engine.agent::<SfAgent>(r).unwrap();
        for g in 0..4 {
            let held = agent.held_indices(g);
            let k = 16.min(held.len());
            // Distinctness is structural (a sorted set); completion needs k.
            let mut sorted = held.clone();
            sorted.dedup();
            assert_eq!(sorted.len(), held.len(), "held set has duplicates");
            assert!(held.len() >= k);
        }
    }
}
