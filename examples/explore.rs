//! An interactive-ish exploration tool: run any protocol variant on any
//! built-in topology and inspect the result — summary, per-class traffic,
//! and a filtered event timeline around the first loss (the trace module
//! standing in for the paper's *nam* animator).
//!
//! Run: `cargo run --release --example explore -- [variant] [topology] [packets] [seed]`
//!
//!   variant  : full | ni | ns | ns_ni | ecsrm          (default full)
//!   topology : figure10 | national | chain | random    (default figure10)
//!   packets  : data packets                            (default 64)
//!   seed     : RNG seed                                (default 42)

use sharqfec_repro::netsim::trace::{Timeline, TraceFilter};
use sharqfec_repro::netsim::{RunSpec, SimDuration, SimTime, TrafficClass};
use sharqfec_repro::protocol::{setup_sharqfec_sim, SfAgent, SharqfecConfig};
use sharqfec_repro::topology::{
    chain, figure10, national, random_tree, BuiltTopology, Figure10Params, NationalParams,
    RandomTreeParams,
};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let variant = args.get(1).map(String::as_str).unwrap_or("full");
    let topology = args.get(2).map(String::as_str).unwrap_or("figure10");
    let packets: u32 = args
        .get(3)
        .map(|s| s.parse().expect("packets"))
        .unwrap_or(64);
    let seed: u64 = args.get(4).map(|s| s.parse().expect("seed")).unwrap_or(42);

    let cfg = SharqfecConfig {
        total_packets: packets,
        ..match variant {
            "full" => SharqfecConfig::full(),
            "ni" => SharqfecConfig::ni(),
            "ns" => SharqfecConfig::ns(),
            "ns_ni" => SharqfecConfig::ns_ni(),
            "ecsrm" => SharqfecConfig::ecsrm(),
            other => panic!("unknown variant {other} (full|ni|ns|ns_ni|ecsrm)"),
        }
    };
    let built: BuiltTopology = match topology {
        "figure10" => figure10(&Figure10Params::default()),
        "national" => national(&NationalParams::small()),
        "chain" => chain(8),
        "random" => random_tree(&RandomTreeParams::default(), seed),
        other => panic!("unknown topology {other} (figure10|national|chain|random)"),
    };

    println!(
        "exploring {variant} on {topology}: {} receivers, {} zones, {packets} packets, seed {seed}",
        built.receivers.len(),
        built.hierarchy.zone_count()
    );

    let mut engine = setup_sharqfec_sim(&built, seed, cfg, SimTime::from_secs(1));
    engine.advance(RunSpec::to(SimTime::from_secs(
        6 + packets as u64 / 100 + 60,
    )));

    // Summary.
    let missing: u32 = built
        .receivers
        .iter()
        .map(|&r| engine.agent::<SfAgent>(r).expect("receiver").missing())
        .sum();
    let rec = engine.recorder();
    println!("\nper-class transmissions / deliveries / drops:");
    for class in [
        TrafficClass::Data,
        TrafficClass::Repair,
        TrafficClass::Nack,
        TrafficClass::Session,
        TrafficClass::Control,
    ] {
        let tx = rec
            .transmissions
            .iter()
            .filter(|t| t.class == class)
            .count();
        let rx = rec.deliveries.iter().filter(|d| d.class == class).count();
        let dr = rec.drops.iter().filter(|d| d.class == class).count();
        println!("  {:<8} {:>7} / {:>8} / {:>6}", class.label(), tx, rx, dr);
    }
    println!("packets missing at horizon: {missing}");

    // Timeline around the first data loss: who noticed, who asked, who
    // repaired.
    if let Some(first_drop) = rec.drops.iter().find(|d| d.class == TrafficClass::Data) {
        let from = first_drop.time;
        let to = from + SimDuration::from_millis(1500);
        println!(
            "\nevent timeline for the 1.5 s after the first data loss (t={:.3}s, link n{}→n{}):",
            from.as_secs_f64(),
            first_drop.from.0,
            first_drop.to.0
        );
        let text = Timeline::new(rec)
            .filter(
                TraceFilter::default()
                    .class(TrafficClass::Nack)
                    .class(TrafficClass::Repair)
                    .between(from, to),
            )
            .render();
        let lines: Vec<&str> = text.lines().collect();
        for line in lines.iter().take(25) {
            println!("  {line}");
        }
        if lines.len() > 25 {
            println!("  … {} more events", lines.len() - 25);
        }
    } else {
        println!("\nno data losses occurred (lossless run).");
    }
}
