//! The paper's §5.1 scenario in miniature: a national live-event broadcast
//! over a 4-level hierarchy (regions → cities → suburbs → subscribers).
//!
//! Demonstrates the two headline properties on a simulated (scaled-down)
//! national network:
//!
//! * reliable delivery to every subscriber under edge loss, and
//! * per-receiver session state that tracks only zone-local peers and the
//!   ZCR chain — the Figure 8 reduction, measured live rather than
//!   computed analytically.
//!
//! Run: `cargo run --release --example live_event`

use sharqfec_repro::analysis::national::NationalAnalysis;
use sharqfec_repro::netsim::{RunSpec, SimTime};
use sharqfec_repro::protocol::{setup_sharqfec_sim, SfAgent, SharqfecConfig};
use sharqfec_repro::topology::{national, NationalParams};

fn main() {
    // 3 regions x 3 cities x 2 suburbs x 6 subscribers = 120 receivers.
    let params = NationalParams {
        regions: 3,
        cities_per_region: 3,
        suburbs_per_city: 2,
        subscribers_per_suburb: 6,
        access_loss: 0.08,
        backbone_loss: 0.01,
    };
    let built = national(&params);
    println!(
        "national broadcast: {} receivers over {} zones, 4 levels",
        built.receivers.len(),
        built.hierarchy.zone_count()
    );

    let cfg = SharqfecConfig {
        total_packets: 160, // 10 groups
        ..SharqfecConfig::full()
    };
    let mut engine = setup_sharqfec_sim(&built, 99, cfg, SimTime::from_secs(1));
    engine.advance(RunSpec::to(SimTime::from_secs(60)));

    // Reliability.
    let missing: u32 = built
        .receivers
        .iter()
        .map(|&r| engine.agent::<SfAgent>(r).expect("receiver").missing())
        .sum();
    assert_eq!(missing, 0, "{missing} packets undelivered");
    println!(
        "all packets delivered to all {} receivers",
        built.receivers.len()
    );

    // Session state per receiver class (the live Figure 8 measurement).
    let mut subscriber_state = Vec::new();
    let mut hub_state = Vec::new();
    for &r in &built.receivers {
        let agent = engine.agent::<SfAgent>(r).expect("receiver");
        let tracked = agent.session().tracked_peer_count();
        if built.hierarchy.zone_chain(r).len() == 4 {
            subscriber_state.push(tracked as f64);
        } else {
            hub_state.push(tracked as f64);
        }
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!(
        "session state tracked: subscribers avg {:.1} peers, hubs avg {:.1} peers",
        avg(&subscriber_state),
        avg(&hub_state)
    );
    println!(
        "non-scoped equivalent would be {} peers for everyone",
        built.receivers.len()
    );
    assert!(
        avg(&subscriber_state) < built.receivers.len() as f64 / 2.0,
        "scoped session state should be far below the non-scoped baseline"
    );

    // And the paper's full-scale arithmetic for the same shape.
    let full = NationalAnalysis::paper();
    println!();
    println!("at the paper's full scale (10,000,210 receivers) the same design gives:");
    for level in &full.levels {
        println!(
            "  {:<8} RTTs/receiver {:>4}  (vs {} non-scoped)",
            level.name,
            level.rtts_per_receiver,
            full.nonscoped_state()
        );
    }
}
