//! ZCR failover driven by the *network*, not the node (paper §5.2's
//! robustness claim): the designed ZCR stays perfectly healthy, but the
//! link connecting it to the rest of its zone flaps.  While the link is
//! down the zone members stop hearing its announcements, their liveness
//! windows expire, and they elect a stand-in over a slow bypass path.
//! When the link heals, both sides hold a sitting ZCR; the announce-time
//! conflict resolution lets the closer original reassert and the
//! stand-in concede.
//!
//! The partition is injected declaratively with a [`FaultPlan`] — the
//! agents are stock [`SessionAgent`]s with no failure logic of their own.
//!
//! Run: `cargo run --release --example zcr_failover`

use sharqfec_repro::netsim::faults::FaultPlan;
use sharqfec_repro::netsim::prelude::*;
use sharqfec_repro::scoping::ZoneHierarchyBuilder;
use sharqfec_repro::session::{
    ProbePlan, SessionAgent, SessionConfig, SessionCore, SessionWire, ZcrSeeding,
};
use std::sync::Arc;

fn main() {
    // Chain src - r1 - r2 - r3 - r4 plus a slow src - r2 bypass.  r1 is
    // the designed ZCR of the receiver zone; the r1 - r2 link is the one
    // that flaps.  The bypass keeps the parent zone reachable from the
    // orphaned members (without it no election could run at all), but at
    // 5x the latency, so r1 remains the rightful ZCR once it returns.
    let mut t = TopologyBuilder::new();
    let src = t.add_node("src");
    let r1 = t.add_node("r1");
    let r2 = t.add_node("r2");
    let r3 = t.add_node("r3");
    let r4 = t.add_node("r4");
    let fast = |ms| LinkParams::lossless(SimDuration::from_millis(ms), 10_000_000);
    t.add_link(src, r1, fast(10));
    let flappy = t.add_link(r1, r2, fast(10));
    t.add_link(src, r2, fast(50));
    t.add_link(r2, r3, fast(10));
    t.add_link(r3, r4, fast(10));
    let topo = t.build();

    let members = [src, r1, r2, r3, r4];
    let receivers = [r1, r2, r3, r4];
    let mut h = ZoneHierarchyBuilder::new(members.len());
    let root = h.root(&members);
    let zone = h.child(root, &receivers).expect("receiver zone nests");
    let hier = Arc::new(h.build().expect("valid hierarchy"));

    let down_at = SimTime::from_secs(8);
    let up_at = SimTime::from_secs(30);
    let mut builder: EngineBuilder<SessionWire> = EngineBuilder::new(topo, 5);
    builder.fault_plan(FaultPlan::new().link_flap(flappy, down_at, up_at));
    let channels: Arc<Vec<ChannelId>> = Arc::new(
        hier.zones()
            .iter()
            .map(|z| builder.add_channel(&z.members))
            .collect(),
    );
    let root_channel = channels[root.idx()];
    let seeding = ZcrSeeding::Designed(vec![src, r1]);
    for member in members {
        let core = SessionCore::new(
            member,
            Arc::clone(&hier),
            SessionConfig::default(),
            &seeding,
        );
        builder.add_agent_at(
            member,
            Box::new(SessionAgent::new(
                core,
                Arc::clone(&channels),
                root_channel,
                ProbePlan::default(),
            )),
            SimTime::from_secs(1),
        );
    }
    let mut engine = builder.build();

    let view = |engine: &Engine<SessionWire>, node: NodeId| {
        engine
            .agent::<SessionAgent>(node)
            .expect("agent")
            .core()
            .zcr_of(zone)
    };

    engine.advance(RunSpec::to(SimTime::from_secs(7)));
    println!(
        "t=7s   (link up): zone members see ZCR = {:?}",
        view(&engine, r2)
    );
    for r in receivers {
        assert_eq!(view(&engine, r), Some(r1), "designed ZCR in office");
    }

    println!("t=8s   link r1-r2 goes down: r1 is cut off from its zone");
    engine.advance(RunSpec::to(SimTime::from_secs(29)));
    println!(
        "t=29s  (partitioned): orphaned members see ZCR = {:?}, r1 still sees {:?}",
        view(&engine, r3),
        view(&engine, r1)
    );
    for r in [r2, r3, r4] {
        assert_eq!(
            view(&engine, r),
            Some(r2),
            "orphaned members elect the bypass owner (closest to the parent)"
        );
    }
    assert_eq!(
        view(&engine, r1),
        Some(r1),
        "r1 keeps serving its side of the partition"
    );

    println!("t=30s  link r1-r2 heals: two sitting ZCRs must reconcile");
    engine.advance(RunSpec::to(SimTime::from_secs(60)));
    println!(
        "t=60s  (healed): zone members see ZCR = {:?}",
        view(&engine, r2)
    );
    for r in receivers {
        assert_eq!(
            view(&engine, r),
            Some(r1),
            "closer original reasserts after the heal; stand-in concedes"
        );
    }
    println!("failover and fail-back complete: {r2} covered the partition, {r1} resumed");
}
