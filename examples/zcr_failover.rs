//! ZCR failure and recovery (paper §5.2's robustness claim): "the ZCR
//! challenge phase … provides a means for the receivers within a zone to
//! elect a new ZCR, should the old ZCR leave the session."
//!
//! A custom agent wraps [`SessionCore`] and simply goes silent at a
//! configured time — modelling a crashed dedicated cache.  The remaining
//! zone members notice the silence through their liveness windows, issue
//! their own challenges, and elect the next-closest receiver.
//!
//! Run: `cargo run --release --example zcr_failover`

use sharqfec_repro::netsim::prelude::*;
use sharqfec_repro::scoping::ZoneId;
use sharqfec_repro::session::core::{is_session_token, SessionCore, SessionCtx, ZcrSeeding};
use sharqfec_repro::session::{SessionConfig, SessionMsg, SessionWire};
use sharqfec_repro::topology::chain;
use std::rc::Rc;

/// A session agent that dies (goes permanently silent) at `die_at`.
struct MortalAgent {
    core: SessionCore,
    channels: Rc<Vec<ChannelId>>,
    die_at: Option<SimTime>,
    dead: bool,
}

struct Bridge<'a, 'b> {
    ctx: &'a mut Ctx<'b, SessionWire>,
    channels: &'a [ChannelId],
}
impl SessionCtx for Bridge<'_, '_> {
    fn now(&self) -> SimTime {
        self.ctx.now()
    }
    fn rng(&mut self) -> &mut SimRng {
        self.ctx.rng()
    }
    fn send(&mut self, zone: ZoneId, msg: SessionMsg, bytes: u32) {
        self.ctx
            .multicast(self.channels[zone.idx()], SessionWire(msg), bytes);
    }
    fn set_timer(&mut self, delay: SimDuration, token: u64) -> TimerId {
        self.ctx.set_timer(delay, token)
    }
    fn cancel_timer(&mut self, id: TimerId) {
        self.ctx.cancel_timer(id);
    }
}

impl MortalAgent {
    fn alive(&mut self, now: SimTime) -> bool {
        if let Some(t) = self.die_at {
            if now >= t {
                self.dead = true;
            }
        }
        !self.dead
    }
}

impl Agent<SessionWire> for MortalAgent {
    fn on_start(&mut self, ctx: &mut Ctx<'_, SessionWire>) {
        let mut b = Bridge {
            ctx,
            channels: &self.channels,
        };
        self.core.start(&mut b);
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_, SessionWire>, token: u64) {
        if !self.alive(ctx.now()) || !is_session_token(token) {
            return;
        }
        let mut b = Bridge {
            ctx,
            channels: &self.channels,
        };
        self.core.on_timer(&mut b, token);
    }
    fn on_packet(&mut self, ctx: &mut Ctx<'_, SessionWire>, pkt: &Packet<SessionWire>) {
        if !self.alive(ctx.now()) {
            return;
        }
        let mut b = Bridge {
            ctx,
            channels: &self.channels,
        };
        self.core.on_msg(&mut b, pkt.src, &pkt.payload.0);
    }
}

fn main() {
    // Chain: src - r1 - r2 - r3 - r4.  r1 is the designed ZCR; it dies at
    // t = 8 s and r2 (the next-closest) must take over.
    let built = chain(5);
    let hier = Rc::new(built.hierarchy.clone());
    let mut engine: Engine<SessionWire> = Engine::new(built.topology.clone(), 5);
    let channels: Rc<Vec<ChannelId>> = Rc::new(
        hier.zones()
            .iter()
            .map(|z| engine.add_channel(&z.members))
            .collect(),
    );
    let seeding = ZcrSeeding::Designed(built.designed_zcrs.clone());
    let doomed = built.receivers[0];
    let heir = built.receivers[1];
    for member in built.members() {
        let core = SessionCore::new(member, Rc::clone(&hier), SessionConfig::default(), &seeding);
        let die_at = (member == doomed).then(|| SimTime::from_secs(8));
        engine.set_agent_with_start(
            member,
            Box::new(MortalAgent {
                core,
                channels: Rc::clone(&channels),
                die_at,
                dead: false,
            }),
            SimTime::from_secs(1),
        );
    }

    let zone = built.hierarchy.smallest_zone(heir);
    let view = |engine: &Engine<SessionWire>, node: NodeId| {
        engine
            .agent::<MortalAgent>(node)
            .expect("agent")
            .core
            .zcr_of(zone)
    };

    engine.run_until(SimTime::from_secs(7));
    println!(
        "t=7s   (before failure): survivors see ZCR = {:?}",
        view(&engine, heir)
    );
    for &r in &built.receivers[1..] {
        assert_eq!(view(&engine, r), Some(doomed), "designed ZCR in office");
    }

    println!("t=8s   ZCR {doomed} crashes (goes silent)");
    engine.run_until(SimTime::from_secs(25));
    println!(
        "t=25s  (after liveness window + challenge): survivors see ZCR = {:?}",
        view(&engine, heir)
    );
    for &r in &built.receivers[1..] {
        assert_eq!(
            view(&engine, r),
            Some(heir),
            "receiver {r} should have adopted the next-closest receiver"
        );
    }
    println!("failover complete: {heir} (next-closest to the source) took over");
}
