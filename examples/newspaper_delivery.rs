//! The paper's motivating application: delivering "a large newspaper to a
//! million subscribers" — here, a real byte object pushed through the
//! simulated lossy multicast network and reassembled at every receiver.
//!
//! The simulator models packets abstractly as (group, index) pairs; this
//! example closes the loop with the real codec:
//!
//! 1. encode the newspaper with [`GroupEncoder`] (k = 16, 1000 B packets,
//!    generous FEC headroom);
//! 2. run full SHARQFEC over the Figure 10 network and record *which*
//!    packet indices each receiver ended up holding;
//! 3. feed exactly those shards into a per-receiver [`GroupDecoder`] and
//!    byte-compare the reassembled object.
//!
//! Run: `cargo run --release --example newspaper_delivery`

use sharqfec_repro::fec::group::{GroupDecoder, GroupEncoder};
use sharqfec_repro::netsim::{RunSpec, SimTime};
use sharqfec_repro::protocol::{setup_sharqfec_sim, SfAgent, SharqfecConfig};
use sharqfec_repro::topology::{figure10, Figure10Params};

/// The wire shape shared by the simulation and the codec.
const K: u32 = 16;
const PAYLOAD: usize = 1000;
/// FEC headroom per group: enough that every repair index the protocol
/// allocates maps to a real parity shard.
const HEADROOM: usize = 64;

fn main() {
    // --- the newspaper: ~300 KB of generated prose -----------------------
    let newspaper: Vec<u8> = (0..300_000u32)
        .map(|i| b'A' + (i.wrapping_mul(2_654_435_761) % 26) as u8)
        .collect();
    let enc = GroupEncoder::new(K as usize, HEADROOM, PAYLOAD).expect("codec shape");
    let n_groups = enc.groups_for(newspaper.len());
    let encoded = enc.encode_object(&newspaper).expect("encode");
    println!(
        "newspaper: {} bytes -> {} groups of {K} x {PAYLOAD} B packets",
        newspaper.len(),
        n_groups
    );

    // --- the delivery: full SHARQFEC over the Figure 10 network ----------
    let built = figure10(&Figure10Params::default());
    let total_packets = (n_groups as u32) * K;
    let cfg = SharqfecConfig {
        total_packets,
        packet_bytes: PAYLOAD as u32,
        ..SharqfecConfig::full()
    };
    let stream_secs = (total_packets as u64) / 100 + 1;
    let mut engine = setup_sharqfec_sim(&built, 2026, cfg, SimTime::from_secs(1));
    engine.advance(RunSpec::to(SimTime::from_secs(6 + stream_secs + 60)));

    // --- reassembly at every receiver -------------------------------------
    let mut reconstructed = 0usize;
    let mut worst_fec_used = 0usize;
    for &r in &built.receivers {
        let agent = engine.agent::<SfAgent>(r).expect("receiver");
        assert!(
            agent.complete(),
            "receiver {r} still missing {} packets",
            agent.missing()
        );
        let mut dec = GroupDecoder::new(K as usize, HEADROOM, PAYLOAD, n_groups).expect("decoder");
        for g in 0..n_groups as u32 {
            let mut fed = 0;
            for idx in agent.held_indices(g) {
                let idx = idx as usize;
                // Simulated index -> real shard: data (idx < k) from the
                // encoded group, FEC (idx >= k) from its parity table.
                let shard: &[u8] = if idx < K as usize {
                    &encoded[g as usize].data[idx]
                } else {
                    let f = idx - K as usize;
                    assert!(
                        f < HEADROOM,
                        "protocol allocated FEC index {idx} beyond headroom"
                    );
                    worst_fec_used = worst_fec_used.max(f + 1);
                    &encoded[g as usize].parity[f]
                };
                dec.push(g as u64, idx, shard).expect("feed shard");
                fed += 1;
                if fed >= K {
                    break; // any k suffice
                }
            }
        }
        let out = dec.finish().expect("reassemble");
        assert_eq!(out, newspaper, "receiver {r} reassembled different bytes");
        reconstructed += 1;
    }
    println!("all {reconstructed} receivers reassembled the newspaper byte-for-byte");
    println!("deepest FEC index used anywhere: {worst_fec_used} (headroom {HEADROOM})");
    let repairs = engine
        .recorder()
        .transmissions
        .iter()
        .filter(|t| t.class == sharqfec_repro::netsim::TrafficClass::Repair)
        .count();
    println!(
        "repair packets across the whole session: {repairs} ({:.2} per group per zone on average)",
        repairs as f64 / n_groups as f64 / 29.0
    );
}
