//! Quickstart: the two faces of SHARQFEC in ~80 lines.
//!
//! 1. The erasure codec on real bytes — encode a message into a packet
//!    group, lose some packets, reconstruct.
//! 2. The full protocol on a simulated lossy network — every receiver
//!    recovers every packet while NACK counts stay tiny.
//!
//! Run: `cargo run --release --example quickstart`

use sharqfec_repro::fec::codec::{DecodeScratch, GroupCodec};
use sharqfec_repro::netsim::{RunSpec, SimTime, TrafficClass};
use sharqfec_repro::protocol::{setup_sharqfec_sim, SfAgent, SharqfecConfig};
use sharqfec_repro::topology::{figure10, Figure10Params};

fn codec_demo() {
    println!("-- 1. erasure codec ------------------------------------------");
    // The paper's group shape: k = 16 data packets; here 4 FEC packets.
    let codec = GroupCodec::new(16, 4).expect("valid shape");
    let message = b"SHARQFEC groups data packets so that ANY k of k+h reconstruct!";
    // Split the message into 16 shards of 4 bytes (padded).
    let mut shards: Vec<Vec<u8>> = message.chunks(4).map(|c| c.to_vec()).collect();
    shards.resize(16, vec![0; 4]);
    for s in &mut shards {
        s.resize(4, 0);
    }
    let refs: Vec<&[u8]> = shards.iter().map(|s| s.as_slice()).collect();
    // Parity goes into caller-owned buffers (reused across groups in a
    // real sender); decoding reuses a scratch workspace the same way.
    let mut parity = vec![vec![0u8; 4]; 4];
    {
        let mut bufs: Vec<&mut [u8]> = parity.iter_mut().map(|v| v.as_mut_slice()).collect();
        codec.encode_into(&refs, &mut bufs).expect("encode");
    }

    // Disaster: packets 0, 5, 9 and 13 are lost in transit.
    let lost = [0usize, 5, 9, 13];
    println!("   lost packets {lost:?}; repairing with 4 FEC packets");
    let received: Vec<(usize, &[u8])> = (0..16)
        .filter(|i| !lost.contains(i))
        .map(|i| (i, refs[i]))
        .chain((0..4).map(|j| (16 + j, parity[j].as_slice())))
        .collect();
    let mut scratch = DecodeScratch::default();
    let recovered = codec
        .decode(&received, &mut scratch)
        .expect("any 16 of 20 suffice");
    // The recovered shards are already flat in index order.
    let flat = recovered.flat();
    assert_eq!(&flat[..message.len()], message);
    println!(
        "   reconstructed: {:?}",
        String::from_utf8_lossy(&flat[..message.len()])
    );
}

fn protocol_demo() {
    println!("-- 2. protocol on the paper's lossy network ------------------");
    // The Figure 10 network: 112 receivers, leaf losses 13–28%.
    let built = figure10(&Figure10Params::default());
    let cfg = SharqfecConfig {
        total_packets: 128, // 8 groups of 16 (paper runs 1024)
        ..SharqfecConfig::full()
    };
    let mut engine = setup_sharqfec_sim(&built, 7, cfg, SimTime::from_secs(1));
    engine.advance(RunSpec::to(SimTime::from_secs(60)));

    let missing: u32 = built
        .receivers
        .iter()
        .map(|&r| engine.agent::<SfAgent>(r).expect("receiver").missing())
        .sum();
    let rec = engine.recorder();
    let count = |class| {
        rec.transmissions
            .iter()
            .filter(|t| t.class == class)
            .count()
    };
    println!("   112 receivers, 128 packets each under 13-28% loss");
    println!("   drops on links : {}", rec.drops.len());
    println!("   repairs sent   : {}", count(TrafficClass::Repair));
    println!("   NACKs sent     : {}", count(TrafficClass::Nack));
    println!("   packets missing: {missing}");
    assert_eq!(missing, 0, "SHARQFEC must deliver reliably");
    println!("   every receiver reconstructed every group ✓");
}

fn main() {
    codec_demo();
    println!();
    protocol_demo();
}
