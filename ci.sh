#!/usr/bin/env bash
# Repository CI gate: formatting, lints, and the full test suite.
# Run from the repo root: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --workspace --all-targets (examples, benches, bins link)"
cargo build --workspace --all-targets

echo "==> cargo doc --workspace --no-deps (warnings denied)"
# The vendored proptest/criterion stand-ins are exempt: their doc comments
# mirror the upstream crates' wording, ambiguous intra-doc links included.
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet \
  --exclude proptest --exclude criterion

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> invariant auditor over the seed-42 sweep grids"
# Each bin attaches the run-attached auditor to every cell and exits
# non-zero if any protocol invariant is violated; summaries (with
# audit_events / audit_violations per cell) land in results/*.json.
cargo build --release -p sharqfec-bench --bins --quiet
./target/release/fault_sweep --seed 42 > /dev/null
./target/release/ablation_sweep --seed 42 > /dev/null
./target/release/fig14_21_traffic --seed 42 --packets 128 > /dev/null

echo "==> injection-policy ablation grid + schema/pin check"
# The policy sweep's gate also pins the EwmaPolicy arm bit-identical to
# the ablation sweep's historical baseline and requires the optimizing
# policy to beat the EWMA's repair bill on the long-burst cells.
./target/release/policy_sweep --seed 42 > /dev/null
./target/release/policy_sweep --check results/BENCH_policy_sweep.json

echo "==> microbench smoke + JSON schema check"
# The smoke profile writes to a scratch directory so the committed
# full-run baseline in results/BENCH_microbench.json is never clobbered.
mkdir -p target/tmp/bench_ci
./target/release/microbench --smoke --out target/tmp/bench_ci > /dev/null
./target/release/microbench --check target/tmp/bench_ci/BENCH_microbench.json
./target/release/microbench --check results/BENCH_microbench.json

echo "==> scaling sweep smoke (10^2/10^3) + crossover check"
# The smoke grid re-measures the SHARQFEC-vs-SRM session crossover at
# CI-sized memberships; the committed full run (through 10^5) carries
# the exponent fit and the state-growth assertions.
./target/release/scale_sweep --smoke --out target/tmp/bench_ci > /dev/null
./target/release/scale_sweep --check target/tmp/bench_ci/BENCH_scale_sweep.json
./target/release/scale_sweep --check results/BENCH_scale_sweep.json

echo "==> workload-scenario sweep smoke + committed-grid check"
# Flash crowds, churn, and regional outages compiled through the
# scenario DSL, every cell audited: the smoke grid runs fresh, the
# committed full grid (with the 10^4-receiver flash-crowd cell) is
# schema- and invariant-checked.
./target/release/scenario_sweep --smoke --out target/tmp/bench_ci > /dev/null
./target/release/scenario_sweep --check target/tmp/bench_ci/BENCH_scenario_sweep.json
./target/release/scenario_sweep --check results/BENCH_scenario_sweep.json

echo "==> sharded engine determinism gate (--shards 4 vs serial)"
# The conservative-PDES shard path must be bit-identical to the serial
# engine: rerun the smoke grid at 4 shards and diff the summaries after
# stripping the fields that legitimately differ (wall clock, thread and
# shard counts, machine-dependent throughput).
mkdir -p target/tmp/bench_ci_sharded
./target/release/scale_sweep --smoke --shards 4 --out target/tmp/bench_ci_sharded > /dev/null
./target/release/scenario_sweep --smoke --shards 4 --out target/tmp/bench_ci_sharded > /dev/null
strip_timing() {
  sed -E 's/"(wall_ms|threads|shards|events_per_sec)": [0-9.eE+-]+/"\1": _/g' "$1"
}
diff <(strip_timing target/tmp/bench_ci/BENCH_scale_sweep.json) \
     <(strip_timing target/tmp/bench_ci_sharded/BENCH_scale_sweep.json)
diff <(strip_timing target/tmp/bench_ci/BENCH_scenario_sweep.json) \
     <(strip_timing target/tmp/bench_ci_sharded/BENCH_scenario_sweep.json)

echo "CI OK"
