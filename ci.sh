#!/usr/bin/env bash
# Repository CI gate: formatting, lints, and the full test suite.
# Run from the repo root: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --workspace --all-targets (examples, benches, bins link)"
cargo build --workspace --all-targets

echo "==> cargo doc --workspace --no-deps (warnings denied)"
# The vendored proptest/criterion stand-ins are exempt: their doc comments
# mirror the upstream crates' wording, ambiguous intra-doc links included.
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet \
  --exclude proptest --exclude criterion

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "CI OK"
