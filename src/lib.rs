//! # SHARQFEC — a reproduction of Kermode, SIGCOMM '98
//!
//! *Scoped Hybrid Automatic Repeat reQuest with Forward Error Correction*:
//! reliable multicast that localizes repair and session traffic with a
//! hierarchy of administratively scoped zones.
//!
//! This umbrella crate re-exports the whole workspace; see the individual
//! crates for the deep documentation:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`protocol`] | `sharqfec` | the SHARQFEC protocol and its §6.2 ablation ladder |
//! | [`session`] | `sharqfec-session` | scoped session management, indirect RTT, ZCR election |
//! | [`srm`] | `sharqfec-srm` | the SRM baseline (Floyd et al. '95) |
//! | [`fec`] | `sharqfec-fec` | the Reed–Solomon erasure codec |
//! | [`gf256`] | `sharqfec-gf256` | GF(2⁸) arithmetic |
//! | [`netsim`] | `sharqfec-netsim` | the deterministic discrete-event simulator |
//! | [`topology`] | `sharqfec-topology` | evaluation networks (paper Figure 10 et al.) |
//! | [`scoping`] | `sharqfec-scoping` | nested administrative zones |
//! | [`analysis`] | `sharqfec-analysis` | figure binning and the analytic models |
//!
//! ## Quickstart
//!
//! ```
//! use sharqfec_repro::protocol::{setup_sharqfec_sim, SfAgent, SharqfecConfig};
//! use sharqfec_repro::netsim::{RunSpec, SimTime};
//! use sharqfec_repro::topology::{figure10, Figure10Params};
//!
//! let built = figure10(&Figure10Params::default());
//! let cfg = SharqfecConfig {
//!     total_packets: 32,
//!     ..SharqfecConfig::full()
//! };
//! let mut engine = setup_sharqfec_sim(&built, 42, cfg, SimTime::from_secs(1));
//! engine.advance(RunSpec::to(SimTime::from_secs(60)));
//! for &r in &built.receivers {
//!     assert!(engine.agent::<SfAgent>(r).unwrap().complete());
//! }
//! ```
//!
//! The examples (`cargo run --example …`) walk through the paper's
//! motivating scenarios, and `cargo run -p sharqfec-bench --bin …`
//! regenerates every table and figure (see `DESIGN.md` and
//! `EXPERIMENTS.md`).

#![forbid(unsafe_code)]

/// The SHARQFEC protocol (the paper's contribution).
pub use sharqfec as protocol;

/// Measurement analysis and the paper's analytic models.
pub use sharqfec_analysis as analysis;

/// The Reed–Solomon erasure codec.
pub use sharqfec_fec as fec;

/// GF(2⁸) arithmetic.
pub use sharqfec_gf256 as gf256;

/// The deterministic discrete-event network simulator.
pub use sharqfec_netsim as netsim;

/// Nested administratively scoped zones.
pub use sharqfec_scoping as scoping;

/// Scoped session management and ZCR election.
pub use sharqfec_session as session;

/// The SRM baseline protocol.
pub use sharqfec_srm as srm;

/// Evaluation topologies.
pub use sharqfec_topology as topology;
