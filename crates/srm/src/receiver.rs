//! The SRM receiver: gap detection, suppressed requests, peer repairs.

use crate::config::SrmConfig;
use crate::msg::SrmMsg;
use crate::timers::AdaptiveParams;
use sharqfec_netsim::prelude::*;
use std::collections::HashMap;

const TOK_REQ_BASE: u64 = 1 << 32;
const TOK_REP_BASE: u64 = 2 << 32;
const TOK_AUDIT: u64 = 3 << 32;
const TOK_ANNOUNCE: u64 = 4 << 32;

/// Backoff exponent cap: 2^7 × window tops out around tens of seconds on
/// the paper topology, keeping the repair tail finite within a simulation
/// horizon while still backing off aggressively.
const MAX_BACKOFF: u32 = 7;

#[derive(Debug)]
struct ReqState {
    timer: TimerId,
    /// Backoff exponent `i` in `2^i · [C1·d, (C1+C2)·d]`.
    i: u32,
    /// When the loss was first detected (for delay adaptation).
    detected_at: SimTime,
    /// Whether an overheard duplicate request already backed this timer
    /// off in the current round.  SRM backs off *once* per round — a
    /// shared upstream loss makes all ~n receivers request, and bumping
    /// `i` per overheard duplicate would instantly push the timer out by
    /// 2^n and deadlock recovery.
    backed_off: bool,
}

#[derive(Debug)]
struct RepState {
    timer: TimerId,
    d_ab: SimDuration,
}

/// SRM receiver agent.
pub struct SrmReceiver {
    cfg: SrmConfig,
    chan: ChannelId,
    source: NodeId,
    received: Vec<bool>,
    received_count: u32,
    /// Highest sequence number known to exist (from data, repairs, or
    /// others' requests); `None` before anything is heard.
    max_seen: Option<u32>,
    requests: HashMap<u32, ReqState>,
    repairs: HashMap<u32, RepState>,
    holdoff: HashMap<u32, SimTime>,
    req_params: AdaptiveParams,
    rep_params: AdaptiveParams,
    /// Session-layer peer table: every announcer heard, with the time it
    /// was last heard.  Because announcements are globally scoped this
    /// grows O(n) with session size — the state SRM's session protocol
    /// fundamentally requires and the scale sweep measures.
    session_peers: HashMap<NodeId, SimTime>,
    /// Which announce rotation round comes next (see
    /// `SrmConfig::announce_stride`).
    announce_round: u64,
    /// Requests this receiver transmitted (for diagnostics).
    pub requests_sent: u32,
    /// Repairs this receiver transmitted.
    pub repairs_sent: u32,
    /// Session announcements this receiver transmitted.
    pub announces_sent: u32,
}

impl SrmReceiver {
    /// Creates a receiver expecting `cfg.total_packets` packets from
    /// `source`.
    pub fn new(cfg: SrmConfig, chan: ChannelId, source: NodeId) -> SrmReceiver {
        let req_params = AdaptiveParams::new(cfg.c1, cfg.c2, cfg.adaptive);
        let rep_params = AdaptiveParams::new(cfg.d1, cfg.d2, cfg.adaptive);
        SrmReceiver {
            received: vec![false; cfg.total_packets as usize],
            cfg,
            chan,
            source,
            received_count: 0,
            max_seen: None,
            requests: HashMap::new(),
            repairs: HashMap::new(),
            holdoff: HashMap::new(),
            req_params,
            rep_params,
            session_peers: HashMap::new(),
            announce_round: 0,
            requests_sent: 0,
            repairs_sent: 0,
            announces_sent: 0,
        }
    }

    /// Whether every packet has been received or repaired.
    pub fn complete(&self) -> bool {
        self.received_count == self.cfg.total_packets
    }

    /// Number of packets still missing.
    pub fn missing(&self) -> u32 {
        self.cfg.total_packets - self.received_count
    }

    /// Distinct peers heard via session announcements.
    pub fn session_peer_count(&self) -> usize {
        self.session_peers.len()
    }

    /// Resident bytes of the session-layer peer table — the O(n) share of
    /// this receiver's state (zero while the layer is off).
    pub fn session_bytes(&self) -> usize {
        use std::mem::size_of;
        self.session_peers.capacity()
            * (size_of::<NodeId>() + size_of::<SimTime>() + size_of::<u64>())
    }

    /// When the session layer stops announcing: the same deadline the
    /// tail-loss audit uses, so a quiescent run still terminates.
    fn stream_end(&self) -> SimTime {
        self.cfg.data_start
            + self.cfg.send_interval * self.cfg.total_packets as u64
            + self.cfg.send_interval.mul_f64(self.cfg.audit_factor)
    }

    fn d_sa(&self, ctx: &Ctx<'_, SrmMsg>) -> SimDuration {
        ctx.one_way(self.source)
    }

    fn request_delay(&mut self, ctx: &mut Ctx<'_, SrmMsg>, i: u32) -> SimDuration {
        let d = self.d_sa(ctx);
        let factor = ctx.rng().range_f64(
            self.req_params.lo(),
            self.req_params.lo() + self.req_params.width(),
        );
        d.mul_f64(factor) * (1u64 << i.min(MAX_BACKOFF))
    }

    /// Starts the request timer for a newly detected loss.
    fn detect_loss(&mut self, ctx: &mut Ctx<'_, SrmMsg>, seq: u32) {
        if self.received[seq as usize] || self.requests.contains_key(&seq) {
            return;
        }
        let delay = self.request_delay(ctx, 0);
        let timer = ctx.set_timer(delay, TOK_REQ_BASE | seq as u64);
        self.requests.insert(
            seq,
            ReqState {
                timer,
                i: 0,
                detected_at: ctx.now(),
                backed_off: false,
            },
        );
    }

    /// Notes that `upto` exists, detecting any gaps below it.
    fn note_exists(&mut self, ctx: &mut Ctx<'_, SrmMsg>, upto: u32) {
        let start = match self.max_seen {
            Some(m) if m >= upto => return,
            Some(m) => m + 1,
            None => 0,
        };
        self.max_seen = Some(upto);
        for seq in start..=upto {
            if !self.received[seq as usize] {
                self.detect_loss(ctx, seq);
            }
        }
    }

    /// Marks a packet as held (data or cached repair).
    fn accept(&mut self, ctx: &mut Ctx<'_, SrmMsg>, seq: u32) {
        if seq >= self.cfg.total_packets {
            return; // defensive: stray sequence number
        }
        self.note_exists(ctx, seq);
        if !self.received[seq as usize] {
            self.received[seq as usize] = true;
            self.received_count += 1;
        }
        // Recovery round ends for this packet.
        if let Some(req) = self.requests.remove(&seq) {
            ctx.cancel_timer(req.timer);
            let waited = ctx.now().saturating_since(req.detected_at).as_secs_f64();
            let d = self.d_sa(ctx).as_secs_f64().max(1e-9);
            self.req_params.end_round(waited / d);
            ctx.probe(ProbeEvent::Window {
                lo: self.req_params.lo(),
                width: self.req_params.width(),
                ave_dup: self.req_params.ave_dup(),
                ave_delay: self.req_params.ave_delay(),
            });
        }
    }

    fn schedule_repair(&mut self, ctx: &mut Ctx<'_, SrmMsg>, seq: u32, requester: NodeId) {
        if self.repairs.contains_key(&seq) {
            self.rep_params.saw_duplicate();
            return;
        }
        if let Some(&until) = self.holdoff.get(&seq) {
            if ctx.now() < until {
                return;
            }
        }
        let d_ab = ctx.one_way(requester);
        let factor = ctx.rng().range_f64(
            self.rep_params.lo(),
            self.rep_params.lo() + self.rep_params.width(),
        );
        let timer = ctx.set_timer(d_ab.mul_f64(factor), TOK_REP_BASE | seq as u64);
        self.repairs.insert(seq, RepState { timer, d_ab });
    }
}

impl Agent<SrmMsg> for SrmReceiver {
    fn state_bytes(&self) -> usize {
        use std::mem::size_of;
        let map = |cap: usize, v: usize| cap * (size_of::<u32>() + v + size_of::<u64>());
        size_of::<SrmReceiver>()
            + self.received.capacity() * size_of::<bool>()
            + map(self.requests.capacity(), size_of::<ReqState>())
            + map(self.repairs.capacity(), size_of::<RepState>())
            + map(self.holdoff.capacity(), size_of::<SimTime>())
            + self.session_bytes()
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_, SrmMsg>) {
        // Audit for tail losses after the stream should have ended: the
        // receiver knows the advertised stream length and rate, mirroring
        // SHARQFEC's use of the advertised channel bandwidth for its LDP
        // estimate.
        let delay = self.stream_end().saturating_since(ctx.now());
        ctx.set_timer(delay, TOK_AUDIT);
        if let Some(iv) = self.cfg.session_announce {
            // Desynchronise announcers with a uniform phase so a round is
            // spread over the interval rather than bursting at one instant.
            let phase = iv.mul_f64(ctx.rng().range_f64(0.0, 1.0));
            ctx.set_timer(phase, TOK_ANNOUNCE);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, SrmMsg>, token: u64) {
        if token == TOK_ANNOUNCE {
            // Must be matched exactly, before the masked request/repair
            // dispatch below misreads its high bits.
            let Some(iv) = self.cfg.session_announce else {
                return;
            };
            let stride = self.cfg.announce_stride;
            if (u64::from(ctx.node().0) + self.announce_round).is_multiple_of(stride) {
                ctx.multicast(self.chan, SrmMsg::Announce, self.cfg.announce_bytes);
                self.announces_sent += 1;
            }
            self.announce_round += 1;
            // Announce for the life of the stream, then stop so quiescent
            // runs still drain their event queues.
            if ctx.now() < self.stream_end() {
                ctx.set_timer(iv, TOK_ANNOUNCE);
            }
            return;
        }
        if token == TOK_AUDIT {
            if !self.complete() {
                // Anything never even heard of is a tail loss.
                let last = self.cfg.total_packets - 1;
                self.note_exists(ctx, last);
                ctx.set_timer(
                    self.cfg.send_interval.mul_f64(self.cfg.audit_factor),
                    TOK_AUDIT,
                );
            }
            return;
        }
        let seq = (token & 0xFFFF_FFFF) as u32;
        if token & TOK_REP_BASE != 0 && token < TOK_AUDIT {
            // Repair timer fired: transmit if still unsuppressed.
            if let Some(rep) = self.repairs.remove(&seq) {
                ctx.multicast(self.chan, SrmMsg::Repair { seq }, self.cfg.packet_bytes);
                self.repairs_sent += 1;
                self.holdoff.insert(
                    seq,
                    ctx.now() + rep.d_ab.mul_f64(self.cfg.repair_holdoff_factor),
                );
                self.rep_params.end_round(1.0);
            }
            return;
        }
        // Request timer fired.
        if self.received[seq as usize] {
            self.requests.remove(&seq);
            return;
        }
        let Some(i) = self.requests.get(&seq).map(|r| r.i) else {
            return;
        };
        ctx.multicast(self.chan, SrmMsg::Request { seq }, self.cfg.request_bytes);
        self.requests_sent += 1;
        // SRM has one flat scope and no ZLC; `group` carries the sequence
        // number and the counts carry what the protocol actually tracks.
        ctx.probe(ProbeEvent::Nack {
            group: seq,
            level: 0,
            outcome: NackOutcome::Sent,
            llc: self.missing(),
            zlc: 0,
        });
        // Back off and wait for the repair; re-request if it never comes.
        // A fresh round starts: overheard duplicates may back it off once.
        let new_i = (i + 1).min(MAX_BACKOFF);
        let delay = self.request_delay(ctx, new_i);
        let timer = ctx.set_timer(delay, TOK_REQ_BASE | seq as u64);
        let req = self.requests.get_mut(&seq).expect("still present");
        req.i = new_i;
        req.timer = timer;
        req.backed_off = false;
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_, SrmMsg>, pkt: &Packet<SrmMsg>) {
        match pkt.payload {
            SrmMsg::Data { seq } => self.accept(ctx, seq),
            SrmMsg::Repair { seq } => {
                // Cache the repair and suppress our own pending one.
                if let Some(rep) = self.repairs.remove(&seq) {
                    ctx.cancel_timer(rep.timer);
                    self.holdoff.insert(
                        seq,
                        ctx.now() + rep.d_ab.mul_f64(self.cfg.repair_holdoff_factor),
                    );
                    self.rep_params.saw_duplicate();
                    self.rep_params.end_round(1.0);
                }
                self.accept(ctx, seq);
            }
            SrmMsg::Request { seq } => {
                if seq >= self.cfg.total_packets {
                    return;
                }
                // A request reveals the packet exists.
                self.note_exists(ctx, seq);
                if self.received[seq as usize] {
                    self.schedule_repair(ctx, seq, pkt.src);
                } else if let Some((old_timer, i, backed_off)) = self
                    .requests
                    .get(&seq)
                    .map(|r| (r.timer, r.i, r.backed_off))
                {
                    // Duplicate-request suppression: exponential backoff
                    // and timer reset (SRM §IV) — at most once per round,
                    // or a shared upstream loss heard from ~n peers would
                    // multiply the delay by 2^n and deadlock recovery.
                    self.req_params.saw_duplicate();
                    ctx.probe(ProbeEvent::Nack {
                        group: seq,
                        level: 0,
                        outcome: NackOutcome::SuppressedDuplicate,
                        llc: self.missing(),
                        zlc: 0,
                    });
                    if !backed_off {
                        ctx.cancel_timer(old_timer);
                        let new_i = (i + 1).min(MAX_BACKOFF);
                        let delay = self.request_delay(ctx, new_i);
                        let timer = ctx.set_timer(delay, TOK_REQ_BASE | seq as u64);
                        let req = self.requests.get_mut(&seq).expect("still present");
                        req.i = new_i;
                        req.timer = timer;
                        req.backed_off = true;
                    }
                }
            }
            SrmMsg::Announce => {
                self.session_peers.insert(pkt.src, ctx.now());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn receiver_tracks_completion() {
        let cfg = SrmConfig {
            total_packets: 3,
            ..SrmConfig::default()
        };
        let r = SrmReceiver::new(cfg, ChannelId(0), NodeId(0));
        assert!(!r.complete());
        assert_eq!(r.missing(), 3);
    }
}
