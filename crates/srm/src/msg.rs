//! SRM wire messages.

use sharqfec_netsim::{Classify, TrafficClass};

/// SRM's three packet kinds.  Sequence numbers identify individual
/// packets — SRM repairs *named packets*, unlike SHARQFEC's count-based
/// FEC NACKs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SrmMsg {
    /// Original data packet.
    Data {
        /// Sequence number (0-based).
        seq: u32,
    },
    /// Repair request (NACK) naming a missing packet.
    Request {
        /// The missing packet.
        seq: u32,
    },
    /// Retransmission of a named packet by any member that holds it.
    Repair {
        /// The retransmitted packet.
        seq: u32,
    },
    /// Periodic session announcement (opt-in via
    /// `SrmConfig::session_announce`).  Globally scoped, so every member
    /// hears — and keeps state for — every announcer.
    Announce,
}

impl Classify for SrmMsg {
    fn class(&self) -> TrafficClass {
        match self {
            SrmMsg::Data { .. } => TrafficClass::Data,
            SrmMsg::Request { .. } => TrafficClass::Nack,
            SrmMsg::Repair { .. } => TrafficClass::Repair,
            SrmMsg::Announce => TrafficClass::Session,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_match_kinds() {
        assert_eq!(SrmMsg::Data { seq: 0 }.class(), TrafficClass::Data);
        assert_eq!(SrmMsg::Request { seq: 0 }.class(), TrafficClass::Nack);
        assert_eq!(SrmMsg::Repair { seq: 0 }.class(), TrafficClass::Repair);
        assert_eq!(SrmMsg::Announce.class(), TrafficClass::Session);
    }
}
