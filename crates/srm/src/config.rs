//! SRM configuration.

use sharqfec_netsim::{SimDuration, SimTime};

/// Parameters of an SRM run.  Workload defaults mirror the SHARQFEC
/// paper's §6.2 scenario (1024 × 1000-byte packets at 800 kbit/s from
/// t = 6 s); timer constants are SRM's, with the adaptive algorithm on by
/// default as in the paper's comparison.
#[derive(Clone, Debug)]
pub struct SrmConfig {
    /// Number of data packets in the stream.
    pub total_packets: u32,
    /// Data/repair packet size, bytes.
    pub packet_bytes: u32,
    /// Request (NACK) packet size, bytes.
    pub request_bytes: u32,
    /// Inter-packet interval of the CBR source (10 ms = 800 kbit/s at
    /// 1000 B).
    pub send_interval: SimDuration,
    /// When the source starts transmitting.
    pub data_start: SimTime,
    /// Initial request-timer window factors `[C1·d, (C1+C2)·d]`.
    pub c1: f64,
    /// See [`SrmConfig::c1`].
    pub c2: f64,
    /// Initial repair-timer window factors `[D1·d, (D1+D2)·d]`.
    pub d1: f64,
    /// See [`SrmConfig::d1`].
    pub d2: f64,
    /// Whether the §V adaptive-timer adjustment runs (the paper's
    /// comparison enables it "for best possible performance").
    pub adaptive: bool,
    /// Ignore further requests for a packet for this multiple of `d_SA`
    /// after sending its repair (SRM's repair hold-down).
    pub repair_holdoff_factor: f64,
    /// How often receivers audit for tail losses after the stream should
    /// have ended (as a multiple of `send_interval`).
    pub audit_factor: f64,
    /// Optional session-message layer (SRM's periodic session packets):
    /// every receiver multicasts a globally scoped announcement each
    /// interval, and every receiver records each announcer it hears in a
    /// peer table — the O(n)-per-receiver state and O(n²) session traffic
    /// the scale sweep measures.  `None` (the default) disables the layer
    /// entirely, leaving the paper-scenario runs bit-identical.
    pub session_announce: Option<SimDuration>,
    /// Session announcement packet size, bytes.
    pub announce_bytes: u32,
    /// Announcer rotation stride: in round `r`, only receivers whose
    /// `(node + r) % stride == 0` announce.  `1` (the default) is full
    /// SRM — every member announces every interval.  Large sweep cells use
    /// a constant stride to bound simulated event counts; a stride shared
    /// across cells rescales session traffic by `1/stride` without
    /// changing its growth exponent in `n`.
    pub announce_stride: u64,
}

impl Default for SrmConfig {
    fn default() -> SrmConfig {
        SrmConfig {
            total_packets: 1024,
            packet_bytes: 1000,
            request_bytes: 40,
            send_interval: SimDuration::from_millis(10),
            data_start: SimTime::from_secs(6),
            c1: 2.0,
            c2: 2.0,
            d1: 1.0,
            d2: 1.0,
            adaptive: true,
            repair_holdoff_factor: 3.0,
            audit_factor: 10.0,
            session_announce: None,
            announce_bytes: 40,
            announce_stride: 1,
        }
    }
}

impl SrmConfig {
    /// Validates invariants.
    ///
    /// # Panics
    ///
    /// Panics with a description of the violated invariant.
    pub fn validate(&self) {
        assert!(self.total_packets > 0, "need at least one packet");
        assert!(self.packet_bytes > 0, "packets must have a size");
        assert!(
            self.c1 > 0.0 && self.c2 >= 0.0 && self.d1 > 0.0 && self.d2 >= 0.0,
            "timer window factors must be positive"
        );
        assert!(
            self.send_interval > SimDuration::ZERO,
            "CBR interval must be positive"
        );
        if let Some(iv) = self.session_announce {
            assert!(iv > SimDuration::ZERO, "announce interval must be positive");
            assert!(self.announce_bytes > 0, "announcements must have a size");
            assert!(self.announce_stride > 0, "announce stride must be positive");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_workload() {
        let c = SrmConfig::default();
        c.validate();
        assert_eq!(c.total_packets, 1024);
        assert_eq!(c.packet_bytes, 1000);
        assert_eq!(c.send_interval, SimDuration::from_millis(10));
        assert_eq!(c.data_start, SimTime::from_secs(6));
        assert!(c.adaptive);
        assert!(c.session_announce.is_none(), "session layer is opt-in");
    }

    #[test]
    #[should_panic(expected = "announce stride must be positive")]
    fn zero_stride_rejected_when_session_layer_on() {
        SrmConfig {
            session_announce: Some(SimDuration::from_millis(500)),
            announce_stride: 0,
            ..SrmConfig::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "at least one packet")]
    fn zero_packets_rejected() {
        SrmConfig {
            total_packets: 0,
            ..SrmConfig::default()
        }
        .validate();
    }
}
