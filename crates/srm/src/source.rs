//! The SRM data source: a CBR sender that also answers requests (it is
//! simply a member that happens to hold every packet).

use crate::config::SrmConfig;
use crate::msg::SrmMsg;
use crate::timers::AdaptiveParams;
use sharqfec_netsim::prelude::*;
use std::collections::HashMap;

const TOK_SEND: u64 = 0;
const TOK_REPAIR_BASE: u64 = 1 << 32;

/// CBR source agent.
pub struct SrmSource {
    cfg: SrmConfig,
    chan: ChannelId,
    next_seq: u32,
    /// Pending repair timers: seq → (timer, requester distance).
    pending: HashMap<u32, (TimerId, SimDuration)>,
    /// Per-seq hold-down after a repair was sent or heard.
    holdoff: HashMap<u32, SimTime>,
    params: AdaptiveParams,
    /// Repairs transmitted (for post-run inspection).
    pub repairs_sent: u32,
}

impl SrmSource {
    /// Creates the source.
    pub fn new(cfg: SrmConfig, chan: ChannelId) -> SrmSource {
        let params = AdaptiveParams::new(cfg.d1, cfg.d2, cfg.adaptive);
        SrmSource {
            cfg,
            chan,
            next_seq: 0,
            pending: HashMap::new(),
            holdoff: HashMap::new(),
            params,
            repairs_sent: 0,
        }
    }

    fn schedule_repair(&mut self, ctx: &mut Ctx<'_, SrmMsg>, seq: u32, requester: NodeId) {
        if self.pending.contains_key(&seq) {
            self.params.saw_duplicate();
            return;
        }
        if let Some(&until) = self.holdoff.get(&seq) {
            if ctx.now() < until {
                return;
            }
        }
        let d_ab = ctx.one_way(requester);
        let delay = d_ab.mul_f64(
            ctx.rng()
                .range_f64(self.params.lo(), self.params.lo() + self.params.width()),
        );
        let id = ctx.set_timer(delay, TOK_REPAIR_BASE | seq as u64);
        self.pending.insert(seq, (id, d_ab));
    }
}

impl Agent<SrmMsg> for SrmSource {
    fn state_bytes(&self) -> usize {
        use std::mem::size_of;
        let map = |cap: usize, v: usize| cap * (size_of::<u32>() + v + size_of::<u64>());
        size_of::<SrmSource>()
            + map(self.pending.capacity(), size_of::<(TimerId, SimDuration)>())
            + map(self.holdoff.capacity(), size_of::<SimTime>())
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_, SrmMsg>) {
        let delay = self.cfg.data_start.saturating_since(ctx.now());
        ctx.set_timer(delay, TOK_SEND);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, SrmMsg>, token: u64) {
        if token == TOK_SEND {
            if self.next_seq < self.cfg.total_packets {
                ctx.multicast(
                    self.chan,
                    SrmMsg::Data { seq: self.next_seq },
                    self.cfg.packet_bytes,
                );
                self.next_seq += 1;
                if self.next_seq < self.cfg.total_packets {
                    ctx.set_timer(self.cfg.send_interval, TOK_SEND);
                }
            }
            return;
        }
        let seq = (token & 0xFFFF_FFFF) as u32;
        if let Some((_, d_ab)) = self.pending.remove(&seq) {
            ctx.multicast(self.chan, SrmMsg::Repair { seq }, self.cfg.packet_bytes);
            self.repairs_sent += 1;
            self.holdoff.insert(
                seq,
                ctx.now() + d_ab.mul_f64(self.cfg.repair_holdoff_factor),
            );
            self.params.end_round(1.0);
        }
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_, SrmMsg>, pkt: &Packet<SrmMsg>) {
        match pkt.payload {
            SrmMsg::Request { seq } => {
                // Only packets already transmitted can be repaired.
                if seq < self.next_seq {
                    self.schedule_repair(ctx, seq, pkt.src);
                }
            }
            SrmMsg::Repair { seq } => {
                // Another member repaired it first: suppress ours.
                if let Some((id, d_ab)) = self.pending.remove(&seq) {
                    ctx.cancel_timer(id);
                    self.holdoff.insert(
                        seq,
                        ctx.now() + d_ab.mul_f64(self.cfg.repair_holdoff_factor),
                    );
                    self.params.saw_duplicate();
                    self.params.end_round(1.0);
                }
            }
            SrmMsg::Data { .. } => {}
            // The source keeps no session peer table; its state is
            // measured by the receivers (see `SrmReceiver`).
            SrmMsg::Announce => {}
        }
    }
}
