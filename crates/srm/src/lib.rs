//! The SRM baseline (Floyd, Jacobson, McCanne, Liu, Zhang — "A Reliable
//! Multicast Framework for Light-weight Sessions and Application Level
//! Framing", SIGCOMM '95).
//!
//! SHARQFEC's §6.2 compares against "an ARQ protocol … SRM was chosen …
//! and its simulation was performed with adaptive timers turned on for
//! best possible performance."  SRM has no canonical open-source Rust
//! implementation, so this crate reconstructs it from the publication:
//!
//! * **Per-packet NACK/repair.**  Receivers detect sequence gaps and
//!   multicast *requests*; any member holding the packet may multicast a
//!   *repair*.  All traffic is global scope — this is precisely the
//!   non-localized behaviour SHARQFEC improves on.
//! * **Suppression timers.**  Request delay uniform on
//!   `2^i · [C1·d_SA, (C1+C2)·d_SA]` (d_SA = one-way delay to the data
//!   source), doubling (`i += 1`) both after sending and when a duplicate
//!   request is overheard.  Repair delay uniform on
//!   `[D1·d_AB, (D1+D2)·d_AB]` (d_AB = one-way delay to the requester),
//!   cancelled when another member's repair is heard.
//! * **Adaptive timers** (the SIGCOMM/ToN paper's §V adjustment): members
//!   track EWMAs of duplicate requests/repairs and of their request/repair
//!   delays, widening the timer window when duplicates are common and
//!   narrowing it when duplicates are rare but delays are long.  Exact
//!   constants follow the published algorithm's structure; see
//!   [`timers::AdaptiveParams`] for the mapping (DESIGN.md §5 records this
//!   baseline as reconstructed-from-paper).
//!
//! RTT estimates come from the simulator's converged-session oracle
//! ([`sharqfec_netsim::routing::DistanceOracle`]) rather than a simulated
//! SRM session protocol — strictly generous to the baseline, which is the
//! conservative direction for comparisons (and the session-traffic
//! comparison is made analytically in `sharqfec-analysis`).
//!
//! For the *measured* session-traffic comparison (the scale sweep), an
//! opt-in session-message layer can be enabled via
//! [`SrmConfig::session_announce`]: every receiver periodically multicasts
//! a globally scoped [`SrmMsg::Announce`] and records each announcer it
//! hears in a peer table.  That reproduces SRM's two scaling liabilities —
//! O(n²) session traffic and O(n) per-receiver state — without altering
//! repair behaviour; the default (`None`) leaves every existing scenario
//! bit-identical.  [`SrmConfig::announce_stride`] rotates announcers to
//! bound simulated event counts at very large n (a stride shared across
//! sweep cells rescales traffic by a constant, leaving the growth exponent
//! intact).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod msg;
pub mod receiver;
pub mod source;
pub mod timers;

pub use config::SrmConfig;
pub use msg::SrmMsg;
pub use receiver::SrmReceiver;
pub use source::SrmSource;

use sharqfec_netsim::{Engine, EngineBuilder, SimTime};
use sharqfec_topology::BuiltTopology;

/// Assembles a fully-populated [`EngineBuilder`] for an SRM scenario: one
/// global channel, a CBR source, and a receiver agent on every other
/// member.  Harnesses needing a streaming recorder or fault plan set
/// those on the returned builder before [`EngineBuilder::build`].
pub fn setup_srm_builder(
    built: &BuiltTopology,
    seed: u64,
    cfg: SrmConfig,
    join_at: SimTime,
) -> EngineBuilder<SrmMsg> {
    cfg.validate();
    let mut builder: EngineBuilder<SrmMsg> = EngineBuilder::new(built.topology.clone(), seed);
    let chan = builder.add_channel(&built.members());
    builder.add_agent_at(
        built.source,
        Box::new(SrmSource::new(cfg.clone(), chan)),
        join_at,
    );
    for &r in &built.receivers {
        builder.add_agent_at(
            r,
            Box::new(SrmReceiver::new(cfg.clone(), chan, built.source)),
            join_at,
        );
    }
    builder
}

/// Builds a ready-to-run SRM simulation.  Nodes join at `join_at`; the
/// source starts transmitting at `cfg.data_start`.
pub fn setup_srm_sim(
    built: &BuiltTopology,
    seed: u64,
    cfg: SrmConfig,
    join_at: SimTime,
) -> Engine<SrmMsg> {
    setup_srm_builder(built, seed, cfg, join_at).build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sharqfec_netsim::RunSpec;
    use sharqfec_netsim::TrafficClass;
    use sharqfec_topology::{chain, figure10, Figure10Params};

    #[test]
    fn lossless_run_needs_no_repairs() {
        let built = chain(4);
        let cfg = SrmConfig {
            total_packets: 20,
            ..SrmConfig::default()
        };
        let mut engine = setup_srm_sim(&built, 1, cfg, SimTime::from_secs(1));
        engine.advance(RunSpec::to(SimTime::from_secs(40)));
        for &r in &built.receivers {
            let agent = engine.agent::<SrmReceiver>(r).unwrap();
            assert!(agent.complete(), "receiver {r} incomplete");
        }
        let rec = engine.recorder();
        assert_eq!(
            rec.transmissions
                .iter()
                .filter(|t| t.class == TrafficClass::Nack)
                .count(),
            0
        );
        assert_eq!(
            rec.transmissions
                .iter()
                .filter(|t| t.class == TrafficClass::Repair)
                .count(),
            0
        );
    }

    #[test]
    fn figure10_losses_are_fully_repaired() {
        let built = figure10(&Figure10Params::default());
        let cfg = SrmConfig {
            total_packets: 64,
            ..SrmConfig::default()
        };
        let mut engine = setup_srm_sim(&built, 42, cfg, SimTime::from_secs(1));
        engine.advance(RunSpec::to(SimTime::from_secs(120)));
        let mut incomplete = 0;
        for &r in &built.receivers {
            let agent = engine.agent::<SrmReceiver>(r).unwrap();
            if !agent.complete() {
                incomplete += 1;
            }
        }
        assert_eq!(
            incomplete, 0,
            "{incomplete} receivers still missing packets"
        );
        // Under ~13-28% loss there must have been real repair activity.
        let rec = engine.recorder();
        assert!(rec
            .transmissions
            .iter()
            .any(|t| t.class == TrafficClass::Repair));
        assert!(rec
            .transmissions
            .iter()
            .any(|t| t.class == TrafficClass::Nack));
    }

    #[test]
    fn adaptive_timers_do_not_hurt_and_both_modes_recover() {
        // The paper runs SRM "with adaptive timers turned on for best
        // possible performance"; verify both modes recover and that the
        // adaptive mode doesn't inflate request volume.
        let built = figure10(&Figure10Params::default());
        let run = |adaptive: bool| {
            let cfg = SrmConfig {
                total_packets: 48,
                adaptive,
                ..SrmConfig::default()
            };
            let mut engine = setup_srm_sim(&built, 21, cfg, SimTime::from_secs(1));
            engine.advance(RunSpec::to(SimTime::from_secs(150)));
            let missing: u32 = built
                .receivers
                .iter()
                .map(|&r| engine.agent::<SrmReceiver>(r).unwrap().missing())
                .sum();
            let nacks = engine
                .recorder()
                .transmissions
                .iter()
                .filter(|t| t.class == TrafficClass::Nack)
                .count();
            (missing, nacks)
        };
        let (miss_fixed, nacks_fixed) = run(false);
        let (miss_adaptive, nacks_adaptive) = run(true);
        assert_eq!(miss_fixed, 0);
        assert_eq!(miss_adaptive, 0);
        assert!(
            (nacks_adaptive as f64) < 1.5 * nacks_fixed as f64,
            "adaptive timers should not inflate requests: {nacks_adaptive} vs {nacks_fixed}"
        );
    }

    #[test]
    fn session_layer_is_opt_in_and_builds_full_peer_tables() {
        use sharqfec_netsim::SimDuration;
        let built = chain(5);
        let run = |announce: Option<SimDuration>, stride: u64| {
            let cfg = SrmConfig {
                total_packets: 10,
                session_announce: announce,
                announce_stride: stride,
                ..SrmConfig::default()
            };
            let mut engine = setup_srm_sim(&built, 3, cfg, SimTime::from_secs(1));
            engine.advance(RunSpec::to(SimTime::from_secs(40)));
            let session_tx = engine
                .recorder()
                .transmissions
                .iter()
                .filter(|t| t.class == TrafficClass::Session)
                .count();
            let peers: Vec<usize> = built
                .receivers
                .iter()
                .map(|&r| engine.agent::<SrmReceiver>(r).unwrap().session_peer_count())
                .collect();
            (session_tx, peers)
        };

        // Default off: zero session traffic, empty peer tables.
        let (tx_off, peers_off) = run(None, 1);
        assert_eq!(tx_off, 0);
        assert!(peers_off.iter().all(|&p| p == 0));

        // On: every receiver hears every other receiver — the O(n) state.
        let (tx_on, peers_on) = run(Some(SimDuration::from_millis(200)), 1);
        assert!(tx_on > 0);
        for &p in &peers_on {
            assert_eq!(p, built.receivers.len() - 1);
        }

        // A stride rotates announcers, thinning traffic but (over enough
        // rounds) still filling the tables.
        let (tx_strided, peers_strided) = run(Some(SimDuration::from_millis(200)), 2);
        assert!(tx_strided < tx_on);
        for &p in &peers_strided {
            assert_eq!(p, built.receivers.len() - 1);
        }
    }

    #[test]
    fn suppression_limits_duplicate_requests() {
        // On the chain with a lossy first link, a loss is shared by every
        // receiver; suppression should keep requests per loss well below
        // the receiver count.
        let cfg = SrmConfig {
            total_packets: 50,
            ..SrmConfig::default()
        };
        // Drop ~30% on the source-side link by rebuilding with loss.
        let mut b = sharqfec_netsim::TopologyBuilder::new();
        let ids = b.add_nodes("c", 8);
        for (i, w) in ids.windows(2).enumerate() {
            let loss = if i == 0 { 0.3 } else { 0.0 };
            b.add_link(
                w[0],
                w[1],
                sharqfec_netsim::LinkParams::new(
                    sharqfec_netsim::SimDuration::from_millis(20),
                    10_000_000,
                    loss,
                ),
            );
        }
        let mut builder: EngineBuilder<SrmMsg> = EngineBuilder::new(b.build(), 9);
        let chan = builder.add_channel(&ids);
        builder.add_agent_at(
            ids[0],
            Box::new(SrmSource::new(cfg.clone(), chan)),
            SimTime::from_secs(1),
        );
        for &r in &ids[1..] {
            builder.add_agent_at(
                r,
                Box::new(SrmReceiver::new(cfg.clone(), chan, ids[0])),
                SimTime::from_secs(1),
            );
        }
        let mut engine = builder.build();
        engine.advance(RunSpec::to(SimTime::from_secs(120)));
        for &r in &ids[1..] {
            assert!(engine.agent::<SrmReceiver>(r).unwrap().complete());
        }
        let rec = engine.recorder();
        let losses = rec
            .drops
            .iter()
            .filter(|d| d.class == TrafficClass::Data)
            .count();
        let requests = rec
            .transmissions
            .iter()
            .filter(|t| t.class == TrafficClass::Nack)
            .count();
        assert!(losses > 0);
        // Without suppression each of 7 receivers would request every loss:
        // ~7 requests per loss. Demand substantially better.
        assert!(
            (requests as f64) < 3.0 * losses as f64,
            "suppression failing: {requests} requests for {losses} losses"
        );
    }
}
