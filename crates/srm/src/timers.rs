//! SRM's adaptive timer-parameter adjustment (Floyd et al. §V).
//!
//! Each member adjusts its request window `[C1·d, (C1+C2)·d]` from two
//! EWMAs: the number of duplicate requests it observes per loss-recovery
//! round, and the delay (in units of `d_SA`) its own requests incur.  Too
//! many duplicates ⇒ widen the window (better suppression); few duplicates
//! but long delays ⇒ narrow it (faster recovery).  Repair timers adapt the
//! same way from duplicate repairs.
//!
//! This is a reconstruction from the published description: the update
//! *structure* (EWMA of duplicates/delay, additive widen on duplicate
//! pressure, cautious narrowing under low duplicates, floors on the
//! constants) follows the paper; the exact step sizes are the paper's
//! published 0.1/0.5 increase and 0.05/0.1 decrease steps applied at the
//! same trigger points.
//!
//! The machinery lives in [`sharqfec_netsim::adaptive`], shared with
//! SHARQFEC's §7 adaptive extension (`sharqfec-core::adapt`); the two
//! call sites had drifted copies.  The intentional divergence is the
//! narrowing trigger `delay_high`: SRM recovers across the whole session
//! (delays measured against global `d_SA`), so rounds slower than 1.5
//! units already warrant narrowing — SHARQFEC's scoped recovery waits
//! until 4.

use sharqfec_netsim::adaptive::{AdaptiveConfig, AdaptiveTimer};

/// Delay (in units of `d`) above which narrowing kicks in (SRM: 1.5;
/// deliberately lower than SHARQFEC's 4 — see the module docs).
pub const DELAY_HIGH: f64 = 1.5;

/// One adaptive window `[lo·d, (lo+width)·d]`.
///
/// Thin wrapper over the shared [`AdaptiveTimer`] keeping SRM's trigger
/// points (`delay_high` = 1.5).
#[derive(Clone, Debug)]
pub struct AdaptiveParams {
    inner: AdaptiveTimer,
}

impl AdaptiveParams {
    /// Creates the adapter with initial window factors.
    pub fn new(lo: f64, width: f64, enabled: bool) -> AdaptiveParams {
        let cfg = AdaptiveConfig {
            delay_high: DELAY_HIGH,
            ..AdaptiveConfig::default()
        };
        AdaptiveParams {
            inner: AdaptiveTimer::new(lo, width, enabled, cfg),
        }
    }

    /// Window start factor (C1 or D1).
    pub fn lo(&self) -> f64 {
        self.inner.lo()
    }

    /// Window width factor (C2 or D2).
    pub fn width(&self) -> f64 {
        self.inner.width()
    }

    /// Records an overheard duplicate (request or repair) for the current
    /// recovery round.  Inert while adaptation is disabled.
    pub fn saw_duplicate(&mut self) {
        self.inner.saw_duplicate();
    }

    /// Closes a recovery round: folds the round's duplicate count and this
    /// member's own timer delay (in units of `d`) into the EWMAs, then
    /// adjusts the window.  Inert while disabled.
    pub fn end_round(&mut self, own_delay_in_d: f64) {
        self.inner.end_round(own_delay_in_d);
    }

    /// Current EWMA of duplicates (exposed for tests/diagnostics).
    pub fn ave_dup(&self) -> f64 {
        self.inner.ave_dup()
    }

    /// Current EWMA of own-timer delay (diagnostics / probes).
    pub fn ave_delay(&self) -> f64 {
        self.inner.ave_delay()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_pressure_widens_window() {
        let mut p = AdaptiveParams::new(2.0, 2.0, true);
        for _ in 0..8 {
            for _ in 0..4 {
                p.saw_duplicate();
            }
            p.end_round(1.0);
        }
        assert!(p.lo() > 2.0, "C1 should grow under duplicates: {}", p.lo());
        assert!(
            p.width() > 2.0,
            "C2 should grow under duplicates: {}",
            p.width()
        );
        assert!(p.ave_dup() > 1.0);
    }

    #[test]
    fn quiet_slow_rounds_narrow_window() {
        let mut p = AdaptiveParams::new(2.0, 2.0, true);
        for _ in 0..12 {
            p.end_round(3.0); // no duplicates, long delays
        }
        // Call-site pin for the intentional divergence: 3.0 > SRM's 1.5
        // trigger, so SRM narrows where SHARQFEC (trigger 4.0) holds.
        assert!(p.lo() < 2.0, "C1 should shrink when quiet: {}", p.lo());
        assert!(
            p.width() < 2.0,
            "C2 should shrink when quiet: {}",
            p.width()
        );
    }

    #[test]
    fn floors_prevent_collapse() {
        let mut p = AdaptiveParams::new(0.6, 0.6, true);
        for _ in 0..100 {
            p.end_round(5.0);
        }
        assert!(p.lo() >= 0.5);
        assert!(p.width() >= 0.5);
    }

    #[test]
    fn disabled_adapter_keeps_fixed_window_and_frozen_ewmas() {
        let mut p = AdaptiveParams::new(2.0, 2.0, false);
        for _ in 0..10 {
            p.saw_duplicate();
            p.end_round(5.0);
        }
        assert_eq!(p.lo(), 2.0);
        assert_eq!(p.width(), 2.0);
        // Regression: the EWMAs used to keep folding while disabled
        // ("harmless bookkeeping") — but enabling adaptation mid-run then
        // inherited averages biased by fixed-window dynamics.  The shared
        // implementation freezes them.
        assert_eq!(p.ave_dup(), 0.0);
        assert_eq!(p.ave_delay(), 1.0);
    }

    #[test]
    fn quiet_fast_rounds_hold_steady() {
        let mut p = AdaptiveParams::new(2.0, 2.0, true);
        for _ in 0..10 {
            p.end_round(0.5); // no duplicates, short delays: no change
        }
        assert_eq!(p.lo(), 2.0);
        assert_eq!(p.width(), 2.0);
    }
}
