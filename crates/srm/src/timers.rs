//! SRM's adaptive timer-parameter adjustment (Floyd et al. §V).
//!
//! Each member adjusts its request window `[C1·d, (C1+C2)·d]` from two
//! EWMAs: the number of duplicate requests it observes per loss-recovery
//! round, and the delay (in units of `d_SA`) its own requests incur.  Too
//! many duplicates ⇒ widen the window (better suppression); few duplicates
//! but long delays ⇒ narrow it (faster recovery).  Repair timers adapt the
//! same way from duplicate repairs.
//!
//! This is a reconstruction from the published description: the update
//! *structure* (EWMA of duplicates/delay, additive widen on duplicate
//! pressure, cautious narrowing under low duplicates, floors on the
//! constants) follows the paper; the exact step sizes are the paper's
//! published 0.1/0.5 increase and 0.05/0.1 decrease steps applied at the
//! same trigger points.

/// One adaptive window `[lo·d, (lo+width)·d]`.
#[derive(Clone, Debug)]
pub struct AdaptiveParams {
    /// Window start factor (C1 or D1).
    pub lo: f64,
    /// Window width factor (C2 or D2).
    pub width: f64,
    /// EWMA of duplicates observed per round.
    ave_dup: f64,
    /// EWMA of own-timer delay in units of the distance `d`.
    ave_delay: f64,
    /// Duplicates observed in the current round.
    round_dups: u32,
    enabled: bool,
    /// Floors preventing collapse of the window.
    min_lo: f64,
    min_width: f64,
}

/// EWMA gain for the duplicate/delay averages (paper: 1/4).
const GAIN: f64 = 0.25;
/// Duplicate pressure above which the window widens (paper: ~1).
const DUP_HIGH: f64 = 1.0;
/// Duplicate pressure below which narrowing is considered.
const DUP_LOW: f64 = 0.25;
/// Delay (in units of d) above which narrowing kicks in.
const DELAY_HIGH: f64 = 1.5;

impl AdaptiveParams {
    /// Creates the adapter with initial window factors.
    pub fn new(lo: f64, width: f64, enabled: bool) -> AdaptiveParams {
        AdaptiveParams {
            lo,
            width,
            ave_dup: 0.0,
            ave_delay: 1.0,
            round_dups: 0,
            enabled,
            min_lo: 0.5,
            min_width: 0.5,
        }
    }

    /// Records an overheard duplicate (request or repair) for the current
    /// recovery round.
    pub fn saw_duplicate(&mut self) {
        self.round_dups = self.round_dups.saturating_add(1);
    }

    /// Closes a recovery round: folds the round's duplicate count and this
    /// member's own timer delay (in units of `d`) into the EWMAs, then
    /// adjusts the window.
    pub fn end_round(&mut self, own_delay_in_d: f64) {
        let dups = self.round_dups as f64;
        self.round_dups = 0;
        self.ave_dup += GAIN * (dups - self.ave_dup);
        self.ave_delay += GAIN * (own_delay_in_d - self.ave_delay);
        if !self.enabled {
            return;
        }
        if self.ave_dup >= DUP_HIGH {
            // Duplicate pressure: widen for better suppression.
            self.lo += 0.1;
            self.width += 0.5;
        } else if self.ave_dup < DUP_LOW && self.ave_delay > DELAY_HIGH {
            // Quiet but slow: narrow cautiously.
            self.lo = (self.lo - 0.05).max(self.min_lo);
            self.width = (self.width - 0.1).max(self.min_width);
        }
    }

    /// Current EWMA of duplicates (exposed for tests/diagnostics).
    pub fn ave_dup(&self) -> f64 {
        self.ave_dup
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_pressure_widens_window() {
        let mut p = AdaptiveParams::new(2.0, 2.0, true);
        for _ in 0..8 {
            for _ in 0..4 {
                p.saw_duplicate();
            }
            p.end_round(1.0);
        }
        assert!(p.lo > 2.0, "C1 should grow under duplicates: {}", p.lo);
        assert!(
            p.width > 2.0,
            "C2 should grow under duplicates: {}",
            p.width
        );
        assert!(p.ave_dup() > 1.0);
    }

    #[test]
    fn quiet_slow_rounds_narrow_window() {
        let mut p = AdaptiveParams::new(2.0, 2.0, true);
        for _ in 0..12 {
            p.end_round(3.0); // no duplicates, long delays
        }
        assert!(p.lo < 2.0, "C1 should shrink when quiet: {}", p.lo);
        assert!(p.width < 2.0, "C2 should shrink when quiet: {}", p.width);
    }

    #[test]
    fn floors_prevent_collapse() {
        let mut p = AdaptiveParams::new(0.6, 0.6, true);
        for _ in 0..100 {
            p.end_round(5.0);
        }
        assert!(p.lo >= 0.5);
        assert!(p.width >= 0.5);
    }

    #[test]
    fn disabled_adapter_keeps_fixed_window() {
        let mut p = AdaptiveParams::new(2.0, 2.0, false);
        for _ in 0..10 {
            p.saw_duplicate();
            p.end_round(5.0);
        }
        assert_eq!(p.lo, 2.0);
        assert_eq!(p.width, 2.0);
        // EWMAs still track (harmless bookkeeping).
        assert!(p.ave_dup() > 0.0);
    }

    #[test]
    fn quiet_fast_rounds_hold_steady() {
        let mut p = AdaptiveParams::new(2.0, 2.0, true);
        for _ in 0..10 {
            p.end_round(0.5); // no duplicates, short delays: no change
        }
        assert_eq!(p.lo, 2.0);
        assert_eq!(p.width, 2.0);
    }
}
