//! Simulation clock types.
//!
//! Time is kept as integer nanoseconds so that event ordering is exact and
//! runs are bit-reproducible; floating-point seconds appear only at the
//! edges (configuration and reporting).

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulation clock (nanoseconds since t = 0).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulation time (nanoseconds).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch, t = 0.
    pub const ZERO: SimTime = SimTime(0);
    /// The far future; no event is ever scheduled here.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Builds an instant from whole seconds.
    pub const fn from_secs(s: u64) -> SimTime {
        SimTime(s * 1_000_000_000)
    }

    /// Builds an instant from whole milliseconds.
    pub const fn from_millis(ms: u64) -> SimTime {
        SimTime(ms * 1_000_000)
    }

    /// Builds an instant from fractional seconds (rounds to nanoseconds).
    pub fn from_secs_f64(s: f64) -> SimTime {
        assert!(s >= 0.0 && s.is_finite(), "time must be finite and >= 0");
        SimTime((s * 1e9).round() as u64)
    }

    /// This instant as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Duration since an earlier instant; saturates at zero rather than
    /// panicking so clock-skew arithmetic in RTT estimators stays total.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// The largest representable span — routing uses it as the "node
    /// unreachable under the current link mask" sentinel.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Builds a span from whole seconds.
    pub const fn from_secs(s: u64) -> SimDuration {
        SimDuration(s * 1_000_000_000)
    }

    /// Builds a span from whole milliseconds.
    pub const fn from_millis(ms: u64) -> SimDuration {
        SimDuration(ms * 1_000_000)
    }

    /// Builds a span from whole microseconds.
    pub const fn from_micros(us: u64) -> SimDuration {
        SimDuration(us * 1_000)
    }

    /// Builds a span from fractional seconds (rounds to nanoseconds).
    pub fn from_secs_f64(s: f64) -> SimDuration {
        assert!(
            s >= 0.0 && s.is_finite(),
            "duration must be finite and >= 0"
        );
        SimDuration((s * 1e9).round() as u64)
    }

    /// This span as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Nanoseconds in this span.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Serialization time for `bytes` at `bits_per_sec`, rounded up to a
    /// whole nanosecond.
    ///
    /// # Panics
    ///
    /// Panics on a zero rate — infinitely fast links are represented
    /// explicitly (see `graph::Bandwidth::Infinite`), never by a zero
    /// sentinel.
    pub fn transmission(bytes: u32, bits_per_sec: u64) -> SimDuration {
        assert!(
            bits_per_sec > 0,
            "zero-rate transmission; use Bandwidth::Infinite for an \
             infinitely fast link"
        );
        let bits = bytes as u128 * 8;
        let nanos = (bits * 1_000_000_000).div_ceil(bits_per_sec as u128);
        SimDuration(nanos as u64)
    }

    /// Scales the span by a float factor (used for timer windows like
    /// "2.5 × RTT"); rounds to nanoseconds and saturates at zero.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(factor.is_finite(), "factor must be finite");
        let v = (self.0 as f64 * factor).round();
        SimDuration(if v <= 0.0 { 0 } else { v as u64 })
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction went negative"),
        )
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime minus duration went negative"),
        )
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimDuration subtraction went negative"),
        )
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self
            .0
            .checked_sub(rhs.0)
            .expect("SimDuration subtraction went negative");
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(2), SimTime::from_millis(2000));
        assert_eq!(SimTime::from_secs_f64(2.0), SimTime::from_secs(2));
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1000));
        assert_eq!(
            SimDuration::from_secs_f64(0.25),
            SimDuration::from_millis(250)
        );
    }

    #[test]
    fn arithmetic_round_trips() {
        let t = SimTime::from_secs(5);
        let d = SimDuration::from_millis(1500);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
    }

    #[test]
    fn transmission_time_matches_hand_math() {
        // 1000 bytes at 800 kbit/s = 10 ms exactly (the paper's data rate).
        assert_eq!(
            SimDuration::transmission(1000, 800_000),
            SimDuration::from_millis(10)
        );
        // 1000 bytes at 10 Mbit/s = 0.8 ms.
        assert_eq!(
            SimDuration::transmission(1000, 10_000_000),
            SimDuration::from_micros(800)
        );
    }

    #[test]
    #[should_panic(expected = "zero-rate transmission")]
    fn transmission_rejects_zero_rate() {
        // Infinitely fast links are Bandwidth::Infinite, never a 0 sentinel.
        let _ = SimDuration::transmission(1000, 0);
    }

    #[test]
    fn transmission_rounds_up() {
        // 1 byte at 3 bit/s: 8/3 s = 2.666..s -> ceil in nanos.
        let d = SimDuration::transmission(1, 3);
        assert_eq!(d.0, (8u64 * 1_000_000_000).div_ceil(3));
    }

    #[test]
    fn saturating_since_clamps() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(3);
        assert_eq!(late.saturating_since(early), SimDuration::from_secs(2));
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "went negative")]
    fn strict_subtraction_panics_when_negative() {
        let _ = SimTime::from_secs(1) - SimTime::from_secs(2);
    }

    #[test]
    fn mul_f64_rounds_and_clamps() {
        let d = SimDuration::from_secs(2);
        assert_eq!(d.mul_f64(2.5), SimDuration::from_secs(5));
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
        assert_eq!(d.mul_f64(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn display_uses_seconds() {
        assert_eq!(format!("{}", SimTime::from_millis(1500)), "1.500000");
        assert_eq!(format!("{}", SimDuration::from_micros(250)), "0.000250");
    }

    #[test]
    fn scalar_mul_div() {
        let d = SimDuration::from_millis(20);
        assert_eq!(d * 3, SimDuration::from_millis(60));
        assert_eq!(d / 2, SimDuration::from_millis(10));
    }
}
