//! Protocol agents and their interface to the engine.
//!
//! An [`Agent`] is a protocol state machine bound to one node.  The engine
//! drives it with `on_start`, `on_packet`, and `on_timer` callbacks; the
//! agent responds by queueing actions (multicasts, timers) on the [`Ctx`]
//! handed into every callback.  Actions take effect when the callback
//! returns, at the current simulation instant.

use crate::channel::ChannelId;
use crate::graph::NodeId;
use crate::packet::Packet;
use crate::probe::{ProbeEvent, ProbeSink};
use crate::rng::SimRng;
use crate::routing::DistanceOracle;
use crate::time::{SimDuration, SimTime};
use std::any::Any;

/// Handle to a pending timer, used for cancellation.
///
/// Engine-issued ids encode `(node + 1, per-node sequence)` so a timer's
/// owning node can be recovered without a lookup — the sharded driver
/// partitions pending-timer state by that node.  Ids constructed directly
/// from raw values (e.g. in test harnesses that never hand them to an
/// engine) are unaffected.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TimerId(pub u64);

/// Bits reserved for the per-node sequence in an engine-issued id.
const TIMER_SEQ_BITS: u32 = 40;

impl TimerId {
    /// Packs an engine-issued id from the owning node and its per-node
    /// scheduling sequence number.
    pub(crate) fn encode(node: NodeId, seq: u64) -> TimerId {
        debug_assert!(seq < 1 << TIMER_SEQ_BITS, "per-node timer seq overflow");
        debug_assert!(
            u64::from(node.0) < (1 << (64 - TIMER_SEQ_BITS)) - 1,
            "node id too large to encode in a TimerId"
        );
        TimerId(((u64::from(node.0) + 1) << TIMER_SEQ_BITS) | seq)
    }

    /// The owning node of an engine-issued id (`None` for raw ids that
    /// never went through [`TimerId::encode`]).
    pub(crate) fn node(self) -> Option<NodeId> {
        (self.0 >> TIMER_SEQ_BITS)
            .checked_sub(1)
            .map(|n| NodeId(n as u32))
    }

    /// The per-node sequence number of an engine-issued id.
    pub(crate) fn seq(self) -> u64 {
        self.0 & ((1 << TIMER_SEQ_BITS) - 1)
    }
}

/// Deferred effects queued by an agent during a callback.
#[derive(Debug)]
pub(crate) enum Action<M> {
    Multicast {
        channel: ChannelId,
        payload: M,
        bytes: u32,
    },
    SetTimer {
        id: TimerId,
        at: SimTime,
        token: u64,
    },
    CancelTimer(TimerId),
}

/// The environment an agent sees during one callback.
pub struct Ctx<'a, M> {
    pub(crate) now: SimTime,
    pub(crate) node: NodeId,
    pub(crate) rng: &'a mut SimRng,
    pub(crate) oracle: &'a DistanceOracle,
    pub(crate) actions: Vec<Action<M>>,
    pub(crate) next_timer: &'a mut u64,
    pub(crate) probes: &'a mut ProbeSink,
}

impl<'a, M> Ctx<'a, M> {
    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The node this agent is attached to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// This agent's private deterministic RNG stream.
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }

    /// One-way propagation delay to another node.
    ///
    /// This is ground truth from the routing substrate.  SHARQFEC's own
    /// agents do **not** use it for suppression (they run the paper's
    /// session protocol); it exists for baselines that assume a converged
    /// session (SRM) and for measuring estimation error in Figures 11–13.
    pub fn one_way(&self, to: NodeId) -> SimDuration {
        self.oracle.one_way(self.node, to)
    }

    /// Round-trip propagation delay to another node (ground truth; see
    /// [`Ctx::one_way`]).
    pub fn rtt(&self, to: NodeId) -> SimDuration {
        self.oracle.rtt(self.node, to)
    }

    /// Multicasts `payload` on `channel` as a `bytes`-byte packet.
    pub fn multicast(&mut self, channel: ChannelId, payload: M, bytes: u32) {
        self.actions.push(Action::Multicast {
            channel,
            payload,
            bytes,
        });
    }

    /// Arms a timer to fire `delay` from now; `token` is handed back to
    /// `on_timer` so one agent can multiplex many timers.
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) -> TimerId {
        self.set_timer_at(self.now + delay, token)
    }

    /// Arms a timer at an absolute instant (must not be in the past).
    pub fn set_timer_at(&mut self, at: SimTime, token: u64) -> TimerId {
        assert!(at >= self.now, "timer scheduled in the past");
        let seq = *self.next_timer;
        *self.next_timer += 1;
        let id = TimerId::encode(self.node, seq);
        self.actions.push(Action::SetTimer { id, at, token });
        id
    }

    /// Cancels a pending timer.  Cancelling an already-fired or unknown
    /// timer is a no-op.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.actions.push(Action::CancelTimer(id));
    }

    /// Emits a decision-level probe event, stamped with this callback's
    /// time and node.  One branch and nothing else when probes are
    /// disabled — never allocates, draws RNG, or schedules events, so
    /// runs are bit-identical with probes on or off.
    #[inline]
    pub fn probe(&mut self, event: ProbeEvent) {
        self.probes.emit(self.now, self.node, event);
    }
}

/// A protocol state machine attached to one node.
///
/// `Any` is a supertrait so callers can downcast agents back to their
/// concrete type after a run to read out final state (delivery status,
/// counters) — see [`crate::engine::Engine::agent`].  `Send` is a
/// supertrait so the sharded driver can move each agent to the worker
/// thread that owns its node's zone subtree; agents are protocol state
/// machines over plain data, so this costs implementations nothing.
pub trait Agent<M>: Any + Send {
    /// Called once when the agent's start event fires.
    fn on_start(&mut self, ctx: &mut Ctx<'_, M>) {
        let _ = ctx;
    }

    /// Called for every packet delivered to this node.
    fn on_packet(&mut self, ctx: &mut Ctx<'_, M>, pkt: &Packet<M>);

    /// Called when a timer armed by this agent fires.
    fn on_timer(&mut self, ctx: &mut Ctx<'_, M>, token: u64) {
        let _ = (ctx, token);
    }

    /// Approximate resident bytes of this agent's protocol state (heap
    /// content it retains between callbacks, not transient allocations).
    ///
    /// The scaling harness aggregates this via
    /// [`crate::engine::Engine::state_bytes`] to measure per-receiver
    /// memory growth; agents that don't implement it report zero and are
    /// simply excluded from the accounting.
    fn state_bytes(&self) -> usize {
        0
    }
}
