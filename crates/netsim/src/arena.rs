//! Per-run packet arena: one allocation per multicast, handles everywhere
//! else.
//!
//! The old forwarding path wrapped every transmitted packet in an
//! `Rc<Packet<M>>` and cloned the `Rc` once per hop, so a 112-receiver
//! multicast paid ~200 refcount increments/decrements plus a heap
//! allocation per packet.  The arena replaces that with:
//!
//! * one slab slot per in-flight packet, interned at `multicast_from`
//!   time and addressed by a `Copy` [`PacketRef`] handle;
//! * a cached [`PacketHeader`] (source, channel, wire bytes, traffic
//!   class) so the hot forwarding loop reads a 16-byte `Copy` struct
//!   instead of chasing the payload — and classifies the payload once per
//!   packet instead of once per hop;
//! * an explicit reference count equal to the number of `Arrive` events
//!   in the event queue holding the handle.  The *last* arrival moves the
//!   packet out of the slot — zero clones for the common leaf delivery —
//!   and returns the slot to a free list for the next multicast.
//!
//! The arena is engine-internal: agents still receive `&Packet<M>` and
//! never see a handle.

use crate::channel::ChannelId;
use crate::graph::NodeId;
use crate::metrics::TrafficClass;
use crate::packet::Packet;

/// Handle to an in-flight packet interned in the [`PacketArena`].
///
/// Valid from `insert` until the reference count drops to zero; the
/// engine's invariant is one count per queued `Arrive` event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct PacketRef(u32);

/// The forwarding-relevant subset of a packet, cached outside the payload
/// so hop processing never touches `M`.
#[derive(Clone, Copy, Debug)]
pub(crate) struct PacketHeader {
    pub src: NodeId,
    pub channel: ChannelId,
    pub bytes: u32,
    pub class: TrafficClass,
}

struct Slot<M> {
    /// `None` only while the packet is temporarily lent to an agent
    /// callback (`take`/`restore`) or after the slot was freed.
    pkt: Option<Packet<M>>,
    header: PacketHeader,
    /// Number of queued `Arrive` events referencing this slot.
    refs: u32,
}

pub(crate) struct PacketArena<M> {
    slots: Vec<Slot<M>>,
    free: Vec<u32>,
    live: usize,
}

impl<M> PacketArena<M> {
    pub fn new() -> PacketArena<M> {
        PacketArena {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
        }
    }

    /// Packets currently interned (in flight or lent out).  Diagnostics;
    /// a drained engine must report zero.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Interns a freshly transmitted packet with a reference count of
    /// zero.  The caller forwards it (each queued `Arrive` takes a
    /// reference via [`PacketArena::add_ref`]) and then calls
    /// [`PacketArena::release_orphan`] in case nobody took one.
    pub fn insert(&mut self, pkt: Packet<M>, class: TrafficClass) -> PacketRef {
        self.live += 1;
        let header = PacketHeader {
            src: pkt.src,
            channel: pkt.channel,
            bytes: pkt.bytes,
            class,
        };
        match self.free.pop() {
            Some(i) => {
                let slot = &mut self.slots[i as usize];
                debug_assert!(slot.pkt.is_none() && slot.refs == 0);
                slot.pkt = Some(pkt);
                slot.header = header;
                PacketRef(i)
            }
            None => {
                let i = u32::try_from(self.slots.len()).expect("packet arena exceeds u32 slots");
                self.slots.push(Slot {
                    pkt: Some(pkt),
                    header,
                    refs: 0,
                });
                PacketRef(i)
            }
        }
    }

    /// Cached header of an interned packet.
    pub fn header(&self, r: PacketRef) -> PacketHeader {
        self.slots[r.0 as usize].header
    }

    /// Takes one reference on behalf of a queued `Arrive` event.
    pub fn add_ref(&mut self, r: PacketRef) {
        self.slots[r.0 as usize].refs += 1;
    }

    /// Drops the reference held by a popped `Arrive` event.  If it was
    /// the last one the packet moves out (no clone) and the slot is
    /// freed; otherwise the packet stays for the remaining arrivals.
    pub fn release(&mut self, r: PacketRef) -> Option<Packet<M>> {
        let slot = &mut self.slots[r.0 as usize];
        debug_assert!(slot.refs > 0, "release without a matching add_ref");
        slot.refs -= 1;
        if slot.refs == 0 {
            let pkt = slot.pkt.take().expect("freed slot still referenced");
            self.free.push(r.0);
            self.live -= 1;
            Some(pkt)
        } else {
            None
        }
    }

    /// Frees a just-inserted packet nobody forwarded (a multicast whose
    /// every first hop was pruned, down, or dropped).  No-op if any
    /// `Arrive` event took a reference.
    pub fn release_orphan(&mut self, r: PacketRef) {
        let slot = &mut self.slots[r.0 as usize];
        if slot.refs == 0 {
            slot.pkt = None;
            self.free.push(r.0);
            self.live -= 1;
        }
    }

    /// Temporarily moves the packet out so it can be lent to an agent
    /// callback while other arrivals still reference the slot.  The slot
    /// stays off the free list, so re-entrant `insert`s cannot reuse it;
    /// pair with [`PacketArena::restore`].
    pub fn take(&mut self, r: PacketRef) -> Packet<M> {
        self.slots[r.0 as usize]
            .pkt
            .take()
            .expect("take on an empty slot")
    }

    /// Returns a packet lent out by [`PacketArena::take`].
    pub fn restore(&mut self, r: PacketRef, pkt: Packet<M>) {
        let slot = &mut self.slots[r.0 as usize];
        debug_assert!(slot.pkt.is_none());
        slot.pkt = Some(pkt);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    fn pkt(uid: u64) -> Packet<u64> {
        Packet {
            uid,
            src: NodeId(3),
            channel: ChannelId(1),
            sent_at: SimTime::ZERO,
            bytes: 1000,
            // The payload mirrors the uid at full width.  This used to be
            // `uid as u32`, silently aliasing packet identities past 2³²
            // interned payloads on long large-n runs.
            payload: uid,
        }
    }

    #[test]
    fn last_release_moves_the_packet_out_and_recycles_the_slot() {
        let mut a: PacketArena<u64> = PacketArena::new();
        let r = a.insert(pkt(7), TrafficClass::Data);
        a.add_ref(r);
        a.add_ref(r);
        assert_eq!(a.live(), 1);
        assert!(a.release(r).is_none());
        let owned = a.release(r).expect("last reference yields the packet");
        assert_eq!(owned.uid, 7);
        assert_eq!(a.live(), 0);
        // The freed slot is reused by the next insert.
        let r2 = a.insert(pkt(8), TrafficClass::Nack);
        assert_eq!(r2, r);
        assert_eq!(a.header(r2).class, TrafficClass::Nack);
        a.release_orphan(r2);
        assert_eq!(a.live(), 0);
    }

    #[test]
    fn uids_past_u32_boundary_do_not_alias() {
        // Regression: identities at and beyond 2³² must survive interning
        // intact — a u32-truncating mirror would alias 2³² with 0 and
        // 2³² + 7 with 7.
        let mut a: PacketArena<u64> = PacketArena::new();
        let big = 1u64 << 32;
        let r0 = a.insert(pkt(big), TrafficClass::Data);
        let r7 = a.insert(pkt(big + 7), TrafficClass::Data);
        a.add_ref(r0);
        a.add_ref(r7);
        let p0 = a.release(r0).expect("sole reference");
        let p7 = a.release(r7).expect("sole reference");
        assert_eq!((p0.uid, p0.payload), (big, big));
        assert_eq!((p7.uid, p7.payload), (big + 7, big + 7));
        assert_ne!(
            p0.payload as u32 as u64, p0.payload,
            "truncation would alias"
        );
    }

    #[test]
    fn header_caches_class_and_wire_fields() {
        let mut a: PacketArena<u64> = PacketArena::new();
        let r = a.insert(pkt(1), TrafficClass::Repair);
        let h = a.header(r);
        assert_eq!(h.src, NodeId(3));
        assert_eq!(h.channel, ChannelId(1));
        assert_eq!(h.bytes, 1000);
        assert_eq!(h.class, TrafficClass::Repair);
        a.release_orphan(r);
    }

    #[test]
    fn orphan_release_is_a_noop_once_referenced() {
        let mut a: PacketArena<u64> = PacketArena::new();
        let r = a.insert(pkt(1), TrafficClass::Data);
        a.add_ref(r);
        a.release_orphan(r); // someone holds it: must not free
        assert_eq!(a.live(), 1);
        assert!(a.release(r).is_some());
        assert_eq!(a.live(), 0);
    }

    #[test]
    fn take_keeps_the_slot_reserved_for_reentrant_inserts() {
        let mut a: PacketArena<u64> = PacketArena::new();
        let r = a.insert(pkt(1), TrafficClass::Data);
        a.add_ref(r);
        a.add_ref(r);
        assert!(a.release(r).is_none());
        let lent = a.take(r);
        // A packet interned while the slot is lent must get a new slot.
        let r2 = a.insert(pkt(2), TrafficClass::Data);
        assert_ne!(r2, r);
        a.restore(r, lent);
        assert_eq!(a.release(r).expect("last ref").uid, 1);
        a.release_orphan(r2);
        assert_eq!(a.live(), 0);
    }
}
