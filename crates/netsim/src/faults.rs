//! Declarative, deterministic fault injection.
//!
//! A [`FaultPlan`] is a schedule of timed [`FaultEvent`]s — link flaps,
//! loss-model changes, node churn — that the engine executes as ordinary
//! DES events.  Because the events ride the same queue as packets and
//! timers, a plan is reproducible per `(scenario, seed)` and safe under
//! the sweep runner at any thread count.
//!
//! Loss itself is pluggable through [`LossModel`]: the original i.i.d.
//! Bernoulli draw per traversal, or a 2-state Gilbert–Elliott chain that
//! produces the bursty, correlated losses real multicast paths exhibit —
//! precisely the regime where block FEC degrades.

use crate::graph::{LinkId, NodeId};
use crate::rng::SimRng;
use crate::time::SimTime;

/// Per-link loss process, sampled once per traversal per direction.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LossModel {
    /// Independent drop with the given probability (the classic ns-2
    /// uniform loss module).
    Bernoulli(f64),
    /// 2-state Gilbert–Elliott chain: the direction is either *good* or
    /// *bad*; each traversal first advances the chain one step, then drops
    /// with the loss rate of the current state.  Burstiness comes from the
    /// chain's persistence: the mean bad-state sojourn is `1 / p_bg`
    /// traversals.
    GilbertElliott {
        /// P(good → bad) per traversal.
        p_gb: f64,
        /// P(bad → good) per traversal.
        p_bg: f64,
        /// Drop probability while in the good state.
        loss_good: f64,
        /// Drop probability while in the bad state.
        loss_bad: f64,
    },
}

fn assert_prob(v: f64, what: &str) {
    assert!(
        (0.0..=1.0).contains(&v),
        "{what} must be in [0, 1], got {v}"
    );
}

impl LossModel {
    /// Independent (memoryless) loss with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn bernoulli(p: f64) -> LossModel {
        assert_prob(p, "loss probability");
        LossModel::Bernoulli(p)
    }

    /// A fully parameterized Gilbert–Elliott chain.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is outside `[0, 1]`, or if `p_bg` is zero
    /// while `p_gb` is positive (the chain would absorb into the bad
    /// state forever).
    pub fn gilbert_elliott(p_gb: f64, p_bg: f64, loss_good: f64, loss_bad: f64) -> LossModel {
        assert_prob(p_gb, "p_gb");
        assert_prob(p_bg, "p_bg");
        assert_prob(loss_good, "loss_good");
        assert_prob(loss_bad, "loss_bad");
        assert!(
            p_gb == 0.0 || p_bg > 0.0,
            "p_bg must be positive when p_gb is (bad state would be absorbing)"
        );
        LossModel::GilbertElliott {
            p_gb,
            p_bg,
            loss_good,
            loss_bad,
        }
    }

    /// The classic simplified Gilbert model hitting a target mean loss
    /// `rate` with mean burst length `mean_burst` (in packets): the bad
    /// state drops everything, the good state nothing, `p_bg =
    /// 1 / mean_burst`, and `p_gb` is solved from the stationary
    /// distribution so the long-run loss equals `rate`.
    ///
    /// `burst(rate, 1.0)` has the same mean loss as `Bernoulli(rate)` but
    /// a different (geometric-burst) correlation structure.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `[0, 1)` or `mean_burst < 1`.
    pub fn burst(rate: f64, mean_burst: f64) -> LossModel {
        assert!(
            (0.0..1.0).contains(&rate),
            "burst loss rate must be in [0, 1), got {rate}"
        );
        assert!(
            mean_burst >= 1.0,
            "mean burst length must be >= 1 packet, got {mean_burst}"
        );
        if rate == 0.0 {
            return LossModel::Bernoulli(0.0);
        }
        let p_bg = 1.0 / mean_burst;
        // Stationary P(bad) = p_gb / (p_gb + p_bg) must equal `rate`.
        let p_gb = rate * p_bg / (1.0 - rate);
        LossModel::gilbert_elliott(p_gb.min(1.0), p_bg, 0.0, 1.0)
    }

    /// Long-run mean loss rate of the process.
    pub fn mean_loss(&self) -> f64 {
        match *self {
            LossModel::Bernoulli(p) => p,
            LossModel::GilbertElliott {
                p_gb,
                p_bg,
                loss_good,
                loss_bad,
            } => {
                if p_gb == 0.0 {
                    // Never leaves the good state (start state).
                    loss_good
                } else {
                    let pi_bad = p_gb / (p_gb + p_bg);
                    pi_bad * loss_bad + (1.0 - pi_bad) * loss_good
                }
            }
        }
    }

    /// Whether the process can never drop a packet.
    pub fn is_lossless(&self) -> bool {
        match *self {
            LossModel::Bernoulli(p) => p <= 0.0,
            LossModel::GilbertElliott {
                p_gb,
                loss_good,
                loss_bad,
                ..
            } => loss_good <= 0.0 && (loss_bad <= 0.0 || p_gb <= 0.0),
        }
    }

    /// Samples one traversal: advances the per-direction chain state `bad`
    /// and returns `true` if the packet is dropped.
    ///
    /// Bernoulli ignores `bad` and draws via [`SimRng::chance`], which
    /// short-circuits at 0 and 1 without consuming randomness — exactly
    /// the pre-fault-injection behaviour, so existing seeded scenarios
    /// reproduce bit-for-bit.
    pub fn sample(&self, bad: &mut bool, rng: &mut SimRng) -> bool {
        match *self {
            LossModel::Bernoulli(p) => rng.chance(p),
            LossModel::GilbertElliott {
                p_gb,
                p_bg,
                loss_good,
                loss_bad,
            } => {
                if *bad {
                    if rng.chance(p_bg) {
                        *bad = false;
                    }
                } else if rng.chance(p_gb) {
                    *bad = true;
                }
                rng.chance(if *bad { loss_bad } else { loss_good })
            }
        }
    }
}

/// One scheduled fault.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultEvent {
    /// The link stops carrying traffic in both directions — *all* classes,
    /// including the lossless control classes (down is not loss).
    LinkDown(LinkId),
    /// The link carries traffic again.
    LinkUp(LinkId),
    /// Replaces the link's loss process (both directions) and resets any
    /// Gilbert–Elliott chain state to good.
    SetLoss(LinkId, LossModel),
    /// The node's agent stops receiving callbacks and its pending timers
    /// die; the node still forwards multicast traffic (the router outlives
    /// the application process).
    NodeCrash(NodeId),
    /// The agent resumes: its `on_start` hook runs again at the restart
    /// time.  Agent state persists across the crash (a warm restart).
    NodeRestart(NodeId),
}

/// A time-ordered schedule of [`FaultEvent`]s.
///
/// Build one with the fluent [`FaultPlan::at`] / [`FaultPlan::link_flap`]
/// calls and hand it to
/// [`EngineBuilder::fault_plan`](crate::engine::EngineBuilder::fault_plan).
///
/// ```
/// use sharqfec_netsim::faults::{FaultEvent, FaultPlan, LossModel};
/// use sharqfec_netsim::{LinkId, SimTime};
///
/// let plan = FaultPlan::new()
///     .at(SimTime::from_secs(2), FaultEvent::SetLoss(LinkId(0), LossModel::burst(0.1, 4.0)))
///     .link_flap(LinkId(1), SimTime::from_secs(5), SimTime::from_secs(8));
/// assert_eq!(plan.len(), 3);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<(SimTime, FaultEvent)>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Adds an event at an absolute time (builder style).
    pub fn at(mut self, when: SimTime, event: FaultEvent) -> FaultPlan {
        self.push(when, event);
        self
    }

    /// Adds an event at an absolute time (in-place).
    pub fn push(&mut self, when: SimTime, event: FaultEvent) {
        self.events.push((when, event));
    }

    /// Schedules a full flap: the link goes down at `down` and comes back
    /// at `up`.
    ///
    /// # Panics
    ///
    /// Panics if `up <= down`.
    pub fn link_flap(self, link: LinkId, down: SimTime, up: SimTime) -> FaultPlan {
        assert!(up > down, "link must come back up after it goes down");
        self.at(down, FaultEvent::LinkDown(link))
            .at(up, FaultEvent::LinkUp(link))
    }

    /// The scheduled events, in insertion order.
    pub fn events(&self) -> &[(SimTime, FaultEvent)] {
        &self.events
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bernoulli_matches_plain_chance() {
        // LossModel::sample for Bernoulli must consume the identical RNG
        // stream as the historical `rng.chance(p)` call.
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        let model = LossModel::bernoulli(0.3);
        let mut bad = false;
        for _ in 0..1000 {
            assert_eq!(model.sample(&mut bad, &mut a), b.chance(0.3));
        }
        assert!(!bad, "Bernoulli never touches the chain state");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn bernoulli_extremes_draw_nothing() {
        let mut rng = SimRng::new(1);
        let before = rng.clone();
        let mut bad = false;
        assert!(!LossModel::bernoulli(0.0).sample(&mut bad, &mut rng));
        assert!(LossModel::bernoulli(1.0).sample(&mut bad, &mut rng));
        let mut b2 = before;
        assert_eq!(rng.next_u64(), b2.next_u64(), "extremes must not draw");
    }

    #[test]
    fn burst_hits_target_mean_loss() {
        for &(rate, burst) in &[(0.05, 4.0), (0.188, 8.0), (0.4, 16.0)] {
            let model = LossModel::burst(rate, burst);
            assert!((model.mean_loss() - rate).abs() < 1e-12);
            let mut rng = SimRng::new(42);
            let mut bad = false;
            let n = 200_000;
            let drops = (0..n).filter(|_| model.sample(&mut bad, &mut rng)).count();
            let observed = drops as f64 / n as f64;
            assert!(
                (observed - rate).abs() < 0.01,
                "burst({rate}, {burst}): observed {observed}"
            );
        }
    }

    #[test]
    fn burst_lengths_are_geometric_with_requested_mean() {
        let model = LossModel::burst(0.2, 8.0);
        let mut rng = SimRng::new(9);
        let mut bad = false;
        let mut bursts = Vec::new();
        let mut run = 0u32;
        for _ in 0..400_000 {
            if model.sample(&mut bad, &mut rng) {
                run += 1;
            } else if run > 0 {
                bursts.push(run);
                run = 0;
            }
        }
        let mean = bursts.iter().map(|&b| b as f64).sum::<f64>() / bursts.len() as f64;
        assert!(
            (mean - 8.0).abs() < 0.5,
            "mean burst length {mean}, wanted ~8"
        );
    }

    #[test]
    fn mean_loss_and_losslessness() {
        assert_eq!(LossModel::bernoulli(0.25).mean_loss(), 0.25);
        assert!(LossModel::bernoulli(0.0).is_lossless());
        assert!(!LossModel::bernoulli(0.1).is_lossless());
        assert!(LossModel::burst(0.0, 4.0).is_lossless());
        assert!(!LossModel::burst(0.1, 4.0).is_lossless());
        assert!(LossModel::gilbert_elliott(0.0, 0.0, 0.0, 1.0).is_lossless());
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn bernoulli_rejects_out_of_range() {
        LossModel::bernoulli(1.5);
    }

    #[test]
    #[should_panic(expected = "mean burst")]
    fn burst_rejects_sub_packet_bursts() {
        LossModel::burst(0.1, 0.5);
    }

    #[test]
    #[should_panic(expected = "absorbing")]
    fn absorbing_bad_state_rejected() {
        LossModel::gilbert_elliott(0.1, 0.0, 0.0, 1.0);
    }

    #[test]
    fn plan_builder_orders_nothing_but_records_everything() {
        let plan = FaultPlan::new()
            .at(SimTime::from_secs(5), FaultEvent::NodeCrash(NodeId(3)))
            .link_flap(LinkId(2), SimTime::from_secs(1), SimTime::from_secs(2))
            .at(SimTime::from_secs(9), FaultEvent::NodeRestart(NodeId(3)));
        assert_eq!(plan.len(), 4);
        assert!(!plan.is_empty());
        assert_eq!(
            plan.events()[1],
            (SimTime::from_secs(1), FaultEvent::LinkDown(LinkId(2)))
        );
        assert!(FaultPlan::new().is_empty());
    }

    #[test]
    #[should_panic(expected = "come back up")]
    fn flap_must_end_after_it_starts() {
        let _ = FaultPlan::new().link_flap(LinkId(0), SimTime::from_secs(2), SimTime::from_secs(2));
    }
}
