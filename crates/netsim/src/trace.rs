//! Human-readable event timelines from a [`Recorder`] — this crate's
//! stand-in for the paper's *nam* network animator.
//!
//! Rendering is post-hoc (from the recorded events), so tracing costs
//! nothing unless asked for, filters compose, and the same run can be
//! inspected from several angles:
//!
//! ```
//! use sharqfec_netsim::trace::{Timeline, TraceFilter};
//! # use sharqfec_netsim::metrics::{Record, Recorder, TrafficClass};
//! # use sharqfec_netsim::{ChannelId, NodeId, SimTime};
//! # let mut recorder = Recorder::default();
//! # recorder.record_delivery(Record {
//! #     time: SimTime::from_millis(20), node: NodeId(1), src: NodeId(0),
//! #     class: TrafficClass::Data, bytes: 1000, channel: ChannelId(0),
//! # });
//! let text = Timeline::new(&recorder)
//!     .filter(TraceFilter::default().node(NodeId(1)))
//!     .render();
//! assert!(text.contains("recv"));
//! ```

use crate::channel::ChannelId;
use crate::graph::NodeId;
use crate::metrics::{Recorder, TrafficClass};
use crate::probe::ProbeRecord;
use crate::time::SimTime;

/// What to include in a rendered timeline.
#[derive(Clone, Debug, Default)]
pub struct TraceFilter {
    nodes: Option<Vec<NodeId>>,
    classes: Option<Vec<TrafficClass>>,
    channels: Option<Vec<ChannelId>>,
    window: Option<(SimTime, SimTime)>,
}

impl TraceFilter {
    /// Restrict to events at (or by) the given node; composable.
    pub fn node(mut self, n: NodeId) -> TraceFilter {
        self.nodes.get_or_insert_with(Vec::new).push(n);
        self
    }

    /// Restrict to a traffic class; composable.
    pub fn class(mut self, c: TrafficClass) -> TraceFilter {
        self.classes.get_or_insert_with(Vec::new).push(c);
        self
    }

    /// Restrict to a channel; composable.
    pub fn channel(mut self, c: ChannelId) -> TraceFilter {
        self.channels.get_or_insert_with(Vec::new).push(c);
        self
    }

    /// Restrict to a `[from, to)` time window.
    pub fn between(mut self, from: SimTime, to: SimTime) -> TraceFilter {
        self.window = Some((from, to));
        self
    }

    fn admits(
        &self,
        time: SimTime,
        node: NodeId,
        class: Option<TrafficClass>,
        channel: Option<ChannelId>,
    ) -> bool {
        if let Some((from, to)) = self.window {
            if time < from || time >= to {
                return false;
            }
        }
        if let Some(ns) = &self.nodes {
            if !ns.contains(&node) {
                return false;
            }
        }
        if let (Some(cs), Some(c)) = (&self.classes, class) {
            if !cs.contains(&c) {
                return false;
            }
        }
        if let (Some(chs), Some(ch)) = (&self.channels, channel) {
            if !chs.contains(&ch) {
                return false;
            }
        }
        true
    }
}

/// A renderable view over recorded events.
pub struct Timeline<'a> {
    recorder: &'a Recorder,
    probes: &'a [ProbeRecord],
    filter: TraceFilter,
}

impl<'a> Timeline<'a> {
    /// A timeline over all recorded events.
    pub fn new(recorder: &'a Recorder) -> Timeline<'a> {
        Timeline {
            recorder,
            probes: &[],
            filter: TraceFilter::default(),
        }
    }

    /// Interleaves decision-level probe events (see [`crate::probe`]) with
    /// the packet events.  Probe lines carry no traffic class or channel,
    /// so class/channel filters never exclude them (like drop lines); node
    /// and window filters apply normally.
    pub fn with_probes(mut self, probes: &'a [ProbeRecord]) -> Timeline<'a> {
        self.probes = probes;
        self
    }

    /// Applies a filter (replaces any previous one).
    pub fn filter(mut self, filter: TraceFilter) -> Timeline<'a> {
        self.filter = filter;
        self
    }

    /// Collects the admitted events as `(time, line)` pairs, time-ordered.
    pub fn lines(&self) -> Vec<(SimTime, String)> {
        let mut out: Vec<(SimTime, String)> = Vec::new();
        for r in &self.recorder.transmissions {
            if self
                .filter
                .admits(r.time, r.node, Some(r.class), Some(r.channel))
            {
                out.push((
                    r.time,
                    format!(
                        "{:>10.6}  send  {:<7} n{:<4} {:>5}B  {:?}",
                        r.time.as_secs_f64(),
                        r.class.label(),
                        r.node.0,
                        r.bytes,
                        r.channel
                    ),
                ));
            }
        }
        for r in &self.recorder.deliveries {
            if self
                .filter
                .admits(r.time, r.node, Some(r.class), Some(r.channel))
            {
                out.push((
                    r.time,
                    format!(
                        "{:>10.6}  recv  {:<7} n{:<4} {:>5}B  {:?} from n{}",
                        r.time.as_secs_f64(),
                        r.class.label(),
                        r.node.0,
                        r.bytes,
                        r.channel,
                        r.src.0
                    ),
                ));
            }
        }
        for d in &self.recorder.drops {
            if self.filter.admits(d.time, d.to, Some(d.class), None) {
                out.push((
                    d.time,
                    format!(
                        "{:>10.6}  DROP  {:<7} n{:<4} (link n{} -> n{})",
                        d.time.as_secs_f64(),
                        d.class.label(),
                        d.to.0,
                        d.from.0,
                        d.to.0
                    ),
                ));
            }
        }
        for p in self.probes {
            if self.filter.admits(p.time, p.node, None, None) {
                out.push((
                    p.time,
                    format!(
                        "{:>10.6}  probe {:<7} n{:<4} {}",
                        p.time.as_secs_f64(),
                        p.event.label(),
                        p.node.0,
                        p.event
                    ),
                ));
            }
        }
        out.sort_by_key(|(t, _)| *t);
        out
    }

    /// Renders the admitted events as a newline-joined log.
    pub fn render(&self) -> String {
        let lines = self.lines();
        let mut s = String::with_capacity(lines.len() * 64);
        for (_, line) in lines {
            s.push_str(&line);
            s.push('\n');
        }
        s
    }

    /// Number of admitted events (cheap sanity checks in tests).
    pub fn count(&self) -> usize {
        self.lines().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{DropRecord, Record};

    fn recorder() -> Recorder {
        let rec = |t_ms: u64, node: u32, class| Record {
            time: SimTime::from_millis(t_ms),
            node: NodeId(node),
            src: NodeId(0),
            class,
            bytes: 1000,
            channel: ChannelId(0),
        };
        let mut r = Recorder::default();
        r.record_transmission(rec(10, 0, TrafficClass::Data));
        r.record_delivery(rec(30, 1, TrafficClass::Data));
        r.record_delivery(rec(50, 2, TrafficClass::Nack));
        r.record_drop(DropRecord {
            time: SimTime::from_millis(40),
            from: NodeId(0),
            to: NodeId(2),
            class: TrafficClass::Data,
        });
        r
    }

    #[test]
    fn unfiltered_timeline_is_time_ordered_and_complete() {
        let r = recorder();
        let t = Timeline::new(&r);
        assert_eq!(t.count(), 4);
        let lines = t.lines();
        for w in lines.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
        let text = t.render();
        assert!(text.contains("send"));
        assert!(text.contains("recv"));
        assert!(text.contains("DROP"));
    }

    #[test]
    fn node_filter_selects_one_node() {
        let r = recorder();
        let t = Timeline::new(&r).filter(TraceFilter::default().node(NodeId(1)));
        assert_eq!(t.count(), 1);
        assert!(t.render().contains("n1"));
    }

    #[test]
    fn class_filter_and_window_compose() {
        let r = recorder();
        let t = Timeline::new(&r).filter(
            TraceFilter::default()
                .class(TrafficClass::Data)
                .between(SimTime::from_millis(20), SimTime::from_millis(45)),
        );
        // delivery at 30ms and drop at 40ms; the send at 10ms is outside.
        assert_eq!(t.count(), 2);
    }

    #[test]
    fn channel_filter_ignores_drops() {
        // Drops carry no channel; a channel filter shouldn't exclude them.
        let r = recorder();
        let t = Timeline::new(&r).filter(TraceFilter::default().channel(ChannelId(0)));
        assert_eq!(t.count(), 4);
        let none = Timeline::new(&r).filter(TraceFilter::default().channel(ChannelId(9)));
        // Only the drop (channel-less) survives.
        assert_eq!(none.count(), 1);
    }

    #[test]
    fn multi_value_filters_are_unions() {
        let r = recorder();
        let t = Timeline::new(&r).filter(TraceFilter::default().node(NodeId(1)).node(NodeId(2)));
        assert_eq!(t.count(), 3); // delivery@1, nack@2, drop→2
    }

    #[test]
    fn between_window_is_half_open() {
        // [from, to): an event exactly at `from` is included, exactly at
        // `to` is excluded.
        let r = recorder(); // send@10, recv@30, drop@40, recv@50 (ms)
        let at = |from_ms: u64, to_ms: u64| {
            Timeline::new(&r)
                .filter(
                    TraceFilter::default()
                        .between(SimTime::from_millis(from_ms), SimTime::from_millis(to_ms)),
                )
                .count()
        };
        assert_eq!(at(30, 50), 2, "recv@30 in (at from), recv@50 out (at to)");
        assert_eq!(at(30, 51), 3, "recv@50 admitted once to > 50");
        assert_eq!(at(31, 50), 1, "recv@30 excluded once from > 30");
        assert_eq!(at(30, 30), 0, "empty window admits nothing");
    }

    #[test]
    fn probes_interleave_and_ignore_class_filters() {
        use crate::probe::ProbeEvent;
        let r = recorder();
        let probes = [
            ProbeRecord {
                time: SimTime::from_millis(35),
                node: NodeId(1),
                event: ProbeEvent::ZlcUpdate {
                    group: 0,
                    level: 1,
                    observed: 3.0,
                    pred: 1.5,
                },
            },
            ProbeRecord {
                time: SimTime::from_millis(45),
                node: NodeId(2),
                event: ProbeEvent::GroupClose {
                    group: 0,
                    complete: true,
                    held: 16,
                    k: 16,
                },
            },
        ];
        let t = Timeline::new(&r).with_probes(&probes);
        assert_eq!(t.count(), 6);
        let lines = t.lines();
        for w in lines.windows(2) {
            assert!(w[0].0 <= w[1].0, "probe lines merge in time order");
        }
        assert!(t.render().contains("probe zlc"));
        // Class filters don't exclude class-less probe lines...
        let nack_only = Timeline::new(&r)
            .with_probes(&probes)
            .filter(TraceFilter::default().class(TrafficClass::Nack));
        assert_eq!(nack_only.count(), 3); // nack recv + both probes
                                          // ...but node and window filters apply to them.
        let n1 = Timeline::new(&r)
            .with_probes(&probes)
            .filter(TraceFilter::default().node(NodeId(1)));
        assert_eq!(n1.count(), 2); // recv@1 + zlc probe@1
    }
}
