//! Per-source shortest-path trees.
//!
//! Multicast routing in the paper's ns scenarios is a static per-source
//! shortest-path tree (dense-mode style, pruned to group members).  We run
//! Dijkstra from each source on propagation latency, with deterministic
//! tie-breaking on node id so identical topologies always yield identical
//! trees.

use crate::graph::{LinkId, NodeId, Topology};
use crate::time::SimDuration;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A shortest-path tree rooted at one source node.
///
/// Child edges live in one flat arena in CSR (compressed sparse row)
/// layout rather than a `Vec<Vec<_>>`: the engine's forwarding hot path
/// walks a node's children for every packet hop, and the flat layout lets
/// it do so by copying `(NodeId, LinkId)` pairs out by index — no
/// per-packet allocation, no aliasing with the rest of the engine state.
#[derive(Clone, Debug)]
pub struct Spt {
    /// The root.
    pub source: NodeId,
    /// Parent edge of each node (`None` for the root).
    pub parent: Vec<Option<(NodeId, LinkId)>>,
    /// All child edges, grouped by parent, each group sorted by child id.
    child_edges: Vec<(NodeId, LinkId)>,
    /// `child_edges[child_start[v] .. child_start[v + 1]]` are the
    /// children of node `v`; length `node_count + 1`.
    child_start: Vec<u32>,
    /// Propagation-latency distance from the root to each node.
    pub dist: Vec<SimDuration>,
}

impl Spt {
    /// Computes the tree rooted at `source` with every link usable.
    pub fn compute(topo: &Topology, source: NodeId) -> Spt {
        Spt::compute_masked(topo, source, None)
    }

    /// Computes the tree rooted at `source`, skipping links whose entry in
    /// `link_up` is `false` (fault injection: a downed link carries no
    /// traffic and routing must detour around it).  With a mask the graph
    /// may be disconnected; unreachable nodes get no parent, no children,
    /// and a [`SimDuration::MAX`] distance (see [`Spt::reachable`]).
    pub fn compute_masked(topo: &Topology, source: NodeId, link_up: Option<&[bool]>) -> Spt {
        let n = topo.node_count();
        assert!(source.idx() < n, "unknown source {source:?}");
        if let Some(mask) = link_up {
            assert_eq!(mask.len(), topo.link_count(), "link mask length mismatch");
        }
        let mut dist = vec![u64::MAX; n];
        let mut parent: Vec<Option<(NodeId, LinkId)>> = vec![None; n];
        let mut done = vec![false; n];
        let mut heap: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
        dist[source.idx()] = 0;
        heap.push(Reverse((0, source.0)));

        while let Some(Reverse((d, u))) = heap.pop() {
            let u = NodeId(u);
            if done[u.idx()] {
                continue;
            }
            done[u.idx()] = true;
            for &(v, link) in topo.neighbors(u) {
                if let Some(mask) = link_up {
                    if !mask[link.idx()] {
                        continue;
                    }
                }
                let w = topo.link(link).params.latency.as_nanos();
                let nd = d + w;
                // Strict < keeps the first (lowest-id thanks to sorted
                // neighbour lists and heap ordering) parent on ties.
                if nd < dist[v.idx()] {
                    dist[v.idx()] = nd;
                    parent[v.idx()] = Some((u, link));
                    heap.push(Reverse((nd, v.0)));
                }
            }
        }

        // Counting sort into CSR: every reachable non-root contributes one
        // edge under its parent; filling in ascending node order keeps each
        // group sorted by child id without a per-group sort.
        let mut child_start = vec![0u32; n + 1];
        for p in parent.iter().flatten() {
            child_start[p.0.idx() + 1] += 1;
        }
        for i in 0..n {
            child_start[i + 1] += child_start[i];
        }
        let edge_count = child_start[n] as usize;
        let mut next = child_start.clone();
        let mut child_edges = vec![(NodeId(0), LinkId(0)); edge_count];
        for v in topo.nodes() {
            if let Some((p, link)) = parent[v.idx()] {
                child_edges[next[p.idx()] as usize] = (v, link);
                next[p.idx()] += 1;
            }
        }

        Spt {
            source,
            parent,
            child_edges,
            child_start,
            dist: dist.into_iter().map(SimDuration).collect(),
        }
    }

    /// Whether `node` is reachable from the root under the mask this tree
    /// was computed with.  Trees over a fully-up topology always return
    /// `true` (connectivity is enforced at build time).
    pub fn reachable(&self, node: NodeId) -> bool {
        node == self.source || self.parent[node.idx()].is_some()
    }

    /// Whether this tree routes any traffic over `link` — the invalidation
    /// test when a fault takes a link down.
    pub fn uses_link(&self, link: LinkId) -> bool {
        self.parent.iter().flatten().any(|&(_, l)| l == link)
    }

    /// The children of `node` in this tree, sorted by child id.
    pub fn children(&self, node: NodeId) -> &[(NodeId, LinkId)] {
        let (start, end) = self.child_range(node);
        &self.child_edges[start..end]
    }

    /// Index range of `node`'s children in the flat edge arena; pair with
    /// [`Spt::child_edge`] to iterate by copy while mutating other state.
    pub fn child_range(&self, node: NodeId) -> (usize, usize) {
        (
            self.child_start[node.idx()] as usize,
            self.child_start[node.idx() + 1] as usize,
        )
    }

    /// The `i`-th edge in the flat child arena (copied out).
    pub fn child_edge(&self, i: usize) -> (NodeId, LinkId) {
        self.child_edges[i]
    }

    /// The path from the root to `node`, as a list of nodes starting at the
    /// root and ending at `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is unreachable under this tree's link mask.
    pub fn path_to(&self, node: NodeId) -> Vec<NodeId> {
        assert!(self.reachable(node), "{node:?} unreachable from the root");
        let mut rev = vec![node];
        let mut cur = node;
        while let Some((p, _)) = self.parent[cur.idx()] {
            rev.push(p);
            cur = p;
        }
        rev.reverse();
        debug_assert_eq!(rev[0], self.source);
        rev
    }

    /// One-way propagation delay from the root to `node`
    /// ([`SimDuration::MAX`] when unreachable under the link mask).
    pub fn delay_to(&self, node: NodeId) -> SimDuration {
        self.dist[node.idx()]
    }
}

/// All-pairs propagation delays.
///
/// Protocol baselines use this as a *converged-session oracle*: SRM assumes
/// every member has RTT estimates to every other member via its session
/// protocol; handing the baseline exact delays is strictly generous to it,
/// which is the conservative direction for comparisons against SHARQFEC.
///
/// Two representations, chosen automatically by [`DistanceOracle::compute`]:
///
/// * **Dense** — one Dijkstra row per node, `O(n²)` memory.  Used for
///   meshy topologies (paper scale: 113 nodes, trivially cheap).
/// * **Tree** — when the topology has exactly `n − 1` links (connectivity
///   is asserted at build time, so that means a tree), paths are unique
///   and `delay(a, b) = dist(a) + dist(b) − 2·dist(lca(a, b))` over
///   root-distances.  `O(n)` memory and `O(depth)` per query, with values
///   *identical* to the Dijkstra rows — large-scale runs stay bit-compatible
///   with the dense representation.
#[derive(Clone, Debug)]
pub struct DistanceOracle {
    repr: OracleRepr,
}

#[derive(Clone, Debug)]
enum OracleRepr {
    Dense {
        delays: Vec<Vec<SimDuration>>,
    },
    Tree {
        /// Parent of each node in the tree rooted at node 0 (the root maps
        /// to itself).
        parent: Vec<u32>,
        depth: Vec<u32>,
        /// Propagation latency from the root, in nanoseconds.
        dist: Vec<u64>,
    },
}

fn tree_lca(parent: &[u32], depth: &[u32], mut a: usize, mut b: usize) -> usize {
    while depth[a] > depth[b] {
        a = parent[a] as usize;
    }
    while depth[b] > depth[a] {
        b = parent[b] as usize;
    }
    while a != b {
        a = parent[a] as usize;
        b = parent[b] as usize;
    }
    a
}

impl DistanceOracle {
    /// Computes delays for every ordered pair — eagerly (dense) for meshy
    /// topologies, as `O(n)` tree arrays when the topology is a tree.
    pub fn compute(topo: &Topology) -> DistanceOracle {
        if topo.link_count() == topo.node_count() - 1 {
            // Connected with n − 1 links ⇒ a tree: unique paths make the
            // LCA distance exactly what Dijkstra would compute.
            let n = topo.node_count();
            let mut parent = vec![0u32; n];
            let mut depth = vec![0u32; n];
            let mut dist = vec![0u64; n];
            let mut seen = vec![false; n];
            let mut stack = vec![NodeId(0)];
            seen[0] = true;
            while let Some(u) = stack.pop() {
                for &(v, link) in topo.neighbors(u) {
                    if !seen[v.idx()] {
                        seen[v.idx()] = true;
                        parent[v.idx()] = u.0;
                        depth[v.idx()] = depth[u.idx()] + 1;
                        dist[v.idx()] = dist[u.idx()] + topo.link(link).params.latency.as_nanos();
                        stack.push(v);
                    }
                }
            }
            return DistanceOracle {
                repr: OracleRepr::Tree {
                    parent,
                    depth,
                    dist,
                },
            };
        }
        let delays = topo
            .nodes()
            .map(|src| Spt::compute(topo, src).dist)
            .collect();
        DistanceOracle {
            repr: OracleRepr::Dense { delays },
        }
    }

    /// Whether the compact tree representation is in use (equivalently:
    /// whether the topology is a tree).
    pub fn is_tree(&self) -> bool {
        matches!(self.repr, OracleRepr::Tree { .. })
    }

    /// One-way propagation delay between two nodes.
    pub fn one_way(&self, a: NodeId, b: NodeId) -> SimDuration {
        match &self.repr {
            OracleRepr::Dense { delays } => delays[a.idx()][b.idx()],
            OracleRepr::Tree {
                parent,
                depth,
                dist,
            } => {
                let l = tree_lca(parent, depth, a.idx(), b.idx());
                SimDuration(dist[a.idx()] + dist[b.idx()] - 2 * dist[l])
            }
        }
    }

    /// Round-trip propagation delay between two nodes.
    pub fn rtt(&self, a: NodeId, b: NodeId) -> SimDuration {
        self.one_way(a, b) * 2
    }

    /// On a tree topology, the neighbour of `at` on the unique path toward
    /// `to`.  This is what lets the engine forward down a source-rooted
    /// tree without materializing per-source [`Spt`]s: the children of
    /// `at` re-rooted at `src` are exactly its neighbours minus
    /// `tree_next_hop(at, src)`.
    ///
    /// # Panics
    ///
    /// Panics on a dense (non-tree) oracle or when `at == to`.
    pub fn tree_next_hop(&self, at: NodeId, to: NodeId) -> NodeId {
        let OracleRepr::Tree { parent, depth, .. } = &self.repr else {
            panic!("tree_next_hop requires a tree topology");
        };
        assert_ne!(at, to, "no next hop from a node to itself");
        // If `at` is an ancestor of `to`, step down through the child of
        // `at` on the path; otherwise the path leaves through the parent.
        if depth[to.idx()] > depth[at.idx()] {
            let mut v = to.idx();
            while depth[v] > depth[at.idx()] + 1 {
                v = parent[v] as usize;
            }
            if parent[v] as usize == at.idx() {
                return NodeId(v as u32);
            }
        }
        NodeId(parent[at.idx()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{LinkParams, TopologyBuilder};

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    /// A small diamond: 0-1 (1ms), 0-2 (5ms), 1-3 (1ms), 2-3 (1ms).
    fn diamond() -> (Topology, [NodeId; 4]) {
        let mut b = TopologyBuilder::new();
        let n0 = b.add_node("0");
        let n1 = b.add_node("1");
        let n2 = b.add_node("2");
        let n3 = b.add_node("3");
        b.add_link(n0, n1, LinkParams::lossless_infinite(ms(1)));
        b.add_link(n0, n2, LinkParams::lossless_infinite(ms(5)));
        b.add_link(n1, n3, LinkParams::lossless_infinite(ms(1)));
        b.add_link(n2, n3, LinkParams::lossless_infinite(ms(1)));
        (b.build(), [n0, n1, n2, n3])
    }

    #[test]
    fn spt_prefers_shorter_path() {
        let (t, [n0, n1, _n2, n3]) = diamond();
        let spt = Spt::compute(&t, n0);
        assert_eq!(spt.delay_to(n3), ms(2)); // via n1
        assert_eq!(spt.path_to(n3), vec![n0, n1, n3]);
    }

    #[test]
    fn spt_distance_is_true_shortest() {
        // In the diamond, n2 is actually closer via n1,n3: 1+1+1 = 3ms.
        let (t, [n0, _, n2, _]) = diamond();
        let spt = Spt::compute(&t, n0);
        assert_eq!(spt.delay_to(n2), ms(3));
    }

    #[test]
    fn root_has_no_parent_and_zero_distance() {
        let (t, [n0, ..]) = diamond();
        let spt = Spt::compute(&t, n0);
        assert!(spt.parent[n0.idx()].is_none());
        assert_eq!(spt.delay_to(n0), SimDuration::ZERO);
        assert_eq!(spt.path_to(n0), vec![n0]);
    }

    #[test]
    fn children_partition_non_roots() {
        let (t, [n0, ..]) = diamond();
        let spt = Spt::compute(&t, n0);
        let total: usize = t.nodes().map(|v| spt.children(v).len()).sum();
        assert_eq!(total, t.node_count() - 1);
    }

    #[test]
    fn csr_children_match_parent_edges_and_are_sorted() {
        let (t, [n0, ..]) = diamond();
        let spt = Spt::compute(&t, n0);
        for v in t.nodes() {
            let kids = spt.children(v);
            assert!(kids.windows(2).all(|w| w[0].0 < w[1].0), "sorted by id");
            let (start, end) = spt.child_range(v);
            for (off, &(child, link)) in kids.iter().enumerate() {
                assert_eq!(spt.child_edge(start + off), (child, link));
                assert_eq!(spt.parent[child.idx()], Some((v, link)));
            }
            assert_eq!(end - start, kids.len());
        }
    }

    #[test]
    fn tie_break_is_deterministic() {
        // Two equal-cost paths to n3: via n1 or n2 (both 2ms). The lower
        // node id (n1) must win, every time.
        let mut b = TopologyBuilder::new();
        let n0 = b.add_node("0");
        let n1 = b.add_node("1");
        let n2 = b.add_node("2");
        let n3 = b.add_node("3");
        b.add_link(n0, n1, LinkParams::lossless_infinite(ms(1)));
        b.add_link(n0, n2, LinkParams::lossless_infinite(ms(1)));
        b.add_link(n1, n3, LinkParams::lossless_infinite(ms(1)));
        b.add_link(n2, n3, LinkParams::lossless_infinite(ms(1)));
        let t = b.build();
        for _ in 0..5 {
            let spt = Spt::compute(&t, n0);
            assert_eq!(spt.parent[n3.idx()].unwrap().0, n1);
        }
    }

    #[test]
    fn masked_compute_detours_around_down_links() {
        let (t, [n0, n1, n2, n3]) = diamond();
        // Take link 0-1 down: everything must route via n2.
        let l01 = t.link_between(n0, n1).unwrap();
        let mut up = vec![true; t.link_count()];
        up[l01.idx()] = false;
        let spt = Spt::compute_masked(&t, n0, Some(&up));
        assert_eq!(spt.path_to(n3), vec![n0, n2, n3]);
        assert_eq!(spt.delay_to(n3), ms(6));
        assert_eq!(spt.path_to(n1), vec![n0, n2, n3, n1]);
        assert!(spt.uses_link(t.link_between(n2, n3).unwrap()));
        assert!(!spt.uses_link(l01));
        assert!(t.nodes().all(|v| spt.reachable(v)));
    }

    #[test]
    fn masked_compute_tolerates_disconnection() {
        let mut b = TopologyBuilder::new();
        let n0 = b.add_node("0");
        let n1 = b.add_node("1");
        let n2 = b.add_node("2");
        let l01 = b.add_link(n0, n1, LinkParams::lossless_infinite(ms(1)));
        b.add_link(n1, n2, LinkParams::lossless_infinite(ms(1)));
        let t = b.build();
        let mut up = vec![true; t.link_count()];
        up[l01.idx()] = false;
        let spt = Spt::compute_masked(&t, n0, Some(&up));
        assert!(spt.reachable(n0));
        assert!(!spt.reachable(n1));
        assert!(!spt.reachable(n2));
        assert_eq!(spt.delay_to(n2), SimDuration::MAX);
        assert!(spt.children(n0).is_empty());
    }

    #[test]
    #[should_panic(expected = "unreachable")]
    fn path_to_unreachable_panics() {
        let mut b = TopologyBuilder::new();
        let n0 = b.add_node("0");
        let n1 = b.add_node("1");
        let l = b.add_link(n0, n1, LinkParams::lossless_infinite(ms(1)));
        let t = b.build();
        let spt = Spt::compute_masked(&t, n0, Some(&[false; 1]));
        let _ = l;
        let _ = spt.path_to(n1);
    }

    #[test]
    fn oracle_is_symmetric_and_matches_spt() {
        let (t, [n0, n1, n2, n3]) = diamond();
        let oracle = DistanceOracle::compute(&t);
        assert!(!oracle.is_tree(), "the diamond has a cycle");
        for &a in &[n0, n1, n2, n3] {
            let spt = Spt::compute(&t, a);
            for &b in &[n0, n1, n2, n3] {
                assert_eq!(oracle.one_way(a, b), spt.delay_to(b));
                assert_eq!(oracle.one_way(a, b), oracle.one_way(b, a));
            }
        }
        assert_eq!(oracle.rtt(n0, n3), ms(4));
    }

    /// A lopsided 8-node tree with distinct latencies, built in scrambled
    /// link order so adjacency sorting matters.
    fn lopsided_tree() -> Topology {
        let mut b = TopologyBuilder::new();
        let n: Vec<NodeId> = (0..8).map(|i| b.add_node(format!("t{i}"))).collect();
        b.add_link(n[2], n[6], LinkParams::lossless_infinite(ms(4)));
        b.add_link(n[0], n[1], LinkParams::lossless_infinite(ms(1)));
        b.add_link(n[1], n[4], LinkParams::lossless_infinite(ms(7)));
        b.add_link(n[0], n[2], LinkParams::lossless_infinite(ms(2)));
        b.add_link(n[2], n[5], LinkParams::lossless_infinite(ms(3)));
        b.add_link(n[4], n[7], LinkParams::lossless_infinite(ms(5)));
        b.add_link(n[1], n[3], LinkParams::lossless_infinite(ms(9)));
        b.build()
    }

    #[test]
    fn tree_oracle_matches_dijkstra_on_every_pair() {
        let t = lopsided_tree();
        let oracle = DistanceOracle::compute(&t);
        assert!(oracle.is_tree());
        for a in t.nodes() {
            let spt = Spt::compute(&t, a);
            for b in t.nodes() {
                assert_eq!(
                    oracle.one_way(a, b),
                    spt.delay_to(b),
                    "oracle {a:?}->{b:?} must equal the Dijkstra distance"
                );
                assert_eq!(oracle.one_way(a, b), oracle.one_way(b, a));
            }
        }
    }

    #[test]
    fn tree_next_hop_walks_the_unique_path() {
        let t = lopsided_tree();
        let oracle = DistanceOracle::compute(&t);
        for src in t.nodes() {
            let spt = Spt::compute(&t, src);
            for dst in t.nodes() {
                if src == dst {
                    continue;
                }
                // Walk from dst toward src one hop at a time; the hops
                // must retrace the SPT path in reverse.
                let path = spt.path_to(dst);
                let mut cur = dst;
                for expect in path.iter().rev().skip(1) {
                    cur = oracle.tree_next_hop(cur, src);
                    assert_eq!(cur, *expect);
                }
                assert_eq!(cur, src);
            }
        }
    }

    #[test]
    #[should_panic(expected = "requires a tree topology")]
    fn tree_next_hop_rejects_dense_oracles() {
        let (t, [n0, n1, ..]) = diamond();
        let oracle = DistanceOracle::compute(&t);
        let _ = oracle.tree_next_hop(n0, n1);
    }
}
