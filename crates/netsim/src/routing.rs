//! Per-source shortest-path trees.
//!
//! Multicast routing in the paper's ns scenarios is a static per-source
//! shortest-path tree (dense-mode style, pruned to group members).  We run
//! Dijkstra from each source on propagation latency, with deterministic
//! tie-breaking on node id so identical topologies always yield identical
//! trees.

use crate::graph::{LinkId, NodeId, Topology};
use crate::time::SimDuration;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A shortest-path tree rooted at one source node.
#[derive(Clone, Debug)]
pub struct Spt {
    /// The root.
    pub source: NodeId,
    /// Parent edge of each node (`None` for the root).
    pub parent: Vec<Option<(NodeId, LinkId)>>,
    /// Child edges of each node, sorted by child id.
    pub children: Vec<Vec<(NodeId, LinkId)>>,
    /// Propagation-latency distance from the root to each node.
    pub dist: Vec<SimDuration>,
}

impl Spt {
    /// Computes the tree rooted at `source`.
    pub fn compute(topo: &Topology, source: NodeId) -> Spt {
        let n = topo.node_count();
        assert!(source.idx() < n, "unknown source {source:?}");
        let mut dist = vec![u64::MAX; n];
        let mut parent: Vec<Option<(NodeId, LinkId)>> = vec![None; n];
        let mut done = vec![false; n];
        let mut heap: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
        dist[source.idx()] = 0;
        heap.push(Reverse((0, source.0)));

        while let Some(Reverse((d, u))) = heap.pop() {
            let u = NodeId(u);
            if done[u.idx()] {
                continue;
            }
            done[u.idx()] = true;
            for &(v, link) in topo.neighbors(u) {
                let w = topo.link(link).params.latency.as_nanos();
                let nd = d + w;
                // Strict < keeps the first (lowest-id thanks to sorted
                // neighbour lists and heap ordering) parent on ties.
                if nd < dist[v.idx()] {
                    dist[v.idx()] = nd;
                    parent[v.idx()] = Some((u, link));
                    heap.push(Reverse((nd, v.0)));
                }
            }
        }

        let mut children = vec![Vec::new(); n];
        for v in topo.nodes() {
            if let Some((p, link)) = parent[v.idx()] {
                children[p.idx()].push((v, link));
            }
        }
        for c in &mut children {
            c.sort_by_key(|(n, _)| *n);
        }

        Spt {
            source,
            parent,
            children,
            dist: dist
                .into_iter()
                .map(|d| {
                    debug_assert_ne!(d, u64::MAX, "graph is connected by construction");
                    SimDuration(d)
                })
                .collect(),
        }
    }

    /// The path from the root to `node`, as a list of nodes starting at the
    /// root and ending at `node`.
    pub fn path_to(&self, node: NodeId) -> Vec<NodeId> {
        let mut rev = vec![node];
        let mut cur = node;
        while let Some((p, _)) = self.parent[cur.idx()] {
            rev.push(p);
            cur = p;
        }
        rev.reverse();
        debug_assert_eq!(rev[0], self.source);
        rev
    }

    /// One-way propagation delay from the root to `node`.
    pub fn delay_to(&self, node: NodeId) -> SimDuration {
        self.dist[node.idx()]
    }
}

/// All-pairs propagation delays (one Dijkstra per node).
///
/// Protocol baselines use this as a *converged-session oracle*: SRM assumes
/// every member has RTT estimates to every other member via its session
/// protocol; handing the baseline exact delays is strictly generous to it,
/// which is the conservative direction for comparisons against SHARQFEC.
#[derive(Clone, Debug)]
pub struct DistanceOracle {
    delays: Vec<Vec<SimDuration>>,
}

impl DistanceOracle {
    /// Precomputes delays for every ordered pair.
    pub fn compute(topo: &Topology) -> DistanceOracle {
        let delays = topo
            .nodes()
            .map(|src| Spt::compute(topo, src).dist)
            .collect();
        DistanceOracle { delays }
    }

    /// One-way propagation delay between two nodes.
    pub fn one_way(&self, a: NodeId, b: NodeId) -> SimDuration {
        self.delays[a.idx()][b.idx()]
    }

    /// Round-trip propagation delay between two nodes.
    pub fn rtt(&self, a: NodeId, b: NodeId) -> SimDuration {
        self.one_way(a, b) * 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{LinkParams, TopologyBuilder};

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    /// A small diamond: 0-1 (1ms), 0-2 (5ms), 1-3 (1ms), 2-3 (1ms).
    fn diamond() -> (Topology, [NodeId; 4]) {
        let mut b = TopologyBuilder::new();
        let n0 = b.add_node("0");
        let n1 = b.add_node("1");
        let n2 = b.add_node("2");
        let n3 = b.add_node("3");
        b.add_link(n0, n1, LinkParams::lossless(ms(1), 0));
        b.add_link(n0, n2, LinkParams::lossless(ms(5), 0));
        b.add_link(n1, n3, LinkParams::lossless(ms(1), 0));
        b.add_link(n2, n3, LinkParams::lossless(ms(1), 0));
        (b.build(), [n0, n1, n2, n3])
    }

    #[test]
    fn spt_prefers_shorter_path() {
        let (t, [n0, n1, _n2, n3]) = diamond();
        let spt = Spt::compute(&t, n0);
        assert_eq!(spt.delay_to(n3), ms(2)); // via n1
        assert_eq!(spt.path_to(n3), vec![n0, n1, n3]);
    }

    #[test]
    fn spt_distance_is_true_shortest() {
        // In the diamond, n2 is actually closer via n1,n3: 1+1+1 = 3ms.
        let (t, [n0, _, n2, _]) = diamond();
        let spt = Spt::compute(&t, n0);
        assert_eq!(spt.delay_to(n2), ms(3));
    }

    #[test]
    fn root_has_no_parent_and_zero_distance() {
        let (t, [n0, ..]) = diamond();
        let spt = Spt::compute(&t, n0);
        assert!(spt.parent[n0.idx()].is_none());
        assert_eq!(spt.delay_to(n0), SimDuration::ZERO);
        assert_eq!(spt.path_to(n0), vec![n0]);
    }

    #[test]
    fn children_partition_non_roots() {
        let (t, [n0, ..]) = diamond();
        let spt = Spt::compute(&t, n0);
        let total: usize = spt.children.iter().map(|c| c.len()).sum();
        assert_eq!(total, t.node_count() - 1);
    }

    #[test]
    fn tie_break_is_deterministic() {
        // Two equal-cost paths to n3: via n1 or n2 (both 2ms). The lower
        // node id (n1) must win, every time.
        let mut b = TopologyBuilder::new();
        let n0 = b.add_node("0");
        let n1 = b.add_node("1");
        let n2 = b.add_node("2");
        let n3 = b.add_node("3");
        b.add_link(n0, n1, LinkParams::lossless(ms(1), 0));
        b.add_link(n0, n2, LinkParams::lossless(ms(1), 0));
        b.add_link(n1, n3, LinkParams::lossless(ms(1), 0));
        b.add_link(n2, n3, LinkParams::lossless(ms(1), 0));
        let t = b.build();
        for _ in 0..5 {
            let spt = Spt::compute(&t, n0);
            assert_eq!(spt.parent[n3.idx()].unwrap().0, n1);
        }
    }

    #[test]
    fn oracle_is_symmetric_and_matches_spt() {
        let (t, [n0, n1, n2, n3]) = diamond();
        let oracle = DistanceOracle::compute(&t);
        for &a in &[n0, n1, n2, n3] {
            let spt = Spt::compute(&t, a);
            for &b in &[n0, n1, n2, n3] {
                assert_eq!(oracle.one_way(a, b), spt.delay_to(b));
                assert_eq!(oracle.one_way(a, b), oracle.one_way(b, a));
            }
        }
        assert_eq!(oracle.rtt(n0, n3), ms(4));
    }
}
