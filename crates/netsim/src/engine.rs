//! The discrete-event engine.
//!
//! Owns the topology, routing trees, link queues, channels, agents, and the
//! event queue.  A run is fully determined by (topology, agents, seed):
//! the event queue breaks time ties by insertion sequence number, agents
//! draw from per-node RNG streams split off the root seed, and link-loss
//! sampling uses its own stream.

use crate::agent::{Action, Agent, Ctx, TimerId};
use crate::channel::{Channel, ChannelId};
use crate::graph::{NodeId, Topology};
use crate::link::LinkState;
use crate::metrics::{DropRecord, Record, Recorder, RecorderMode};
use crate::packet::{Classify, Packet};
use crate::rng::SimRng;
use crate::routing::{DistanceOracle, Spt};
use crate::time::SimTime;
use std::any::Any;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};
use std::rc::Rc;

enum EventKind<M> {
    Start(NodeId),
    /// Packet arriving at `node`, to be delivered and forwarded onward.
    Arrive {
        node: NodeId,
        pkt: Rc<Packet<M>>,
    },
    Timer {
        node: NodeId,
        id: TimerId,
        token: u64,
    },
}

struct QItem<M> {
    time: SimTime,
    seq: u64,
    kind: EventKind<M>,
}

impl<M> PartialEq for QItem<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<M> Eq for QItem<M> {}
impl<M> PartialOrd for QItem<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for QItem<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// The simulator.  `M` is the protocol payload type.
pub struct Engine<M> {
    topo: Topology,
    oracle: DistanceOracle,
    spts: Vec<Spt>,
    link_state: Vec<LinkState>,
    channels: Vec<Channel>,
    agents: Vec<Option<Box<dyn Agent<M>>>>,
    agent_rngs: Vec<SimRng>,
    loss_rng: SimRng,
    queue: BinaryHeap<QItem<M>>,
    seq: u64,
    now: SimTime,
    /// Timer events scheduled but not yet fired.  Keyed by id (ids are
    /// never reused), removed when the event is popped, so both this set
    /// and `cancelled` stay bounded by the number of in-flight timers.
    pending_timers: HashSet<TimerId>,
    /// Cancellations whose timer event is still in the queue.  Invariant:
    /// `cancelled ⊆ pending_timers` — cancelling an already-fired (or
    /// never-armed) timer must not leak an entry forever.
    cancelled: HashSet<TimerId>,
    next_timer: u64,
    next_uid: u64,
    recorder: Recorder,
}

impl<M: Classify + Clone + 'static> Engine<M> {
    /// Creates an engine over a topology with a root RNG seed.
    ///
    /// Routing (one shortest-path tree per node) and the all-pairs distance
    /// oracle are computed eagerly; both are cheap at paper scale
    /// (113 nodes).
    pub fn new(topo: Topology, seed: u64) -> Engine<M> {
        let n = topo.node_count();
        let mut root = SimRng::new(seed);
        let loss_rng = root.split(u64::MAX);
        let agent_rngs = (0..n as u64).map(|i| root.split(i)).collect();
        let spts = topo.nodes().map(|s| Spt::compute(&topo, s)).collect();
        let oracle = DistanceOracle::compute(&topo);
        Engine {
            link_state: vec![LinkState::default(); topo.link_count()],
            spts,
            oracle,
            channels: Vec::new(),
            agents: (0..n).map(|_| None).collect(),
            agent_rngs,
            loss_rng,
            queue: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            pending_timers: HashSet::new(),
            cancelled: HashSet::new(),
            next_timer: 0,
            next_uid: 0,
            recorder: Recorder::default(),
            topo,
        }
    }

    /// The topology under simulation.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Ground-truth propagation delays (see [`Ctx::one_way`] for the rules
    /// on which protocols may consult it).
    pub fn oracle(&self) -> &DistanceOracle {
        &self.oracle
    }

    /// The shortest-path tree rooted at `src`.
    pub fn spt(&self, src: NodeId) -> &Spt {
        &self.spts[src.idx()]
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Timer events scheduled but not yet fired (diagnostics).
    pub fn pending_timer_count(&self) -> usize {
        self.pending_timers.len()
    }

    /// Cancellations waiting for their timer event to pop (diagnostics).
    /// Always bounded by [`Engine::pending_timer_count`].
    pub fn cancelled_timer_count(&self) -> usize {
        self.cancelled.len()
    }

    /// Recorded observations so far.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Mutable access to the recorder (e.g. to clear a warm-up phase).
    pub fn recorder_mut(&mut self) -> &mut Recorder {
        &mut self.recorder
    }

    /// Chooses how observations are stored (see [`RecorderMode`]): raw
    /// event traces (the default) or streaming per-(node, class) bins.
    /// Must be called before the first event is recorded.
    pub fn set_recorder_mode(&mut self, mode: RecorderMode) {
        self.recorder.set_mode(mode);
    }

    /// Registers a multicast channel over the given members.
    pub fn add_channel(&mut self, members: &[NodeId]) -> ChannelId {
        let id = ChannelId(self.channels.len() as u32);
        self.channels
            .push(Channel::new(self.topo.node_count(), members));
        id
    }

    /// Channel lookup.
    pub fn channel(&self, id: ChannelId) -> &Channel {
        &self.channels[id.idx()]
    }

    /// Attaches an agent to a node and schedules its `on_start` at t = 0.
    pub fn set_agent(&mut self, node: NodeId, agent: Box<dyn Agent<M>>) {
        self.set_agent_with_start(node, agent, SimTime::ZERO);
    }

    /// Attaches an agent with an explicit start time (the paper's receivers
    /// join the session at t = 1 s).
    pub fn set_agent_with_start(&mut self, node: NodeId, agent: Box<dyn Agent<M>>, at: SimTime) {
        assert!(node.idx() < self.topo.node_count(), "unknown node {node:?}");
        assert!(
            self.agents[node.idx()].is_none(),
            "node {node:?} already has an agent"
        );
        self.agents[node.idx()] = Some(agent);
        self.push(at, EventKind::Start(node));
    }

    /// Immutable, downcast access to an agent's concrete type — used after
    /// a run to read out protocol state (requires Rust trait upcasting).
    pub fn agent<T: 'static>(&self, node: NodeId) -> Option<&T> {
        let a = self.agents[node.idx()].as_deref()?;
        (a as &dyn Any).downcast_ref::<T>()
    }

    /// Runs until the event queue drains or the clock passes `t_end`.
    /// Events at exactly `t_end` are processed.  Returns the number of
    /// events processed.  The clock is left at `t_end` even if the queue
    /// drained earlier, so relative scheduling after the call starts from
    /// the horizon.
    pub fn run_until(&mut self, t_end: SimTime) -> u64 {
        let mut processed = 0;
        while let Some(item) = self.queue.peek() {
            if item.time > t_end {
                break;
            }
            let item = self.queue.pop().expect("peeked");
            debug_assert!(item.time >= self.now, "time went backwards");
            self.now = item.time;
            self.dispatch(item.kind);
            processed += 1;
        }
        if self.now < t_end {
            self.now = t_end;
        }
        processed
    }

    /// Runs until the event queue is completely drained.  The clock is
    /// left at the *last processed event* (not some far-future horizon),
    /// so `set_agent`/`multicast_from` stay usable after a drained run —
    /// scheduling "now" after `run()` must never be "in the past".
    pub fn run(&mut self) -> u64 {
        let mut processed = 0;
        while let Some(item) = self.queue.pop() {
            debug_assert!(item.time >= self.now, "time went backwards");
            self.now = item.time;
            self.dispatch(item.kind);
            processed += 1;
        }
        processed
    }

    fn push(&mut self, time: SimTime, kind: EventKind<M>) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(QItem { time, seq, kind });
    }

    fn dispatch(&mut self, kind: EventKind<M>) {
        match kind {
            EventKind::Start(node) => {
                self.with_agent(node, |agent, ctx| agent.on_start(ctx));
            }
            EventKind::Timer { node, id, token } => {
                self.pending_timers.remove(&id);
                if self.cancelled.remove(&id) {
                    return;
                }
                self.with_agent(node, |agent, ctx| agent.on_timer(ctx, token));
            }
            EventKind::Arrive { node, pkt } => {
                // Deliver to the local agent (if any), then keep forwarding
                // down the source-rooted tree.
                self.recorder.record_delivery(Record {
                    time: self.now,
                    node,
                    src: pkt.src,
                    class: pkt.class(),
                    bytes: pkt.bytes,
                    channel: pkt.channel,
                });
                self.forward(node, &pkt);
                if self.agents[node.idx()].is_some() {
                    self.with_agent(node, |agent, ctx| agent.on_packet(ctx, &pkt));
                }
            }
        }
    }

    /// Runs one agent callback and then applies its queued actions.
    fn with_agent(&mut self, node: NodeId, f: impl FnOnce(&mut dyn Agent<M>, &mut Ctx<'_, M>)) {
        let Some(mut agent) = self.agents[node.idx()].take() else {
            return;
        };
        let mut ctx = Ctx {
            now: self.now,
            node,
            rng: &mut self.agent_rngs[node.idx()],
            oracle: &self.oracle,
            actions: Vec::new(),
            next_timer: &mut self.next_timer,
        };
        f(agent.as_mut(), &mut ctx);
        let actions = ctx.actions;
        self.agents[node.idx()] = Some(agent);
        for action in actions {
            self.apply(node, action);
        }
    }

    fn apply(&mut self, node: NodeId, action: Action<M>) {
        match action {
            Action::SetTimer { id, at, token } => {
                self.pending_timers.insert(id);
                self.push(at, EventKind::Timer { node, id, token });
            }
            Action::CancelTimer(id) => {
                // Only remember cancellations for timers still in the
                // queue; cancelling an already-fired timer (or cancelling
                // twice) must be a bounded no-op, not a permanent leak.
                if self.pending_timers.contains(&id) {
                    self.cancelled.insert(id);
                }
            }
            Action::Multicast {
                channel,
                payload,
                bytes,
            } => {
                self.multicast_from(node, channel, payload, bytes);
            }
        }
    }

    /// Injects a multicast transmission from `node` (agents do this via
    /// [`Ctx::multicast`]; tests may call it directly).
    pub fn multicast_from(&mut self, node: NodeId, channel: ChannelId, payload: M, bytes: u32) {
        assert!(
            self.channels[channel.idx()].contains(node),
            "{node:?} is not a member of {channel:?}"
        );
        let pkt = Rc::new(Packet {
            uid: self.next_uid,
            src: node,
            channel,
            sent_at: self.now,
            bytes,
            payload,
        });
        self.next_uid += 1;
        self.recorder.record_transmission(Record {
            time: self.now,
            node,
            src: node,
            class: pkt.class(),
            bytes,
            channel,
        });
        self.forward(node, &pkt);
    }

    /// Forwards `pkt` from `at` to each child in the packet-source's SPT,
    /// pruning at channel non-members (administrative scope boundary) and
    /// sampling per-link loss for lossy traffic classes.
    fn forward(&mut self, at: NodeId, pkt: &Rc<Packet<M>>) {
        let lossy = pkt.class().lossy();
        // The SPT stores child edges in a flat CSR arena, so each edge is
        // copied out by index — no per-packet allocation while the rest of
        // the engine state stays mutable.
        let src = pkt.src.idx();
        let (start, end) = self.spts[src].child_range(at);
        for i in start..end {
            let (child, link) = self.spts[src].child_edge(i);
            if !self.channels[pkt.channel.idx()].contains(child) {
                continue; // scope boundary: prune the whole subtree
            }
            let spec = self.topo.link(link);
            if lossy && self.loss_rng.chance(spec.params.loss) {
                self.recorder.record_drop(DropRecord {
                    time: self.now,
                    from: at,
                    to: child,
                    class: pkt.class(),
                });
                continue;
            }
            let arrive = self.link_state[link.idx()].transmit(spec, at, self.now, pkt.bytes);
            self.push(
                arrive,
                EventKind::Arrive {
                    node: child,
                    pkt: Rc::clone(pkt),
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{LinkParams, TopologyBuilder};
    use crate::metrics::TrafficClass;
    use crate::time::SimDuration;

    #[derive(Clone, Debug, PartialEq)]
    enum Msg {
        Data(u32),
        Nack,
    }
    impl Classify for Msg {
        fn class(&self) -> TrafficClass {
            match self {
                Msg::Data(_) => TrafficClass::Data,
                Msg::Nack => TrafficClass::Nack,
            }
        }
    }

    /// Agent that records everything it hears.
    #[derive(Default)]
    struct Sniffer {
        heard: Vec<(SimTime, Msg)>,
    }
    impl Agent<Msg> for Sniffer {
        fn on_packet(&mut self, ctx: &mut Ctx<'_, Msg>, pkt: &Packet<Msg>) {
            self.heard.push((ctx.now(), pkt.payload.clone()));
        }
    }

    /// Agent that fires a burst at start.
    struct Burst {
        chan: ChannelId,
        count: u32,
    }
    impl Agent<Msg> for Burst {
        fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
            for i in 0..self.count {
                ctx.multicast(self.chan, Msg::Data(i), 1000);
            }
        }
        fn on_packet(&mut self, _: &mut Ctx<'_, Msg>, _: &Packet<Msg>) {}
    }

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    /// chain 0-1-2, 10ms links, 800kbit/s (1000B tx = 10ms).
    fn chain3(loss_mid: f64) -> (Topology, [NodeId; 3]) {
        let mut b = TopologyBuilder::new();
        let n0 = b.add_node("0");
        let n1 = b.add_node("1");
        let n2 = b.add_node("2");
        b.add_link(n0, n1, LinkParams::new(ms(10), 800_000, 0.0));
        b.add_link(n1, n2, LinkParams::new(ms(10), 800_000, loss_mid));
        (b.build(), [n0, n1, n2])
    }

    #[test]
    fn multicast_reaches_all_members_with_correct_timing() {
        let (t, [n0, n1, n2]) = chain3(0.0);
        let mut e: Engine<Msg> = Engine::new(t, 1);
        let chan = e.add_channel(&[n0, n1, n2]);
        e.set_agent(n0, Box::new(Burst { chan, count: 1 }));
        e.set_agent(n1, Box::new(Sniffer::default()));
        e.set_agent(n2, Box::new(Sniffer::default()));
        e.run();
        // hop1: tx 10ms + lat 10ms = 20ms; hop2 arrives at 40ms.
        let s1 = e.agent::<Sniffer>(n1).unwrap();
        let s2 = e.agent::<Sniffer>(n2).unwrap();
        assert_eq!(s1.heard, vec![(SimTime::from_millis(20), Msg::Data(0))]);
        assert_eq!(s2.heard, vec![(SimTime::from_millis(40), Msg::Data(0))]);
    }

    #[test]
    fn scope_pruning_stops_at_non_members() {
        let (t, [n0, n1, n2]) = chain3(0.0);
        let mut e: Engine<Msg> = Engine::new(t, 1);
        // n2 is outside the channel: a scoped zone {0, 1}.
        let chan = e.add_channel(&[n0, n1]);
        e.set_agent(n0, Box::new(Burst { chan, count: 1 }));
        e.set_agent(n1, Box::new(Sniffer::default()));
        e.set_agent(n2, Box::new(Sniffer::default()));
        e.run();
        assert_eq!(e.agent::<Sniffer>(n1).unwrap().heard.len(), 1);
        assert!(e.agent::<Sniffer>(n2).unwrap().heard.is_empty());
    }

    #[test]
    fn middle_member_pruning_blocks_downstream_members() {
        // If the middle of the chain is not a member, scoping cuts off the
        // tail even though it is a member (zones must be contiguous).
        let (t, [n0, _n1, n2]) = chain3(0.0);
        let mut e: Engine<Msg> = Engine::new(t, 1);
        let chan = e.add_channel(&[n0, n2]);
        e.set_agent(n0, Box::new(Burst { chan, count: 1 }));
        e.set_agent(n2, Box::new(Sniffer::default()));
        e.run();
        assert!(e.agent::<Sniffer>(n2).unwrap().heard.is_empty());
    }

    #[test]
    fn serialization_queues_back_to_back_packets() {
        let (t, [n0, n1, _]) = chain3(0.0);
        let mut e: Engine<Msg> = Engine::new(t, 1);
        let chan = e.add_channel(&[n0, n1]);
        e.set_agent(n0, Box::new(Burst { chan, count: 3 }));
        e.set_agent(n1, Box::new(Sniffer::default()));
        e.run();
        let times: Vec<SimTime> = e
            .agent::<Sniffer>(n1)
            .unwrap()
            .heard
            .iter()
            .map(|(t, _)| *t)
            .collect();
        // 10ms serialization each, pipelined: arrivals at 20, 30, 40 ms.
        assert_eq!(
            times,
            vec![
                SimTime::from_millis(20),
                SimTime::from_millis(30),
                SimTime::from_millis(40)
            ]
        );
    }

    #[test]
    fn lossy_link_drops_data_but_never_nacks() {
        let (t, [n0, n1, n2]) = chain3(1.0); // middle link always loses
        let mut e: Engine<Msg> = Engine::new(t, 7);
        let chan = e.add_channel(&[n0, n1, n2]);

        struct Both {
            chan: ChannelId,
        }
        impl Agent<Msg> for Both {
            fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
                ctx.multicast(self.chan, Msg::Data(0), 1000);
                ctx.multicast(self.chan, Msg::Nack, 40);
            }
            fn on_packet(&mut self, _: &mut Ctx<'_, Msg>, _: &Packet<Msg>) {}
        }
        e.set_agent(n0, Box::new(Both { chan }));
        e.set_agent(n2, Box::new(Sniffer::default()));
        e.run();
        let heard = &e.agent::<Sniffer>(n2).unwrap().heard;
        assert_eq!(heard.len(), 1, "only the NACK should survive");
        assert_eq!(heard[0].1, Msg::Nack);
        assert_eq!(e.recorder().drops.len(), 1);
        assert_eq!(e.recorder().drops[0].class, TrafficClass::Data);
    }

    #[test]
    fn loss_drops_whole_subtree() {
        // star: 0 - 1 - {2, 3}; if link 0-1 drops, neither 2 nor 3 hears.
        let mut b = TopologyBuilder::new();
        let n0 = b.add_node("0");
        let n1 = b.add_node("1");
        let n2 = b.add_node("2");
        let n3 = b.add_node("3");
        b.add_link(n0, n1, LinkParams::infinite(ms(1), 1.0));
        b.add_link(n1, n2, LinkParams::lossless_infinite(ms(1)));
        b.add_link(n1, n3, LinkParams::lossless_infinite(ms(1)));
        let mut e: Engine<Msg> = Engine::new(b.build(), 3);
        let chan = e.add_channel(&[n0, n1, n2, n3]);
        e.set_agent(n0, Box::new(Burst { chan, count: 1 }));
        e.set_agent(n2, Box::new(Sniffer::default()));
        e.set_agent(n3, Box::new(Sniffer::default()));
        e.run();
        assert!(e.agent::<Sniffer>(n2).unwrap().heard.is_empty());
        assert!(e.agent::<Sniffer>(n3).unwrap().heard.is_empty());
        assert_eq!(e.recorder().deliveries.len(), 0);
    }

    #[test]
    fn timers_fire_in_order_and_cancel_works() {
        struct Timers {
            fired: Vec<u64>,
        }
        impl Agent<Msg> for Timers {
            fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
                ctx.set_timer(ms(30), 3);
                ctx.set_timer(ms(10), 1);
                let cancel_me = ctx.set_timer(ms(20), 2);
                ctx.cancel_timer(cancel_me);
            }
            fn on_packet(&mut self, _: &mut Ctx<'_, Msg>, _: &Packet<Msg>) {}
            fn on_timer(&mut self, _: &mut Ctx<'_, Msg>, token: u64) {
                self.fired.push(token);
            }
        }
        let (t, [n0, ..]) = chain3(0.0);
        let mut e: Engine<Msg> = Engine::new(t, 1);
        e.set_agent(n0, Box::new(Timers { fired: vec![] }));
        e.run();
        assert_eq!(e.agent::<Timers>(n0).unwrap().fired, vec![1, 3]);
    }

    #[test]
    fn run_until_stops_the_clock_and_resumes() {
        let (t, [n0, n1, _]) = chain3(0.0);
        let mut e: Engine<Msg> = Engine::new(t, 1);
        let chan = e.add_channel(&[n0, n1]);
        e.set_agent(n0, Box::new(Burst { chan, count: 1 }));
        e.set_agent(n1, Box::new(Sniffer::default()));
        e.run_until(SimTime::from_millis(5));
        assert_eq!(e.now(), SimTime::from_millis(5));
        assert!(e.agent::<Sniffer>(n1).unwrap().heard.is_empty());
        e.run_until(SimTime::from_secs(1));
        assert_eq!(e.agent::<Sniffer>(n1).unwrap().heard.len(), 1);
        assert_eq!(e.now(), SimTime::from_secs(1));
    }

    #[test]
    fn identical_seeds_replay_identically() {
        let run = |seed: u64| -> Vec<(u64, u32)> {
            let (t, [n0, n1, n2]) = chain3(0.3);
            let mut e: Engine<Msg> = Engine::new(t, seed);
            let chan = e.add_channel(&[n0, n1, n2]);
            e.set_agent(n0, Box::new(Burst { chan, count: 50 }));
            e.set_agent(n2, Box::new(Sniffer::default()));
            e.run();
            e.agent::<Sniffer>(n2)
                .unwrap()
                .heard
                .iter()
                .map(|(t, m)| {
                    (
                        t.as_nanos(),
                        match m {
                            Msg::Data(i) => *i,
                            Msg::Nack => u32::MAX,
                        },
                    )
                })
                .collect()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(
            run(42),
            run(43),
            "different seeds should differ at 30% loss"
        );
    }

    #[test]
    fn recorder_sees_transmissions_and_deliveries() {
        let (t, [n0, n1, n2]) = chain3(0.0);
        let mut e: Engine<Msg> = Engine::new(t, 1);
        let chan = e.add_channel(&[n0, n1, n2]);
        e.set_agent(n0, Box::new(Burst { chan, count: 2 }));
        e.run();
        assert_eq!(e.recorder().sent_count(n0, TrafficClass::Data), 2);
        // Two deliveries at n1, two at n2 (agents not required to record).
        assert_eq!(e.recorder().delivered_count(n1, TrafficClass::Data), 2);
        assert_eq!(e.recorder().delivered_count(n2, TrafficClass::Data), 2);
    }

    #[test]
    #[should_panic(expected = "not a member")]
    fn sending_from_non_member_panics() {
        let (t, [n0, n1, n2]) = chain3(0.0);
        let mut e: Engine<Msg> = Engine::new(t, 1);
        let chan = e.add_channel(&[n1, n2]);
        e.multicast_from(n0, chan, Msg::Nack, 40);
    }

    #[test]
    #[should_panic(expected = "already has an agent")]
    fn double_agent_attachment_panics() {
        let (t, [n0, ..]) = chain3(0.0);
        let mut e: Engine<Msg> = Engine::new(t, 1);
        e.set_agent(n0, Box::new(Sniffer::default()));
        e.set_agent(n0, Box::new(Sniffer::default()));
    }

    #[test]
    fn start_times_are_honoured() {
        struct StartClock {
            started_at: Option<SimTime>,
        }
        impl Agent<Msg> for StartClock {
            fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
                self.started_at = Some(ctx.now());
            }
            fn on_packet(&mut self, _: &mut Ctx<'_, Msg>, _: &Packet<Msg>) {}
        }
        let (t, [n0, ..]) = chain3(0.0);
        let mut e: Engine<Msg> = Engine::new(t, 1);
        e.set_agent_with_start(
            n0,
            Box::new(StartClock { started_at: None }),
            SimTime::from_secs(1),
        );
        e.run();
        assert_eq!(
            e.agent::<StartClock>(n0).unwrap().started_at,
            Some(SimTime::from_secs(1))
        );
    }

    #[test]
    fn drained_run_leaves_clock_at_last_event() {
        // Regression: run() used to leave `now` at SimTime::MAX after the
        // queue drained, so any further scheduling overflowed the clock.
        let (t, [n0, n1, n2]) = chain3(0.0);
        let mut e: Engine<Msg> = Engine::new(t, 1);
        let chan = e.add_channel(&[n0, n1, n2]);
        e.set_agent(n0, Box::new(Burst { chan, count: 1 }));
        e.set_agent(n2, Box::new(Sniffer::default()));
        e.run();
        // Last event is the delivery at n2: 10ms tx + 10ms latency per hop.
        assert_eq!(e.now(), SimTime::from_millis(40));
        // The engine must remain usable: schedule more work and run again.
        e.multicast_from(n0, chan, Msg::Data(99), 1000);
        let processed = e.run();
        assert!(processed > 0);
        assert_eq!(e.now(), SimTime::from_millis(80));
        let heard = &e.agent::<Sniffer>(n2).unwrap().heard;
        assert_eq!(
            heard.last(),
            Some(&(SimTime::from_millis(80), Msg::Data(99)))
        );
    }

    #[test]
    fn stale_and_double_cancels_do_not_leak() {
        // Regression: CancelTimer used to insert into the cancelled set
        // unconditionally, so cancelling an already-fired timer (the common
        // "ack arrived, cancel retransmit" pattern) grew the set forever.
        struct Churn {
            last: Option<TimerId>,
            rounds: u32,
        }
        impl Agent<Msg> for Churn {
            fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
                self.last = Some(ctx.set_timer(ms(1), 0));
            }
            fn on_packet(&mut self, _: &mut Ctx<'_, Msg>, _: &Packet<Msg>) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, token: u64) {
                // Cancel the timer that just fired (stale), twice (double).
                let stale = self.last.take().unwrap();
                ctx.cancel_timer(stale);
                ctx.cancel_timer(stale);
                if token < self.rounds as u64 {
                    self.last = Some(ctx.set_timer(ms(1), token + 1));
                }
            }
        }
        let (t, [n0, ..]) = chain3(0.0);
        let mut e: Engine<Msg> = Engine::new(t, 1);
        e.set_agent(
            n0,
            Box::new(Churn {
                last: None,
                rounds: 1000,
            }),
        );
        e.run();
        assert_eq!(e.pending_timer_count(), 0);
        assert_eq!(e.cancelled_timer_count(), 0, "cancelled set must not leak");
    }

    #[test]
    fn legitimate_cancel_is_reclaimed_when_deadline_passes() {
        struct SetAndCancel;
        impl Agent<Msg> for SetAndCancel {
            fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
                let id = ctx.set_timer(ms(5), 7);
                ctx.cancel_timer(id);
            }
            fn on_packet(&mut self, _: &mut Ctx<'_, Msg>, _: &Packet<Msg>) {}
            fn on_timer(&mut self, _: &mut Ctx<'_, Msg>, _: u64) {
                panic!("cancelled timer must not fire");
            }
        }
        let (t, [n0, ..]) = chain3(0.0);
        let mut e: Engine<Msg> = Engine::new(t, 1);
        e.set_agent(n0, Box::new(SetAndCancel));
        e.run();
        // Once the cancelled deadline is processed, both sets are empty.
        assert_eq!(e.pending_timer_count(), 0);
        assert_eq!(e.cancelled_timer_count(), 0);
    }
}
