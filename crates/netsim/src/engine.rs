//! The discrete-event engine.
//!
//! Owns the topology, routing trees, link queues, channels, agents, fault
//! schedule, and the event queue.  A run is fully determined by (topology,
//! agents, fault plan, seed): events are totally ordered by an
//! [`EventKey`] that is a pure function of simulation history (fire time,
//! push time, pushing node, per-node sequence), agents draw from per-node
//! RNG streams split off the root seed, and link-loss sampling draws from
//! per-(link, direction) streams.  Because none of those inputs depend on
//! which queue or thread carries an event, a run is bit-identical whether
//! it executes serially or partitioned across shards (see `shard.rs` and
//! [`Engine::advance`]).
//!
//! Two allocation-conscious structures back the hot path: the slab-backed
//! [`crate::queue::EventQueue`], whose heap moves small `Copy` keys
//! instead of whole events, and the private packet arena (`arena.rs`),
//! which interns each transmitted packet once and forwards lightweight
//! handles hop-by-hop instead of cloning an `Rc` per hop.  Both recycle
//! their slots, so a steady-state run does not touch the allocator per
//! event or per packet.
//!
//! Configuration goes through [`EngineBuilder`], which assembles the whole
//! scenario — channels, agents with start times, recorder mode, fault
//! plan — before [`EngineBuilder::build`] produces a runnable [`Engine`].
//!
//! ## Dynamic topology
//!
//! Shortest-path trees are computed lazily against the current link-up
//! mask.  A [`FaultEvent::LinkDown`] invalidates every cached tree that
//! routes over the dead link; a [`FaultEvent::LinkUp`] invalidates all of
//! them (a restored link can shorten any path).  The next packet forwarded
//! from a source recomputes that source's tree on demand, so routing
//! reacts to flaps without paying for trees nobody uses.  The
//! [`DistanceOracle`] intentionally stays frozen at build time: it models
//! a *converged* session's RTT knowledge, not instantaneous reachability.

use crate::agent::{Action, Agent, Ctx, TimerId};
use crate::arena::{PacketArena, PacketHeader, PacketRef};
use crate::channel::{Channel, ChannelId};
use crate::faults::{FaultEvent, FaultPlan};
use crate::graph::{LinkId, NodeId, Topology};
use crate::link::LinkState;
use crate::metrics::{DropRecord, Record, Recorder, RecorderMode};
use crate::packet::{Classify, Packet};
use crate::probe::{AuditConfig, AuditReport, Auditor, ProbeRecord, ProbeSink};
use crate::queue::{EventKey, EventQueue};
use crate::rng::SimRng;
use crate::routing::{DistanceOracle, Spt};
use crate::scenario::{MembershipEvent, ScenarioPlan};
use crate::shard::{OutMsg, ShardCtx, ShardPlan};
use crate::time::{SimDuration, SimTime};
use std::any::Any;
use std::collections::HashSet;
use std::sync::Arc;

/// One scheduled event.  Payload-free: packets in flight live in the
/// engine's arena and events carry only a `Copy` handle, so the whole
/// enum is small and `M`-independent.
pub(crate) enum EventKind {
    Start(NodeId),
    /// Packet arriving at `node`, to be delivered and forwarded onward.
    Arrive {
        node: NodeId,
        pkt: PacketRef,
    },
    Timer {
        node: NodeId,
        id: TimerId,
        token: u64,
        /// The node's crash epoch when the timer was armed; a stale epoch
        /// means the node crashed in between and the timer dies silently.
        epoch: u32,
    },
    /// A scheduled fault takes effect.
    Fault(FaultEvent),
    /// A scheduled channel-membership change takes effect.  Replicated to
    /// every shard, like faults: channel membership is replicated state.
    Membership(MembershipEvent),
}

/// The simulator.  `M` is the protocol payload type.
pub struct Engine<M> {
    pub(crate) topo: Topology,
    pub(crate) oracle: DistanceOracle,
    /// Lazily-computed shortest-path trees against the current `link_up`
    /// mask; `None` means "invalidated or never needed yet".  Stays a
    /// zero-length vec until a tree is first requested, so tree-forwarded
    /// runs never pay the `O(nodes)` table (let alone the `O(n²)` trees).
    pub(crate) spts: Vec<Option<Spt>>,
    /// Whether forwarding may use the `O(depth)`-per-hop tree fast path
    /// instead of per-source SPTs.  True only when the topology is a tree
    /// *and* no link fault can change routing mid-run; the two paths
    /// produce bit-identical schedules where both apply.
    pub(crate) tree_forwarding: bool,
    pub(crate) link_state: Vec<LinkState>,
    /// Whether each link currently carries traffic (fault injection).
    pub(crate) link_up: Vec<bool>,
    /// Whether each node's *agent* is running; a crashed node still
    /// forwards (the router outlives the application process).
    pub(crate) node_up: Vec<bool>,
    /// Per-node crash epoch; bumped on `NodeCrash` so timers armed before
    /// the crash never fire after a restart.
    pub(crate) epoch: Vec<u32>,
    pub(crate) channels: Vec<Channel>,
    pub(crate) agents: Vec<Option<Box<dyn Agent<M>>>>,
    pub(crate) agent_rngs: Vec<SimRng>,
    /// Frozen base stream for link-loss sampling; never drawn from
    /// directly — per-(link, direction) streams split off lazily (below),
    /// so loss draws depend only on that link direction's own history and
    /// are identical at any shard count.
    pub(crate) loss_base: SimRng,
    /// Lazily-initialized loss streams per link: `[from-a, from-b]`.
    pub(crate) loss_streams: Vec<Option<Box<[SimRng; 2]>>>,
    pub(crate) queue: EventQueue<EventKind>,
    /// In-flight packets, interned once per multicast; `Arrive` events
    /// hold [`PacketRef`] handles into it.
    pub(crate) arena: PacketArena<M>,
    pub(crate) now: SimTime,
    /// Timer events scheduled but not yet fired.  Keyed by id (ids are
    /// never reused), removed when the event is popped, so both this set
    /// and `cancelled` stay bounded by the number of in-flight timers.
    pub(crate) pending_timers: HashSet<TimerId>,
    /// Cancellations whose timer event is still in the queue.  Invariant:
    /// `cancelled ⊆ pending_timers` — cancelling an already-fired (or
    /// never-armed) timer must not leak an entry forever.
    pub(crate) cancelled: HashSet<TimerId>,
    /// Per-node monotone counter feeding timer ids, packet uids, and
    /// event-key sequence numbers.  Only drawn while processing events at
    /// the owning node, so the draw sequence — and with it every
    /// [`EventKey`] — is a pure function of simulation history, identical
    /// at any shard count.
    pub(crate) node_seq: Vec<u64>,
    /// Sequence for origin-0 (build/external) event keys.
    pub(crate) build_seq: u64,
    pub(crate) recorder: Recorder,
    pub(crate) probes: ProbeSink,
    /// `Some` while this engine is a shard of a partitioned run; `hop`
    /// diverts arrivals owned by other shards into `outbox`.
    pub(crate) shard: Option<ShardCtx>,
    /// Cross-shard arrivals generated during the current window.
    pub(crate) outbox: Vec<OutMsg<M>>,
    /// Builder-supplied defaults consulted by [`Engine::advance`] when the
    /// [`RunSpec`] leaves them unset.
    pub(crate) default_plan: Option<Arc<ShardPlan>>,
    pub(crate) default_threads: Option<usize>,
}

impl<M: Classify + Clone + 'static> Engine<M> {
    /// Creates an engine over a topology with a root RNG seed.
    ///
    /// The distance oracle is computed eagerly — dense all-pairs for meshy
    /// topologies (cheap at paper scale, 113 nodes), `O(n)` tree arrays
    /// when the topology is a tree; per-source routing trees are computed
    /// lazily on first use so fault-driven invalidation stays cheap, and
    /// are never computed at all on fault-free tree topologies (see
    /// [`Engine::schedule_faults`]).
    ///
    /// Prefer [`EngineBuilder`], which configures channels, agents,
    /// recorder mode, and the fault plan in one place.
    pub fn new(topo: Topology, seed: u64) -> Engine<M> {
        let n = topo.node_count();
        let mut root = SimRng::new(seed);
        let loss_base = root.split(u64::MAX);
        let agent_rngs = (0..n as u64).map(|i| root.split(i)).collect();
        let oracle = DistanceOracle::compute(&topo);
        let tree_forwarding = oracle.is_tree();
        Engine {
            link_state: vec![LinkState::default(); topo.link_count()],
            link_up: vec![true; topo.link_count()],
            node_up: vec![true; n],
            epoch: vec![0; n],
            spts: Vec::new(),
            tree_forwarding,
            oracle,
            channels: Vec::new(),
            agents: (0..n).map(|_| None).collect(),
            agent_rngs,
            loss_base,
            loss_streams: (0..topo.link_count()).map(|_| None).collect(),
            queue: EventQueue::new(),
            arena: PacketArena::new(),
            now: SimTime::ZERO,
            pending_timers: HashSet::new(),
            cancelled: HashSet::new(),
            node_seq: vec![0; n],
            build_seq: 0,
            recorder: Recorder::default(),
            probes: ProbeSink::default(),
            shard: None,
            outbox: Vec::new(),
            default_plan: None,
            default_threads: None,
            topo,
        }
    }

    /// The topology under simulation.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Ground-truth propagation delays (see [`Ctx::one_way`] for the rules
    /// on which protocols may consult it).
    pub fn oracle(&self) -> &DistanceOracle {
        &self.oracle
    }

    /// The shortest-path tree rooted at `src`, computed against the
    /// current link-up mask (takes `&mut self` because trees are cached
    /// lazily and invalidated by link faults).
    pub fn spt(&mut self, src: NodeId) -> &Spt {
        self.ensure_spt(src.idx());
        self.spts[src.idx()].as_ref().expect("just ensured")
    }

    fn ensure_spt(&mut self, src: usize) {
        if self.spts.is_empty() {
            self.spts = (0..self.topo.node_count()).map(|_| None).collect();
        }
        if self.spts[src].is_none() {
            self.spts[src] = Some(Spt::compute_masked(
                &self.topo,
                NodeId(src as u32),
                Some(&self.link_up),
            ));
        }
    }

    /// Whether a link currently carries traffic.
    pub fn link_is_up(&self, link: LinkId) -> bool {
        self.link_up[link.idx()]
    }

    /// Whether a node's agent is currently running (crashed nodes still
    /// forward traffic).
    pub fn node_is_up(&self, node: NodeId) -> bool {
        self.node_up[node.idx()]
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Timer events scheduled but not yet fired (diagnostics).
    pub fn pending_timer_count(&self) -> usize {
        self.pending_timers.len()
    }

    /// Cancellations waiting for their timer event to pop (diagnostics).
    /// Always bounded by [`Engine::pending_timer_count`].
    pub fn cancelled_timer_count(&self) -> usize {
        self.cancelled.len()
    }

    /// Packets currently interned in the arena, i.e. with at least one
    /// `Arrive` event still queued (diagnostics).  Zero after the queue
    /// drains — arena slots must not leak.
    pub fn packets_in_flight(&self) -> usize {
        self.arena.live()
    }

    /// Per-source routing trees currently cached (diagnostics).  Stays
    /// zero for tree-forwarded runs, which never materialize an SPT.
    pub fn cached_spt_count(&self) -> usize {
        self.spts.iter().flatten().count()
    }

    /// Recorded observations so far.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Mutable access to the recorder (e.g. to clear a warm-up phase).
    pub fn recorder_mut(&mut self) -> &mut Recorder {
        &mut self.recorder
    }

    /// The probe sink agents emit decision-level events into (disabled by
    /// default; see [`EngineBuilder::record_probes`]).
    pub fn probes(&self) -> &ProbeSink {
        &self.probes
    }

    /// Mutable probe-sink access (e.g. to toggle recording mid-run or
    /// attach an [`Auditor`] to an imperatively-built engine).
    pub fn probes_mut(&mut self) -> &mut ProbeSink {
        &mut self.probes
    }

    /// Probe events captured so far (empty unless recording was enabled).
    pub fn probe_records(&self) -> &[ProbeRecord] {
        self.probes.records()
    }

    /// The attached auditor's verdict as of the current simulation time,
    /// or `None` if no auditor was attached.
    pub fn audit_report(&self) -> Option<AuditReport> {
        self.probes.audit_report(self.now)
    }

    /// Registers a multicast channel over the given members.
    pub fn add_channel(&mut self, members: &[NodeId]) -> ChannelId {
        let id = ChannelId(self.channels.len() as u32);
        self.channels
            .push(Channel::new(self.topo.node_count(), members));
        id
    }

    /// Channel lookup.
    pub fn channel(&self, id: ChannelId) -> &Channel {
        &self.channels[id.idx()]
    }

    /// Attaches an agent to a node and schedules its `on_start` at t = 0.
    pub fn set_agent(&mut self, node: NodeId, agent: Box<dyn Agent<M>>) {
        self.attach_agent(node, agent, SimTime::ZERO);
    }

    fn attach_agent(&mut self, node: NodeId, agent: Box<dyn Agent<M>>, at: SimTime) {
        assert!(node.idx() < self.topo.node_count(), "unknown node {node:?}");
        assert!(
            self.agents[node.idx()].is_none(),
            "node {node:?} already has an agent"
        );
        self.agents[node.idx()] = Some(agent);
        self.push(at, EventKind::Start(node));
    }

    /// Schedules every event of a fault plan.  Events must not lie in the
    /// engine's past.
    ///
    /// A plan containing link up/down events disables the tree forwarding
    /// fast path for the rest of the run: packets already in a subtree
    /// must observe the live link mask and rerouted trees, which only the
    /// masked-SPT path models.
    pub fn schedule_faults(&mut self, plan: &FaultPlan) {
        if plan
            .events()
            .iter()
            .any(|(_, ev)| matches!(ev, FaultEvent::LinkDown(_) | FaultEvent::LinkUp(_)))
        {
            self.tree_forwarding = false;
        }
        for &(when, ev) in plan.events() {
            assert!(
                when >= self.now,
                "fault at {when:?} is in the past (now = {:?})",
                self.now
            );
            match ev {
                FaultEvent::LinkDown(l) | FaultEvent::LinkUp(l) | FaultEvent::SetLoss(l, _) => {
                    assert!(l.idx() < self.topo.link_count(), "unknown link {l:?}");
                }
                FaultEvent::NodeCrash(n) | FaultEvent::NodeRestart(n) => {
                    assert!(n.idx() < self.topo.node_count(), "unknown node {n:?}");
                }
            }
            self.push(when, EventKind::Fault(ev));
        }
    }

    /// Schedules one channel-membership change.  Unlike link faults this
    /// never disables the tree-forwarding fast path and invalidates no
    /// routing tree: scope pruning consults live membership per hop, so
    /// the membership flip is visible to the very next packet.
    pub fn schedule_membership(&mut self, when: SimTime, ev: MembershipEvent) {
        assert!(
            when >= self.now,
            "membership event at {when:?} is in the past (now = {:?})",
            self.now
        );
        let (channel, node) = (ev.channel(), ev.node());
        assert!(
            channel.idx() < self.channels.len(),
            "unknown channel {channel:?}"
        );
        assert!(node.idx() < self.topo.node_count(), "unknown node {node:?}");
        self.push(when, EventKind::Membership(ev));
    }

    /// Immutable, downcast access to an agent's concrete type — used after
    /// a run to read out protocol state (requires Rust trait upcasting).
    pub fn agent<T: 'static>(&self, node: NodeId) -> Option<&T> {
        let a = self.agents[node.idx()].as_deref()?;
        (a as &dyn Any).downcast_ref::<T>()
    }

    /// Serial horizon run (the single-shard path of [`Engine::advance`]).
    pub(crate) fn run_serial_until(&mut self, t_end: SimTime) -> u64 {
        let mut processed = 0;
        while let Some(key) = self.queue.peek_key() {
            if key.time > t_end {
                break;
            }
            let (key, kind) = self.queue.pop_keyed().expect("peeked");
            debug_assert!(key.time >= self.now, "time went backwards");
            self.now = key.time;
            self.dispatch(kind);
            processed += 1;
        }
        if self.now < t_end {
            self.now = t_end;
        }
        processed
    }

    /// Serial drain run (the single-shard path of [`Engine::advance`]).
    pub(crate) fn run_serial_drain(&mut self) -> u64 {
        let mut processed = 0;
        while let Some((key, kind)) = self.queue.pop_keyed() {
            debug_assert!(key.time >= self.now, "time went backwards");
            self.now = key.time;
            self.dispatch(kind);
            processed += 1;
        }
        processed
    }

    /// Processes every queued event with key time ≤ `bound` (one
    /// conservative window of a sharded run), stamping each event's key
    /// into the recorder and probe sink so per-shard outputs can be merged
    /// back into the serial timeline.  Returns `(events processed,
    /// replicated events processed)` — fault and membership events are
    /// replicated to every shard, so the sharded driver subtracts the
    /// duplicates from its event total.
    pub(crate) fn run_window(&mut self, bound: SimTime) -> (u64, u64) {
        let mut processed = 0;
        let mut faults = 0;
        while let Some(key) = self.queue.peek_key() {
            if key.time > bound {
                break;
            }
            let (key, kind) = self.queue.pop_keyed().expect("peeked");
            debug_assert!(key.time >= self.now, "time went backwards");
            self.now = key.time;
            if matches!(kind, EventKind::Fault(_) | EventKind::Membership(_)) {
                faults += 1;
            }
            self.recorder.set_tag(key);
            self.probes.set_tag(key);
            self.dispatch(kind);
            processed += 1;
        }
        (processed, faults)
    }

    /// Enqueues cross-shard arrivals received from peer shards.  Keys are
    /// the exact keys the sending shard would have used locally, so the
    /// destination queue orders them exactly as the serial engine would.
    pub(crate) fn ingest(&mut self, mut msgs: Vec<OutMsg<M>>) {
        msgs.sort_by_key(|m| m.key);
        for m in msgs {
            let pref = self.arena.insert(m.pkt, m.class);
            self.arena.add_ref(pref);
            self.queue.push_keyed(
                m.key,
                EventKind::Arrive {
                    node: m.node,
                    pkt: pref,
                },
            );
        }
    }

    /// Schedules a build-time / external event: origin 0, sequenced by the
    /// master-only `build_seq` counter.
    fn push(&mut self, time: SimTime, kind: EventKind) {
        let key = EventKey {
            time,
            push_time: self.now,
            origin: 0,
            oseq: self.build_seq,
        };
        self.build_seq += 1;
        self.queue.push_keyed(key, kind);
    }

    /// Schedules an event generated while processing node `node`: origin
    /// `node + 1`, sequenced by that node's own counter, so the key is
    /// identical no matter which shard carries the event.
    fn push_from(&mut self, node: NodeId, time: SimTime, oseq: u64, kind: EventKind) {
        let key = EventKey {
            time,
            push_time: self.now,
            origin: node.0 + 1,
            oseq,
        };
        self.queue.push_keyed(key, kind);
    }

    /// Draws the next value of `node`'s monotone sequence counter.
    #[inline]
    fn next_seq(&mut self, node: NodeId) -> u64 {
        let seq = self.node_seq[node.idx()];
        self.node_seq[node.idx()] += 1;
        seq
    }

    fn dispatch(&mut self, kind: EventKind) {
        match kind {
            EventKind::Start(node) => {
                self.with_agent(node, |agent, ctx| agent.on_start(ctx));
            }
            EventKind::Timer {
                node,
                id,
                token,
                epoch,
            } => {
                self.pending_timers.remove(&id);
                if self.cancelled.remove(&id) {
                    return;
                }
                // Timers armed before a crash die with the old epoch, so a
                // restarted agent only sees timers it armed after coming
                // back (its on_start re-arms whatever it needs).
                if epoch != self.epoch[node.idx()] {
                    return;
                }
                self.with_agent(node, |agent, ctx| agent.on_timer(ctx, token));
            }
            EventKind::Arrive { node, pkt } => {
                // Deliver to the local agent (if any), then keep forwarding
                // down the source-rooted tree.  A crashed node still
                // forwards — the router outlives the application — but its
                // agent hears nothing (with_agent checks node_up).
                let hdr = self.arena.header(pkt);
                self.recorder.record_delivery(Record {
                    time: self.now,
                    node,
                    src: hdr.src,
                    class: hdr.class,
                    bytes: hdr.bytes,
                    channel: hdr.channel,
                });
                self.forward(node, pkt);
                let has_agent = self.agents[node.idx()].is_some();
                if let Some(owned) = self.arena.release(pkt) {
                    // Last arrival: the packet moved out of the arena with
                    // no clone; deliver it and let it drop.
                    if has_agent {
                        self.with_agent(node, |agent, ctx| agent.on_packet(ctx, &owned));
                    }
                } else if has_agent {
                    // Other arrivals still pending: lend the packet to the
                    // callback and put it back.  The slot stays reserved,
                    // so re-entrant multicasts cannot reuse it.
                    let owned = self.arena.take(pkt);
                    self.with_agent(node, |agent, ctx| agent.on_packet(ctx, &owned));
                    self.arena.restore(pkt, owned);
                }
            }
            EventKind::Fault(ev) => self.apply_fault(ev),
            EventKind::Membership(ev) => self.apply_membership(ev),
        }
    }

    /// Applies one membership change.  Idempotent (like fault
    /// application), so a replicated event converges on every shard.
    fn apply_membership(&mut self, ev: MembershipEvent) {
        match ev {
            MembershipEvent::Join { channel, node } => {
                self.channels[channel.idx()].insert(node);
            }
            MembershipEvent::Leave { channel, node } => {
                self.channels[channel.idx()].remove(node);
            }
        }
    }

    fn apply_fault(&mut self, ev: FaultEvent) {
        match ev {
            FaultEvent::LinkDown(link) => {
                if !self.link_up[link.idx()] {
                    return; // already down
                }
                self.link_up[link.idx()] = false;
                // Only trees actually routing over the dead link reroute.
                for spt in &mut self.spts {
                    if spt.as_ref().is_some_and(|s| s.uses_link(link)) {
                        *spt = None;
                    }
                }
            }
            FaultEvent::LinkUp(link) => {
                if self.link_up[link.idx()] {
                    return; // already up
                }
                self.link_up[link.idx()] = true;
                // A restored link can shorten any path: drop every cached
                // tree and let forwarding recompute on demand.
                for spt in &mut self.spts {
                    *spt = None;
                }
            }
            FaultEvent::SetLoss(link, model) => {
                self.topo.set_loss_model(link, model);
                self.link_state[link.idx()].reset_chain();
            }
            FaultEvent::NodeCrash(node) => {
                if !self.node_up[node.idx()] {
                    return;
                }
                self.node_up[node.idx()] = false;
                self.epoch[node.idx()] += 1;
            }
            FaultEvent::NodeRestart(node) => {
                if self.node_up[node.idx()] {
                    return;
                }
                self.node_up[node.idx()] = true;
                if self.agents[node.idx()].is_some() {
                    // Warm restart: agent state persisted, its start hook
                    // runs again to re-arm timers and re-announce.  Keyed
                    // by the node's own counter (origin `node + 1`): in a
                    // sharded run only the shard owning `node` holds its
                    // agent, so exactly one shard schedules this, with the
                    // same key the serial engine would.
                    let seq = self.next_seq(node);
                    self.push_from(node, self.now, seq, EventKind::Start(node));
                }
            }
        }
    }

    /// Runs one agent callback and then applies its queued actions.
    /// Crashed nodes get no callbacks at all.
    fn with_agent(&mut self, node: NodeId, f: impl FnOnce(&mut dyn Agent<M>, &mut Ctx<'_, M>)) {
        if !self.node_up[node.idx()] {
            return;
        }
        let Some(mut agent) = self.agents[node.idx()].take() else {
            return;
        };
        let mut ctx = Ctx {
            now: self.now,
            node,
            rng: &mut self.agent_rngs[node.idx()],
            oracle: &self.oracle,
            actions: Vec::new(),
            next_timer: &mut self.node_seq[node.idx()],
            probes: &mut self.probes,
        };
        f(agent.as_mut(), &mut ctx);
        let actions = ctx.actions;
        self.agents[node.idx()] = Some(agent);
        for action in actions {
            self.apply(node, action);
        }
    }

    fn apply(&mut self, node: NodeId, action: Action<M>) {
        match action {
            Action::SetTimer { id, at, token } => {
                self.pending_timers.insert(id);
                let epoch = self.epoch[node.idx()];
                // The timer id's per-node sequence doubles as the event
                // key sequence — both come from the same counter.
                self.push_from(
                    node,
                    at,
                    id.seq(),
                    EventKind::Timer {
                        node,
                        id,
                        token,
                        epoch,
                    },
                );
            }
            Action::CancelTimer(id) => {
                // Only remember cancellations for timers still in the
                // queue; cancelling an already-fired timer (or cancelling
                // twice) must be a bounded no-op, not a permanent leak.
                if self.pending_timers.contains(&id) {
                    self.cancelled.insert(id);
                }
            }
            Action::Multicast {
                channel,
                payload,
                bytes,
            } => {
                self.multicast_from(node, channel, payload, bytes);
            }
        }
    }

    /// Injects a multicast transmission from `node` (agents do this via
    /// [`Ctx::multicast`]; tests may call it directly).
    pub fn multicast_from(&mut self, node: NodeId, channel: ChannelId, payload: M, bytes: u32) {
        assert!(
            self.channels[channel.idx()].contains(node),
            "{node:?} is not a member of {channel:?}"
        );
        let pkt = Packet {
            uid: self.next_seq(node),
            src: node,
            channel,
            sent_at: self.now,
            bytes,
            payload,
        };
        let class = pkt.class();
        self.recorder.record_transmission(Record {
            time: self.now,
            node,
            src: node,
            class,
            bytes,
            channel,
        });
        // Intern once; every queued Arrive takes a reference in forward().
        // If no first hop survives (pruned, down, or dropped) the orphan
        // is reclaimed immediately.
        let pref = self.arena.insert(pkt, class);
        self.forward(node, pref);
        self.arena.release_orphan(pref);
    }

    /// Forwards `pkt` from `at` to each child in the packet-source's tree,
    /// pruning at channel non-members (administrative scope boundary) and
    /// sampling the per-link loss process for lossy traffic classes.
    ///
    /// On tree topologies without link faults the children are enumerated
    /// directly from the adjacency list (every neighbour except the one
    /// toward the source), so no per-source SPT is ever materialized —
    /// the `O(n)` trees that session-announce traffic from every member
    /// would otherwise force add up to `O(n²)`.  Both neighbour lists and
    /// SPT child groups are sorted by node id, so the hop order (and with
    /// it the loss-RNG draw order) is bit-identical across the two paths.
    fn forward(&mut self, at: NodeId, pkt: PacketRef) {
        // The cached header carries everything the hop loop needs — the
        // payload (and its class()) is never touched per hop.
        let hdr = self.arena.header(pkt);
        if self.tree_forwarding {
            let toward = if at == hdr.src {
                None
            } else {
                Some(self.oracle.tree_next_hop(at, hdr.src))
            };
            for i in 0..self.topo.neighbors(at).len() {
                let (child, link) = self.topo.neighbors(at)[i];
                if Some(child) == toward {
                    continue;
                }
                self.hop(at, child, link, pkt, hdr);
            }
            return;
        }
        // The SPT stores child edges in a flat CSR arena, so each edge is
        // copied out by index — no per-packet allocation while the rest of
        // the engine state stays mutable.
        let src = hdr.src.idx();
        self.ensure_spt(src);
        let spt = self.spts[src].as_ref().expect("just ensured");
        let (start, end) = spt.child_range(at);
        for i in start..end {
            let (child, link) = self.spts[src].as_ref().expect("ensured").child_edge(i);
            self.hop(at, child, link, pkt, hdr);
        }
    }

    /// One forwarding hop: link-mask and scope checks, loss sampling for
    /// lossy classes, then the queued arrival.
    ///
    /// Loss draws come from the link *direction*'s own lazily-split RNG
    /// stream, and the arrival's event key from `at`'s own counter — both
    /// are pure functions of this hop's local history, so the schedule is
    /// bit-identical at any shard count.  In a sharded run, an arrival at
    /// a node owned by another shard is diverted into the outbox instead
    /// of this shard's queue.
    fn hop(&mut self, at: NodeId, child: NodeId, link: LinkId, pkt: PacketRef, hdr: PacketHeader) {
        if !self.link_up[link.idx()] {
            // A link that died after this packet entered the subtree: the
            // hop simply never happens (down is not loss — no drop record,
            // and lossless classes are blocked too).
            return;
        }
        if !self.channels[hdr.channel.idx()].contains(child) {
            return; // scope boundary: prune the whole subtree
        }
        let spec = self.topo.link(link);
        if hdr.class.lossy() {
            if self.loss_streams[link.idx()].is_none() {
                let l = link.idx() as u64;
                self.loss_streams[link.idx()] = Some(Box::new([
                    self.loss_base.clone().split(2 * l),
                    self.loss_base.clone().split(2 * l + 1),
                ]));
            }
            let dir = usize::from(spec.a != at);
            let streams = self.loss_streams[link.idx()].as_mut().expect("just set");
            let state = &mut self.link_state[link.idx()];
            let dropped = {
                let bad = state.chain_state_mut(spec, at);
                spec.params.loss.sample(bad, &mut streams[dir])
            };
            if dropped {
                self.recorder.record_drop(DropRecord {
                    time: self.now,
                    from: at,
                    to: child,
                    class: hdr.class,
                });
                return;
            }
        }
        let arrive = self.link_state[link.idx()].transmit(spec, at, self.now, hdr.bytes);
        let oseq = self.next_seq(at);
        if let Some(sh) = &self.shard {
            let dst = sh.plan.owner(child);
            if dst != sh.me {
                // Cross-shard hop: the packet leaves this shard's arena as
                // a timestamped message; the receiver re-interns it.
                let owned = self.arena.take(pkt);
                let copy = owned.clone();
                self.arena.restore(pkt, owned);
                self.outbox.push(OutMsg {
                    dst,
                    key: EventKey {
                        time: arrive,
                        push_time: self.now,
                        origin: at.0 + 1,
                        oseq,
                    },
                    node: child,
                    class: hdr.class,
                    pkt: copy,
                });
                return;
            }
        }
        self.arena.add_ref(pkt);
        self.push_from(at, arrive, oseq, EventKind::Arrive { node: child, pkt });
    }

    /// Total approximate resident bytes of protocol state across every
    /// attached agent (see [`Agent::state_bytes`]).
    pub fn state_bytes(&self) -> u64 {
        self.agents
            .iter()
            .flatten()
            .map(|a| a.state_bytes() as u64)
            .sum()
    }

    /// Approximate resident protocol-state bytes of one node's agent
    /// (zero when the node has no agent).
    pub fn agent_state_bytes(&self, node: NodeId) -> usize {
        self.agents[node.idx()]
            .as_deref()
            .map_or(0, |a| a.state_bytes())
    }
}

/// Configures a complete simulation scenario — topology, seed, recorder,
/// channels, agents with start times, and fault plan — then produces a
/// runnable [`Engine`].
///
/// Channel ids are assigned in registration order starting at 0, exactly
/// as [`Engine::add_channel`] does, so a builder-constructed scenario is
/// bit-identical to the equivalent imperative setup.
///
/// ```
/// use sharqfec_netsim::prelude::*;
/// # let mut t = TopologyBuilder::new();
/// # let a = t.add_node("a");
/// # let b = t.add_node("b");
/// # t.add_link(a, b, LinkParams::lossless_infinite(SimDuration::from_millis(1)));
/// # #[derive(Clone, Debug)]
/// # struct Ping;
/// # impl Classify for Ping { fn class(&self) -> TrafficClass { TrafficClass::Data } }
/// let mut builder: EngineBuilder<Ping> = EngineBuilder::new(t.build(), 42);
/// builder
///     .recorder_mode(RecorderMode::Streaming)
///     .fault_plan(FaultPlan::new().link_flap(
///         LinkId(0),
///         SimTime::from_secs(2),
///         SimTime::from_secs(3),
///     ));
/// let chan = builder.add_channel(&[a, b]);
/// let mut engine = builder.build();
/// engine.advance(RunSpec::to(SimTime::from_secs(5)));
/// # let _ = chan;
/// ```
pub struct EngineBuilder<M> {
    topo: Topology,
    seed: u64,
    mode: RecorderMode,
    bin_width: Option<SimDuration>,
    channels: Vec<Vec<NodeId>>,
    agents: Vec<(NodeId, Box<dyn Agent<M>>, SimTime)>,
    plan: FaultPlan,
    scenario: ScenarioPlan,
    record_probes: bool,
    audit: Option<AuditConfig>,
    shard_plan: Option<Arc<ShardPlan>>,
    threads: Option<usize>,
}

impl<M: Classify + Clone + 'static> EngineBuilder<M> {
    /// Starts a scenario over a topology with a root RNG seed.
    pub fn new(topo: Topology, seed: u64) -> EngineBuilder<M> {
        EngineBuilder {
            topo,
            seed,
            mode: RecorderMode::Raw,
            bin_width: None,
            channels: Vec::new(),
            agents: Vec::new(),
            plan: FaultPlan::new(),
            scenario: ScenarioPlan::new(),
            record_probes: false,
            audit: None,
            shard_plan: None,
            threads: None,
        }
    }

    /// Default shard plan for [`Engine::advance`] calls whose [`RunSpec`](crate::shard::RunSpec)
    /// leaves the plan unset (default: serial).
    pub fn shard_plan(&mut self, plan: Arc<ShardPlan>) -> &mut Self {
        self.shard_plan = Some(plan);
        self
    }

    /// Default worker-thread count for sharded [`Engine::advance`] calls
    /// (default: one thread per shard).
    pub fn threads(&mut self, threads: usize) -> &mut Self {
        self.threads = Some(threads);
        self
    }

    /// How observations are stored (default [`RecorderMode::Raw`]).
    pub fn recorder_mode(&mut self, mode: RecorderMode) -> &mut Self {
        self.mode = mode;
        self
    }

    /// Histogram bin width for [`RecorderMode::Streaming`] (default 100 ms).
    pub fn bin_width(&mut self, width: SimDuration) -> &mut Self {
        self.bin_width = Some(width);
        self
    }

    /// Registers a multicast channel; ids are dense from 0 in call order.
    pub fn add_channel(&mut self, members: &[NodeId]) -> ChannelId {
        let id = ChannelId(self.channels.len() as u32);
        self.channels.push(members.to_vec());
        id
    }

    /// Attaches an agent starting at t = 0.
    pub fn add_agent(&mut self, node: NodeId, agent: Box<dyn Agent<M>>) -> &mut Self {
        self.add_agent_at(node, agent, SimTime::ZERO)
    }

    /// Attaches an agent with an explicit start time.
    pub fn add_agent_at(
        &mut self,
        node: NodeId,
        agent: Box<dyn Agent<M>>,
        at: SimTime,
    ) -> &mut Self {
        self.agents.push((node, agent, at));
        self
    }

    /// Schedules a fault plan (replaces any previously set plan).
    pub fn fault_plan(&mut self, plan: FaultPlan) -> &mut Self {
        self.plan = plan;
        self
    }

    /// Installs a workload scenario (replaces any previously set one).
    /// At build time the plan compiles to ordinary DES events:
    ///
    /// * membership events are scheduled *before* any agent start, so a
    ///   join at `t` orders ahead of the joining agent's start at `t`;
    /// * a node whose earliest event on a channel is a `Join` is stripped
    ///   from that channel's initial member list;
    /// * [`ScenarioPlan::starts`] override the start times passed to
    ///   [`EngineBuilder::add_agent_at`];
    /// * stops and restarts become [`FaultEvent::NodeCrash`] /
    ///   [`FaultEvent::NodeRestart`] events appended to the fault plan.
    ///
    /// If an auditor is attached, the scenario's disruption instants are
    /// excused ([`AuditConfig::excuse_scenario`]).
    pub fn scenario(&mut self, plan: ScenarioPlan) -> &mut Self {
        self.scenario = plan;
        self
    }

    /// Keeps the probe events agents emit (default: discard them).  Probe
    /// emission is a single branch when disabled, so enabling this never
    /// changes simulated behaviour — only what is retained.
    pub fn record_probes(&mut self) -> &mut Self {
        self.record_probes = true;
        self
    }

    /// Attaches an invariant [`Auditor`] fed from the probe stream
    /// (implies [`EngineBuilder::record_probes`]).  If a fault plan is
    /// set, its active span is excused from the single-ZCR invariant
    /// automatically ([`AuditConfig::excuse_faults`]).
    pub fn audit(&mut self, cfg: AuditConfig) -> &mut Self {
        self.record_probes = true;
        self.audit = Some(cfg);
        self
    }

    /// Attaches an invariant [`Auditor`] *without* retaining the probe
    /// stream: events flow into the auditor (whose state is zone-bounded)
    /// and are then discarded, instead of accumulating an `O(events)`
    /// record log.  Large-scale runs use this so a 10⁶-receiver sweep can
    /// stay audited without holding per-event history.
    pub fn audit_streaming(&mut self, cfg: AuditConfig) -> &mut Self {
        self.audit = Some(cfg);
        self
    }

    /// Builds the engine: recorder configured, channels registered, agent
    /// start events and fault events queued.
    ///
    /// # Panics
    ///
    /// Panics on an unknown node, a node with two agents, or a fault
    /// referencing an unknown link or node.
    pub fn build(self) -> Engine<M> {
        let mut engine: Engine<M> = Engine::new(self.topo, self.seed);
        if self.record_probes {
            engine.probes.set_recording(true);
        }
        if let Some(mut cfg) = self.audit {
            cfg.excuse_faults(&self.plan);
            cfg.excuse_scenario(&self.scenario);
            engine.probes.set_auditor(Auditor::new(cfg));
        }
        engine.recorder.set_mode(self.mode);
        if let Some(w) = self.bin_width {
            engine.recorder.set_bin_width(w);
        }
        for (i, members) in self.channels.iter().enumerate() {
            if self.scenario.is_empty() {
                engine.add_channel(members);
                continue;
            }
            // Future joiners start outside their channels: strip them
            // from the initial member list (keeps setup layers free to
            // register full zone rosters).
            let id = ChannelId(i as u32);
            let initial: Vec<NodeId> = members
                .iter()
                .copied()
                .filter(|&m| !self.scenario.initially_out(id, m))
                .collect();
            engine.add_channel(&initial);
        }
        // Membership events go in before any agent start, so a join at
        // time t orders ahead of an agent start at the same t (both are
        // origin-0 keys sequenced by push order).
        for &(when, ev) in self.scenario.events() {
            engine.schedule_membership(when, ev);
        }
        for (node, agent, at) in self.agents {
            let at = self.scenario.start_override(node).unwrap_or(at);
            engine.attach_agent(node, agent, at);
        }
        // Agent stops/restarts ride the fault machinery: a stop is a node
        // crash (timers die, state freezes), a rejoin a warm restart.
        let mut plan = self.plan;
        for &(when, node) in self.scenario.stops() {
            plan.push(when, FaultEvent::NodeCrash(node));
        }
        for &(when, node) in self.scenario.restarts() {
            plan.push(when, FaultEvent::NodeRestart(node));
        }
        engine.schedule_faults(&plan);
        engine.default_plan = self.shard_plan;
        engine.default_threads = self.threads;
        engine
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{LinkParams, TopologyBuilder};
    use crate::metrics::TrafficClass;
    use crate::shard::RunSpec;
    use crate::time::SimDuration;

    #[derive(Clone, Debug, PartialEq)]
    enum Msg {
        Data(u32),
        Nack,
    }
    impl Classify for Msg {
        fn class(&self) -> TrafficClass {
            match self {
                Msg::Data(_) => TrafficClass::Data,
                Msg::Nack => TrafficClass::Nack,
            }
        }
    }

    /// Agent that records everything it hears.
    #[derive(Default)]
    struct Sniffer {
        heard: Vec<(SimTime, Msg)>,
    }
    impl Agent<Msg> for Sniffer {
        fn on_packet(&mut self, ctx: &mut Ctx<'_, Msg>, pkt: &Packet<Msg>) {
            self.heard.push((ctx.now(), pkt.payload.clone()));
        }
    }

    /// Agent that fires a burst at start.
    struct Burst {
        chan: ChannelId,
        count: u32,
    }
    impl Agent<Msg> for Burst {
        fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
            for i in 0..self.count {
                ctx.multicast(self.chan, Msg::Data(i), 1000);
            }
        }
        fn on_packet(&mut self, _: &mut Ctx<'_, Msg>, _: &Packet<Msg>) {}
    }

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    /// chain 0-1-2, 10ms links, 800kbit/s (1000B tx = 10ms).
    fn chain3(loss_mid: f64) -> (Topology, [NodeId; 3]) {
        let mut b = TopologyBuilder::new();
        let n0 = b.add_node("0");
        let n1 = b.add_node("1");
        let n2 = b.add_node("2");
        b.add_link(n0, n1, LinkParams::new(ms(10), 800_000, 0.0));
        b.add_link(n1, n2, LinkParams::new(ms(10), 800_000, loss_mid));
        (b.build(), [n0, n1, n2])
    }

    #[test]
    fn multicast_reaches_all_members_with_correct_timing() {
        let (t, [n0, n1, n2]) = chain3(0.0);
        let mut e: Engine<Msg> = Engine::new(t, 1);
        let chan = e.add_channel(&[n0, n1, n2]);
        e.set_agent(n0, Box::new(Burst { chan, count: 1 }));
        e.set_agent(n1, Box::new(Sniffer::default()));
        e.set_agent(n2, Box::new(Sniffer::default()));
        e.advance(RunSpec::drain());
        // hop1: tx 10ms + lat 10ms = 20ms; hop2 arrives at 40ms.
        let s1 = e.agent::<Sniffer>(n1).unwrap();
        let s2 = e.agent::<Sniffer>(n2).unwrap();
        assert_eq!(s1.heard, vec![(SimTime::from_millis(20), Msg::Data(0))]);
        assert_eq!(s2.heard, vec![(SimTime::from_millis(40), Msg::Data(0))]);
    }

    #[test]
    fn scope_pruning_stops_at_non_members() {
        let (t, [n0, n1, n2]) = chain3(0.0);
        let mut e: Engine<Msg> = Engine::new(t, 1);
        // n2 is outside the channel: a scoped zone {0, 1}.
        let chan = e.add_channel(&[n0, n1]);
        e.set_agent(n0, Box::new(Burst { chan, count: 1 }));
        e.set_agent(n1, Box::new(Sniffer::default()));
        e.set_agent(n2, Box::new(Sniffer::default()));
        e.advance(RunSpec::drain());
        assert_eq!(e.agent::<Sniffer>(n1).unwrap().heard.len(), 1);
        assert!(e.agent::<Sniffer>(n2).unwrap().heard.is_empty());
    }

    #[test]
    fn middle_member_pruning_blocks_downstream_members() {
        // If the middle of the chain is not a member, scoping cuts off the
        // tail even though it is a member (zones must be contiguous).
        let (t, [n0, _n1, n2]) = chain3(0.0);
        let mut e: Engine<Msg> = Engine::new(t, 1);
        let chan = e.add_channel(&[n0, n2]);
        e.set_agent(n0, Box::new(Burst { chan, count: 1 }));
        e.set_agent(n2, Box::new(Sniffer::default()));
        e.advance(RunSpec::drain());
        assert!(e.agent::<Sniffer>(n2).unwrap().heard.is_empty());
    }

    #[test]
    fn serialization_queues_back_to_back_packets() {
        let (t, [n0, n1, _]) = chain3(0.0);
        let mut e: Engine<Msg> = Engine::new(t, 1);
        let chan = e.add_channel(&[n0, n1]);
        e.set_agent(n0, Box::new(Burst { chan, count: 3 }));
        e.set_agent(n1, Box::new(Sniffer::default()));
        e.advance(RunSpec::drain());
        let times: Vec<SimTime> = e
            .agent::<Sniffer>(n1)
            .unwrap()
            .heard
            .iter()
            .map(|(t, _)| *t)
            .collect();
        // 10ms serialization each, pipelined: arrivals at 20, 30, 40 ms.
        assert_eq!(
            times,
            vec![
                SimTime::from_millis(20),
                SimTime::from_millis(30),
                SimTime::from_millis(40)
            ]
        );
    }

    #[test]
    fn lossy_link_drops_data_but_never_nacks() {
        let (t, [n0, n1, n2]) = chain3(1.0); // middle link always loses
        let mut e: Engine<Msg> = Engine::new(t, 7);
        let chan = e.add_channel(&[n0, n1, n2]);

        struct Both {
            chan: ChannelId,
        }
        impl Agent<Msg> for Both {
            fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
                ctx.multicast(self.chan, Msg::Data(0), 1000);
                ctx.multicast(self.chan, Msg::Nack, 40);
            }
            fn on_packet(&mut self, _: &mut Ctx<'_, Msg>, _: &Packet<Msg>) {}
        }
        e.set_agent(n0, Box::new(Both { chan }));
        e.set_agent(n2, Box::new(Sniffer::default()));
        e.advance(RunSpec::drain());
        let heard = &e.agent::<Sniffer>(n2).unwrap().heard;
        assert_eq!(heard.len(), 1, "only the NACK should survive");
        assert_eq!(heard[0].1, Msg::Nack);
        assert_eq!(e.recorder().drops.len(), 1);
        assert_eq!(e.recorder().drops[0].class, TrafficClass::Data);
    }

    #[test]
    fn loss_drops_whole_subtree() {
        // star: 0 - 1 - {2, 3}; if link 0-1 drops, neither 2 nor 3 hears.
        let mut b = TopologyBuilder::new();
        let n0 = b.add_node("0");
        let n1 = b.add_node("1");
        let n2 = b.add_node("2");
        let n3 = b.add_node("3");
        b.add_link(n0, n1, LinkParams::infinite(ms(1), 1.0));
        b.add_link(n1, n2, LinkParams::lossless_infinite(ms(1)));
        b.add_link(n1, n3, LinkParams::lossless_infinite(ms(1)));
        let mut e: Engine<Msg> = Engine::new(b.build(), 3);
        let chan = e.add_channel(&[n0, n1, n2, n3]);
        e.set_agent(n0, Box::new(Burst { chan, count: 1 }));
        e.set_agent(n2, Box::new(Sniffer::default()));
        e.set_agent(n3, Box::new(Sniffer::default()));
        e.advance(RunSpec::drain());
        assert!(e.agent::<Sniffer>(n2).unwrap().heard.is_empty());
        assert!(e.agent::<Sniffer>(n3).unwrap().heard.is_empty());
        assert_eq!(e.recorder().deliveries.len(), 0);
    }

    #[test]
    fn timers_fire_in_order_and_cancel_works() {
        struct Timers {
            fired: Vec<u64>,
        }
        impl Agent<Msg> for Timers {
            fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
                ctx.set_timer(ms(30), 3);
                ctx.set_timer(ms(10), 1);
                let cancel_me = ctx.set_timer(ms(20), 2);
                ctx.cancel_timer(cancel_me);
            }
            fn on_packet(&mut self, _: &mut Ctx<'_, Msg>, _: &Packet<Msg>) {}
            fn on_timer(&mut self, _: &mut Ctx<'_, Msg>, token: u64) {
                self.fired.push(token);
            }
        }
        let (t, [n0, ..]) = chain3(0.0);
        let mut e: Engine<Msg> = Engine::new(t, 1);
        e.set_agent(n0, Box::new(Timers { fired: vec![] }));
        e.advance(RunSpec::drain());
        assert_eq!(e.agent::<Timers>(n0).unwrap().fired, vec![1, 3]);
    }

    #[test]
    fn run_until_stops_the_clock_and_resumes() {
        let (t, [n0, n1, _]) = chain3(0.0);
        let mut e: Engine<Msg> = Engine::new(t, 1);
        let chan = e.add_channel(&[n0, n1]);
        e.set_agent(n0, Box::new(Burst { chan, count: 1 }));
        e.set_agent(n1, Box::new(Sniffer::default()));
        e.advance(RunSpec::to(SimTime::from_millis(5)));
        assert_eq!(e.now(), SimTime::from_millis(5));
        assert!(e.agent::<Sniffer>(n1).unwrap().heard.is_empty());
        e.advance(RunSpec::to(SimTime::from_secs(1)));
        assert_eq!(e.agent::<Sniffer>(n1).unwrap().heard.len(), 1);
        assert_eq!(e.now(), SimTime::from_secs(1));
    }

    #[test]
    fn identical_seeds_replay_identically() {
        let run = |seed: u64| -> Vec<(u64, u32)> {
            let (t, [n0, n1, n2]) = chain3(0.3);
            let mut e: Engine<Msg> = Engine::new(t, seed);
            let chan = e.add_channel(&[n0, n1, n2]);
            e.set_agent(n0, Box::new(Burst { chan, count: 50 }));
            e.set_agent(n2, Box::new(Sniffer::default()));
            e.advance(RunSpec::drain());
            e.agent::<Sniffer>(n2)
                .unwrap()
                .heard
                .iter()
                .map(|(t, m)| {
                    (
                        t.as_nanos(),
                        match m {
                            Msg::Data(i) => *i,
                            Msg::Nack => u32::MAX,
                        },
                    )
                })
                .collect()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(
            run(42),
            run(43),
            "different seeds should differ at 30% loss"
        );
    }

    #[test]
    fn recorder_sees_transmissions_and_deliveries() {
        let (t, [n0, n1, n2]) = chain3(0.0);
        let mut e: Engine<Msg> = Engine::new(t, 1);
        let chan = e.add_channel(&[n0, n1, n2]);
        e.set_agent(n0, Box::new(Burst { chan, count: 2 }));
        e.advance(RunSpec::drain());
        assert_eq!(e.recorder().sent_count(n0, TrafficClass::Data), 2);
        // Two deliveries at n1, two at n2 (agents not required to record).
        assert_eq!(e.recorder().delivered_count(n1, TrafficClass::Data), 2);
        assert_eq!(e.recorder().delivered_count(n2, TrafficClass::Data), 2);
    }

    #[test]
    #[should_panic(expected = "not a member")]
    fn sending_from_non_member_panics() {
        let (t, [n0, n1, n2]) = chain3(0.0);
        let mut e: Engine<Msg> = Engine::new(t, 1);
        let chan = e.add_channel(&[n1, n2]);
        e.multicast_from(n0, chan, Msg::Nack, 40);
    }

    #[test]
    #[should_panic(expected = "already has an agent")]
    fn double_agent_attachment_panics() {
        let (t, [n0, ..]) = chain3(0.0);
        let mut e: Engine<Msg> = Engine::new(t, 1);
        e.set_agent(n0, Box::new(Sniffer::default()));
        e.set_agent(n0, Box::new(Sniffer::default()));
    }

    struct StartClock {
        started_at: Vec<SimTime>,
    }
    impl Agent<Msg> for StartClock {
        fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
            self.started_at.push(ctx.now());
        }
        fn on_packet(&mut self, _: &mut Ctx<'_, Msg>, _: &Packet<Msg>) {}
    }

    // Ported from the removed `set_recorder_mode`/`set_agent_with_start`
    // shims: the builder covers both configuration axes they provided.
    #[test]
    fn builder_configures_recorder_mode_and_delayed_start() {
        let (t, [n0, ..]) = chain3(0.0);
        let mut b: EngineBuilder<Msg> = EngineBuilder::new(t, 1);
        b.recorder_mode(RecorderMode::Streaming);
        b.add_agent_at(
            n0,
            Box::new(StartClock {
                started_at: Vec::new(),
            }),
            SimTime::from_secs(1),
        );
        let mut e = b.build();
        e.advance(RunSpec::drain());
        assert_eq!(e.recorder().mode(), RecorderMode::Streaming);
        assert_eq!(
            e.agent::<StartClock>(n0).unwrap().started_at,
            vec![SimTime::from_secs(1)]
        );
    }

    #[test]
    fn arena_drains_with_the_event_queue() {
        // Lossy traffic, pruned subtrees, and leaf deliveries all hand
        // their packet slots back: nothing may stay interned once the
        // queue is empty.
        let (t, [n0, n1, n2]) = chain3(0.3);
        let mut e: Engine<Msg> = Engine::new(t, 11);
        let chan = e.add_channel(&[n0, n1, n2]);
        let scoped = e.add_channel(&[n0]); // every first hop pruned
        e.set_agent(n0, Box::new(Burst { chan, count: 40 }));
        e.set_agent(n2, Box::new(Sniffer::default()));
        e.multicast_from(n0, scoped, Msg::Data(0), 1000);
        assert_eq!(e.packets_in_flight(), 0, "orphan reclaimed immediately");
        e.advance(RunSpec::drain());
        assert!(!e.agent::<Sniffer>(n2).unwrap().heard.is_empty());
        assert_eq!(e.packets_in_flight(), 0);
    }

    #[test]
    fn builder_honours_start_times() {
        let (t, [n0, ..]) = chain3(0.0);
        let mut b: EngineBuilder<Msg> = EngineBuilder::new(t, 1);
        b.add_agent_at(
            n0,
            Box::new(StartClock {
                started_at: Vec::new(),
            }),
            SimTime::from_secs(1),
        );
        let mut e = b.build();
        e.advance(RunSpec::drain());
        assert_eq!(
            e.agent::<StartClock>(n0).unwrap().started_at,
            vec![SimTime::from_secs(1)]
        );
    }

    #[test]
    fn builder_run_is_bit_identical_to_imperative_setup() {
        let imperative = || -> Vec<(SimTime, Msg)> {
            let (t, [n0, _n1, n2]) = chain3(0.3);
            let mut e: Engine<Msg> = Engine::new(t, 9);
            let chan = e.add_channel(&[n0, _n1, n2]);
            e.set_agent(n0, Box::new(Burst { chan, count: 50 }));
            e.set_agent(n2, Box::new(Sniffer::default()));
            e.advance(RunSpec::drain());
            e.agent::<Sniffer>(n2).unwrap().heard.clone()
        };
        let built = || -> Vec<(SimTime, Msg)> {
            let (t, [n0, _n1, n2]) = chain3(0.3);
            let mut b: EngineBuilder<Msg> = EngineBuilder::new(t, 9);
            let chan = b.add_channel(&[n0, _n1, n2]);
            b.add_agent(n0, Box::new(Burst { chan, count: 50 }));
            b.add_agent(n2, Box::new(Sniffer::default()));
            let mut e = b.build();
            e.advance(RunSpec::drain());
            e.agent::<Sniffer>(n2).unwrap().heard.clone()
        };
        assert_eq!(imperative(), built());
    }

    #[test]
    #[should_panic(expected = "already has an agent")]
    fn builder_rejects_double_agents_at_build() {
        let (t, [n0, ..]) = chain3(0.0);
        let mut b: EngineBuilder<Msg> = EngineBuilder::new(t, 1);
        b.add_agent(n0, Box::new(Sniffer::default()));
        b.add_agent(n0, Box::new(Sniffer::default()));
        let _ = b.build();
    }

    #[test]
    fn link_down_blocks_all_classes_and_up_restores() {
        let (t, [n0, n1, n2]) = chain3(0.0);
        let mid = t.link_between(n1, n2).unwrap();
        let mut b: EngineBuilder<Msg> = EngineBuilder::new(t, 1);
        let chan = b.add_channel(&[n0, n1, n2]);
        b.add_agent(n2, Box::new(Sniffer::default()));
        b.fault_plan(FaultPlan::new().link_flap(
            mid,
            SimTime::from_millis(100),
            SimTime::from_millis(200),
        ));
        let mut e = b.build();
        // While down, even a NACK (lossless class) cannot cross.
        e.advance(RunSpec::to(SimTime::from_millis(150)));
        e.multicast_from(n0, chan, Msg::Nack, 40);
        e.advance(RunSpec::to(SimTime::from_millis(199)));
        assert!(e.agent::<Sniffer>(n2).unwrap().heard.is_empty());
        assert!(!e.link_is_up(mid));
        // After the flap heals, traffic flows again.
        e.advance(RunSpec::to(SimTime::from_millis(250)));
        assert!(e.link_is_up(mid));
        e.multicast_from(n0, chan, Msg::Data(1), 1000);
        e.advance(RunSpec::drain());
        assert_eq!(e.agent::<Sniffer>(n2).unwrap().heard.len(), 1);
    }

    #[test]
    fn link_down_reroutes_around_the_dead_link() {
        // Diamond 0-1 (1ms), 0-2 (5ms), 1-3 (1ms), 2-3 (1ms): the 0-1 leg
        // dies mid-run and node 3 must be reached via 2 instead.
        let mut b = TopologyBuilder::new();
        let n0 = b.add_node("0");
        let n1 = b.add_node("1");
        let n2 = b.add_node("2");
        let n3 = b.add_node("3");
        let l01 = b.add_link(n0, n1, LinkParams::lossless_infinite(ms(1)));
        b.add_link(n0, n2, LinkParams::lossless_infinite(ms(5)));
        b.add_link(n1, n3, LinkParams::lossless_infinite(ms(1)));
        b.add_link(n2, n3, LinkParams::lossless_infinite(ms(1)));
        let mut eb: EngineBuilder<Msg> = EngineBuilder::new(b.build(), 1);
        let chan = eb.add_channel(&[n0, n1, n2, n3]);
        eb.add_agent(n1, Box::new(Sniffer::default()));
        eb.add_agent(n3, Box::new(Sniffer::default()));
        eb.fault_plan(FaultPlan::new().at(SimTime::from_millis(100), FaultEvent::LinkDown(l01)));
        let mut e = eb.build();
        e.advance(RunSpec::to(SimTime::from_millis(10)));
        e.multicast_from(n0, chan, Msg::Data(0), 100);
        e.advance(RunSpec::to(SimTime::from_millis(150)));
        // Before the fault: n3 via n1 at 2ms.
        assert_eq!(
            e.agent::<Sniffer>(n3).unwrap().heard,
            vec![(SimTime::from_millis(12), Msg::Data(0))]
        );
        e.multicast_from(n0, chan, Msg::Data(1), 100);
        e.advance(RunSpec::drain());
        // After: n3 via n2 (6ms), and the cut-off n1 now via n2-n3 (7ms).
        let n3_heard = &e.agent::<Sniffer>(n3).unwrap().heard;
        assert_eq!(n3_heard[1], (SimTime::from_millis(156), Msg::Data(1)));
        let n1_heard = &e.agent::<Sniffer>(n1).unwrap().heard;
        assert_eq!(n1_heard[1], (SimTime::from_millis(157), Msg::Data(1)));
        assert_eq!(e.spt(n0).path_to(n3), vec![n0, n2, n3]);
    }

    #[test]
    fn crashed_node_forwards_but_hears_nothing_until_restart() {
        let (t, [n0, n1, n2]) = chain3(0.0);
        let mut b: EngineBuilder<Msg> = EngineBuilder::new(t, 1);
        let chan = b.add_channel(&[n0, n1, n2]);
        b.add_agent(n1, Box::new(Sniffer::default()));
        b.add_agent(n2, Box::new(Sniffer::default()));
        b.fault_plan(
            FaultPlan::new()
                .at(SimTime::from_millis(50), FaultEvent::NodeCrash(n1))
                .at(SimTime::from_millis(300), FaultEvent::NodeRestart(n1)),
        );
        let mut e = b.build();
        e.advance(RunSpec::to(SimTime::from_millis(100)));
        assert!(!e.node_is_up(n1));
        e.multicast_from(n0, chan, Msg::Data(0), 1000);
        e.advance(RunSpec::to(SimTime::from_millis(250)));
        // The crashed middle hop still forwarded to n2 …
        assert_eq!(e.agent::<Sniffer>(n2).unwrap().heard.len(), 1);
        // … but its own agent heard nothing.
        assert!(e.agent::<Sniffer>(n1).unwrap().heard.is_empty());
        e.advance(RunSpec::to(SimTime::from_millis(350)));
        assert!(e.node_is_up(n1));
        e.multicast_from(n0, chan, Msg::Data(1), 1000);
        e.advance(RunSpec::drain());
        assert_eq!(e.agent::<Sniffer>(n1).unwrap().heard.len(), 1);
    }

    #[test]
    fn crash_kills_pending_timers_and_restart_reruns_start() {
        struct Ticker {
            starts: u32,
            ticks: Vec<SimTime>,
        }
        impl Agent<Msg> for Ticker {
            fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
                self.starts += 1;
                ctx.set_timer(ms(100), 0);
            }
            fn on_packet(&mut self, _: &mut Ctx<'_, Msg>, _: &Packet<Msg>) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, _: u64) {
                self.ticks.push(ctx.now());
                ctx.set_timer(ms(100), 0);
            }
        }
        let (t, [n0, ..]) = chain3(0.0);
        let mut b: EngineBuilder<Msg> = EngineBuilder::new(t, 1);
        b.add_agent(
            n0,
            Box::new(Ticker {
                starts: 0,
                ticks: Vec::new(),
            }),
        );
        b.fault_plan(
            FaultPlan::new()
                .at(SimTime::from_millis(250), FaultEvent::NodeCrash(n0))
                .at(SimTime::from_millis(600), FaultEvent::NodeRestart(n0)),
        );
        let mut e = b.build();
        e.advance(RunSpec::to(SimTime::from_millis(1000)));
        let agent = e.agent::<Ticker>(n0).unwrap();
        assert_eq!(agent.starts, 2, "restart re-runs on_start");
        // Ticks at 100, 200 (pre-crash), then 700, 800, 900, 1000 — the
        // timer armed at 200 (due 300) died with the crash epoch.
        assert_eq!(
            agent.ticks,
            vec![
                SimTime::from_millis(100),
                SimTime::from_millis(200),
                SimTime::from_millis(700),
                SimTime::from_millis(800),
                SimTime::from_millis(900),
                SimTime::from_millis(1000),
            ]
        );
        assert_eq!(e.pending_timer_count(), 1);
    }

    #[test]
    fn set_loss_swaps_the_model_mid_run() {
        let (t, [n0, n1, n2]) = chain3(0.0);
        let mid = t.link_between(n1, n2).unwrap();
        let mut b: EngineBuilder<Msg> = EngineBuilder::new(t, 5);
        let chan = b.add_channel(&[n0, n1, n2]);
        b.add_agent(n2, Box::new(Sniffer::default()));
        b.fault_plan(FaultPlan::new().at(
            SimTime::from_secs(10),
            FaultEvent::SetLoss(mid, crate::faults::LossModel::bernoulli(1.0)),
        ));
        let mut e = b.build();
        e.advance(RunSpec::to(SimTime::from_secs(1)));
        e.multicast_from(n0, chan, Msg::Data(0), 1000);
        e.advance(RunSpec::to(SimTime::from_secs(20)));
        assert_eq!(e.agent::<Sniffer>(n2).unwrap().heard.len(), 1);
        e.multicast_from(n0, chan, Msg::Data(1), 1000);
        e.advance(RunSpec::drain());
        // The swapped-in always-lose model drops everything on that link.
        assert_eq!(e.agent::<Sniffer>(n2).unwrap().heard.len(), 1);
        assert_eq!(e.recorder().drops.len(), 1);
    }

    #[test]
    fn drained_run_leaves_clock_at_last_event() {
        // Regression: run() used to leave `now` at SimTime::MAX after the
        // queue drained, so any further scheduling overflowed the clock.
        let (t, [n0, n1, n2]) = chain3(0.0);
        let mut e: Engine<Msg> = Engine::new(t, 1);
        let chan = e.add_channel(&[n0, n1, n2]);
        e.set_agent(n0, Box::new(Burst { chan, count: 1 }));
        e.set_agent(n2, Box::new(Sniffer::default()));
        e.advance(RunSpec::drain());
        // Last event is the delivery at n2: 10ms tx + 10ms latency per hop.
        assert_eq!(e.now(), SimTime::from_millis(40));
        // The engine must remain usable: schedule more work and run again.
        e.multicast_from(n0, chan, Msg::Data(99), 1000);
        let processed = e.advance(RunSpec::drain());
        assert!(processed > 0);
        assert_eq!(e.now(), SimTime::from_millis(80));
        let heard = &e.agent::<Sniffer>(n2).unwrap().heard;
        assert_eq!(
            heard.last(),
            Some(&(SimTime::from_millis(80), Msg::Data(99)))
        );
    }

    #[test]
    fn stale_and_double_cancels_do_not_leak() {
        // Regression: CancelTimer used to insert into the cancelled set
        // unconditionally, so cancelling an already-fired timer (the common
        // "ack arrived, cancel retransmit" pattern) grew the set forever.
        struct Churn {
            last: Option<TimerId>,
            rounds: u32,
        }
        impl Agent<Msg> for Churn {
            fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
                self.last = Some(ctx.set_timer(ms(1), 0));
            }
            fn on_packet(&mut self, _: &mut Ctx<'_, Msg>, _: &Packet<Msg>) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, token: u64) {
                // Cancel the timer that just fired (stale), twice (double).
                let stale = self.last.take().unwrap();
                ctx.cancel_timer(stale);
                ctx.cancel_timer(stale);
                if token < self.rounds as u64 {
                    self.last = Some(ctx.set_timer(ms(1), token + 1));
                }
            }
        }
        let (t, [n0, ..]) = chain3(0.0);
        let mut e: Engine<Msg> = Engine::new(t, 1);
        e.set_agent(
            n0,
            Box::new(Churn {
                last: None,
                rounds: 1000,
            }),
        );
        e.advance(RunSpec::drain());
        assert_eq!(e.pending_timer_count(), 0);
        assert_eq!(e.cancelled_timer_count(), 0, "cancelled set must not leak");
    }

    #[test]
    fn legitimate_cancel_is_reclaimed_when_deadline_passes() {
        struct SetAndCancel;
        impl Agent<Msg> for SetAndCancel {
            fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
                let id = ctx.set_timer(ms(5), 7);
                ctx.cancel_timer(id);
            }
            fn on_packet(&mut self, _: &mut Ctx<'_, Msg>, _: &Packet<Msg>) {}
            fn on_timer(&mut self, _: &mut Ctx<'_, Msg>, _: u64) {
                panic!("cancelled timer must not fire");
            }
        }
        let (t, [n0, ..]) = chain3(0.0);
        let mut e: Engine<Msg> = Engine::new(t, 1);
        e.set_agent(n0, Box::new(SetAndCancel));
        e.advance(RunSpec::drain());
        // Once the cancelled deadline is processed, both sets are empty.
        assert_eq!(e.pending_timer_count(), 0);
        assert_eq!(e.cancelled_timer_count(), 0);
    }

    #[test]
    fn tree_fast_path_is_bit_identical_to_spt_forwarding() {
        // The same lossy tree scenario run twice: once on the tree fast
        // path, once with the legacy masked-SPT path forced by a link
        // fault scheduled far beyond the horizon.  Arrival sequences (and
        // hence every loss-RNG draw) must match exactly; the fast path
        // must cache no SPTs at all.
        let run = |force_legacy: bool| -> (Vec<(SimTime, Msg)>, usize) {
            let (t, [n0, n1, n2]) = chain3(0.3);
            let l = t.link_between(n0, n1).unwrap();
            let mut b: EngineBuilder<Msg> = EngineBuilder::new(t, 9);
            let chan = b.add_channel(&[n0, n1, n2]);
            b.add_agent(n0, Box::new(Burst { chan, count: 50 }));
            b.add_agent(n2, Box::new(Sniffer::default()));
            if force_legacy {
                b.fault_plan(
                    FaultPlan::new().at(SimTime::from_secs(1_000_000), FaultEvent::LinkDown(l)),
                );
            }
            let mut e = b.build();
            e.advance(RunSpec::to(SimTime::from_secs(100)));
            (
                e.agent::<Sniffer>(n2).unwrap().heard.clone(),
                e.cached_spt_count(),
            )
        };
        let (fast, fast_spts) = run(false);
        let (legacy, legacy_spts) = run(true);
        assert!(!fast.is_empty());
        assert_eq!(fast, legacy);
        assert_eq!(fast_spts, 0, "tree forwarding must not materialize SPTs");
        assert!(legacy_spts > 0, "the control run must use the SPT path");
    }

    #[test]
    fn audit_streaming_feeds_the_auditor_without_record_retention() {
        use crate::probe::ProbeEvent;
        struct CloseProbe;
        impl Agent<Msg> for CloseProbe {
            fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
                ctx.probe(ProbeEvent::GroupClose {
                    group: 0,
                    complete: true,
                    held: 4,
                    k: 4,
                });
            }
            fn on_packet(&mut self, _: &mut Ctx<'_, Msg>, _: &Packet<Msg>) {}
        }
        let (t, [n0, ..]) = chain3(0.0);
        let mut b: EngineBuilder<Msg> = EngineBuilder::new(t, 1);
        b.audit_streaming(AuditConfig::default());
        b.add_agent(n0, Box::new(CloseProbe));
        let mut e = b.build();
        e.advance(RunSpec::drain());
        assert!(e.probe_records().is_empty(), "no O(events) record log");
        let report = e.audit_report().expect("auditor attached");
        assert_eq!(report.events, 1, "the probe still reached the auditor");
        assert!(report.ok());
    }

    #[test]
    fn state_bytes_aggregates_agent_reports() {
        struct Sized(usize);
        impl Agent<Msg> for Sized {
            fn on_packet(&mut self, _: &mut Ctx<'_, Msg>, _: &Packet<Msg>) {}
            fn state_bytes(&self) -> usize {
                self.0
            }
        }
        let (t, [n0, n1, n2]) = chain3(0.0);
        let mut e: Engine<Msg> = Engine::new(t, 1);
        e.set_agent(n0, Box::new(Sized(100)));
        e.set_agent(n2, Box::new(Sized(23)));
        assert_eq!(e.state_bytes(), 123);
        assert_eq!(e.agent_state_bytes(n0), 100);
        assert_eq!(e.agent_state_bytes(n1), 0, "agent-less node reports zero");
        // Sniffer has no state_bytes impl: the default reports zero.
        e.set_agent(n1, Box::new(Sniffer::default()));
        assert_eq!(e.state_bytes(), 123);
    }

    #[test]
    fn recorder_clear_midrun_keeps_tail_bit_identical() {
        // Regression: clearing the recorder between measurement windows
        // must not perturb the simulation itself — the events recorded
        // after the clear are exactly the post-clear tail of an identical
        // uninterrupted run.
        fn tail<T: Clone>(v: &[T], mid: SimTime, time: impl Fn(&T) -> SimTime) -> Vec<T> {
            v.iter().filter(|r| time(r) > mid).cloned().collect()
        }
        let build = || {
            let (t, [n0, n1, n2]) = chain3(0.2);
            let mut b: EngineBuilder<Msg> = EngineBuilder::new(t, 9);
            let chan = b.add_channel(&[n0, n1, n2]);
            b.add_agent(n0, Box::new(Burst { chan, count: 20 }));
            b.add_agent(n1, Box::new(Sniffer::default()));
            b.add_agent(n2, Box::new(Sniffer::default()));
            b.build()
        };
        let mut full = build();
        full.advance(RunSpec::drain());
        // 105ms falls between events (everything lands on 10ms ticks).
        let mid = SimTime::from_millis(105);

        let mut halved = build();
        halved.advance(RunSpec::to(mid));
        halved.recorder_mut().clear();
        halved.advance(RunSpec::drain());

        let f = full.recorder();
        let h = halved.recorder();
        assert!(!h.deliveries.is_empty() && !h.drops.is_empty());
        assert_eq!(h.deliveries, tail(&f.deliveries, mid, |r| r.time));
        assert_eq!(h.transmissions, tail(&f.transmissions, mid, |r| r.time));
        assert_eq!(h.drops, tail(&f.drops, mid, |r| r.time));
        // O(1) totals match the event tail, not the whole run.
        assert_eq!(
            h.total_delivered(TrafficClass::Data),
            tail(&f.deliveries, mid, |r| r.time).len()
        );
    }

    /// Ported pin from the PR 9 deprecation shims (`run_until`/`run`, now
    /// removed): a horizon-then-drain `advance` pair must be bit-identical
    /// to one uninterrupted drain.
    #[test]
    fn split_advance_matches_single_drain() {
        let build = || {
            let (t, [n0, n1, n2]) = chain3(0.3);
            let mut e: Engine<Msg> = Engine::new(t, 11);
            let chan = e.add_channel(&[n0, n1, n2]);
            e.set_agent(n0, Box::new(Burst { chan, count: 8 }));
            e.set_agent(n2, Box::new(Sniffer::default()));
            e
        };
        let mid = SimTime::from_millis(25);

        let mut whole = build();
        let whole_events = whole.advance(RunSpec::drain());

        let mut split = build();
        let head = split.advance(RunSpec::to(mid));
        assert_eq!(split.now(), mid, "horizon run parks the clock at t_end");
        let tail = split.advance(RunSpec::drain());

        assert_eq!(head + tail, whole_events);
        assert_eq!(split.now(), whole.now());
        assert_eq!(split.recorder().deliveries, whole.recorder().deliveries);
        assert_eq!(split.recorder().drops, whole.recorder().drops);
    }

    #[test]
    fn membership_events_flip_delivery_midrun() {
        // n2 leaves the channel at 15 ms and rejoins at 35 ms.  Scope is
        // checked when the parent forwards (n1's hop toward n2), so sends
        // whose n1→n2 hop lands in the gap are pruned, the rest delivered.
        struct Ticker {
            chan: ChannelId,
            left: u32,
        }
        impl Agent<Msg> for Ticker {
            fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
                ctx.set_timer(SimDuration::from_millis(10), 0);
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, _: u64) {
                ctx.multicast(self.chan, Msg::Data(0), 100);
                self.left -= 1;
                if self.left > 0 {
                    ctx.set_timer(SimDuration::from_millis(10), 0);
                }
            }
            fn on_packet(&mut self, _: &mut Ctx<'_, Msg>, _: &Packet<Msg>) {}
        }
        let (t, [n0, n1, n2]) = chain3(0.0);
        let mut e: Engine<Msg> = Engine::new(t, 5);
        let chan = e.add_channel(&[n0, n1, n2]);
        e.set_agent(n0, Box::new(Ticker { chan, left: 5 }));
        e.set_agent(n2, Box::new(Sniffer::default()));
        // Sends at 10/20/30/40/50 ms; the n1→n2 hop happens ~11 ms after
        // each send, so hops at ~21 and ~31 ms fall inside the gap.
        e.schedule_membership(
            SimTime::from_millis(15),
            MembershipEvent::Leave {
                channel: chan,
                node: n2,
            },
        );
        e.schedule_membership(
            SimTime::from_millis(35),
            MembershipEvent::Join {
                channel: chan,
                node: n2,
            },
        );
        e.advance(RunSpec::drain());
        let got = &e.agent::<Sniffer>(n2).unwrap().heard;
        assert_eq!(got.len(), 3, "got {got:?}");
        assert!(e.channel(chan).contains(n2), "rejoin applied");
    }

    #[test]
    fn scenario_plan_strips_initial_membership_and_joins_on_time() {
        // A joiner declared via ScenarioPlan must start outside the
        // channel even though the builder listed it as a member, then
        // hear everything from its join time onward.
        struct Ticker {
            chan: ChannelId,
            left: u32,
        }
        impl Agent<Msg> for Ticker {
            fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
                ctx.set_timer(SimDuration::from_millis(10), 0);
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, _: u64) {
                ctx.multicast(self.chan, Msg::Data(0), 100);
                self.left -= 1;
                if self.left > 0 {
                    ctx.set_timer(SimDuration::from_millis(10), 0);
                }
            }
            fn on_packet(&mut self, _: &mut Ctx<'_, Msg>, _: &Packet<Msg>) {}
        }
        let (t, [n0, n1, n2]) = chain3(0.0);
        let mut b: EngineBuilder<Msg> = EngineBuilder::new(t, 5);
        let chan = b.add_channel(&[n0, n1, n2]);
        b.add_agent(n0, Box::new(Ticker { chan, left: 4 }));
        b.add_agent(n2, Box::new(Sniffer::default()));
        b.scenario(ScenarioPlan::new().join_at(SimTime::from_millis(35), n2, &[chan]));
        let mut e = b.build();
        assert!(
            !e.channel(chan).contains(n2),
            "scenario join strips initial membership"
        );
        e.advance(RunSpec::drain());
        // Sends at 10/20/30/40 ms forward over the n1→n2 hop at ~21/31/
        // 41/51 ms; only the two hops after the 35 ms join get through.
        assert_eq!(e.agent::<Sniffer>(n2).unwrap().heard.len(), 2);
        assert!(e.channel(chan).contains(n2));
    }
}
