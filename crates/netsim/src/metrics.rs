//! Measurement: every transmission, delivery, and drop, timestamped.
//!
//! The paper's Figures 14–21 plot "the sum of data and repair traffic
//! visible at each session member over 0.1 second intervals" and the
//! corresponding NACK counts.  The [`Recorder`] captures the raw events
//! those plots are binned from; the `sharqfec-analysis` crate does the
//! binning.
//!
//! Three storage modes ([`RecorderMode`]) trade fidelity for footprint:
//!
//! * **Raw** (the default) keeps every event in the public vectors, so
//!   post-hoc tooling (timelines, custom filters) can see everything.
//! * **Streaming** aggregates at record time into per-(node, class)
//!   totals and fixed-width time bins, keeping memory `O(nodes × bins)`
//!   regardless of traffic volume — the mode the parallel sweep runner
//!   uses, where dozens of engines are alive at once.
//! * **Aggregate** keeps only session-global per-class totals and bins,
//!   `O(bins)` regardless of node count — the mode the 10⁵–10⁶-receiver
//!   scaling sweeps use.
//!
//! In the raw and streaming modes the per-(node, class) totals are
//! maintained as the events arrive, so [`Recorder::delivered_count`] and
//! [`Recorder::sent_count`] are O(1) lookups, never scans; the global
//! totals are O(1) in every mode.

use crate::channel::ChannelId;
use crate::graph::NodeId;
use crate::queue::EventKey;
use crate::time::{SimDuration, SimTime};

/// Coarse protocol-independent classification of a packet.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum TrafficClass {
    /// Original data packets (lossy).
    Data,
    /// FEC/retransmission repair packets (lossy).
    Repair,
    /// Negative acknowledgements / repair requests (lossless per §6.2).
    Nack,
    /// Session-management messages (lossless per §6.2).
    Session,
    /// Other control traffic, e.g. ZCR challenges (lossless).
    Control,
}

/// Number of traffic classes (the aggregate tables are dense over these).
pub const CLASS_COUNT: usize = 5;

impl TrafficClass {
    /// All classes, in [`TrafficClass::index`] order.
    pub const ALL: [TrafficClass; CLASS_COUNT] = [
        TrafficClass::Data,
        TrafficClass::Repair,
        TrafficClass::Nack,
        TrafficClass::Session,
        TrafficClass::Control,
    ];

    /// Dense index for aggregate tables.
    pub fn index(self) -> usize {
        match self {
            TrafficClass::Data => 0,
            TrafficClass::Repair => 1,
            TrafficClass::Nack => 2,
            TrafficClass::Session => 3,
            TrafficClass::Control => 4,
        }
    }

    /// Whether link loss applies to this class (paper §6.2: data and
    /// repairs are lossy; session traffic and NACKs are not).
    pub fn lossy(self) -> bool {
        matches!(self, TrafficClass::Data | TrafficClass::Repair)
    }

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            TrafficClass::Data => "data",
            TrafficClass::Repair => "repair",
            TrafficClass::Nack => "nack",
            TrafficClass::Session => "session",
            TrafficClass::Control => "control",
        }
    }
}

/// One delivery (or transmission) observation.
#[derive(Clone, Debug, PartialEq)]
pub struct Record {
    /// When the packet was delivered/transmitted.
    pub time: SimTime,
    /// The node observing the packet (receiver for deliveries, sender for
    /// transmissions).
    pub node: NodeId,
    /// The packet's original source.
    pub src: NodeId,
    /// Traffic class.
    pub class: TrafficClass,
    /// Wire size in bytes.
    pub bytes: u32,
    /// Channel the packet travelled on.
    pub channel: ChannelId,
}

/// One packet dropped by link loss.
#[derive(Clone, Debug, PartialEq)]
pub struct DropRecord {
    /// When the drop happened (at the head of the link).
    pub time: SimTime,
    /// Node that was transmitting onto the lossy link.
    pub from: NodeId,
    /// Node that would have received.
    pub to: NodeId,
    /// Traffic class of the lost packet.
    pub class: TrafficClass,
}

/// How the recorder stores what it observes.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum RecorderMode {
    /// Keep every event in the raw vectors (plus the O(1) totals).
    #[default]
    Raw,
    /// Aggregate into per-(node, class) totals and time bins at record
    /// time; the raw vectors stay empty.  Memory is `O(nodes × bins)`.
    Streaming,
    /// Keep only session-global per-class totals and time bins — no
    /// per-node state, no raw vectors.  Memory is `O(bins)` regardless of
    /// node count or traffic volume, the mode large-scale sweeps use
    /// (10⁶ receivers would make even per-node totals several hundred
    /// megabytes).  Per-node queries ([`Recorder::delivered_count`],
    /// [`Recorder::sent_count`], the per-node bin accessors) read as zero
    /// or empty in this mode.
    Aggregate,
}

/// A packet count plus the bytes those packets carried.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Tally {
    /// Packets observed.
    pub packets: u64,
    /// Total wire bytes across those packets.
    pub bytes: u64,
}

impl Tally {
    fn add(&mut self, bytes: u32) {
        self.packets += 1;
        self.bytes += bytes as u64;
    }

    fn absorb(&mut self, other: Tally) {
        self.packets += other.packets;
        self.bytes += other.bytes;
    }
}

/// Per-record [`EventKey`] tags, kept only by per-shard recorders in
/// [`RecorderMode::Raw`].  Each raw vector gets a parallel tag vector
/// stamping which engine event produced the record, so shard outputs can
/// be k-way merged back into the exact serial timeline regardless of
/// shard completion order (see `shard.rs`).
#[derive(Debug, Default)]
struct RecorderTags {
    current: EventKey,
    deliveries: Vec<EventKey>,
    transmissions: Vec<EventKey>,
    drops: Vec<EventKey>,
}

/// Per-node aggregate state: totals per class, and (streaming mode only)
/// per-bin tallies per class.
#[derive(Clone, Debug, Default)]
struct NodeStats {
    delivered: [Tally; CLASS_COUNT],
    sent: [Tally; CLASS_COUNT],
    delivered_bins: [Vec<Tally>; CLASS_COUNT],
    sent_bins: [Vec<Tally>; CLASS_COUNT],
}

/// Accumulates simulation observations.
#[derive(Debug)]
pub struct Recorder {
    /// Every delivery to an agent (raw mode only).
    pub deliveries: Vec<Record>,
    /// Every send by an agent (one record per transmission, not per
    /// receiver; raw mode only).
    pub transmissions: Vec<Record>,
    /// Every loss event (raw mode only).
    pub drops: Vec<DropRecord>,
    mode: RecorderMode,
    bin_width: SimDuration,
    nodes: Vec<NodeStats>,
    delivered_total: [Tally; CLASS_COUNT],
    sent_total: [Tally; CLASS_COUNT],
    drop_total: [u64; CLASS_COUNT],
    /// Session-global time bins, maintained in [`RecorderMode::Aggregate`].
    delivered_bins_total: [Vec<Tally>; CLASS_COUNT],
    sent_bins_total: [Vec<Tally>; CLASS_COUNT],
    /// Event-key tags parallel to the raw vectors; `Some` only on
    /// per-shard recorders (see [`Recorder::enable_tagging`]).
    tags: Option<Box<RecorderTags>>,
}

impl Default for Recorder {
    fn default() -> Recorder {
        Recorder {
            deliveries: Vec::new(),
            transmissions: Vec::new(),
            drops: Vec::new(),
            mode: RecorderMode::default(),
            // The paper's measurement granularity (§6.2): 0.1 s bins.
            bin_width: SimDuration::from_millis(100),
            nodes: Vec::new(),
            delivered_total: [Tally::default(); CLASS_COUNT],
            sent_total: [Tally::default(); CLASS_COUNT],
            drop_total: [0; CLASS_COUNT],
            delivered_bins_total: Default::default(),
            sent_bins_total: Default::default(),
            tags: None,
        }
    }
}

impl Recorder {
    /// A recorder in the given mode.
    pub fn new(mode: RecorderMode) -> Recorder {
        Recorder {
            mode,
            ..Recorder::default()
        }
    }

    /// The active storage mode.
    pub fn mode(&self) -> RecorderMode {
        self.mode
    }

    /// Switches storage mode.
    ///
    /// # Panics
    ///
    /// Panics if events have already been recorded — the two modes store
    /// different things, so a mid-run switch would silently mix them.
    pub fn set_mode(&mut self, mode: RecorderMode) {
        assert!(
            self.is_empty(),
            "recorder mode must be chosen before any event is recorded \
             (call clear() first to restart)"
        );
        self.mode = mode;
    }

    /// Streaming-mode bin width (defaults to the paper's 0.1 s).
    pub fn bin_width(&self) -> SimDuration {
        self.bin_width
    }

    /// Sets the streaming-mode bin width.
    ///
    /// # Panics
    ///
    /// Panics on a zero width, or if events have already been recorded.
    pub fn set_bin_width(&mut self, width: SimDuration) {
        assert!(width > SimDuration::ZERO, "bin width must be positive");
        assert!(
            self.is_empty(),
            "bin width must be chosen before any event is recorded"
        );
        self.bin_width = width;
    }

    /// Starts stamping every raw record with the [`EventKey`] set by
    /// [`Recorder::set_tag`].  Only meaningful in [`RecorderMode::Raw`];
    /// the sharded driver enables this on per-shard recorders so
    /// [`Recorder::merge_raw_parts`] can reconstruct the serial timeline.
    pub(crate) fn enable_tagging(&mut self) {
        assert!(
            self.is_empty(),
            "tagging must be enabled before any event is recorded"
        );
        self.tags = Some(Box::default());
    }

    /// Sets the event key stamped onto subsequently recorded raw events.
    /// No-op when tagging is disabled.
    #[inline]
    pub(crate) fn set_tag(&mut self, key: EventKey) {
        if let Some(tags) = &mut self.tags {
            tags.current = key;
        }
    }

    fn is_empty(&self) -> bool {
        self.nodes.is_empty()
            && self.deliveries.is_empty()
            && self.transmissions.is_empty()
            && self.drops.is_empty()
            && self.drop_total.iter().all(|&c| c == 0)
            && self.delivered_total.iter().all(|t| t.packets == 0)
            && self.sent_total.iter().all(|t| t.packets == 0)
    }

    fn node_mut(&mut self, node: NodeId) -> &mut NodeStats {
        if self.nodes.len() <= node.idx() {
            self.nodes.resize_with(node.idx() + 1, NodeStats::default);
        }
        &mut self.nodes[node.idx()]
    }

    fn bin_index(&self, t: SimTime) -> usize {
        (t.as_nanos() / self.bin_width.as_nanos()) as usize
    }

    /// Records one delivery observation.
    pub fn record_delivery(&mut self, r: Record) {
        self.delivered_total[r.class.index()].add(r.bytes);
        let bin = self.bin_index(r.time);
        match self.mode {
            RecorderMode::Aggregate => {
                let bins = &mut self.delivered_bins_total[r.class.index()];
                if bins.len() <= bin {
                    bins.resize(bin + 1, Tally::default());
                }
                bins[bin].add(r.bytes);
            }
            RecorderMode::Streaming => {
                let stats = self.node_mut(r.node);
                stats.delivered[r.class.index()].add(r.bytes);
                let bins = &mut stats.delivered_bins[r.class.index()];
                if bins.len() <= bin {
                    bins.resize(bin + 1, Tally::default());
                }
                bins[bin].add(r.bytes);
            }
            RecorderMode::Raw => {
                self.node_mut(r.node).delivered[r.class.index()].add(r.bytes);
                if let Some(tags) = &mut self.tags {
                    tags.deliveries.push(tags.current);
                }
                self.deliveries.push(r);
            }
        }
    }

    /// Records one transmission observation.
    pub fn record_transmission(&mut self, r: Record) {
        self.sent_total[r.class.index()].add(r.bytes);
        let bin = self.bin_index(r.time);
        match self.mode {
            RecorderMode::Aggregate => {
                let bins = &mut self.sent_bins_total[r.class.index()];
                if bins.len() <= bin {
                    bins.resize(bin + 1, Tally::default());
                }
                bins[bin].add(r.bytes);
            }
            RecorderMode::Streaming => {
                let stats = self.node_mut(r.node);
                stats.sent[r.class.index()].add(r.bytes);
                let bins = &mut stats.sent_bins[r.class.index()];
                if bins.len() <= bin {
                    bins.resize(bin + 1, Tally::default());
                }
                bins[bin].add(r.bytes);
            }
            RecorderMode::Raw => {
                self.node_mut(r.node).sent[r.class.index()].add(r.bytes);
                if let Some(tags) = &mut self.tags {
                    tags.transmissions.push(tags.current);
                }
                self.transmissions.push(r);
            }
        }
    }

    /// Records one loss event.
    pub fn record_drop(&mut self, d: DropRecord) {
        self.drop_total[d.class.index()] += 1;
        if self.mode == RecorderMode::Raw {
            if let Some(tags) = &mut self.tags {
                tags.drops.push(tags.current);
            }
            self.drops.push(d);
        }
    }

    /// Empties all recorded events and aggregates (e.g. to discard a
    /// warm-up phase); mode and bin width are kept.
    pub fn clear(&mut self) {
        self.deliveries.clear();
        self.transmissions.clear();
        self.drops.clear();
        if let Some(tags) = &mut self.tags {
            tags.deliveries.clear();
            tags.transmissions.clear();
            tags.drops.clear();
        }
        self.nodes.clear();
        self.delivered_total = [Tally::default(); CLASS_COUNT];
        self.sent_total = [Tally::default(); CLASS_COUNT];
        self.drop_total = [0; CLASS_COUNT];
        self.delivered_bins_total = Default::default();
        self.sent_bins_total = Default::default();
    }

    /// Counts deliveries at `node` with the given class.  O(1).
    pub fn delivered_count(&self, node: NodeId, class: TrafficClass) -> usize {
        self.nodes
            .get(node.idx())
            .map_or(0, |s| s.delivered[class.index()].packets as usize)
    }

    /// Counts transmissions by `node` with the given class.  O(1).
    pub fn sent_count(&self, node: NodeId, class: TrafficClass) -> usize {
        self.nodes
            .get(node.idx())
            .map_or(0, |s| s.sent[class.index()].packets as usize)
    }

    /// Total deliveries across all nodes for a class.  O(1).
    pub fn total_delivered(&self, class: TrafficClass) -> usize {
        self.delivered_total[class.index()].packets as usize
    }

    /// Total transmissions across all nodes for a class.  O(1).
    pub fn total_sent(&self, class: TrafficClass) -> usize {
        self.sent_total[class.index()].packets as usize
    }

    /// Total loss events for a class.  O(1).
    pub fn total_dropped(&self, class: TrafficClass) -> usize {
        self.drop_total[class.index()] as usize
    }

    /// Total bytes delivered across all nodes for a class.  O(1).
    pub fn delivered_bytes(&self, class: TrafficClass) -> u64 {
        self.delivered_total[class.index()].bytes
    }

    /// Number of nodes with at least one recorded observation (dense
    /// upper bound for iterating aggregate tables).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Streaming-mode delivery bins for `(node, class)`: entry `i` covers
    /// `[i × bin_width, (i + 1) × bin_width)`.  Empty when nothing was
    /// recorded there (and always in raw mode, which keeps raw events
    /// instead).
    pub fn delivered_bins(&self, node: NodeId, class: TrafficClass) -> &[Tally] {
        self.nodes
            .get(node.idx())
            .map_or(&[][..], |s| &s.delivered_bins[class.index()])
    }

    /// Streaming-mode transmission bins for `(node, class)`; see
    /// [`Recorder::delivered_bins`].
    pub fn sent_bins(&self, node: NodeId, class: TrafficClass) -> &[Tally] {
        self.nodes
            .get(node.idx())
            .map_or(&[][..], |s| &s.sent_bins[class.index()])
    }

    /// Aggregate-mode session-global delivery bins for a class; entry `i`
    /// covers `[i × bin_width, (i + 1) × bin_width)`.  Empty in the other
    /// modes (which keep raw events or per-node bins instead).
    pub fn total_delivered_bins(&self, class: TrafficClass) -> &[Tally] {
        &self.delivered_bins_total[class.index()]
    }

    /// Aggregate-mode session-global transmission bins for a class; see
    /// [`Recorder::total_delivered_bins`].
    pub fn total_sent_bins(&self, class: TrafficClass) -> &[Tally] {
        &self.sent_bins_total[class.index()]
    }

    /// Approximate heap bytes this recorder currently holds.  The
    /// scaling harness asserts this stays `O(bins)` in
    /// [`RecorderMode::Aggregate`] — independent of node count and
    /// traffic volume.
    pub fn resident_bytes(&self) -> usize {
        let record = std::mem::size_of::<Record>();
        let tally = std::mem::size_of::<Tally>();
        let mut total = self.deliveries.capacity() * record
            + self.transmissions.capacity() * record
            + self.drops.capacity() * std::mem::size_of::<DropRecord>()
            + self.nodes.capacity() * std::mem::size_of::<NodeStats>();
        for s in &self.nodes {
            for c in 0..CLASS_COUNT {
                total += (s.delivered_bins[c].capacity() + s.sent_bins[c].capacity()) * tally;
            }
        }
        for c in 0..CLASS_COUNT {
            total += (self.delivered_bins_total[c].capacity() + self.sent_bins_total[c].capacity())
                * tally;
        }
        total
    }

    /// Sums another recorder's aggregate tables into this one: global
    /// per-class totals, drop counts, global bins, and (when present)
    /// per-node stats and bins.  Used to reassemble
    /// [`RecorderMode::Streaming`] / [`RecorderMode::Aggregate`] shard
    /// recorders, whose tables are commutative sums — per-node rows are
    /// node-disjoint across shards, so ordering cannot matter.
    pub(crate) fn absorb_totals(&mut self, other: &Recorder) {
        debug_assert_eq!(self.mode, other.mode, "shard recorders share one mode");
        debug_assert_eq!(self.bin_width, other.bin_width);
        for c in 0..CLASS_COUNT {
            self.delivered_total[c].absorb(other.delivered_total[c]);
            self.sent_total[c].absorb(other.sent_total[c]);
            self.drop_total[c] += other.drop_total[c];
            absorb_bins(
                &mut self.delivered_bins_total[c],
                &other.delivered_bins_total[c],
            );
            absorb_bins(&mut self.sent_bins_total[c], &other.sent_bins_total[c]);
        }
        if self.nodes.len() < other.nodes.len() {
            self.nodes
                .resize_with(other.nodes.len(), NodeStats::default);
        }
        for (mine, theirs) in self.nodes.iter_mut().zip(&other.nodes) {
            for c in 0..CLASS_COUNT {
                mine.delivered[c].absorb(theirs.delivered[c]);
                mine.sent[c].absorb(theirs.sent[c]);
                absorb_bins(&mut mine.delivered_bins[c], &theirs.delivered_bins[c]);
                absorb_bins(&mut mine.sent_bins[c], &theirs.sent_bins[c]);
            }
        }
    }

    /// Reassembles tagged [`RecorderMode::Raw`] shard recorders into this
    /// recorder, replaying every record in global [`EventKey`] order so the
    /// result is bit-identical to the serial run's recorder: raw vectors in
    /// serial order, totals and per-node tables rebuilt by the same
    /// `record_*` paths.  Records the target already holds (from earlier
    /// `advance` calls or external sends) stay in place; the merged batch
    /// appends after them, matching the serial timeline because a sharded
    /// window's events all postdate anything recorded before it.
    ///
    /// Each engine event is processed by exactly one shard, so no key
    /// appears in two parts; a stable sort keeps same-key records (several
    /// records from one event) in their original within-shard order.
    ///
    /// # Panics
    ///
    /// Panics if a part is untagged.
    pub(crate) fn merge_raw_parts(&mut self, parts: Vec<Recorder>) {
        assert_eq!(self.mode, RecorderMode::Raw);
        let mut deliveries: Vec<(EventKey, Record)> = Vec::new();
        let mut transmissions: Vec<(EventKey, Record)> = Vec::new();
        let mut drops: Vec<(EventKey, DropRecord)> = Vec::new();
        for mut part in parts {
            let tags = *part.tags.take().expect("shard recorder parts are tagged");
            assert_eq!(tags.deliveries.len(), part.deliveries.len());
            assert_eq!(tags.transmissions.len(), part.transmissions.len());
            assert_eq!(tags.drops.len(), part.drops.len());
            deliveries.extend(tags.deliveries.into_iter().zip(part.deliveries.drain(..)));
            transmissions.extend(
                tags.transmissions
                    .into_iter()
                    .zip(part.transmissions.drain(..)),
            );
            drops.extend(tags.drops.into_iter().zip(part.drops.drain(..)));
        }
        // Stable: same-key runs (all from one shard) keep their order.
        deliveries.sort_by_key(|(k, _)| *k);
        transmissions.sort_by_key(|(k, _)| *k);
        drops.sort_by_key(|(k, _)| *k);
        for (_, r) in deliveries {
            self.record_delivery(r);
        }
        for (_, r) in transmissions {
            self.record_transmission(r);
        }
        for (_, d) in drops {
            self.record_drop(d);
        }
    }
}

/// Elementwise `Tally` sum, growing `dst` to cover `src`.
fn absorb_bins(dst: &mut Vec<Tally>, src: &[Tally]) {
    if dst.len() < src.len() {
        dst.resize(src.len(), Tally::default());
    }
    for (d, s) in dst.iter_mut().zip(src) {
        d.absorb(*s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(node: u32, class: TrafficClass) -> Record {
        rec_at(0, node, class)
    }

    fn rec_at(t_ms: u64, node: u32, class: TrafficClass) -> Record {
        Record {
            time: SimTime::from_millis(t_ms),
            node: NodeId(node),
            src: NodeId(0),
            class,
            bytes: 10,
            channel: ChannelId(0),
        }
    }

    #[test]
    fn loss_applies_to_data_and_repairs_only() {
        assert!(TrafficClass::Data.lossy());
        assert!(TrafficClass::Repair.lossy());
        assert!(!TrafficClass::Nack.lossy());
        assert!(!TrafficClass::Session.lossy());
        assert!(!TrafficClass::Control.lossy());
    }

    #[test]
    fn class_indices_are_dense_and_stable() {
        for (i, c) in TrafficClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn recorder_counts_filter_correctly() {
        let mut r = Recorder::default();
        r.record_delivery(rec(1, TrafficClass::Data));
        r.record_delivery(rec(1, TrafficClass::Data));
        r.record_delivery(rec(1, TrafficClass::Nack));
        r.record_delivery(rec(2, TrafficClass::Data));
        r.record_transmission(rec(0, TrafficClass::Data));

        assert_eq!(r.delivered_count(NodeId(1), TrafficClass::Data), 2);
        assert_eq!(r.delivered_count(NodeId(2), TrafficClass::Data), 1);
        assert_eq!(r.delivered_count(NodeId(2), TrafficClass::Nack), 0);
        assert_eq!(r.delivered_count(NodeId(99), TrafficClass::Data), 0);
        assert_eq!(r.sent_count(NodeId(0), TrafficClass::Data), 1);
        assert_eq!(r.delivered_bytes(TrafficClass::Data), 30);
        assert_eq!(r.total_delivered(TrafficClass::Data), 3);
        assert_eq!(r.total_sent(TrafficClass::Data), 1);

        // Raw mode keeps the events themselves.
        assert_eq!(r.deliveries.len(), 4);
        assert_eq!(r.transmissions.len(), 1);

        r.clear();
        assert!(r.deliveries.is_empty() && r.transmissions.is_empty() && r.drops.is_empty());
        assert_eq!(r.delivered_count(NodeId(1), TrafficClass::Data), 0);
        assert_eq!(r.total_delivered(TrafficClass::Data), 0);
    }

    #[test]
    fn streaming_mode_bins_and_keeps_no_raw_events() {
        let mut r = Recorder::new(RecorderMode::Streaming);
        // Two deliveries in bin 0, one in bin 3 (0.1 s bins).
        r.record_delivery(rec_at(10, 1, TrafficClass::Data));
        r.record_delivery(rec_at(99, 1, TrafficClass::Data));
        r.record_delivery(rec_at(350, 1, TrafficClass::Data));
        r.record_transmission(rec_at(120, 0, TrafficClass::Nack));

        assert!(r.deliveries.is_empty(), "streaming keeps no raw events");
        assert!(r.transmissions.is_empty());
        assert_eq!(r.delivered_count(NodeId(1), TrafficClass::Data), 3);
        assert_eq!(r.total_sent(TrafficClass::Nack), 1);

        let bins = r.delivered_bins(NodeId(1), TrafficClass::Data);
        assert_eq!(bins.len(), 4);
        assert_eq!(
            bins[0],
            Tally {
                packets: 2,
                bytes: 20
            }
        );
        assert_eq!(bins[1], Tally::default());
        assert_eq!(
            bins[3],
            Tally {
                packets: 1,
                bytes: 10
            }
        );
        let sent = r.sent_bins(NodeId(0), TrafficClass::Nack);
        assert_eq!(sent[1].packets, 1);
        // Unseen (node, class) pairs read as empty.
        assert!(r.delivered_bins(NodeId(9), TrafficClass::Data).is_empty());
    }

    #[test]
    fn drops_are_counted_in_both_modes() {
        let drop = DropRecord {
            time: SimTime::from_millis(5),
            from: NodeId(0),
            to: NodeId(1),
            class: TrafficClass::Data,
        };
        let mut raw = Recorder::default();
        raw.record_drop(drop.clone());
        assert_eq!(raw.total_dropped(TrafficClass::Data), 1);
        assert_eq!(raw.drops.len(), 1);

        let mut streaming = Recorder::new(RecorderMode::Streaming);
        streaming.record_drop(drop);
        assert_eq!(streaming.total_dropped(TrafficClass::Data), 1);
        assert!(streaming.drops.is_empty());
    }

    #[test]
    #[should_panic(expected = "before any event")]
    fn mode_switch_after_recording_is_rejected() {
        let mut r = Recorder::default();
        r.record_delivery(rec(1, TrafficClass::Data));
        r.set_mode(RecorderMode::Streaming);
    }

    #[test]
    fn mode_switch_allowed_after_clear() {
        let mut r = Recorder::default();
        r.record_delivery(rec(1, TrafficClass::Data));
        r.clear();
        r.set_mode(RecorderMode::Streaming);
        assert_eq!(r.mode(), RecorderMode::Streaming);
    }

    #[test]
    fn custom_bin_width_is_respected() {
        let mut r = Recorder::new(RecorderMode::Streaming);
        r.set_bin_width(SimDuration::from_secs(1));
        r.record_delivery(rec_at(2500, 1, TrafficClass::Data));
        let bins = r.delivered_bins(NodeId(1), TrafficClass::Data);
        assert_eq!(bins.len(), 3);
        assert_eq!(bins[2].packets, 1);
    }

    #[test]
    fn aggregate_mode_keeps_global_bins_and_no_per_node_state() {
        let mut r = Recorder::new(RecorderMode::Aggregate);
        r.record_delivery(rec_at(10, 1, TrafficClass::Data));
        r.record_delivery(rec_at(99, 2, TrafficClass::Data));
        r.record_delivery(rec_at(350, 3, TrafficClass::Session));
        r.record_transmission(rec_at(120, 0, TrafficClass::Nack));

        assert!(r.deliveries.is_empty() && r.transmissions.is_empty());
        assert_eq!(r.node_count(), 0, "no per-node tables at all");
        assert_eq!(r.delivered_count(NodeId(1), TrafficClass::Data), 0);
        assert!(r.delivered_bins(NodeId(1), TrafficClass::Data).is_empty());

        // Global totals and bins still answer.
        assert_eq!(r.total_delivered(TrafficClass::Data), 2);
        assert_eq!(r.total_delivered(TrafficClass::Session), 1);
        assert_eq!(r.total_sent(TrafficClass::Nack), 1);
        let bins = r.total_delivered_bins(TrafficClass::Data);
        assert_eq!(bins.len(), 1);
        assert_eq!(bins[0].packets, 2);
        let sess = r.total_delivered_bins(TrafficClass::Session);
        assert_eq!(sess.len(), 4);
        assert_eq!(sess[3].packets, 1);
        assert_eq!(r.total_sent_bins(TrafficClass::Nack)[1].packets, 1);

        r.clear();
        assert_eq!(r.total_delivered(TrafficClass::Data), 0);
        assert!(r.total_delivered_bins(TrafficClass::Data).is_empty());
    }

    #[test]
    fn aggregate_mode_memory_is_o_bins_not_o_packets() {
        // Record 10× the traffic into the same time window from many
        // different nodes: resident bytes must not move at all.
        let record = |events: u32| -> usize {
            let mut r = Recorder::new(RecorderMode::Aggregate);
            for i in 0..events {
                r.record_delivery(rec_at((i % 1000) as u64, i % 5000, TrafficClass::Data));
            }
            r.resident_bytes()
        };
        let small = record(2_000);
        let large = record(20_000);
        assert_eq!(
            small, large,
            "aggregate-mode footprint must depend only on the bin span"
        );
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(TrafficClass::Repair.label(), "repair");
        assert_eq!(TrafficClass::Session.label(), "session");
    }

    fn key(time_ms: u64, origin: u32, oseq: u64) -> EventKey {
        EventKey {
            time: SimTime::from_millis(time_ms),
            push_time: SimTime::ZERO,
            origin,
            oseq,
        }
    }

    #[test]
    fn merge_raw_parts_rebuilds_serial_order_regardless_of_part_order() {
        // Serial reference: events at keys k1 < k2 < k3, each producing
        // one record.
        let mut serial = Recorder::default();
        serial.record_delivery(rec_at(10, 1, TrafficClass::Data));
        serial.record_transmission(rec_at(15, 2, TrafficClass::Repair));
        serial.record_delivery(rec_at(20, 3, TrafficClass::Data));

        let build_parts = || {
            let mut a = Recorder::default();
            a.enable_tagging();
            a.set_tag(key(10, 1, 0));
            a.record_delivery(rec_at(10, 1, TrafficClass::Data));
            let mut b = Recorder::default();
            b.enable_tagging();
            b.set_tag(key(15, 2, 0));
            b.record_transmission(rec_at(15, 2, TrafficClass::Repair));
            b.set_tag(key(20, 2, 1));
            b.record_delivery(rec_at(20, 3, TrafficClass::Data));
            (a, b)
        };

        for swap in [false, true] {
            let (a, b) = build_parts();
            let parts = if swap { vec![b, a] } else { vec![a, b] };
            let mut merged = Recorder::default();
            merged.merge_raw_parts(parts);
            assert_eq!(merged.deliveries, serial.deliveries);
            assert_eq!(merged.transmissions, serial.transmissions);
            assert_eq!(
                merged.delivered_count(NodeId(1), TrafficClass::Data),
                serial.delivered_count(NodeId(1), TrafficClass::Data)
            );
            assert_eq!(
                merged.total_sent(TrafficClass::Repair),
                serial.total_sent(TrafficClass::Repair)
            );
        }
    }

    #[test]
    fn merge_raw_parts_keeps_same_event_records_in_shard_order() {
        // One event emits two transmissions; they share a tag and must
        // stay in emission order after the stable merge.
        let mut part = Recorder::default();
        part.enable_tagging();
        part.set_tag(key(5, 3, 7));
        part.record_transmission(rec_at(5, 3, TrafficClass::Data));
        part.record_transmission(rec_at(5, 3, TrafficClass::Repair));
        let mut merged = Recorder::default();
        merged.merge_raw_parts(vec![part]);
        assert_eq!(merged.transmissions[0].class, TrafficClass::Data);
        assert_eq!(merged.transmissions[1].class, TrafficClass::Repair);
    }

    #[test]
    fn absorb_totals_sums_streaming_tables() {
        let mut a = Recorder::new(RecorderMode::Streaming);
        a.record_delivery(rec_at(10, 1, TrafficClass::Data));
        a.record_drop(DropRecord {
            time: SimTime::from_millis(5),
            from: NodeId(0),
            to: NodeId(1),
            class: TrafficClass::Data,
        });
        let mut b = Recorder::new(RecorderMode::Streaming);
        b.record_delivery(rec_at(350, 2, TrafficClass::Data));
        b.record_transmission(rec_at(120, 2, TrafficClass::Nack));

        let mut merged = Recorder::new(RecorderMode::Streaming);
        merged.absorb_totals(&a);
        merged.absorb_totals(&b);
        assert_eq!(merged.total_delivered(TrafficClass::Data), 2);
        assert_eq!(merged.total_dropped(TrafficClass::Data), 1);
        assert_eq!(merged.total_sent(TrafficClass::Nack), 1);
        assert_eq!(merged.delivered_count(NodeId(1), TrafficClass::Data), 1);
        assert_eq!(merged.delivered_count(NodeId(2), TrafficClass::Data), 1);
        let bins = merged.delivered_bins(NodeId(2), TrafficClass::Data);
        assert_eq!(bins.len(), 4);
        assert_eq!(bins[3].packets, 1);
    }

    #[test]
    fn absorb_totals_sums_aggregate_bins() {
        let mut a = Recorder::new(RecorderMode::Aggregate);
        a.record_delivery(rec_at(10, 1, TrafficClass::Data));
        let mut b = Recorder::new(RecorderMode::Aggregate);
        b.record_delivery(rec_at(50, 2, TrafficClass::Data));
        b.record_delivery(rec_at(350, 3, TrafficClass::Data));
        let mut merged = Recorder::new(RecorderMode::Aggregate);
        merged.absorb_totals(&a);
        merged.absorb_totals(&b);
        let bins = merged.total_delivered_bins(TrafficClass::Data);
        assert_eq!(bins.len(), 4);
        assert_eq!(bins[0].packets, 2);
        assert_eq!(bins[3].packets, 1);
        assert_eq!(merged.node_count(), 0);
    }
}
