//! Measurement: every transmission, delivery, and drop, timestamped.
//!
//! The paper's Figures 14–21 plot "the sum of data and repair traffic
//! visible at each session member over 0.1 second intervals" and the
//! corresponding NACK counts.  The [`Recorder`] captures exactly the raw
//! events those plots are binned from; the `sharqfec-analysis` crate does
//! the binning.

use crate::channel::ChannelId;
use crate::graph::NodeId;
use crate::time::SimTime;

/// Coarse protocol-independent classification of a packet.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum TrafficClass {
    /// Original data packets (lossy).
    Data,
    /// FEC/retransmission repair packets (lossy).
    Repair,
    /// Negative acknowledgements / repair requests (lossless per §6.2).
    Nack,
    /// Session-management messages (lossless per §6.2).
    Session,
    /// Other control traffic, e.g. ZCR challenges (lossless).
    Control,
}

impl TrafficClass {
    /// Whether link loss applies to this class (paper §6.2: data and
    /// repairs are lossy; session traffic and NACKs are not).
    pub fn lossy(self) -> bool {
        matches!(self, TrafficClass::Data | TrafficClass::Repair)
    }

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            TrafficClass::Data => "data",
            TrafficClass::Repair => "repair",
            TrafficClass::Nack => "nack",
            TrafficClass::Session => "session",
            TrafficClass::Control => "control",
        }
    }
}

/// One delivery (or transmission) observation.
#[derive(Clone, Debug)]
pub struct Record {
    /// When the packet was delivered/transmitted.
    pub time: SimTime,
    /// The node observing the packet (receiver for deliveries, sender for
    /// transmissions).
    pub node: NodeId,
    /// The packet's original source.
    pub src: NodeId,
    /// Traffic class.
    pub class: TrafficClass,
    /// Wire size in bytes.
    pub bytes: u32,
    /// Channel the packet travelled on.
    pub channel: ChannelId,
}

/// One packet dropped by link loss.
#[derive(Clone, Debug)]
pub struct DropRecord {
    /// When the drop happened (at the head of the link).
    pub time: SimTime,
    /// Node that was transmitting onto the lossy link.
    pub from: NodeId,
    /// Node that would have received.
    pub to: NodeId,
    /// Traffic class of the lost packet.
    pub class: TrafficClass,
}

/// Accumulates simulation observations.
#[derive(Default, Debug)]
pub struct Recorder {
    /// Every delivery to an agent.
    pub deliveries: Vec<Record>,
    /// Every send by an agent (one record per transmission, not per
    /// receiver).
    pub transmissions: Vec<Record>,
    /// Every loss event.
    pub drops: Vec<DropRecord>,
}

impl Recorder {
    /// Empties all recorded events (e.g. to discard a warm-up phase).
    pub fn clear(&mut self) {
        self.deliveries.clear();
        self.transmissions.clear();
        self.drops.clear();
    }

    /// Counts deliveries at `node` with the given class.
    pub fn delivered_count(&self, node: NodeId, class: TrafficClass) -> usize {
        self.deliveries
            .iter()
            .filter(|r| r.node == node && r.class == class)
            .count()
    }

    /// Counts transmissions by `node` with the given class.
    pub fn sent_count(&self, node: NodeId, class: TrafficClass) -> usize {
        self.transmissions
            .iter()
            .filter(|r| r.node == node && r.class == class)
            .count()
    }

    /// Total bytes delivered across all nodes for a class.
    pub fn delivered_bytes(&self, class: TrafficClass) -> u64 {
        self.deliveries
            .iter()
            .filter(|r| r.class == class)
            .map(|r| r.bytes as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loss_applies_to_data_and_repairs_only() {
        assert!(TrafficClass::Data.lossy());
        assert!(TrafficClass::Repair.lossy());
        assert!(!TrafficClass::Nack.lossy());
        assert!(!TrafficClass::Session.lossy());
        assert!(!TrafficClass::Control.lossy());
    }

    #[test]
    fn recorder_counts_filter_correctly() {
        let mut r = Recorder::default();
        let rec = |node: u32, class| Record {
            time: SimTime::ZERO,
            node: NodeId(node),
            src: NodeId(0),
            class,
            bytes: 10,
            channel: ChannelId(0),
        };
        r.deliveries.push(rec(1, TrafficClass::Data));
        r.deliveries.push(rec(1, TrafficClass::Data));
        r.deliveries.push(rec(1, TrafficClass::Nack));
        r.deliveries.push(rec(2, TrafficClass::Data));
        r.transmissions.push(rec(0, TrafficClass::Data));

        assert_eq!(r.delivered_count(NodeId(1), TrafficClass::Data), 2);
        assert_eq!(r.delivered_count(NodeId(2), TrafficClass::Data), 1);
        assert_eq!(r.delivered_count(NodeId(2), TrafficClass::Nack), 0);
        assert_eq!(r.sent_count(NodeId(0), TrafficClass::Data), 1);
        assert_eq!(r.delivered_bytes(TrafficClass::Data), 30);

        r.clear();
        assert!(r.deliveries.is_empty() && r.transmissions.is_empty() && r.drops.is_empty());
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(TrafficClass::Repair.label(), "repair");
        assert_eq!(TrafficClass::Session.label(), "session");
    }
}
