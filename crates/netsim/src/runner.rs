//! Parallel experiment-sweep runner.
//!
//! Figure regeneration and ablation studies are grids of independent
//! simulation runs — (scenario, seed) cells that share nothing but code.
//! This module fans such a grid across OS threads with
//! [`std::thread::scope`]: every worker constructs its *own* [`Engine`]
//! inside its cell closure, so no engine state crosses a thread boundary
//! and `Engine` needs no `Send` bound.
//!
//! Guarantees, in order of importance:
//!
//! * **Determinism** — each cell is a pure function of its inputs, and
//!   results come back in cell order regardless of which worker ran what
//!   first.  A sweep at 8 threads is bit-identical to the same sweep at 1.
//! * **Isolation** — a panicking cell is caught and reported with its
//!   scenario and seed; the other cells complete normally.
//! * **Reporting** — [`SweepResults::write_json`] writes a
//!   machine-readable summary (status, wall time, and caller-chosen
//!   metrics per cell) under a results directory.
//!
//! Wall-clock fields in the summary are measured, hence *not*
//! deterministic; every simulation metric is.
//!
//! [`Engine`]: crate::engine::Engine

use std::fmt::Write as _;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One (scenario, seed) grid cell.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cell {
    /// Human-readable scenario label (e.g. `"k=16"` or `"fig14/srm"`).
    pub scenario: String,
    /// RNG seed for the run.
    pub seed: u64,
}

impl Cell {
    /// Convenience constructor.
    pub fn new(scenario: impl Into<String>, seed: u64) -> Cell {
        Cell {
            scenario: scenario.into(),
            seed,
        }
    }
}

/// The cross product of scenarios and seeds, scenarios-major (all seeds of
/// the first scenario, then the second, ...).
pub fn grid(scenarios: &[&str], seeds: &[u64]) -> Vec<Cell> {
    scenarios
        .iter()
        .flat_map(|s| seeds.iter().map(move |&seed| Cell::new(*s, seed)))
        .collect()
}

/// What happened to one cell.
#[derive(Debug)]
pub struct CellOutcome<T> {
    /// The cell that ran.
    pub cell: Cell,
    /// Wall-clock time the cell took (measured; not deterministic).
    pub wall: Duration,
    /// The cell's value, or the panic message if it panicked.
    pub result: Result<T, String>,
}

/// All outcomes of one sweep, in cell order.
#[derive(Debug)]
pub struct SweepResults<T> {
    /// Per-cell outcomes, index-aligned with the input cells.
    pub outcomes: Vec<CellOutcome<T>>,
    /// Worker threads used.
    pub threads: usize,
    /// Wall-clock time for the whole sweep (measured; not deterministic).
    pub wall: Duration,
}

/// The machine's available parallelism, as a default worker count.
pub fn default_threads() -> NonZeroUsize {
    std::thread::available_parallelism().unwrap_or(NonZeroUsize::MIN)
}

/// Runs `run` over every cell on `threads` workers and returns outcomes
/// in cell order.
///
/// Cells are claimed work-stealing style (an atomic cursor), so long cells
/// don't serialize behind short ones; a panic inside a cell is caught and
/// surfaces as that cell's `Err` without disturbing its neighbours.
pub fn run_sweep<T, F>(cells: Vec<Cell>, threads: NonZeroUsize, run: F) -> SweepResults<T>
where
    T: Send,
    F: Fn(&Cell) -> T + Sync,
{
    type Slot<T> = Option<(Duration, Result<T, String>)>;
    let started = Instant::now();
    let n = cells.len();
    let workers = threads.get().min(n.max(1));
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Slot<T>>> = Mutex::new((0..n).map(|_| None).collect());
    let run = &run;
    let cells_ref = &cells;

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let cell = &cells_ref[i];
                let cell_start = Instant::now();
                let result = catch_unwind(AssertUnwindSafe(|| run(cell)))
                    .map_err(|payload| panic_message(cell, payload.as_ref()));
                let wall = cell_start.elapsed();
                slots.lock().expect("runner slots poisoned")[i] = Some((wall, result));
            });
        }
    });

    let outcomes = slots
        .into_inner()
        .expect("runner slots poisoned")
        .into_iter()
        .zip(cells)
        .map(|(slot, cell)| {
            let (wall, result) = slot.expect("every cell index was claimed");
            CellOutcome { cell, wall, result }
        })
        .collect();
    SweepResults {
        outcomes,
        threads: workers,
        wall: started.elapsed(),
    }
}

/// Renders a caught panic payload with the failing cell's coordinates.
fn panic_message(cell: &Cell, payload: &(dyn std::any::Any + Send)) -> String {
    let msg = payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string());
    format!(
        "cell '{}' (seed {}) panicked: {msg}",
        cell.scenario, cell.seed
    )
}

impl<T> SweepResults<T> {
    /// Number of cells that completed without panicking.
    pub fn ok_count(&self) -> usize {
        self.outcomes.iter().filter(|o| o.result.is_ok()).count()
    }

    /// Outcomes of cells that panicked.
    pub fn failures(&self) -> Vec<&CellOutcome<T>> {
        self.outcomes.iter().filter(|o| o.result.is_err()).collect()
    }

    /// The values of all successful cells, in cell order, panicking with
    /// every failure message if any cell failed.
    pub fn into_values(self) -> Vec<T> {
        let mut errors = Vec::new();
        let mut values = Vec::new();
        for o in self.outcomes {
            match o.result {
                Ok(v) => values.push(v),
                Err(e) => errors.push(e),
            }
        }
        assert!(
            errors.is_empty(),
            "sweep had failures:\n{}",
            errors.join("\n")
        );
        values
    }

    /// Writes a machine-readable JSON summary to `dir/<name>.json`,
    /// creating `dir` if needed.  `metrics` extracts the per-cell numbers
    /// to publish (empty is fine).  Returns the path written.
    pub fn write_json(
        &self,
        dir: impl AsRef<Path>,
        name: &str,
        metrics: impl Fn(&T) -> Vec<(String, f64)>,
    ) -> std::io::Result<PathBuf> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{name}.json"));
        std::fs::write(&path, self.to_json(name, metrics))?;
        Ok(path)
    }

    /// The JSON summary as a string (see [`SweepResults::write_json`]).
    pub fn to_json(&self, name: &str, metrics: impl Fn(&T) -> Vec<(String, f64)>) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"sweep\": {},", json_string(name));
        let _ = writeln!(s, "  \"threads\": {},", self.threads);
        let _ = writeln!(s, "  \"wall_ms\": {:.3},", self.wall.as_secs_f64() * 1e3);
        let _ = writeln!(s, "  \"cells_ok\": {},", self.ok_count());
        let _ = writeln!(
            s,
            "  \"cells_failed\": {},",
            self.outcomes.len() - self.ok_count()
        );
        s.push_str("  \"cells\": [\n");
        for (i, o) in self.outcomes.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"scenario\": {}, \"seed\": {}, \"wall_ms\": {:.3}, ",
                json_string(&o.cell.scenario),
                o.cell.seed,
                o.wall.as_secs_f64() * 1e3
            );
            match &o.result {
                Ok(v) => {
                    s.push_str("\"status\": \"ok\", \"metrics\": {");
                    for (j, (k, val)) in metrics(v).iter().enumerate() {
                        if j > 0 {
                            s.push_str(", ");
                        }
                        let _ = write!(s, "{}: {}", json_string(k), json_number(*val));
                    }
                    s.push_str("}}");
                }
                Err(e) => {
                    let _ = write!(
                        s,
                        "\"status\": \"panicked\", \"error\": {}}}",
                        json_string(e)
                    );
                }
            }
            s.push_str(if i + 1 < self.outcomes.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// JSON string literal with the mandatory escapes.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// JSON has no NaN/Infinity; map them to null.
fn json_number(v: f64) -> String {
    if v.is_finite() {
        // Integral values print without a trailing ".0" churn.
        if v.fract() == 0.0 && v.abs() < 1e15 {
            format!("{}", v as i64)
        } else {
            format!("{v}")
        }
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_threads() -> NonZeroUsize {
        NonZeroUsize::new(2).unwrap()
    }

    #[test]
    fn grid_is_scenario_major() {
        let cells = grid(&["a", "b"], &[1, 2]);
        let got: Vec<(&str, u64)> = cells
            .iter()
            .map(|c| (c.scenario.as_str(), c.seed))
            .collect();
        assert_eq!(got, vec![("a", 1), ("a", 2), ("b", 1), ("b", 2)]);
    }

    #[test]
    fn results_come_back_in_cell_order() {
        let cells: Vec<Cell> = (0..32).map(|i| Cell::new("c", i)).collect();
        let res = run_sweep(cells, two_threads(), |c| c.seed * 10);
        let values: Vec<u64> = res.into_values();
        assert_eq!(values, (0..32).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let cells = || grid(&["x", "y"], &(0..8).collect::<Vec<u64>>());
        let serial = run_sweep(cells(), NonZeroUsize::MIN, |c| {
            (c.scenario.clone(), c.seed * c.seed)
        });
        let parallel = run_sweep(cells(), NonZeroUsize::new(4).unwrap(), |c| {
            (c.scenario.clone(), c.seed * c.seed)
        });
        assert_eq!(serial.into_values(), parallel.into_values());
    }

    #[test]
    fn panics_are_captured_with_seed_and_scenario() {
        let cells = grid(&["stable"], &[1, 2, 3]);
        let res = run_sweep(cells, two_threads(), |c| {
            if c.seed == 2 {
                panic!("boom at {}", c.seed);
            }
            c.seed
        });
        assert_eq!(res.ok_count(), 2);
        let failures = res.failures();
        assert_eq!(failures.len(), 1);
        let msg = failures[0].result.as_ref().unwrap_err();
        assert!(msg.contains("seed 2"), "message names the seed: {msg}");
        assert!(msg.contains("boom"), "message keeps the payload: {msg}");
        // Surviving cells are untouched and ordered.
        assert_eq!(res.outcomes[0].result.as_ref().ok(), Some(&1));
        assert_eq!(res.outcomes[2].result.as_ref().ok(), Some(&3));
    }

    #[test]
    #[should_panic(expected = "sweep had failures")]
    fn into_values_surfaces_failures() {
        let res = run_sweep(grid(&["s"], &[1]), NonZeroUsize::MIN, |_| -> u64 {
            panic!("nope")
        });
        let _ = res.into_values();
    }

    #[test]
    fn json_summary_is_well_formed() {
        let res = run_sweep(grid(&["a\"b"], &[1, 2]), two_threads(), |c| c.seed as f64);
        let json = res.to_json("unit", |v| vec![("value".to_string(), *v)]);
        assert!(json.contains("\"sweep\": \"unit\""));
        assert!(json.contains("\"a\\\"b\""), "scenario quotes escaped");
        assert!(json.contains("\"value\": 1"));
        assert!(json.contains("\"cells_ok\": 2"));
        // Smoke-parse: balanced braces/brackets, no trailing comma.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(!json.contains(",\n  ]"));
    }

    #[test]
    fn empty_sweep_is_fine() {
        let res = run_sweep(Vec::new(), two_threads(), |c: &Cell| c.seed);
        assert_eq!(res.outcomes.len(), 0);
        assert_eq!(res.ok_count(), 0);
        let json = res.to_json("empty", |_| Vec::new());
        assert!(json.contains("\"cells\": [\n  ]"));
    }

    #[test]
    fn engines_run_inside_cells() {
        // The whole point: Engine is not Send, but each cell builds its
        // own, so sweeps parallelize anyway.
        use crate::engine::Engine;
        use crate::graph::{LinkParams, TopologyBuilder};
        use crate::packet::Classify;
        use crate::shard::RunSpec;
        use crate::time::SimDuration;

        #[derive(Clone)]
        struct P;
        impl Classify for P {
            fn class(&self) -> crate::metrics::TrafficClass {
                crate::metrics::TrafficClass::Data
            }
        }

        let cells = grid(&["lossy"], &[1, 2, 3, 4]);
        let res = run_sweep(cells, two_threads(), |c| {
            let mut b = TopologyBuilder::new();
            let n0 = b.add_node("0");
            let n1 = b.add_node("1");
            b.add_link(
                n0,
                n1,
                LinkParams::new(SimDuration::from_millis(1), 800_000, 0.5),
            );
            let mut e: Engine<P> = Engine::new(b.build(), c.seed);
            let chan = e.add_channel(&[n0, n1]);
            for _ in 0..64 {
                e.multicast_from(n0, chan, P, 100);
            }
            e.advance(RunSpec::drain());
            e.recorder()
                .delivered_count(n1, crate::metrics::TrafficClass::Data)
        });
        let values = res.into_values();
        assert_eq!(values.len(), 4);
        // Deterministic per seed: running again yields the same numbers.
        let again = run_sweep(grid(&["lossy"], &[1, 2, 3, 4]), NonZeroUsize::MIN, |c| {
            let mut b = TopologyBuilder::new();
            let n0 = b.add_node("0");
            let n1 = b.add_node("1");
            b.add_link(
                n0,
                n1,
                LinkParams::new(SimDuration::from_millis(1), 800_000, 0.5),
            );
            let mut e: Engine<P> = Engine::new(b.build(), c.seed);
            let chan = e.add_channel(&[n0, n1]);
            for _ in 0..64 {
                e.multicast_from(n0, chan, P, 100);
            }
            e.advance(RunSpec::drain());
            e.recorder()
                .delivered_count(n1, crate::metrics::TrafficClass::Data)
        });
        assert_eq!(values, again.into_values());
    }
}
