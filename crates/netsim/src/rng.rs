//! Deterministic pseudo-random numbers for the simulator.
//!
//! The simulator must be a pure function of its seed: link-loss sampling,
//! SRM/SHARQFEC timer jitter, and session staggering all draw from
//! [`SimRng`].  We implement the generator ourselves (SplitMix64 seeding a
//! xoshiro256++ core) instead of depending on an external crate whose
//! stream might change between versions — reproduction runs recorded in
//! EXPERIMENTS.md should replay bit-for-bit forever.

/// A small, fast, deterministic PRNG (xoshiro256++).
///
/// Not cryptographically secure — it drives Monte-Carlo loss sampling and
/// protocol jitter only.
#[derive(Clone, Debug)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Creates a generator from a seed.  Any seed (including 0) is valid;
    /// the state is expanded through SplitMix64 so similar seeds produce
    /// unrelated streams.
    pub fn new(seed: u64) -> SimRng {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        SimRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Derives an independent stream for a sub-component (e.g. one per
    /// agent) so that adding draws in one component does not perturb
    /// another's sequence.
    pub fn split(&mut self, stream: u64) -> SimRng {
        let a = self.next_u64();
        SimRng::new(a ^ stream.wrapping_mul(0xA24B_AED4_963E_E407))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.s;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s2n = s2 ^ s0;
        let mut s3n = s3 ^ s1;
        let s1n = s1 ^ s2n;
        let s0n = s0 ^ s3n;
        s2n ^= t;
        s3n = s3n.rotate_left(45);
        self.s = [s0n, s1n, s2n, s3n];
        result
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial: `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.next_f64() < p
        }
    }

    /// Uniform float in `[lo, hi)`.  Used for the paper's timer windows,
    /// e.g. `U[C1·d, (C1+C2)·d]`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "range_f64 requires lo <= hi");
        lo + self.next_f64() * (hi - lo)
    }

    /// Uniform integer in `[0, n)`.  `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        // Lemire-style rejection to avoid modulo bias.
        let threshold = n.wrapping_neg() % n;
        loop {
            let r = self.next_u64();
            let (hi, lo) = {
                let wide = (r as u128) * (n as u128);
                ((wide >> 64) as u64, wide as u64)
            };
            if lo >= threshold {
                return hi;
            }
        }
    }

    /// Uniform choice of an index into a slice of length `len`.
    pub fn index(&mut self, len: usize) -> usize {
        self.below(len as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut r = SimRng::new(0);
        let v: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        assert!(v.iter().any(|&x| x != 0));
        assert_ne!(v[0], v[1]);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SimRng::new(3);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn chance_frequency_roughly_matches_p() {
        let mut r = SimRng::new(11);
        let n = 100_000;
        for &p in &[0.05f64, 0.25, 0.5, 0.9] {
            let hits = (0..n).filter(|_| r.chance(p)).count() as f64 / n as f64;
            assert!((hits - p).abs() < 0.01, "p={p} observed={hits}");
        }
    }

    #[test]
    fn chance_extremes_are_exact() {
        let mut r = SimRng::new(5);
        assert!(!r.chance(0.0));
        assert!(!r.chance(-1.0));
        assert!(r.chance(1.0));
        assert!(r.chance(2.0));
    }

    #[test]
    fn range_f64_bounds_respected() {
        let mut r = SimRng::new(13);
        for _ in 0..10_000 {
            let x = r.range_f64(0.9, 1.1);
            assert!((0.9..1.1).contains(&x));
        }
        // Degenerate range returns the single point.
        assert_eq!(r.range_f64(2.0, 2.0), 2.0);
    }

    #[test]
    fn below_is_unbiased_enough_and_in_range() {
        let mut r = SimRng::new(17);
        let mut counts = [0u32; 7];
        for _ in 0..70_000 {
            counts[r.below(7) as usize] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "counts={counts:?}");
        }
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        SimRng::new(1).below(0);
    }

    #[test]
    fn split_streams_are_independent_of_later_draws() {
        let mut parent1 = SimRng::new(99);
        let mut parent2 = SimRng::new(99);
        let mut child1 = parent1.split(1);
        let mut child2 = parent2.split(1);
        // Drawing extra numbers from one parent must not affect the child
        // stream already split off.
        let _ = parent1.next_u64();
        for _ in 0..32 {
            assert_eq!(child1.next_u64(), child2.next_u64());
        }
        // Different stream ids differ.
        let mut other = SimRng::new(99).split(2);
        assert_ne!(child1.next_u64(), other.next_u64());
    }
}
