//! The SRM §V adaptive timer-window adjustment, shared by the protocol
//! crates.
//!
//! Both `sharqfec-srm` (the baseline's request/repair windows) and
//! `sharqfec-core` (the paper's §7 future-work extension of the NACK
//! window) adapt a suppression window `[lo·d, (lo+width)·d]` from the
//! same two EWMAs: duplicate requests/repairs overheard per recovery
//! round, and the member's own recovery delay in units of the distance
//! `d`.  The two crates had drifted copies of this logic; this module is
//! the single implementation, parameterized by [`AdaptiveConfig`] so each
//! caller keeps its published trigger points (they intentionally diverge
//! in `delay_high` — see the constructors in `sharqfec-core::adapt` and
//! `sharqfec-srm::timers`).
//!
//! Semantics when disabled: the adapter is *inert* — `saw_duplicate` and
//! `end_round` change nothing, so enabling adaptation mid-run starts from
//! the configured window and unbiased EWMAs rather than inheriting
//! averages accumulated while the window was fixed (those samples are
//! biased: suppression dynamics differ when the window cannot move).

/// Trigger points and step sizes for one adaptive window.
#[derive(Clone, Copy, Debug)]
pub struct AdaptiveConfig {
    /// EWMA gain for the duplicate/delay averages (SRM: 1/4).
    pub gain: f64,
    /// Duplicate pressure at or above which the window widens (SRM: ~1).
    pub dup_high: f64,
    /// Duplicate pressure below which narrowing is considered.
    pub dup_low: f64,
    /// Delay (in units of `d`) above which narrowing kicks in.
    pub delay_high: f64,
    /// Additive widening steps `(lo, width)` under duplicate pressure.
    pub widen: (f64, f64),
    /// Subtractive narrowing steps `(lo, width)` for quiet slow rounds.
    pub narrow: (f64, f64),
    /// Floors `(min_lo, min_width)` preventing window collapse.
    pub floor: (f64, f64),
}

impl Default for AdaptiveConfig {
    /// The published SRM §V structure: gain 1/4, widen +0.1/+0.5, narrow
    /// −0.05/−0.1, floors 0.5, duplicate thresholds 1.0/0.25.
    /// `delay_high` is the callers' divergence point; the default is
    /// SRM's 1.5.
    fn default() -> AdaptiveConfig {
        AdaptiveConfig {
            gain: 0.25,
            dup_high: 1.0,
            dup_low: 0.25,
            delay_high: 1.5,
            widen: (0.1, 0.5),
            narrow: (0.05, 0.1),
            floor: (0.5, 0.5),
        }
    }
}

/// One adaptive window `[lo·d, (lo+width)·d]`.
#[derive(Clone, Debug)]
pub struct AdaptiveTimer {
    cfg: AdaptiveConfig,
    lo: f64,
    width: f64,
    ave_dup: f64,
    ave_delay: f64,
    round_dups: u32,
    enabled: bool,
}

impl AdaptiveTimer {
    /// Creates the adapter with initial window factors.
    pub fn new(lo: f64, width: f64, enabled: bool, cfg: AdaptiveConfig) -> AdaptiveTimer {
        AdaptiveTimer {
            cfg,
            lo,
            width,
            ave_dup: 0.0,
            ave_delay: 1.0,
            round_dups: 0,
            enabled,
        }
    }

    /// Current window start factor (C1/D1).
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Current window width factor (C2/D2).
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Current duplicate-pressure EWMA (diagnostics / probes).
    pub fn ave_dup(&self) -> f64 {
        self.ave_dup
    }

    /// Current recovery-delay EWMA in units of `d` (diagnostics / probes).
    pub fn ave_delay(&self) -> f64 {
        self.ave_delay
    }

    /// Whether adaptation is active.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Turns adaptation on or off mid-run.  Turning it on resets the
    /// round's duplicate count so the next round starts clean; EWMAs were
    /// never fed while disabled, so they are already unbiased.
    pub fn set_enabled(&mut self, enabled: bool) {
        if enabled && !self.enabled {
            self.round_dups = 0;
        }
        self.enabled = enabled;
    }

    /// Records an overheard duplicate (request or repair) for the current
    /// recovery round.  Inert while disabled.
    pub fn saw_duplicate(&mut self) {
        if !self.enabled {
            return;
        }
        self.round_dups = self.round_dups.saturating_add(1);
    }

    /// Closes a recovery round: folds the round's duplicate count and
    /// this member's own timer delay (in units of `d`) into the EWMAs,
    /// then adjusts the window.  Inert while disabled (no EWMA
    /// bookkeeping either — see the module docs).
    pub fn end_round(&mut self, own_delay_in_d: f64) {
        if !self.enabled {
            self.round_dups = 0;
            return;
        }
        let dups = self.round_dups as f64;
        self.round_dups = 0;
        self.ave_dup += self.cfg.gain * (dups - self.ave_dup);
        self.ave_delay += self.cfg.gain * (own_delay_in_d - self.ave_delay);
        if self.ave_dup >= self.cfg.dup_high {
            // Duplicate pressure: widen for better suppression.
            self.lo += self.cfg.widen.0;
            self.width += self.cfg.widen.1;
        } else if self.ave_dup < self.cfg.dup_low && self.ave_delay > self.cfg.delay_high {
            // Quiet but slow: narrow cautiously.
            self.lo = (self.lo - self.cfg.narrow.0).max(self.cfg.floor.0);
            self.width = (self.width - self.cfg.narrow.1).max(self.cfg.floor.1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timer(enabled: bool) -> AdaptiveTimer {
        AdaptiveTimer::new(2.0, 2.0, enabled, AdaptiveConfig::default())
    }

    #[test]
    fn duplicate_pressure_widens_window() {
        let mut t = timer(true);
        for _ in 0..8 {
            for _ in 0..4 {
                t.saw_duplicate();
            }
            t.end_round(1.0);
        }
        assert!(
            t.lo() > 2.0 && t.width() > 2.0,
            "({}, {})",
            t.lo(),
            t.width()
        );
        assert!(t.ave_dup() > 1.0);
    }

    #[test]
    fn quiet_slow_rounds_narrow_to_floors() {
        let mut t = timer(true);
        for _ in 0..100 {
            t.end_round(10.0);
        }
        assert_eq!((t.lo(), t.width()), (0.5, 0.5));
    }

    #[test]
    fn quiet_fast_rounds_hold() {
        let mut t = timer(true);
        for _ in 0..10 {
            t.end_round(0.5);
        }
        assert_eq!((t.lo(), t.width()), (2.0, 2.0));
    }

    #[test]
    fn disabled_adapter_is_fully_inert() {
        let mut t = timer(false);
        for _ in 0..20 {
            t.saw_duplicate();
            t.saw_duplicate();
            t.end_round(10.0);
        }
        assert_eq!((t.lo(), t.width()), (2.0, 2.0));
        // Regression for the pre-fix behaviour: the EWMAs used to keep
        // folding while disabled, so a mid-run enable inherited averages
        // accumulated under fixed-window dynamics.
        assert_eq!(t.ave_dup(), 0.0);
        assert_eq!(t.ave_delay(), 1.0);
    }

    #[test]
    fn enabling_mid_run_starts_from_clean_state() {
        let mut t = timer(false);
        // Heavy disabled-phase traffic that would have biased the EWMAs.
        for _ in 0..20 {
            for _ in 0..5 {
                t.saw_duplicate();
            }
            t.end_round(10.0);
        }
        t.set_enabled(true);
        assert_eq!(t.ave_dup(), 0.0);
        assert_eq!(t.ave_delay(), 1.0);
        // First live round behaves exactly like a fresh adapter's.
        let mut fresh = timer(true);
        t.saw_duplicate();
        fresh.saw_duplicate();
        t.end_round(2.0);
        fresh.end_round(2.0);
        assert_eq!(t.ave_dup(), fresh.ave_dup());
        assert_eq!(t.ave_delay(), fresh.ave_delay());
        assert_eq!((t.lo(), t.width()), (fresh.lo(), fresh.width()));
    }

    #[test]
    fn delay_high_divergence_changes_narrowing_onset() {
        // The two call sites intentionally diverge in delay_high: SRM's
        // 1.5 narrows on moderately slow rounds, the core's 4.0 only on
        // very slow ones.  Pin both behaviours through the shared code.
        let srm = AdaptiveConfig::default();
        let core = AdaptiveConfig {
            delay_high: 4.0,
            ..AdaptiveConfig::default()
        };
        let run = |cfg: AdaptiveConfig| {
            let mut t = AdaptiveTimer::new(2.0, 2.0, true, cfg);
            for _ in 0..12 {
                t.end_round(3.0); // quiet, moderately slow rounds
            }
            (t.lo(), t.width())
        };
        assert!(run(srm).0 < 2.0, "SRM narrows at delay 3.0 > 1.5");
        assert_eq!(run(core), (2.0, 2.0), "core holds: 3.0 < 4.0");
    }
}
