//! Multicast channels (groups) with administrative scope.
//!
//! A channel is a set of member nodes.  Packets sent on a channel are
//! forwarded down the sender's shortest-path tree but *pruned at
//! non-member nodes*: a non-member never receives nor forwards the packet.
//! This is exactly the behaviour of a border router enforcing an
//! administratively scoped boundary (RFC 2365-style), which is the
//! mechanism SHARQFEC's zone hierarchy is built from — provided each
//! zone's member set is contiguous under the routing trees, which the
//! topology builders assert.

use crate::graph::NodeId;
use crate::routing::Spt;
use core::fmt;

/// Identifier of a channel, dense from 0.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChannelId(pub u32);

impl ChannelId {
    /// The index as usize, for table lookups.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ch{}", self.0)
    }
}

/// Membership set of one channel.
///
/// Membership is stored as sorted, disjoint id ranges rather than a
/// `Vec<bool>` over every node: a simulation registers one channel per
/// zone, so dense per-channel bitmaps cost `O(zones × nodes)` — gigabytes
/// at 10⁶ receivers — while zone members get contiguous ids from the
/// topology generators and collapse to a handful of ranges.
#[derive(Clone, Debug)]
pub struct Channel {
    /// Sorted disjoint half-open member id ranges `[start, end)`.
    ranges: Vec<(u32, u32)>,
    members: Vec<NodeId>,
}

impl Channel {
    /// Builds a channel over `node_count` possible nodes with the given
    /// members (order and duplicates are normalized away).
    pub fn new(node_count: usize, members: &[NodeId]) -> Channel {
        let mut members: Vec<NodeId> = members.to_vec();
        members.sort_unstable();
        members.dedup();
        if let Some(&last) = members.last() {
            assert!(last.idx() < node_count, "member {last:?} out of range");
        }
        let mut ranges: Vec<(u32, u32)> = Vec::new();
        for &m in &members {
            match ranges.last_mut() {
                Some((_, end)) if *end == m.0 => *end += 1,
                _ => ranges.push((m.0, m.0 + 1)),
            }
        }
        Channel { ranges, members }
    }

    /// Adds a member mid-run (dynamic membership — see
    /// `sharqfec_netsim::scenario`).  Idempotent: inserting an existing
    /// member is a no-op, so replicated membership events converge to the
    /// same set on every shard.
    pub fn insert(&mut self, node: NodeId) {
        let i = self.members.partition_point(|&m| m < node);
        if self.members.get(i) == Some(&node) {
            return;
        }
        self.members.insert(i, node);
        self.rebuild_ranges();
    }

    /// Removes a member mid-run.  Idempotent like [`Channel::insert`].
    pub fn remove(&mut self, node: NodeId) {
        let i = self.members.partition_point(|&m| m < node);
        if self.members.get(i) != Some(&node) {
            return;
        }
        self.members.remove(i);
        self.rebuild_ranges();
    }

    /// Recomputes the range encoding from the sorted member list.  O(m),
    /// only paid on membership *changes* — the hot `contains` path stays
    /// a binary search over the ranges.
    fn rebuild_ranges(&mut self) {
        self.ranges.clear();
        for &m in &self.members {
            match self.ranges.last_mut() {
                Some((_, end)) if *end == m.0 => *end += 1,
                _ => self.ranges.push((m.0, m.0 + 1)),
            }
        }
    }

    /// Whether `node` belongs to the channel.
    #[inline]
    pub fn contains(&self, node: NodeId) -> bool {
        // Find the last range starting at or before the node.
        match self.ranges.partition_point(|&(start, _)| start <= node.0) {
            0 => false,
            i => node.0 < self.ranges[i - 1].1,
        }
    }

    /// Sorted member list.
    pub fn members(&self) -> &[NodeId] {
        &self.members
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the channel has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Checks that the members form a connected subtree of the given
    /// source-rooted SPT — the precondition for scope pruning to reach
    /// every member.  Used by topology builders in debug assertions.
    pub fn is_spt_connected(&self, spt: &Spt, source: NodeId) -> bool {
        if !self.contains(source) {
            return false;
        }
        // Every member's SPT path to the source must consist of members.
        self.members.iter().all(|&m| {
            let mut cur = m;
            loop {
                if cur == source {
                    return true;
                }
                match spt.parent[cur.idx()] {
                    Some((p, _)) if self.contains(p) => cur = p,
                    _ => return false,
                }
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{LinkParams, TopologyBuilder};
    use crate::time::SimDuration;

    #[test]
    fn membership_is_normalized() {
        let c = Channel::new(5, &[NodeId(3), NodeId(1), NodeId(3)]);
        assert_eq!(c.members(), &[NodeId(1), NodeId(3)]);
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
        assert!(c.contains(NodeId(1)));
        assert!(!c.contains(NodeId(0)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_member_rejected() {
        Channel::new(2, &[NodeId(2)]);
    }

    #[test]
    fn contiguous_members_collapse_to_one_range() {
        // The range encoding is what keeps per-channel memory O(ranges)
        // instead of O(node_count); contiguous zone ids must not fragment.
        let members: Vec<NodeId> = (10..500).map(NodeId).collect();
        let c = Channel::new(1000, &members);
        assert_eq!(c.len(), 490);
        assert!(!c.contains(NodeId(9)));
        assert!(c.contains(NodeId(10)));
        assert!(c.contains(NodeId(499)));
        assert!(!c.contains(NodeId(500)));
        assert!(!c.contains(NodeId(999)));
    }

    #[test]
    fn gapped_membership_answers_exactly() {
        let c = Channel::new(
            100,
            &[NodeId(0), NodeId(5), NodeId(6), NodeId(7), NodeId(99)],
        );
        for i in 0..100u32 {
            let expect = matches!(i, 0 | 5 | 6 | 7 | 99);
            assert_eq!(c.contains(NodeId(i)), expect, "node {i}");
        }
    }

    #[test]
    fn insert_and_remove_are_idempotent_and_keep_ranges_exact() {
        let mut c = Channel::new(100, &[NodeId(10), NodeId(11), NodeId(12)]);
        // Extend the contiguous run: still one range.
        c.insert(NodeId(13));
        c.insert(NodeId(13));
        assert_eq!(
            c.members(),
            &[NodeId(10), NodeId(11), NodeId(12), NodeId(13)]
        );
        assert!(c.contains(NodeId(13)));
        // Punch a hole in the middle.
        c.remove(NodeId(11));
        c.remove(NodeId(11));
        assert!(!c.contains(NodeId(11)));
        assert!(c.contains(NodeId(10)) && c.contains(NodeId(12)));
        // A disjoint member far away.
        c.insert(NodeId(50));
        for i in 0..100u32 {
            let expect = matches!(i, 10 | 12 | 13 | 50);
            assert_eq!(c.contains(NodeId(i)), expect, "node {i}");
        }
        // Draining everything leaves an empty, still-queryable channel.
        for m in [10u32, 12, 13, 50] {
            c.remove(NodeId(m));
        }
        assert!(c.is_empty());
        assert!(!c.contains(NodeId(10)));
    }

    #[test]
    fn mutated_channel_matches_freshly_built_channel() {
        // insert/remove must land on exactly the encoding Channel::new
        // produces, so replicated membership events keep shards identical.
        let mut mutated = Channel::new(64, &(0..32).map(NodeId).collect::<Vec<_>>());
        mutated.remove(NodeId(7));
        mutated.insert(NodeId(40));
        let rebuilt: Vec<NodeId> = (0..32)
            .filter(|&i| i != 7)
            .chain(std::iter::once(40))
            .map(NodeId)
            .collect();
        let fresh = Channel::new(64, &rebuilt);
        assert_eq!(mutated.members(), fresh.members());
        assert_eq!(mutated.ranges, fresh.ranges);
    }

    #[test]
    fn spt_connectivity_detects_gaps() {
        // chain 0-1-2-3
        let mut b = TopologyBuilder::new();
        let ids = b.add_nodes("n", 4);
        for w in ids.windows(2) {
            b.add_link(
                w[0],
                w[1],
                LinkParams::lossless_infinite(SimDuration::from_millis(1)),
            );
        }
        let t = b.build();
        let spt = Spt::compute(&t, ids[0]);

        let contiguous = Channel::new(4, &[ids[0], ids[1], ids[2]]);
        assert!(contiguous.is_spt_connected(&spt, ids[0]));

        // {0, 2} skips node 1: scope pruning could never deliver to 2.
        let gapped = Channel::new(4, &[ids[0], ids[2]]);
        assert!(!gapped.is_spt_connected(&spt, ids[0]));

        // Source outside the channel is also unreachable.
        let no_src = Channel::new(4, &[ids[1], ids[2]]);
        assert!(!no_src.is_spt_connected(&spt, ids[0]));
    }
}
