//! Decision-level protocol probes and the run-attached invariant auditor.
//!
//! [`crate::metrics::Recorder`] and [`crate::trace::Timeline`] see packets
//! on the wire; the paper's evaluation, however, reasons from *internal*
//! protocol state — ZLC EWMAs, NACK suppression outcomes, ZCR seats.
//! This module gives protocol agents a structured channel for exactly
//! those decisions:
//!
//! * [`ProbeEvent`] — a typed, allocation-free event vocabulary shared by
//!   the `core`, `session`, and `srm` agents;
//! * [`ProbeSink`] — the per-engine collector agents emit into via
//!   [`crate::agent::Ctx::probe`].  Disabled (the default) it is a single
//!   branch per emission site: no allocation, no RNG draws, no scheduled
//!   events, so runs are bit-identical with probes on or off;
//! * [`Auditor`] — an online invariant checker attached to the sink that
//!   verifies, as events stream, that (1) each zone has at most one
//!   stable ZCR outside fault/heal windows, (2) the injection chosen by
//!   *any* policy (EWMA, percentile, optimizing) never exceeds the group
//!   size and fires once per (node, group, level), (3) ZLC predictions
//!   stay finite and non-negative, (4) every receiver's delivered set
//!   is complete at group close, (5) fresh data sequences come from
//!   exactly one sender with non-interleaved sender eras (handoff
//!   correctness), and (6) — opt-in via
//!   [`AuditConfig::nack_sent_cap`] — sent NACKs per (group, level)
//!   stay under a storm cap even across batch joins.
//!
//! Enable recording with [`crate::engine::EngineBuilder::record_probes`]
//! and auditing with [`crate::engine::EngineBuilder::audit`]; read the
//! results back with [`crate::engine::Engine::probe_records`] and
//! [`crate::engine::Engine::audit_report`].

use crate::faults::FaultPlan;
use crate::graph::NodeId;
use crate::scenario::ScenarioPlan;
use crate::time::{SimDuration, SimTime};
use std::collections::HashMap;
use std::fmt;

/// How a NACK decision point resolved at one receiver.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NackOutcome {
    /// The NACK was multicast into the zone.
    Sent,
    /// A duplicate NACK (no ZLC increase) was overheard; the request
    /// backoff doubled instead of sending.
    SuppressedDuplicate,
    /// A worse-off receiver spoke at an enclosing scope; its repairs
    /// cover this member, so its own NACK was pushed out.
    SuppressedCovered,
}

impl NackOutcome {
    /// Short label for timelines and tables.
    pub fn label(self) -> &'static str {
        match self {
            NackOutcome::Sent => "sent",
            NackOutcome::SuppressedDuplicate => "dup-backoff",
            NackOutcome::SuppressedCovered => "covered",
        }
    }
}

/// What happened to a ZCR seat, from the emitting node's perspective.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ZcrAction {
    /// The node seated itself at start (designed seeding or root duty).
    Seeded,
    /// The node declared a takeover of the seat.
    Takeover,
    /// The node adopted another node as the seat holder.
    Adopt,
    /// A sitting ZCR reasserted its seat against a conflicting claim
    /// (partition-heal conflict resolution).
    Reassert,
    /// A sitting ZCR conceded the seat to a closer claimant.
    Concede,
}

impl ZcrAction {
    /// Short label for timelines and tables.
    pub fn label(self) -> &'static str {
        match self {
            ZcrAction::Seeded => "seeded",
            ZcrAction::Takeover => "takeover",
            ZcrAction::Adopt => "adopt",
            ZcrAction::Reassert => "reassert",
            ZcrAction::Concede => "concede",
        }
    }

    /// Whether the emitting node holds the seat after this action.
    pub fn claims_seat(self) -> bool {
        matches!(
            self,
            ZcrAction::Seeded | ZcrAction::Takeover | ZcrAction::Reassert
        )
    }
}

/// One typed protocol decision.  All payloads are plain scalars so
/// emission never allocates.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ProbeEvent {
    /// The ZLC EWMA for one chain level folded in a measurement.
    ZlcUpdate {
        /// Packet group measured.
        group: u32,
        /// Chain level (0 = smallest zone).
        level: u32,
        /// The observed zone repair demand (`zone_needed`).
        observed: f64,
        /// The prediction after the fold.
        pred: f64,
    },
    /// A preemptive-injection sizing decision made by an injection policy
    /// at group completion (the pluggable `InjectionPolicy` API — EWMA,
    /// percentile, or the optimization-driven controller).
    PolicyDecision {
        /// Static name of the deciding policy (`"ewma"`, `"percentile"`,
        /// `"optimizing"`).
        policy: &'static str,
        /// Packet group being covered.
        group: u32,
        /// Chain level injected into.
        level: u32,
        /// The policy's predicted per-group zone repair demand.
        pred: f64,
        /// The delivery/coverage target the policy aims for (`0` when the
        /// policy is not target-driven, as with the EWMA baseline).
        target: f64,
        /// FEC packets chosen for injection.
        chosen: u32,
        /// The configured group size (the injection budget).
        group_size: u32,
    },
    /// A NACK decision point resolved.
    Nack {
        /// Packet group concerned.
        group: u32,
        /// Chain level (the NACK's scope).
        level: u32,
        /// How it resolved.
        outcome: NackOutcome,
        /// The deciding member's Local Loss Count.
        llc: u32,
        /// The worst loss known for the scope (its ZLC).
        zlc: u32,
    },
    /// The adaptive request/repair window moved (or held) after a
    /// recovery round closed.
    Window {
        /// Window start factor (C1/D1) after the round.
        lo: f64,
        /// Window width factor (C2/D2) after the round.
        width: f64,
        /// Duplicate-pressure EWMA after the round.
        ave_dup: f64,
        /// Recovery-delay EWMA (units of `d`) after the round.
        ave_delay: f64,
    },
    /// A ZCR seat transition performed (or adopted) by the emitting node.
    Zcr {
        /// Dense zone index (the scoping layer's `ZoneId::idx`) the seat
        /// belongs to.
        zone: u64,
        /// What happened.
        action: ZcrAction,
        /// Who holds the seat after the transition, in the emitter's view.
        holder: NodeId,
    },
    /// A source put a *fresh* data sequence on the wire (first
    /// transmission, not a repair).  Drives the single-active-sender
    /// invariant across sender handoffs: the standby must pick up exactly
    /// where the retired sender stopped, with no interleaving and no
    /// sequence sent fresh twice.
    Sender {
        /// The fresh sequence number.
        seq: u32,
    },
    /// A packet group closed at one member (completion, or the stream-end
    /// audit finding it still open).  The auditor keeps the *last* close
    /// per (node, group), so an audit-time `complete: false` is superseded
    /// when a late repair completes the group.
    GroupClose {
        /// Packet group closing.
        group: u32,
        /// Whether the member can reconstruct the group.
        complete: bool,
        /// Distinct packet indices held.
        held: u32,
        /// Indices required for reconstruction.
        k: u32,
    },
}

impl ProbeEvent {
    /// Short kind label for timelines and binning filters.
    pub fn label(&self) -> &'static str {
        match self {
            ProbeEvent::ZlcUpdate { .. } => "zlc",
            ProbeEvent::PolicyDecision { .. } => "policy",
            ProbeEvent::Nack { .. } => "nack",
            ProbeEvent::Window { .. } => "window",
            ProbeEvent::Zcr { .. } => "zcr",
            ProbeEvent::Sender { .. } => "sender",
            ProbeEvent::GroupClose { .. } => "close",
        }
    }
}

impl fmt::Display for ProbeEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProbeEvent::ZlcUpdate {
                group,
                level,
                observed,
                pred,
            } => write!(f, "g{group} L{level} observed={observed} pred={pred:.3}"),
            ProbeEvent::PolicyDecision {
                policy,
                group,
                level,
                pred,
                target,
                chosen,
                group_size,
            } => write!(
                f,
                "g{group} L{level} {policy} pred={pred:.3} target={target:.2} \
                 chosen={chosen}/{group_size}"
            ),
            ProbeEvent::Nack {
                group,
                level,
                outcome,
                llc,
                zlc,
            } => write!(
                f,
                "g{group} L{level} {} llc={llc} zlc={zlc}",
                outcome.label()
            ),
            ProbeEvent::Window {
                lo,
                width,
                ave_dup,
                ave_delay,
            } => write!(
                f,
                "lo={lo:.2} width={width:.2} dup={ave_dup:.2} delay={ave_delay:.2}"
            ),
            ProbeEvent::Zcr {
                zone,
                action,
                holder,
            } => write!(f, "zone{zone} {} -> n{}", action.label(), holder.0),
            ProbeEvent::Sender { seq } => write!(f, "fresh seq {seq}"),
            ProbeEvent::GroupClose {
                group,
                complete,
                held,
                k,
            } => write!(
                f,
                "g{group} {} held={held}/{k}",
                if *complete { "complete" } else { "INCOMPLETE" }
            ),
        }
    }
}

/// One emitted probe event with its provenance.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProbeRecord {
    /// Simulation time of the decision.
    pub time: SimTime,
    /// The node that made it.
    pub node: NodeId,
    /// The decision.
    pub event: ProbeEvent,
}

/// The invariants the auditor enforces.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Invariant {
    /// At most one stable ZCR per zone outside fault/heal windows.
    SingleZcr,
    /// The injection chosen by any policy never exceeds the group size,
    /// and the decision fires at most once per (node, group, level).
    InjectionBudget,
    /// ZLC predictions stay finite and non-negative.
    ZlcSane,
    /// Every receiver's delivered set is complete at group close.
    DeliveryComplete,
    /// Fresh data sequences come from exactly one sender at a time:
    /// no sequence is fresh-sent twice, and sender eras never interleave
    /// (a retired sender must not resume, outside excused windows).
    SingleSender,
    /// Sent NACKs per (group, level) stay under the configured storm cap
    /// ([`AuditConfig::nack_sent_cap`]; off when `None`).  Deliberately
    /// *not* softened by excuse windows: its whole point is bounding the
    /// NACK volume of membership transients like batch joins.
    NackStorm,
}

impl Invariant {
    /// Stable label used in reports and JSON summaries.
    pub fn label(self) -> &'static str {
        match self {
            Invariant::SingleZcr => "single-zcr",
            Invariant::InjectionBudget => "injection-budget",
            Invariant::ZlcSane => "zlc-sane",
            Invariant::DeliveryComplete => "delivery-complete",
            Invariant::SingleSender => "single-sender",
            Invariant::NackStorm => "nack-storm",
        }
    }
}

/// One invariant violation, with enough context to reproduce it.
#[derive(Clone, Debug)]
pub struct Violation {
    /// When the violation was detected.
    pub time: SimTime,
    /// The node whose event exposed it.
    pub node: NodeId,
    /// Which invariant broke.
    pub invariant: Invariant,
    /// Human-readable specifics (only built when a violation occurs).
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:.3}s] n{} {}: {}",
            self.time.as_secs_f64(),
            self.node.0,
            self.invariant.label(),
            self.detail
        )
    }
}

/// Auditor tuning.
#[derive(Clone, Debug)]
pub struct AuditConfig {
    /// Time windows during which multi-claimant ZCR seats are excused
    /// (network faults and their heal aftermath).  An overlap episode that
    /// intersects any excused window is not a violation — partitions
    /// legitimately split seats, and re-convergence takes a beat after
    /// heal.
    pub excused: Vec<(SimTime, SimTime)>,
    /// How long two simultaneous seat claims may persist before counting
    /// as a violation.  Covers legitimate handoffs (takeover announced,
    /// old holder concedes on its next announcement).  Default 10 s —
    /// several announce/challenge periods, far below the lifetime of a
    /// genuine split-brain.
    pub seat_settle: SimDuration,
    /// Extension appended after the *last* fault event when deriving an
    /// excused window from a [`FaultPlan`] (see
    /// [`AuditConfig::excuse_faults`]): elections need a few challenge
    /// rounds to reconverge after heal.  Default 15 s.
    pub heal_grace: SimDuration,
    /// Grace appended after each membership disruption (join, leave,
    /// handoff, churn edge) when deriving excuse windows from a
    /// [`ScenarioPlan`] (see [`AuditConfig::excuse_scenario`]).  Shorter
    /// than `heal_grace`: membership flips touch no routing, only seats
    /// and audit paths.  Default 10 s.
    pub membership_grace: SimDuration,
    /// Opt-in NACK-storm cap: the maximum number of `Sent` NACK decisions
    /// allowed per (group, level) over the whole run.  `None` (the
    /// default) disables the check — static workloads tune suppression
    /// elsewhere; scenario sweeps set this to a small multiple of the
    /// scope ladder's zone fan-out.
    pub nack_sent_cap: Option<u32>,
}

impl Default for AuditConfig {
    fn default() -> AuditConfig {
        AuditConfig {
            excused: Vec::new(),
            seat_settle: SimDuration::from_secs(10),
            heal_grace: SimDuration::from_secs(15),
            membership_grace: SimDuration::from_secs(10),
            nack_sent_cap: None,
        }
    }
}

impl AuditConfig {
    /// Adds one excused window covering a fault plan's entire activity
    /// span, from its first event to [`AuditConfig::heal_grace`] past its
    /// last.  No-op for an empty plan.
    pub fn excuse_faults(&mut self, plan: &FaultPlan) {
        let times: Vec<SimTime> = plan.events().iter().map(|&(t, _)| t).collect();
        let (Some(&first), Some(&last)) = (times.iter().min(), times.iter().max()) else {
            return;
        };
        self.excused.push((first, last + self.heal_grace));
    }

    /// Adds excuse windows for a scenario plan's membership disruptions:
    /// one window `[t, t + membership_grace]` per disruption instant,
    /// with overlapping windows coalesced so a steady churn process does
    /// not degenerate into thousands of entries.  Unlike
    /// [`AuditConfig::excuse_faults`] this deliberately does *not* blanket
    /// the whole span — the quiet stretches between membership events must
    /// still uphold every invariant.  No-op for an empty plan.
    pub fn excuse_scenario(&mut self, plan: &ScenarioPlan) {
        let mut open: Option<(SimTime, SimTime)> = None;
        for t in plan.disruption_times() {
            match &mut open {
                Some((_, end)) if t <= *end => *end = t + self.membership_grace,
                _ => {
                    if let Some(w) = open.take() {
                        self.excused.push(w);
                    }
                    open = Some((t, t + self.membership_grace));
                }
            }
        }
        if let Some(w) = open {
            self.excused.push(w);
        }
    }
}

/// Per-zone seat bookkeeping for the single-ZCR invariant.
#[derive(Debug, Default)]
struct SeatState {
    /// Current claimants and when each claimed.
    holders: HashMap<NodeId, SimTime>,
    /// When the current multi-claimant episode began, if one is open.
    overlap_since: Option<SimTime>,
}

/// Online invariant checker over the probe stream.
#[derive(Debug)]
pub struct Auditor {
    cfg: AuditConfig,
    events: u64,
    violations: Vec<Violation>,
    seats: HashMap<u64, SeatState>,
    /// Injections seen per (node, group, level).
    injections: HashMap<(NodeId, u32, u32), u32>,
    /// Last close seen per (node, group).
    closes: HashMap<(NodeId, u32), (SimTime, bool, u32, u32)>,
    /// The node currently in its fresh-send era, if any.
    active_sender: Option<NodeId>,
    /// Senders whose era ended (another node started sending fresh data),
    /// with the time of the switch.
    retired_senders: HashMap<NodeId, SimTime>,
    /// First fresh sender seen per sequence number.
    sent_seqs: HashMap<u32, NodeId>,
    /// `Sent` NACK decisions per (group, level), kept only when
    /// [`AuditConfig::nack_sent_cap`] is set.
    nack_sent: HashMap<(u32, u32), u32>,
}

impl Auditor {
    /// A fresh auditor.
    pub fn new(cfg: AuditConfig) -> Auditor {
        Auditor {
            cfg,
            events: 0,
            violations: Vec::new(),
            seats: HashMap::new(),
            injections: HashMap::new(),
            closes: HashMap::new(),
            active_sender: None,
            retired_senders: HashMap::new(),
            sent_seqs: HashMap::new(),
            nack_sent: HashMap::new(),
        }
    }

    fn excused(&self, from: SimTime, to: SimTime) -> bool {
        self.cfg.excused.iter().any(|&(s, e)| from < e && to > s)
    }

    /// Whether the instant `t` falls in an excused window, inclusive of
    /// the window start (a handoff's first standby send lands exactly on
    /// the disruption instant that opened the window).
    fn excused_at(&self, t: SimTime) -> bool {
        self.cfg.excused.iter().any(|&(s, e)| s <= t && t <= e)
    }

    /// Closes a seat-overlap episode `[since, until)`, recording a
    /// violation when it outlived the settle window without intersecting
    /// an excused window.
    fn close_overlap(&mut self, zone: u64, since: SimTime, until: SimTime, node: NodeId) {
        if until.saturating_since(since) <= self.cfg.seat_settle || self.excused(since, until) {
            return;
        }
        let holders: Vec<u32> = self
            .seats
            .get(&zone)
            .map(|s| s.holders.keys().map(|n| n.0).collect())
            .unwrap_or_default();
        self.violations.push(Violation {
            time: until,
            node,
            invariant: Invariant::SingleZcr,
            detail: format!(
                "zone {zone} had multiple ZCR claimants for {:.3}s \
                 (since {:.3}s; claimants now {holders:?})",
                until.saturating_since(since).as_secs_f64(),
                since.as_secs_f64()
            ),
        });
    }

    /// Feeds one event through every streaming check.
    pub fn ingest(&mut self, r: &ProbeRecord) {
        self.events += 1;
        match r.event {
            ProbeEvent::ZlcUpdate { level, pred, .. } => {
                if !pred.is_finite() || pred < 0.0 {
                    self.violations.push(Violation {
                        time: r.time,
                        node: r.node,
                        invariant: Invariant::ZlcSane,
                        detail: format!("zlc_pred[{level}] became {pred}"),
                    });
                }
            }
            ProbeEvent::PolicyDecision {
                policy,
                group,
                level,
                pred,
                chosen,
                group_size,
                ..
            } => {
                if chosen > group_size {
                    self.violations.push(Violation {
                        time: r.time,
                        node: r.node,
                        invariant: Invariant::InjectionBudget,
                        detail: format!(
                            "{policy} chose {chosen} > group_size {group_size} (g{group} L{level})"
                        ),
                    });
                }
                if !pred.is_finite() || pred < 0.0 {
                    self.violations.push(Violation {
                        time: r.time,
                        node: r.node,
                        invariant: Invariant::ZlcSane,
                        detail: format!("{policy} prediction became {pred} (g{group} L{level})"),
                    });
                }
                let seen = self.injections.entry((r.node, group, level)).or_insert(0);
                *seen += 1;
                if *seen > 1 {
                    self.violations.push(Violation {
                        time: r.time,
                        node: r.node,
                        invariant: Invariant::InjectionBudget,
                        detail: format!(
                            "{policy} injection decided {seen} times for g{group} L{level}"
                        ),
                    });
                }
            }
            ProbeEvent::Zcr { zone, action, .. } => {
                let seat = self.seats.entry(zone).or_default();
                if action.claims_seat() {
                    seat.holders.entry(r.node).or_insert(r.time);
                } else {
                    seat.holders.remove(&r.node);
                }
                let (multi, since) = (seat.holders.len() >= 2, seat.overlap_since);
                match (multi, since) {
                    (true, None) => {
                        self.seats
                            .get_mut(&zone)
                            .expect("just touched")
                            .overlap_since = Some(r.time);
                    }
                    (false, Some(s)) => {
                        self.seats
                            .get_mut(&zone)
                            .expect("just touched")
                            .overlap_since = None;
                        self.close_overlap(zone, s, r.time, r.node);
                    }
                    _ => {}
                }
            }
            ProbeEvent::GroupClose {
                group,
                complete,
                held,
                k,
            } => {
                self.closes
                    .insert((r.node, group), (r.time, complete, held, k));
            }
            ProbeEvent::Sender { seq } => self.ingest_sender(r, seq),
            ProbeEvent::Nack {
                group,
                level,
                outcome: NackOutcome::Sent,
                ..
            } => {
                if let Some(cap) = self.cfg.nack_sent_cap {
                    let n = self.nack_sent.entry((group, level)).or_insert(0);
                    *n += 1;
                    // Flag exactly once, when the cap is first crossed.
                    if *n == cap + 1 {
                        self.violations.push(Violation {
                            time: r.time,
                            node: r.node,
                            invariant: Invariant::NackStorm,
                            detail: format!("more than {cap} Sent NACKs for g{group} L{level}"),
                        });
                    }
                }
            }
            ProbeEvent::Nack { .. } | ProbeEvent::Window { .. } => {}
        }
    }

    /// Single-sender bookkeeping for one fresh send.
    fn ingest_sender(&mut self, r: &ProbeRecord, seq: u32) {
        match self.sent_seqs.get(&seq) {
            Some(&prev) if prev != r.node => self.violations.push(Violation {
                time: r.time,
                node: r.node,
                invariant: Invariant::SingleSender,
                detail: format!("seq {seq} fresh-sent by n{} and n{}", prev.0, r.node.0),
            }),
            Some(_) => self.violations.push(Violation {
                time: r.time,
                node: r.node,
                invariant: Invariant::SingleSender,
                detail: format!("seq {seq} fresh-sent twice by n{}", r.node.0),
            }),
            None => {
                self.sent_seqs.insert(seq, r.node);
            }
        }
        match self.active_sender {
            None => self.active_sender = Some(r.node),
            Some(a) if a == r.node => {}
            Some(a) => {
                // Era switch: `a` retires.  If the new sender was itself
                // retired earlier, eras interleaved — two live senders —
                // unless a membership/fault window excuses the transient.
                self.retired_senders.insert(a, r.time);
                if self.retired_senders.remove(&r.node).is_some() && !self.excused_at(r.time) {
                    self.violations.push(Violation {
                        time: r.time,
                        node: r.node,
                        invariant: Invariant::SingleSender,
                        detail: format!(
                            "retired sender n{} resumed fresh sends (seq {seq})",
                            r.node.0
                        ),
                    });
                }
                self.active_sender = Some(r.node);
            }
        }
    }

    /// The verdict as of `now`: all streaming violations, plus end-state
    /// checks (seat overlaps still open, groups whose last close was
    /// incomplete).  Non-destructive — the auditor keeps streaming.
    pub fn report(&self, now: SimTime) -> AuditReport {
        let mut violations = self.violations.clone();
        for (&zone, seat) in &self.seats {
            if let Some(since) = seat.overlap_since {
                if now.saturating_since(since) > self.cfg.seat_settle && !self.excused(since, now) {
                    let holders: Vec<u32> = seat.holders.keys().map(|n| n.0).collect();
                    violations.push(Violation {
                        time: now,
                        node: NodeId(*holders.iter().min().unwrap_or(&0)),
                        invariant: Invariant::SingleZcr,
                        detail: format!(
                            "zone {zone} still has claimants {holders:?} at run end \
                             (overlapping since {:.3}s)",
                            since.as_secs_f64()
                        ),
                    });
                }
            }
        }
        for (&(node, group), &(time, complete, held, k)) in &self.closes {
            if !complete {
                violations.push(Violation {
                    time,
                    node,
                    invariant: Invariant::DeliveryComplete,
                    detail: format!("g{group} closed incomplete: held {held}/{k}"),
                });
            }
        }
        violations.sort_by_key(|v| v.time);
        AuditReport {
            events: self.events,
            violations,
        }
    }
}

/// The auditor's verdict for one run.
#[derive(Clone, Debug)]
pub struct AuditReport {
    /// Probe events the auditor saw.
    pub events: u64,
    /// Every violation, time-ordered.
    pub violations: Vec<Violation>,
}

impl AuditReport {
    /// Whether the run held every invariant.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// One-line summary for logs and tables.
    pub fn summary(&self) -> String {
        if self.ok() {
            format!("audit OK ({} events)", self.events)
        } else {
            format!(
                "audit FAILED: {} violation(s) over {} events; first: {}",
                self.violations.len(),
                self.events,
                self.violations[0]
            )
        }
    }
}

/// The per-engine probe collector.  Disabled by default: emission is a
/// single branch, no allocation, and never perturbs the simulation (no
/// RNG draws, no events scheduled).
#[derive(Debug, Default)]
pub struct ProbeSink {
    /// Whether emitted events are stored in [`ProbeSink::records`].
    keep: bool,
    records: Vec<ProbeRecord>,
    auditor: Option<Auditor>,
    /// Event-key tags parallel to `records`; `Some` only on per-shard
    /// sinks (see [`ProbeSink::shard_sink`]).
    tags: Option<Vec<crate::queue::EventKey>>,
    current_tag: crate::queue::EventKey,
}

impl ProbeSink {
    /// A sink that stores every emitted event.
    pub fn recording() -> ProbeSink {
        ProbeSink {
            keep: true,
            ..ProbeSink::default()
        }
    }

    /// Turns on record keeping.
    pub fn set_recording(&mut self, on: bool) {
        self.keep = on;
    }

    /// Attaches an auditor (replacing any previous one).
    pub fn set_auditor(&mut self, auditor: Auditor) {
        self.auditor = Some(auditor);
    }

    /// Whether anything observes emissions (the fast-path check).
    #[inline]
    pub fn enabled(&self) -> bool {
        self.keep || self.auditor.is_some()
    }

    /// Emits one event.  A disabled sink returns immediately.
    #[inline]
    pub fn emit(&mut self, time: SimTime, node: NodeId, event: ProbeEvent) {
        if !self.enabled() {
            return;
        }
        let r = ProbeRecord { time, node, event };
        if let Some(a) = &mut self.auditor {
            a.ingest(&r);
        }
        if self.keep {
            if let Some(tags) = &mut self.tags {
                tags.push(self.current_tag);
            }
            self.records.push(r);
        }
    }

    /// A per-shard sink derived from this (master) sink: disabled when
    /// the master observes nothing; otherwise it records every emission
    /// with an [`crate::queue::EventKey`] tag and defers auditing to the
    /// master, which ingests the merged stream in global key order (the
    /// auditor is order-sensitive, so shards must not feed it locally).
    pub(crate) fn shard_sink(&self) -> ProbeSink {
        if !self.enabled() {
            return ProbeSink::default();
        }
        ProbeSink {
            keep: true,
            tags: Some(Vec::new()),
            ..ProbeSink::default()
        }
    }

    /// Sets the event key stamped onto subsequent emissions.  No-op on
    /// untagged sinks.
    #[inline]
    pub(crate) fn set_tag(&mut self, key: crate::queue::EventKey) {
        if self.tags.is_some() {
            self.current_tag = key;
        }
    }

    /// Drains everything recorded since the last drain, paired with its
    /// tag.  Only meaningful on tagged shard sinks.
    pub(crate) fn drain_tagged(&mut self) -> Vec<(crate::queue::EventKey, ProbeRecord)> {
        let tags = self.tags.as_mut().map(std::mem::take).unwrap_or_default();
        debug_assert_eq!(tags.len(), self.records.len());
        tags.into_iter().zip(self.records.drain(..)).collect()
    }

    /// Ingests one record of the globally merged shard stream: feeds the
    /// auditor (in-order, as it requires) and stores the record iff this
    /// master sink is keeping records.
    pub(crate) fn ingest_merged(&mut self, r: ProbeRecord) {
        if let Some(a) = &mut self.auditor {
            a.ingest(&r);
        }
        if self.keep {
            self.records.push(r);
        }
    }

    /// Everything recorded so far (empty unless recording was enabled).
    pub fn records(&self) -> &[ProbeRecord] {
        &self.records
    }

    /// The attached auditor's verdict as of `now`, if one is attached.
    pub fn audit_report(&self, now: SimTime) -> Option<AuditReport> {
        self.auditor.as_ref().map(|a| a.report(now))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    fn rec(t: SimTime, node: u32, event: ProbeEvent) -> ProbeRecord {
        ProbeRecord {
            time: t,
            node: NodeId(node),
            event,
        }
    }

    fn zcr(zone: u64, action: ZcrAction, holder: u32) -> ProbeEvent {
        ProbeEvent::Zcr {
            zone,
            action,
            holder: NodeId(holder),
        }
    }

    #[test]
    fn disabled_sink_discards_everything() {
        let mut s = ProbeSink::default();
        assert!(!s.enabled());
        s.emit(
            at(1),
            NodeId(0),
            ProbeEvent::Window {
                lo: 2.0,
                width: 2.0,
                ave_dup: 0.0,
                ave_delay: 1.0,
            },
        );
        assert!(s.records().is_empty());
        assert!(s.audit_report(at(2)).is_none());
    }

    #[test]
    fn recording_sink_keeps_order() {
        let mut s = ProbeSink::recording();
        for i in 0..3u64 {
            s.emit(at(i), NodeId(i as u32), zcr(0, ZcrAction::Seeded, i as u32));
        }
        assert_eq!(s.records().len(), 3);
        assert!(s.records().windows(2).all(|w| w[0].time <= w[1].time));
    }

    #[test]
    fn zlc_nan_and_negative_are_violations() {
        let mut a = Auditor::new(AuditConfig::default());
        a.ingest(&rec(
            at(1),
            1,
            ProbeEvent::ZlcUpdate {
                group: 0,
                level: 0,
                observed: 0.0,
                pred: f64::NAN,
            },
        ));
        a.ingest(&rec(
            at(2),
            1,
            ProbeEvent::ZlcUpdate {
                group: 1,
                level: 0,
                observed: 0.0,
                pred: -0.5,
            },
        ));
        a.ingest(&rec(
            at(3),
            1,
            ProbeEvent::ZlcUpdate {
                group: 2,
                level: 0,
                observed: 2.0,
                pred: 1.25,
            },
        ));
        let report = a.report(at(4));
        assert_eq!(report.violations.len(), 2);
        assert!(report
            .violations
            .iter()
            .all(|v| v.invariant == Invariant::ZlcSane));
    }

    #[test]
    fn injection_over_budget_and_double_fire_are_violations() {
        let mut a = Auditor::new(AuditConfig::default());
        let inj = |chosen, group| ProbeEvent::PolicyDecision {
            policy: "ewma",
            group,
            level: 0,
            pred: 1.0,
            target: 0.0,
            chosen,
            group_size: 16,
        };
        a.ingest(&rec(at(1), 1, inj(16, 0))); // at budget: fine
        a.ingest(&rec(at(2), 1, inj(17, 1))); // over budget
        a.ingest(&rec(at(3), 1, inj(1, 2)));
        a.ingest(&rec(at(4), 1, inj(1, 2))); // double fire
        let report = a.report(at(5));
        assert_eq!(report.violations.len(), 2);
        assert!(report
            .violations
            .iter()
            .all(|v| v.invariant == Invariant::InjectionBudget));
    }

    #[test]
    fn budget_invariant_applies_to_every_policy() {
        // The chosen-h ≤ group_size check keys on the decision event, not
        // on the policy that produced it.
        let mut a = Auditor::new(AuditConfig::default());
        for (i, policy) in ["ewma", "percentile", "optimizing"].iter().enumerate() {
            a.ingest(&rec(
                at(i as u64 + 1),
                1,
                ProbeEvent::PolicyDecision {
                    policy,
                    group: i as u32,
                    level: 0,
                    pred: 40.0,
                    target: 0.9,
                    chosen: 33,
                    group_size: 32,
                },
            ));
        }
        let report = a.report(at(10));
        assert_eq!(report.violations.len(), 3);
        assert!(report
            .violations
            .iter()
            .all(|v| v.invariant == Invariant::InjectionBudget));
        for (v, policy) in report
            .violations
            .iter()
            .zip(["ewma", "percentile", "optimizing"])
        {
            assert!(v.detail.contains(policy), "detail names the policy: {v}");
        }
    }

    #[test]
    fn non_finite_policy_prediction_is_a_violation() {
        let mut a = Auditor::new(AuditConfig::default());
        a.ingest(&rec(
            at(1),
            1,
            ProbeEvent::PolicyDecision {
                policy: "optimizing",
                group: 0,
                level: 0,
                pred: f64::NAN,
                target: 0.9,
                chosen: 1,
                group_size: 16,
            },
        ));
        let report = a.report(at(2));
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].invariant, Invariant::ZlcSane);
    }

    #[test]
    fn transient_seat_handoff_is_not_a_violation() {
        let mut a = Auditor::new(AuditConfig::default());
        a.ingest(&rec(at(1), 1, zcr(0, ZcrAction::Seeded, 1)));
        // Node 2 takes over; node 1 concedes 3 s later (within settle).
        a.ingest(&rec(at(20), 2, zcr(0, ZcrAction::Takeover, 2)));
        a.ingest(&rec(at(23), 1, zcr(0, ZcrAction::Concede, 2)));
        assert!(a.report(at(60)).ok());
    }

    #[test]
    fn stable_double_seat_is_a_violation() {
        let mut a = Auditor::new(AuditConfig::default());
        a.ingest(&rec(at(1), 1, zcr(0, ZcrAction::Seeded, 1)));
        a.ingest(&rec(at(5), 2, zcr(0, ZcrAction::Takeover, 2)));
        // Nobody concedes for 30 s.
        a.ingest(&rec(at(35), 1, zcr(0, ZcrAction::Concede, 2)));
        let report = a.report(at(40));
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].invariant, Invariant::SingleZcr);
    }

    #[test]
    fn overlap_open_at_run_end_is_caught_by_report() {
        let mut a = Auditor::new(AuditConfig::default());
        a.ingest(&rec(at(1), 1, zcr(0, ZcrAction::Seeded, 1)));
        a.ingest(&rec(at(5), 2, zcr(0, ZcrAction::Takeover, 2)));
        assert!(!a.report(at(60)).ok(), "still two claimants at the end");
        // But a short-lived overlap at the very end is fine.
        assert!(a.report(at(6)).ok());
    }

    #[test]
    fn fault_windows_excuse_seat_overlap() {
        let mut cfg = AuditConfig::default();
        cfg.excused.push((at(5), at(50)));
        let mut a = Auditor::new(cfg);
        a.ingest(&rec(at(1), 1, zcr(0, ZcrAction::Seeded, 1)));
        // Partition: the far side elects its own ZCR for 30 s.
        a.ingest(&rec(at(7), 2, zcr(0, ZcrAction::Takeover, 2)));
        a.ingest(&rec(at(37), 2, zcr(0, ZcrAction::Concede, 1)));
        assert!(a.report(at(60)).ok());
    }

    #[test]
    fn excuse_faults_covers_plan_span() {
        use crate::faults::FaultEvent;
        use crate::graph::LinkId;
        let plan = FaultPlan::new()
            .at(at(7), FaultEvent::LinkDown(LinkId(0)))
            .at(at(9), FaultEvent::LinkUp(LinkId(0)));
        let mut cfg = AuditConfig::default();
        cfg.excuse_faults(&plan);
        assert_eq!(cfg.excused.len(), 1);
        assert_eq!(cfg.excused[0].0, at(7));
        assert_eq!(cfg.excused[0].1, at(9) + cfg.heal_grace);
    }

    #[test]
    fn incomplete_close_superseded_by_later_completion() {
        let mut a = Auditor::new(AuditConfig::default());
        let close = |complete, held| ProbeEvent::GroupClose {
            group: 3,
            complete,
            held,
            k: 16,
        };
        a.ingest(&rec(at(50), 4, close(false, 14)));
        assert!(!a.report(at(51)).ok());
        a.ingest(&rec(at(55), 4, close(true, 16)));
        assert!(a.report(at(60)).ok(), "late completion supersedes");
    }

    #[test]
    fn report_summary_reads_well() {
        let mut a = Auditor::new(AuditConfig::default());
        a.ingest(&rec(
            at(1),
            1,
            ProbeEvent::ZlcUpdate {
                group: 0,
                level: 0,
                observed: 0.0,
                pred: f64::INFINITY,
            },
        ));
        let report = a.report(at(2));
        assert!(report.summary().contains("FAILED"));
        assert!(report.summary().contains("zlc-sane"));
        let clean = Auditor::new(AuditConfig::default()).report(at(2));
        assert!(clean.summary().contains("OK"));
    }

    #[test]
    fn handoff_with_disjoint_eras_and_seqs_is_clean() {
        let mut a = Auditor::new(AuditConfig::default());
        for seq in 0..5 {
            a.ingest(&rec(at(seq as u64 + 1), 1, ProbeEvent::Sender { seq }));
        }
        // Node 7 takes over exactly where node 1 stopped.
        for seq in 5..10 {
            a.ingest(&rec(at(seq as u64 + 1), 7, ProbeEvent::Sender { seq }));
        }
        assert!(a.report(at(20)).ok());
    }

    #[test]
    fn duplicate_fresh_seq_is_a_single_sender_violation() {
        let mut a = Auditor::new(AuditConfig::default());
        a.ingest(&rec(at(1), 1, ProbeEvent::Sender { seq: 0 }));
        a.ingest(&rec(at(2), 1, ProbeEvent::Sender { seq: 1 }));
        // A mis-seeded standby resends seq 1.
        a.ingest(&rec(at(3), 7, ProbeEvent::Sender { seq: 1 }));
        let report = a.report(at(10));
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].invariant, Invariant::SingleSender);
        assert!(report.violations[0].detail.contains("n1 and n7"));
    }

    #[test]
    fn interleaved_sender_eras_are_a_violation_unless_excused() {
        let run = |excuse: Option<(SimTime, SimTime)>| {
            let mut cfg = AuditConfig::default();
            cfg.excused.extend(excuse);
            let mut a = Auditor::new(cfg);
            a.ingest(&rec(at(1), 1, ProbeEvent::Sender { seq: 0 }));
            a.ingest(&rec(at(2), 7, ProbeEvent::Sender { seq: 1 }));
            // Node 1 was retired by node 7's takeover but speaks again.
            a.ingest(&rec(at(3), 1, ProbeEvent::Sender { seq: 2 }));
            a.report(at(10))
        };
        let bad = run(None);
        assert_eq!(bad.violations.len(), 1);
        assert_eq!(bad.violations[0].invariant, Invariant::SingleSender);
        assert!(bad.violations[0].detail.contains("resumed"));
        assert!(run(Some((at(3), at(5)))).ok(), "window start is inclusive");
    }

    #[test]
    fn nack_storm_cap_is_opt_in_and_fires_once() {
        let nack = |group| ProbeEvent::Nack {
            group,
            level: 0,
            outcome: NackOutcome::Sent,
            llc: 1,
            zlc: 1,
        };
        // Default config: unlimited Sent NACKs.
        let mut quiet = Auditor::new(AuditConfig::default());
        for i in 0..100 {
            quiet.ingest(&rec(at(i), 1, nack(0)));
        }
        assert!(quiet.report(at(200)).ok());

        let cfg = AuditConfig {
            nack_sent_cap: Some(3),
            ..AuditConfig::default()
        };
        let mut a = Auditor::new(cfg);
        for i in 0..10 {
            a.ingest(&rec(at(i), 1, nack(0)));
        }
        // A different (group, level) key counts separately.
        for i in 0..3 {
            a.ingest(&rec(at(50 + i), 2, nack(1)));
        }
        let report = a.report(at(100));
        assert_eq!(report.violations.len(), 1, "one violation per key crossing");
        assert_eq!(report.violations[0].invariant, Invariant::NackStorm);
        assert_eq!(report.violations[0].time, at(3), "flagged at the crossing");
    }

    #[test]
    fn suppressed_nacks_do_not_count_toward_the_storm_cap() {
        let cfg = AuditConfig {
            nack_sent_cap: Some(1),
            ..AuditConfig::default()
        };
        let mut a = Auditor::new(cfg);
        for i in 0..20 {
            a.ingest(&rec(
                at(i),
                1,
                ProbeEvent::Nack {
                    group: 0,
                    level: 0,
                    outcome: NackOutcome::SuppressedDuplicate,
                    llc: 1,
                    zlc: 2,
                },
            ));
        }
        a.ingest(&rec(
            at(30),
            1,
            ProbeEvent::Nack {
                group: 0,
                level: 0,
                outcome: NackOutcome::Sent,
                llc: 1,
                zlc: 1,
            },
        ));
        assert!(a.report(at(40)).ok(), "suppression is the storm *remedy*");
    }

    #[test]
    fn excuse_scenario_coalesces_overlapping_windows() {
        use crate::channel::ChannelId;
        use crate::scenario::MembershipEvent;
        let mut plan = ScenarioPlan::new();
        // Three disruptions at 1 s, 5 s, and 40 s with a 10 s grace:
        // the first two windows overlap and must merge.
        for (t, n) in [(1u64, 10u32), (5, 11), (40, 12)] {
            plan.push(
                at(t),
                MembershipEvent::Join {
                    channel: ChannelId(0),
                    node: NodeId(n),
                },
            );
        }
        let mut cfg = AuditConfig::default();
        cfg.excuse_scenario(&plan);
        assert_eq!(cfg.excused, vec![(at(1), at(15)), (at(40), at(50))]);
        // An empty plan adds nothing.
        let mut empty = AuditConfig::default();
        empty.excuse_scenario(&ScenarioPlan::new());
        assert!(empty.excused.is_empty());
    }

    #[test]
    fn event_display_is_compact() {
        let e = ProbeEvent::Nack {
            group: 2,
            level: 1,
            outcome: NackOutcome::SuppressedCovered,
            llc: 3,
            zlc: 5,
        };
        assert_eq!(format!("{e}"), "g2 L1 covered llc=3 zlc=5");
        assert_eq!(e.label(), "nack");
    }
}
