//! Conservative parallel execution of the DES engine, partitioned by
//! zone subtree.
//!
//! ## Partitioning
//!
//! A [`ShardPlan`] assigns every node to one shard.  For tree topologies
//! (in particular `topology::scaled`'s zone hierarchy) the plan cuts the
//! tree at the root: each of the root's child subtrees is a unit, units
//! are greedy-packed into shards by subtree size, and the root itself
//! lives in shard 0.  A zone never straddles a shard boundary, so the
//! only inter-shard edges are the root's uplinks — exactly the links the
//! paper gives fixed inter-zone latency.  Arbitrary (non-tree) graphs
//! fall back to a single-shard plan, which is just the serial engine.
//!
//! ## Synchronization
//!
//! Classic conservative PDES with a barrier-on-min-timestamp scheme: the
//! lookahead `L` is the minimum link latency over inter-shard edges.
//! Each round, every shard publishes the timestamp of its earliest
//! pending event; the global minimum `T` defines a window `[T, T + L)`
//! that every shard may process independently, because any cross-shard
//! packet generated inside the window arrives no earlier than `T + L`.
//! Cross-shard arrivals travel as timestamped messages (`OutMsg`),
//! exchanged at the end of the round and enqueued before the next
//! window is chosen.  Threads meet at [`std::sync::Barrier`]s (blocking,
//! no busy-spin), every round makes progress (the shard holding the
//! global-minimum event always processes it), and termination is decided
//! from identical data on every thread — so the scheme cannot deadlock.
//!
//! ## Determinism
//!
//! Runs are **bit-identical at any shard count** because every source of
//! ordering or randomness is a pure function of simulation-local history,
//! never of global execution order:
//!
//! * events are ordered by [`EventKey`] `(fire time, push time, pushing
//!   node, per-node sequence)` — the key a cross-shard arrival carries is
//!   the key the serial engine would have used;
//! * agents draw from per-node RNG streams, loss sampling from
//!   per-(link, direction) streams, and per-node sequence counters are
//!   only advanced while processing that node's events — all owned by
//!   exactly one shard;
//! * fault and membership events are replicated to every shard with
//!   identical keys, so replicated state (link masks, loss models,
//!   epochs, channel member sets) evolves identically everywhere; the
//!   restart `Start` fires only in the shard owning the node's agent;
//! * recorder and probe records are tagged with their event key and
//!   k-way merged back into the serial timeline regardless of shard
//!   completion order.
//!
//! The one requirement is positive latency on every inter-shard link
//! (zero lookahead would admit same-instant cross-shard causality);
//! [`Engine::advance`] asserts it.

use crate::arena::PacketArena;
use crate::engine::{Engine, EventKind};
use crate::graph::{LinkId, NodeId, Topology};
use crate::link::LinkState;
use crate::metrics::{Recorder, RecorderMode, TrafficClass};
use crate::packet::{Classify, Packet};
use crate::probe::ProbeRecord;
use crate::queue::{EventKey, EventQueue};
use crate::time::{SimDuration, SimTime};
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Mutex};

/// A deterministic assignment of every node to one shard.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardPlan {
    /// `owner[node] = shard index`.
    owner: Vec<u32>,
    shards: u32,
}

impl ShardPlan {
    /// The trivial plan: every node in shard 0 (serial execution).
    pub fn single(node_count: usize) -> ShardPlan {
        ShardPlan {
            owner: vec![0; node_count],
            shards: 1,
        }
    }

    /// Partitions a tree topology into at most `shards` shards by cutting
    /// at `root`: each root subtree is kept whole and subtrees are
    /// greedy-packed (largest first, ties by node id) into the least
    /// loaded shard; `root` joins shard 0.  Deterministic — the same
    /// inputs always produce the same plan.  Falls back to
    /// [`ShardPlan::single`] when the topology is not a connected tree,
    /// or when `shards <= 1`.
    pub fn by_subtrees(topo: &Topology, root: NodeId, shards: usize) -> ShardPlan {
        let n = topo.node_count();
        if shards <= 1 || n <= 1 || topo.link_count() != n - 1 {
            return ShardPlan::single(n);
        }
        // BFS from the root; `parent` doubles as the visited set.
        let mut parent = vec![u32::MAX; n];
        let mut order = Vec::with_capacity(n);
        parent[root.idx()] = root.0;
        order.push(root);
        let mut head = 0;
        while head < order.len() {
            let u = order[head];
            head += 1;
            for &(v, _) in topo.neighbors(u) {
                if parent[v.idx()] == u32::MAX {
                    parent[v.idx()] = u.0;
                    order.push(v);
                }
            }
        }
        if order.len() != n {
            return ShardPlan::single(n); // disconnected
        }
        // Subtree sizes by folding leaves upward (reverse BFS order).
        let mut size = vec![1u64; n];
        for &u in order.iter().rev() {
            if u != root {
                size[parent[u.idx()] as usize] += size[u.idx()];
            }
        }
        // Greedy-pack the root's subtrees, largest first.
        let mut children: Vec<NodeId> = topo.neighbors(root).iter().map(|&(v, _)| v).collect();
        children.sort_by_key(|c| (std::cmp::Reverse(size[c.idx()]), c.0));
        let k = shards.min(children.len()).max(1);
        let mut load = vec![0u64; k];
        let mut bin = vec![0u32; n];
        for c in children {
            let b = (0..k).min_by_key(|&b| (load[b], b)).expect("k >= 1");
            load[b] += size[c.idx()];
            bin[c.idx()] = b as u32;
        }
        let mut owner = vec![0u32; n];
        for &u in &order {
            if u == root {
                continue;
            }
            let p = parent[u.idx()] as usize;
            owner[u.idx()] = if p == root.idx() {
                bin[u.idx()]
            } else {
                owner[p]
            };
        }
        ShardPlan {
            owner,
            shards: k as u32,
        }
    }

    /// Number of shards in this plan.
    pub fn shard_count(&self) -> usize {
        self.shards as usize
    }

    /// Number of nodes this plan covers.
    pub fn node_count(&self) -> usize {
        self.owner.len()
    }

    /// The shard owning `node`.
    pub fn owner(&self, node: NodeId) -> u32 {
        self.owner[node.idx()]
    }
}

/// Everything one [`Engine::advance`] call needs: horizon, shard plan,
/// and worker-thread count.  Unset fields fall back to the builder
/// defaults ([`crate::engine::EngineBuilder::shard_plan`] /
/// [`crate::engine::EngineBuilder::threads`]), then to serial execution.
#[derive(Clone, Debug, Default)]
pub struct RunSpec {
    /// Process events up to and including this instant; `None` drains the
    /// queue completely.
    pub until: Option<SimTime>,
    /// Shard plan for this run; `None` uses the builder default (serial
    /// if none was set).
    pub plan: Option<Arc<ShardPlan>>,
    /// Worker threads for a sharded run; `None` means one per shard.
    pub threads: Option<usize>,
}

impl RunSpec {
    /// Run to a horizon: events at exactly `t_end` are processed and the
    /// clock is left at `t_end`.
    pub fn to(t_end: SimTime) -> RunSpec {
        RunSpec {
            until: Some(t_end),
            ..RunSpec::default()
        }
    }

    /// Drain the queue completely; the clock is left at the last
    /// processed event.
    pub fn drain() -> RunSpec {
        RunSpec::default()
    }

    /// Overrides the shard plan for this run.
    pub fn with_plan(mut self, plan: Arc<ShardPlan>) -> RunSpec {
        self.plan = Some(plan);
        self
    }

    /// Overrides the worker-thread count for this run.
    pub fn with_threads(mut self, threads: usize) -> RunSpec {
        self.threads = Some(threads);
        self
    }
}

/// Shard identity attached to a per-shard engine; `hop` consults it to
/// divert remote arrivals into the outbox.
pub(crate) struct ShardCtx {
    pub(crate) plan: Arc<ShardPlan>,
    pub(crate) me: u32,
}

/// A cross-shard arrival: the packet re-materialized as a value plus the
/// exact event key the serial engine would have queued it under.
pub(crate) struct OutMsg<M> {
    pub(crate) dst: u32,
    pub(crate) key: EventKey,
    pub(crate) node: NodeId,
    pub(crate) class: TrafficClass,
    pub(crate) pkt: Packet<M>,
}

/// Minimum latency over links whose endpoints live in different shards —
/// the conservative lookahead.  `None` when no link crosses a shard
/// boundary (each shard can then run to the horizon unsynchronized).
fn min_cross_latency(topo: &Topology, plan: &ShardPlan) -> Option<SimDuration> {
    let mut min: Option<SimDuration> = None;
    for l in 0..topo.link_count() {
        let spec = topo.link(LinkId(l as u32));
        if plan.owner(spec.a) != plan.owner(spec.b) {
            let lat = spec.params.latency;
            min = Some(match min {
                Some(m) if m <= lat => m,
                _ => lat,
            });
        }
    }
    min
}

impl<M: Classify + Clone + Send + 'static> Engine<M> {
    /// Runs the simulation as described by `spec` and returns the number
    /// of events processed (counting each replicated fault event once, so
    /// the count matches the serial engine at any shard count).
    ///
    /// With no plan (or a single-shard plan) this is the serial engine.
    /// With `k > 1` shards the node graph is partitioned per the plan,
    /// each shard runs on its own event queue / packet arena / RNG
    /// streams, and shards synchronize conservatively on the inter-shard
    /// link-latency lookahead (see the module docs).  The result —
    /// recorder, probes, agent state, clock — is bit-identical to the
    /// serial run.
    ///
    /// # Panics
    ///
    /// Panics if the plan covers a different node count than the
    /// topology, or if some inter-shard link has zero latency (no
    /// lookahead — conservative synchronization would be impossible).
    pub fn advance(&mut self, spec: RunSpec) -> u64 {
        let plan = spec.plan.or_else(|| self.default_plan.clone());
        let threads = spec.threads.or(self.default_threads);
        match plan {
            Some(p) if p.shard_count() > 1 => {
                assert_eq!(
                    p.node_count(),
                    self.topo.node_count(),
                    "shard plan covers a different topology"
                );
                self.run_sharded(p, threads, spec.until)
            }
            _ => match spec.until {
                Some(t) => self.run_serial_until(t),
                None => self.run_serial_drain(),
            },
        }
    }

    /// The conservative barrier-synchronized parallel driver.
    fn run_sharded(
        &mut self,
        plan: Arc<ShardPlan>,
        threads: Option<usize>,
        until: Option<SimTime>,
    ) -> u64 {
        let lookahead = min_cross_latency(&self.topo, &plan);
        if let Some(l) = lookahead {
            assert!(
                l > SimDuration::ZERO,
                "conservative sharding requires positive latency on every inter-shard link"
            );
        }
        let k = plan.shard_count();
        let shards = self.split_shards(&plan);
        let nthreads = threads.unwrap_or(k).clamp(1, k);
        let mut groups: Vec<Vec<(usize, Engine<M>)>> = (0..nthreads).map(|_| Vec::new()).collect();
        for (i, s) in shards.into_iter().enumerate() {
            groups[i % nthreads].push((i, s));
        }
        // Per-round rendezvous state.  `mins` is written only in the
        // publish phase (before barrier A) and read only after it; the
        // inboxes and probe batches are written in the process phase and
        // drained between barriers B and C.
        let mins: Vec<AtomicU64> = (0..k).map(|_| AtomicU64::new(u64::MAX)).collect();
        let inboxes: Vec<Mutex<Vec<OutMsg<M>>>> = (0..k).map(|_| Mutex::new(Vec::new())).collect();
        let probe_batches: Vec<Mutex<Vec<(EventKey, ProbeRecord)>>> =
            (0..k).map(|_| Mutex::new(Vec::new())).collect();
        let master_probes = Mutex::new(std::mem::take(&mut self.probes));
        let barrier = Barrier::new(nthreads);
        let processed = AtomicU64::new(0);
        // Fault events are replicated to every shard; shard 0's count is
        // the serial fault count, used to de-duplicate the event total.
        let shard0_faults = AtomicU64::new(0);

        let mut done: Vec<Option<Engine<M>>> = (0..k).map(|_| None).collect();
        std::thread::scope(|scope| {
            let handles: Vec<_> = groups
                .into_iter()
                .enumerate()
                .map(|(t, mut group)| {
                    let (mins, inboxes, probe_batches) = (&mins, &inboxes, &probe_batches);
                    let (barrier, processed) = (&barrier, &processed);
                    let (master_probes, shard0_faults) = (&master_probes, &shard0_faults);
                    scope.spawn(move || {
                        loop {
                            // Publish each shard's earliest pending time.
                            for (i, e) in &group {
                                let next = e.queue.peek_key().map_or(u64::MAX, |k| k.time.0);
                                mins[*i].store(next, Ordering::SeqCst);
                            }
                            barrier.wait(); // A: all mins published
                            let t_min = mins
                                .iter()
                                .map(|m| m.load(Ordering::SeqCst))
                                .min()
                                .unwrap_or(u64::MAX);
                            // Same data on every thread → same decision;
                            // all threads leave the loop in the same round.
                            if t_min == u64::MAX || until.is_some_and(|u| t_min > u.0) {
                                break;
                            }
                            let mut bound = match lookahead {
                                Some(l) => t_min.saturating_add(l.0).saturating_sub(1),
                                None => u64::MAX - 1,
                            };
                            if let Some(u) = until {
                                bound = bound.min(u.0);
                            }
                            for (i, e) in group.iter_mut() {
                                let (p, f) = e.run_window(SimTime(bound));
                                processed.fetch_add(p, Ordering::Relaxed);
                                if *i == 0 {
                                    shard0_faults.fetch_add(f, Ordering::Relaxed);
                                }
                                for m in e.outbox.drain(..) {
                                    inboxes[m.dst as usize].lock().unwrap().push(m);
                                }
                                let batch = e.probes.drain_tagged();
                                if !batch.is_empty() {
                                    *probe_batches[*i].lock().unwrap() = batch;
                                }
                            }
                            barrier.wait(); // B: all outboxes/probes deposited
                            if t == 0 {
                                // Windows are disjoint and increasing, so a
                                // per-round merge extends the global
                                // key-ordered probe stream (and keeps shard
                                // sink memory bounded round-to-round).
                                let mut merged: Vec<(EventKey, ProbeRecord)> = Vec::new();
                                for b in probe_batches {
                                    merged.append(&mut b.lock().unwrap());
                                }
                                if !merged.is_empty() {
                                    merged.sort_by_key(|(key, _)| *key);
                                    let mut sink = master_probes.lock().unwrap();
                                    for (_, r) in merged {
                                        sink.ingest_merged(r);
                                    }
                                }
                            }
                            for (i, e) in group.iter_mut() {
                                let msgs = std::mem::take(&mut *inboxes[*i].lock().unwrap());
                                e.ingest(msgs);
                            }
                            barrier.wait(); // C: all inboxes ingested
                        }
                        group
                    })
                })
                .collect();
            for h in handles {
                for (i, e) in h.join().expect("shard worker panicked") {
                    done[i] = Some(e);
                }
            }
        });
        self.probes = master_probes.into_inner().unwrap();
        let shards: Vec<Engine<M>> = done
            .into_iter()
            .map(|s| s.expect("every shard is returned by its worker"))
            .collect();
        self.absorb_shards(shards, &plan, until);
        let dup = shard0_faults.load(Ordering::Relaxed) * (k as u64 - 1);
        processed.load(Ordering::Relaxed) - dup
    }

    /// Splits this engine into `k` per-shard engines: agents, timers, and
    /// queued events move to their owning shard; replicated state (link
    /// masks, epochs, RNG stream states, counters) is cloned everywhere
    /// so fault replay keeps every copy identical.
    fn split_shards(&mut self, plan: &Arc<ShardPlan>) -> Vec<Engine<M>> {
        let k = plan.shard_count();
        let n = self.topo.node_count();
        let mut shards: Vec<Engine<M>> = (0..k as u32)
            .map(|me| {
                let mut recorder = Recorder::new(self.recorder.mode());
                recorder.set_bin_width(self.recorder.bin_width());
                if recorder.mode() == RecorderMode::Raw {
                    recorder.enable_tagging();
                }
                Engine {
                    topo: self.topo.clone(),
                    oracle: self.oracle.clone(),
                    spts: Vec::new(),
                    tree_forwarding: self.tree_forwarding,
                    link_state: self.link_state.clone(),
                    link_up: self.link_up.clone(),
                    node_up: self.node_up.clone(),
                    epoch: self.epoch.clone(),
                    channels: self.channels.clone(),
                    agents: (0..n).map(|_| None).collect(),
                    agent_rngs: self.agent_rngs.clone(),
                    loss_base: self.loss_base.clone(),
                    loss_streams: self.loss_streams.clone(),
                    queue: EventQueue::new(),
                    arena: PacketArena::new(),
                    now: self.now,
                    pending_timers: HashSet::new(),
                    cancelled: HashSet::new(),
                    node_seq: self.node_seq.clone(),
                    build_seq: self.build_seq,
                    recorder,
                    probes: self.probes.shard_sink(),
                    shard: Some(ShardCtx {
                        plan: Arc::clone(plan),
                        me,
                    }),
                    outbox: Vec::new(),
                    default_plan: None,
                    default_threads: None,
                }
            })
            .collect();
        for i in 0..n {
            if let Some(a) = self.agents[i].take() {
                shards[plan.owner[i] as usize].agents[i] = Some(a);
            }
        }
        // Timer bookkeeping partitions by the id's encoded owner node.
        for id in self.pending_timers.drain() {
            let node = id
                .node()
                .expect("engine-issued timer ids encode their node");
            shards[plan.owner(node) as usize].pending_timers.insert(id);
        }
        for id in self.cancelled.drain() {
            let node = id
                .node()
                .expect("engine-issued timer ids encode their node");
            shards[plan.owner(node) as usize].cancelled.insert(id);
        }
        // Distribute queued events under their existing keys; faults and
        // membership changes replicate to every shard so replicated state
        // (link masks, epochs, channel member sets) stays identical.
        while let Some((key, kind)) = self.queue.pop_keyed() {
            match kind {
                EventKind::Fault(ev) => {
                    for s in &mut shards {
                        s.queue.push_keyed(key, EventKind::Fault(ev));
                    }
                }
                EventKind::Membership(ev) => {
                    for s in &mut shards {
                        s.queue.push_keyed(key, EventKind::Membership(ev));
                    }
                }
                EventKind::Arrive { node, pkt } => {
                    let class = self.arena.header(pkt).class;
                    let owned = match self.arena.release(pkt) {
                        Some(p) => p,
                        None => {
                            let p = self.arena.take(pkt);
                            let copy = p.clone();
                            self.arena.restore(pkt, p);
                            copy
                        }
                    };
                    let dst = &mut shards[plan.owner(node) as usize];
                    let pref = dst.arena.insert(owned, class);
                    dst.arena.add_ref(pref);
                    dst.queue
                        .push_keyed(key, EventKind::Arrive { node, pkt: pref });
                }
                other => {
                    let node = match &other {
                        EventKind::Start(node) => *node,
                        EventKind::Timer { node, .. } => *node,
                        _ => unreachable!("faults, membership, and arrivals handled above"),
                    };
                    shards[plan.owner(node) as usize]
                        .queue
                        .push_keyed(key, other);
                }
            }
        }
        debug_assert_eq!(self.arena.live(), 0, "master arena drained into shards");
        shards
    }

    /// Reassembles shard engines back into this master engine after a
    /// sharded run: per-node state comes from each node's owner,
    /// per-direction link state from the direction's transmitting side,
    /// replicated state from shard 0, and the recorders merge by mode.
    fn absorb_shards(
        &mut self,
        mut shards: Vec<Engine<M>>,
        plan: &ShardPlan,
        until: Option<SimTime>,
    ) {
        let n = self.topo.node_count();
        // Replicated state evolved identically in every shard (fault
        // events replay everywhere); take shard 0's copy.
        std::mem::swap(&mut self.topo, &mut shards[0].topo);
        std::mem::swap(&mut self.link_up, &mut shards[0].link_up);
        std::mem::swap(&mut self.node_up, &mut shards[0].node_up);
        std::mem::swap(&mut self.epoch, &mut shards[0].epoch);
        std::mem::swap(&mut self.channels, &mut shards[0].channels);
        self.tree_forwarding = shards[0].tree_forwarding;
        self.spts = Vec::new(); // recomputed lazily against the new mask
        for i in 0..n {
            let o = plan.owner[i] as usize;
            self.agents[i] = shards[o].agents[i].take();
            std::mem::swap(&mut self.agent_rngs[i], &mut shards[o].agent_rngs[i]);
            self.node_seq[i] = shards[o].node_seq[i];
        }
        // Each link direction is only driven by the shard owning its
        // transmitting endpoint; stitch the two directions back together.
        for l in 0..self.topo.link_count() {
            let spec = self.topo.link(LinkId(l as u32));
            let oa = plan.owner(spec.a) as usize;
            let ob = plan.owner(spec.b) as usize;
            let sa = &shards[oa].link_state[l];
            let sb = &shards[ob].link_state[l];
            self.link_state[l] = LinkState {
                busy_until_ab: sa.busy_until_ab,
                bad_ab: sa.bad_ab,
                busy_until_ba: sb.busy_until_ba,
                bad_ba: sb.bad_ba,
            };
            let da = shards[oa].loss_streams[l].as_ref().map(|p| p[0].clone());
            let db = shards[ob].loss_streams[l].as_ref().map(|p| p[1].clone());
            self.loss_streams[l] = match (da, db) {
                (None, None) => None,
                (da, db) => {
                    // A side that never sampled holds the stream in its
                    // freshly-split state — exactly what lazy init yields.
                    let fresh = |d: u64| self.loss_base.clone().split(2 * l as u64 + d);
                    Some(Box::new([
                        da.unwrap_or_else(|| fresh(0)),
                        db.unwrap_or_else(|| fresh(1)),
                    ]))
                }
            };
        }
        for s in &mut shards {
            self.pending_timers.extend(s.pending_timers.drain());
            self.cancelled.extend(s.cancelled.drain());
        }
        // Events still queued (horizon reached before drain) come back
        // under their keys; replicated faults and membership changes only
        // from shard 0.
        for (si, s) in shards.iter_mut().enumerate() {
            while let Some((key, kind)) = s.queue.pop_keyed() {
                match kind {
                    EventKind::Fault(ev) => {
                        if si == 0 {
                            self.queue.push_keyed(key, EventKind::Fault(ev));
                        }
                    }
                    EventKind::Membership(ev) => {
                        if si == 0 {
                            self.queue.push_keyed(key, EventKind::Membership(ev));
                        }
                    }
                    EventKind::Arrive { node, pkt } => {
                        let class = s.arena.header(pkt).class;
                        let owned = match s.arena.release(pkt) {
                            Some(p) => p,
                            None => {
                                let p = s.arena.take(pkt);
                                let copy = p.clone();
                                s.arena.restore(pkt, p);
                                copy
                            }
                        };
                        let pref = self.arena.insert(owned, class);
                        self.arena.add_ref(pref);
                        self.queue
                            .push_keyed(key, EventKind::Arrive { node, pkt: pref });
                    }
                    other => self.queue.push_keyed(key, other),
                }
            }
            debug_assert_eq!(s.arena.live(), 0, "shard arena drained back");
        }
        match self.recorder.mode() {
            RecorderMode::Raw => {
                let parts = shards
                    .iter_mut()
                    .map(|s| std::mem::take(&mut s.recorder))
                    .collect();
                self.recorder.merge_raw_parts(parts);
            }
            _ => {
                for s in &shards {
                    self.recorder.absorb_totals(&s.recorder);
                }
            }
        }
        let last = shards.iter().map(|s| s.now).max().unwrap_or(self.now);
        self.now = self.now.max(last);
        if let Some(t) = until {
            if self.now < t {
                self.now = t;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{LinkParams, TopologyBuilder};

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    /// root 0 with three subtrees: {1,4,5}, {2,6}, {3}.
    fn star_of_subtrees() -> (Topology, NodeId) {
        let mut b = TopologyBuilder::new();
        let nodes: Vec<NodeId> = (0..7).map(|i| b.add_node(format!("n{i}"))).collect();
        let p = LinkParams::lossless_infinite(ms(5));
        b.add_link(nodes[0], nodes[1], p);
        b.add_link(nodes[0], nodes[2], p);
        b.add_link(nodes[0], nodes[3], p);
        b.add_link(nodes[1], nodes[4], p);
        b.add_link(nodes[1], nodes[5], p);
        b.add_link(nodes[2], nodes[6], p);
        (b.build(), nodes[0])
    }

    #[test]
    fn subtree_plan_keeps_subtrees_whole_and_balances() {
        let (t, root) = star_of_subtrees();
        let plan = ShardPlan::by_subtrees(&t, root, 2);
        assert_eq!(plan.shard_count(), 2);
        assert_eq!(plan.owner(root), 0);
        // Largest subtree {1,4,5} (size 3) lands in shard 0; {2,6} (size
        // 2) in shard 1; {3} (size 1) in the lighter shard 1.
        assert_eq!(plan.owner(NodeId(1)), plan.owner(NodeId(4)));
        assert_eq!(plan.owner(NodeId(1)), plan.owner(NodeId(5)));
        assert_eq!(plan.owner(NodeId(2)), plan.owner(NodeId(6)));
        assert_ne!(plan.owner(NodeId(1)), plan.owner(NodeId(2)));
        assert_eq!(plan.owner(NodeId(3)), plan.owner(NodeId(2)));
    }

    #[test]
    fn subtree_plan_caps_shards_at_subtree_count() {
        let (t, root) = star_of_subtrees();
        let plan = ShardPlan::by_subtrees(&t, root, 16);
        // Only three root subtrees exist — no empty shards.
        assert_eq!(plan.shard_count(), 3);
        let mut seen = std::collections::HashSet::new();
        for i in 0..t.node_count() {
            seen.insert(plan.owner(NodeId(i as u32)));
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn non_tree_topologies_fall_back_to_single_shard() {
        let mut b = TopologyBuilder::new();
        let n0 = b.add_node("0");
        let n1 = b.add_node("1");
        let n2 = b.add_node("2");
        let p = LinkParams::lossless_infinite(ms(1));
        b.add_link(n0, n1, p);
        b.add_link(n1, n2, p);
        b.add_link(n2, n0, p); // cycle
        let plan = ShardPlan::by_subtrees(&b.build(), n0, 4);
        assert_eq!(plan.shard_count(), 1);
    }

    #[test]
    fn plan_is_deterministic() {
        let (t, root) = star_of_subtrees();
        assert_eq!(
            ShardPlan::by_subtrees(&t, root, 3),
            ShardPlan::by_subtrees(&t, root, 3)
        );
    }

    use crate::agent::{Agent, Ctx};
    use crate::channel::ChannelId;
    use crate::engine::EngineBuilder;
    use crate::faults::{FaultEvent, FaultPlan, LossModel};
    use crate::metrics::{DropRecord, Record, TrafficClass};
    use crate::probe::{ProbeEvent, ProbeRecord};

    #[derive(Clone, Debug, PartialEq)]
    enum Msg {
        Data(u32),
        Nack(u32),
    }
    impl crate::packet::Classify for Msg {
        fn class(&self) -> TrafficClass {
            match self {
                Msg::Data(_) => TrafficClass::Data,
                Msg::Nack(_) => TrafficClass::Nack,
            }
        }
    }

    /// Root source: multicasts a numbered packet every 10 ms, and answers
    /// the first NACK per sequence with one retransmission (bounded so the
    /// NACK/repair exchange cannot cascade into a packet storm).
    struct Source {
        chan: ChannelId,
        next: u32,
        count: u32,
        repaired: std::collections::HashSet<u32>,
    }
    impl Agent<Msg> for Source {
        fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
            ctx.set_timer(SimDuration::from_millis(1), 0);
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, _token: u64) {
            ctx.multicast(self.chan, Msg::Data(self.next), 400);
            self.next += 1;
            if self.next < self.count {
                ctx.set_timer(SimDuration::from_millis(10), 0);
            }
        }
        fn on_packet(&mut self, ctx: &mut Ctx<'_, Msg>, pkt: &Packet<Msg>) {
            if let Msg::Nack(seq) = pkt.payload {
                if self.repaired.insert(seq) {
                    ctx.multicast(self.chan, Msg::Data(seq), 400);
                }
            }
        }
    }

    /// Leaf receiver: logs everything, probes on each delivery, and NACKs
    /// a random sample of first-time sequences after RNG-jittered back-off
    /// — exercises per-agent RNG streams, timers, and leaf→root
    /// cross-shard traffic.  At most one NACK per sequence per receiver.
    #[derive(Default)]
    struct Receiver {
        chan: Option<ChannelId>,
        heard: Vec<(SimTime, Msg)>,
        seen: std::collections::HashSet<u32>,
    }
    impl Agent<Msg> for Receiver {
        fn on_packet(&mut self, ctx: &mut Ctx<'_, Msg>, pkt: &Packet<Msg>) {
            self.heard.push((ctx.now(), pkt.payload.clone()));
            if let Msg::Data(seq) = pkt.payload {
                ctx.probe(ProbeEvent::ZlcUpdate {
                    group: seq,
                    level: 0,
                    observed: self.heard.len() as f64,
                    pred: 0.0,
                });
                if self.seen.insert(seq) && ctx.rng().next_f64() < 0.4 {
                    let jitter = ctx.rng().next_f64();
                    let delay = SimDuration(SimDuration::from_millis(3).0 + (jitter * 4e6) as u64);
                    ctx.set_timer(delay, u64::from(seq));
                }
            }
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, token: u64) {
            ctx.multicast(self.chan.unwrap(), Msg::Nack(token as u32), 60);
        }
    }

    /// Three-subtree tree with lossy, finite-bandwidth links.
    fn scenario_topology() -> (Topology, Vec<NodeId>) {
        let mut b = TopologyBuilder::new();
        let nodes: Vec<NodeId> = (0..10).map(|i| b.add_node(format!("n{i}"))).collect();
        let up = |loss| LinkParams::new(ms(5), 800_000, loss);
        let down = |loss| LinkParams::new(ms(2), 800_000, loss);
        b.add_link(nodes[0], nodes[1], up(0.15)); // link 0 (flapped)
        b.add_link(nodes[0], nodes[2], up(0.1)); // link 1
        b.add_link(nodes[0], nodes[3], up(0.0)); // link 2
        b.add_link(nodes[1], nodes[4], down(0.1)); // link 3 (loss swapped)
        b.add_link(nodes[1], nodes[5], down(0.0)); // link 4
        b.add_link(nodes[2], nodes[6], down(0.2)); // link 5
        b.add_link(nodes[2], nodes[7], down(0.0)); // link 6
        b.add_link(nodes[3], nodes[8], down(0.1)); // link 7
        b.add_link(nodes[3], nodes[9], down(0.0)); // link 8
        (b.build(), nodes)
    }

    /// Everything observable a run produces, for bit-equality checks.
    #[derive(Debug, PartialEq)]
    struct Observed {
        processed: u64,
        now: SimTime,
        deliveries: Vec<Record>,
        transmissions: Vec<Record>,
        drops: Vec<DropRecord>,
        heard: Vec<Vec<(SimTime, Msg)>>,
        probes: Vec<ProbeRecord>,
    }

    /// Runs the full faulted scenario split over `shards` shards on
    /// `threads` threads, with a mid-run horizon stop to exercise the
    /// split/absorb round trip twice.
    fn run_scenario(shards: usize, threads: usize) -> Observed {
        let (topo, nodes) = scenario_topology();
        let plan = Arc::new(ShardPlan::by_subtrees(&topo, nodes[0], shards));
        assert_eq!(plan.shard_count(), shards.min(3));
        let mut builder: EngineBuilder<Msg> = EngineBuilder::new(topo, 42);
        builder.record_probes();
        builder.fault_plan(
            FaultPlan::new()
                .link_flap(
                    LinkId(0),
                    SimTime::from_millis(40),
                    SimTime::from_millis(80),
                )
                .at(
                    SimTime::from_millis(60),
                    FaultEvent::SetLoss(LinkId(3), LossModel::burst(0.3, 3.0)),
                )
                .at(SimTime::from_millis(50), FaultEvent::NodeCrash(nodes[6]))
                .at(SimTime::from_millis(90), FaultEvent::NodeRestart(nodes[6])),
        );
        let chan = builder.add_channel(&nodes);
        builder.add_agent(
            nodes[0],
            Box::new(Source {
                chan,
                next: 0,
                count: 12,
                repaired: Default::default(),
            }),
        );
        let receivers: Vec<NodeId> = nodes[4..].to_vec();
        for &r in &receivers {
            builder.add_agent(
                r,
                Box::new(Receiver {
                    chan: Some(chan),
                    ..Default::default()
                }),
            );
        }
        let mut e = builder.build();
        let mut processed = e.advance(
            RunSpec::to(SimTime::from_millis(70))
                .with_plan(Arc::clone(&plan))
                .with_threads(threads),
        );
        processed += e.advance(RunSpec::drain().with_plan(plan).with_threads(threads));
        Observed {
            processed,
            now: e.now(),
            deliveries: e.recorder().deliveries.clone(),
            transmissions: e.recorder().transmissions.clone(),
            drops: e.recorder().drops.clone(),
            heard: receivers
                .iter()
                .map(|&r| e.agent::<Receiver>(r).unwrap().heard.clone())
                .collect(),
            probes: e.probes().records().to_vec(),
        }
    }

    #[test]
    fn sharded_runs_are_bit_identical_to_serial_at_any_shard_count() {
        let serial = run_scenario(1, 1);
        assert!(!serial.deliveries.is_empty());
        assert!(!serial.drops.is_empty(), "scenario must exercise loss");
        assert!(!serial.probes.is_empty(), "scenario must exercise probes");
        for (shards, threads) in [(2, 1), (2, 2), (3, 1), (3, 2), (3, 3)] {
            let sharded = run_scenario(shards, threads);
            assert_eq!(
                serial, sharded,
                "divergence at shards={shards} threads={threads}"
            );
        }
    }

    #[test]
    fn membership_events_replicate_and_stay_bit_identical_across_shards() {
        use crate::scenario::{MembershipEvent, ScenarioPlan};
        // Leaf 4 leaves mid-stream and rejoins; leaf 9 joins late via a
        // ScenarioPlan.  The run must match serial bit-for-bit, and the
        // master's channel state after absorb must reflect the changes.
        let run = |shards: usize| {
            let (topo, nodes) = scenario_topology();
            let plan = Arc::new(ShardPlan::by_subtrees(&topo, nodes[0], shards));
            let mut builder: EngineBuilder<Msg> = EngineBuilder::new(topo, 42);
            let chan = builder.add_channel(&nodes);
            builder.add_agent(
                nodes[0],
                Box::new(Source {
                    chan,
                    next: 0,
                    count: 12,
                    repaired: Default::default(),
                }),
            );
            let receivers: Vec<NodeId> = nodes[4..].to_vec();
            for &r in &receivers {
                builder.add_agent(
                    r,
                    Box::new(Receiver {
                        chan: Some(chan),
                        ..Default::default()
                    }),
                );
            }
            let scen = ScenarioPlan::new()
                .at(
                    SimTime::from_millis(30),
                    MembershipEvent::Leave {
                        channel: chan,
                        node: nodes[4],
                    },
                )
                .at(
                    SimTime::from_millis(70),
                    MembershipEvent::Join {
                        channel: chan,
                        node: nodes[4],
                    },
                )
                .join_at(SimTime::from_millis(45), nodes[9], &[chan]);
            builder.scenario(scen);
            let mut e = builder.build();
            assert!(!e.channel(chan).contains(nodes[9]), "initially stripped");
            // Horizon stop mid-gap exercises replicated-membership requeue
            // (shard-0-only) plus the channel-state swap at absorb.
            let mut processed =
                e.advance(RunSpec::to(SimTime::from_millis(50)).with_plan(Arc::clone(&plan)));
            assert!(e.channel(chan).contains(nodes[9]), "join applied by 50ms");
            assert!(!e.channel(chan).contains(nodes[4]), "leave applied");
            processed += e.advance(RunSpec::drain().with_plan(plan));
            assert!(e.channel(chan).contains(nodes[4]), "rejoin applied");
            Observed {
                processed,
                now: e.now(),
                deliveries: e.recorder().deliveries.clone(),
                transmissions: e.recorder().transmissions.clone(),
                drops: e.recorder().drops.clone(),
                heard: receivers
                    .iter()
                    .map(|&r| e.agent::<Receiver>(r).unwrap().heard.clone())
                    .collect(),
                probes: Vec::new(),
            }
        };
        let serial = run(1);
        assert!(!serial.deliveries.is_empty());
        for shards in [2, 3] {
            assert_eq!(serial, run(shards), "divergence at shards={shards}");
        }
    }

    #[test]
    fn idle_sharded_run_terminates_and_advances_the_clock() {
        // Deadlock-freedom smoke: nothing queued, every round's global
        // minimum is +inf, so the workers must agree to stop immediately.
        let (topo, nodes) = scenario_topology();
        let plan = Arc::new(ShardPlan::by_subtrees(&topo, nodes[0], 3));
        let builder: EngineBuilder<Msg> = EngineBuilder::new(topo, 7);
        let mut e = builder.build();
        let processed = e.advance(RunSpec::to(SimTime::from_secs(5)).with_plan(plan));
        assert_eq!(processed, 0);
        assert_eq!(e.now(), SimTime::from_secs(5));
    }

    #[test]
    fn builder_default_plan_is_used_when_runspec_leaves_it_unset() {
        let (topo, nodes) = scenario_topology();
        let plan = Arc::new(ShardPlan::by_subtrees(&topo, nodes[0], 2));
        let mut builder: EngineBuilder<Msg> = EngineBuilder::new(topo, 42);
        let chan = builder.add_channel(&nodes);
        builder.add_agent(
            nodes[0],
            Box::new(Source {
                chan,
                next: 0,
                count: 3,
                repaired: Default::default(),
            }),
        );
        builder.add_agent(nodes[4], Box::new(Receiver::default()));
        builder.shard_plan(plan).threads(2);
        let mut e = builder.build();
        e.advance(RunSpec::drain());
        assert!(!e.agent::<Receiver>(nodes[4]).unwrap().heard.is_empty());
    }

    #[test]
    fn lookahead_is_min_inter_shard_latency() {
        let mut b = TopologyBuilder::new();
        let n0 = b.add_node("0");
        let n1 = b.add_node("1");
        let n2 = b.add_node("2");
        b.add_link(n0, n1, LinkParams::lossless_infinite(ms(7)));
        b.add_link(n0, n2, LinkParams::lossless_infinite(ms(3)));
        let t = b.build();
        let plan = ShardPlan::by_subtrees(&t, n0, 2);
        assert_eq!(plan.shard_count(), 2);
        assert_eq!(min_cross_latency(&t, &plan), Some(ms(3)));
        let single = ShardPlan::single(t.node_count());
        assert_eq!(min_cross_latency(&t, &single), None);
    }
}
