//! Packets and traffic classification.

use crate::channel::ChannelId;
use crate::graph::NodeId;
use crate::metrics::TrafficClass;
use crate::time::SimTime;

/// Lets the engine classify a protocol payload for loss treatment and
/// metrics without knowing the protocol.
///
/// Following the paper's §6.2 methodology, [`TrafficClass::Data`] and
/// [`TrafficClass::Repair`] are subject to link loss while
/// [`TrafficClass::Nack`], [`TrafficClass::Session`] and
/// [`TrafficClass::Control`] are not.
pub trait Classify {
    /// The traffic class of this payload.
    fn class(&self) -> TrafficClass;
}

/// A packet in flight.  The payload type `M` is supplied by the protocol
/// crate; the engine only needs its [`Classify`] impl.
#[derive(Clone, Debug)]
pub struct Packet<M> {
    /// Monotonic per-engine packet identifier (unique per transmission).
    pub uid: u64,
    /// Originating node.
    pub src: NodeId,
    /// Channel (multicast group) the packet was sent on.
    pub channel: ChannelId,
    /// Time the source transmitted it.
    pub sent_at: SimTime,
    /// Wire size in bytes (headers included), used for serialization delay
    /// and bandwidth accounting.
    pub bytes: u32,
    /// Protocol payload.
    pub payload: M,
}

impl<M: Classify> Packet<M> {
    /// Traffic class, delegated to the payload.
    pub fn class(&self) -> TrafficClass {
        self.payload.class()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone)]
    struct P(TrafficClass);
    impl Classify for P {
        fn class(&self) -> TrafficClass {
            self.0
        }
    }

    #[test]
    fn packet_delegates_class_to_payload() {
        let pkt = Packet {
            uid: 1,
            src: NodeId(0),
            channel: ChannelId(0),
            sent_at: SimTime::ZERO,
            bytes: 100,
            payload: P(TrafficClass::Nack),
        };
        assert_eq!(pkt.class(), TrafficClass::Nack);
    }
}
