//! A deterministic discrete-event multicast network simulator.
//!
//! The SHARQFEC paper evaluated its protocol inside the UCB/LBNL/VINT
//! simulator *ns* with the *nam* animator.  Neither is a Rust substrate we
//! can build on, so this crate reimplements the slice of ns the paper's
//! experiments exercise:
//!
//! * **Topology** — an undirected graph of nodes and links, each link with a
//!   propagation latency, a bandwidth, and a pluggable loss process —
//!   i.i.d. Bernoulli or a bursty Gilbert–Elliott chain ([`graph`],
//!   [`link`], [`faults`]).
//! * **Routing** — per-source shortest-path trees (Dijkstra on latency),
//!   which is how ns builds its multicast distribution trees.  Trees are
//!   computed lazily against the *current* link-up mask and invalidated
//!   when a fault plan takes a link down or up ([`routing`]).
//! * **Fault injection** — a declarative [`faults::FaultPlan`] schedules
//!   link flaps, loss changes, and node churn as ordinary DES events
//!   ([`faults`]).
//! * **Workload scenarios** — a declarative [`scenario::ScenarioPlan`]
//!   schedules dynamic membership the same way: late joins, flash crowds,
//!   leave/rejoin churn, and sender handoff compile to membership and
//!   agent start/stop events at build time ([`scenario`]).
//! * **Multicast channels** — named groups of member nodes.  A packet sent
//!   on a channel is forwarded hop-by-hop down the sender-rooted tree,
//!   store-and-forward, with per-directed-link FIFO serialization and
//!   independent per-link Bernoulli loss ([`channel`], [`engine`]).
//!   Administrative scoping is modelled by channel membership: forwarding
//!   prunes at non-member nodes, exactly like a border router configured to
//!   keep an admin-scoped group inside its region.
//! * **Agents** — protocol state machines attached to nodes, driven by
//!   packet-delivery and timer events ([`agent`]).
//! * **Deterministic RNG** — one seeded generator drives all loss sampling
//!   and is handed to agents for their timer jitter, so a run is a pure
//!   function of (topology, agents, seed) ([`rng`]).
//! * **Metrics** — every transmission, delivery, and drop is recorded with
//!   a timestamp, node, and traffic class, which is precisely the data the
//!   paper's Figures 11–21 are plotted from ([`metrics`]).
//!
//! Loss is applied per traffic class following the paper's §6.2 setup:
//! data and repair packets traverse lossy links, session messages and NACKs
//! do not ("Session traffic and NACKs were not subject to losses").
//!
//! # Example
//!
//! ```
//! use sharqfec_netsim::prelude::*;
//!
//! // Two nodes joined by a 10 ms, 10 Mbit/s, lossless link.
//! let mut topo = TopologyBuilder::new();
//! let a = topo.add_node("a");
//! let b = topo.add_node("b");
//! topo.add_link(a, b, LinkParams::new(SimDuration::from_millis(10), 10_000_000, 0.0));
//!
//! #[derive(Clone, Debug)]
//! struct Ping;
//! impl Classify for Ping {
//!     fn class(&self) -> TrafficClass { TrafficClass::Data }
//! }
//!
//! struct Sender { chan: ChannelId }
//! impl Agent<Ping> for Sender {
//!     fn on_start(&mut self, ctx: &mut Ctx<'_, Ping>) {
//!         ctx.multicast(self.chan, Ping, 1000);
//!     }
//!     fn on_packet(&mut self, _: &mut Ctx<'_, Ping>, _: &Packet<Ping>) {}
//! }
//! struct Sink { got: u32 }
//! impl Agent<Ping> for Sink {
//!     fn on_packet(&mut self, _: &mut Ctx<'_, Ping>, _: &Packet<Ping>) {
//!         self.got += 1;
//!     }
//! }
//!
//! let mut builder = EngineBuilder::new(topo.build(), 42);
//! let chan = builder.add_channel(&[a, b]);
//! builder.add_agent(a, Box::new(Sender { chan }));
//! builder.add_agent(b, Box::new(Sink { got: 0 }));
//! let mut engine = builder.build();
//! engine.advance(RunSpec::to(SimTime::from_secs(1)));
//! assert_eq!(engine.recorder().deliveries.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod agent;
mod arena;
pub mod channel;
pub mod engine;
pub mod faults;
pub mod graph;
pub mod link;
pub mod metrics;
pub mod packet;
pub mod probe;
pub mod queue;
pub mod rng;
pub mod routing;
pub mod runner;
pub mod scenario;
pub mod shard;
pub mod time;
pub mod trace;

/// One-stop import for simulator users.
pub mod prelude {
    pub use crate::agent::{Agent, Ctx, TimerId};
    pub use crate::channel::ChannelId;
    pub use crate::engine::{Engine, EngineBuilder};
    pub use crate::faults::{FaultEvent, FaultPlan, LossModel};
    pub use crate::graph::{LinkId, LinkParams, NodeId, Topology, TopologyBuilder};
    pub use crate::metrics::{Recorder, RecorderMode, Tally, TrafficClass};
    pub use crate::packet::{Classify, Packet};
    pub use crate::probe::{
        AuditConfig, AuditReport, Auditor, NackOutcome, ProbeEvent, ProbeRecord, ProbeSink,
        ZcrAction,
    };
    pub use crate::rng::SimRng;
    pub use crate::scenario::{MembershipEvent, ScenarioPlan};
    pub use crate::shard::{RunSpec, ShardPlan};
    pub use crate::time::{SimDuration, SimTime};
}

pub use prelude::*;
