//! Network topology: nodes and links.
//!
//! Built once through [`TopologyBuilder`].  The graph structure (nodes,
//! links, adjacency) is then immutable for the lifetime of a simulation —
//! the paper's scenarios all use fixed wiring — but link *behaviour* can
//! change at runtime: a fault plan may swap a link's loss process via
//! [`Topology::set_loss_model`], and the engine tracks link up/down state
//! separately.

use crate::faults::LossModel;
use crate::link::LinkSpec;
use crate::time::SimDuration;
use core::fmt;

/// Identifier of a node, dense from 0.  The paper numbers its 113 session
/// members 0 (the source) through 112; topology builders preserve that
/// numbering.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The index as usize, for table lookups.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Identifier of an undirected link.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct LinkId(pub u32);

impl LinkId {
    /// The index as usize, for table lookups.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// Link capacity: a finite bit rate, or infinitely fast (zero
/// serialization delay — the abstraction unit tests use for pure-latency
/// control links).
///
/// This used to be a bare `u64` where `0` silently meant "infinite", a
/// footgun for topology configs (a forgotten field looked like an
/// infinitely fast backbone).  Infinite capacity is now an explicit
/// variant and a zero rate is rejected at construction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Bandwidth {
    /// No serialization delay at all.
    Infinite,
    /// A finite, non-zero bit rate.
    Bps(core::num::NonZeroU64),
}

impl Bandwidth {
    /// A finite rate in bits per second.
    ///
    /// # Panics
    ///
    /// Panics on `0` — write [`Bandwidth::Infinite`] if you mean an
    /// infinitely fast link.
    pub fn bps(bits_per_sec: u64) -> Bandwidth {
        match core::num::NonZeroU64::new(bits_per_sec) {
            Some(b) => Bandwidth::Bps(b),
            None => panic!(
                "bandwidth of 0 bit/s is rejected; use Bandwidth::Infinite \
                 for an infinitely fast link"
            ),
        }
    }

    /// The finite rate in bits per second, or `None` for an infinitely
    /// fast link.
    pub fn as_bps(self) -> Option<u64> {
        match self {
            Bandwidth::Infinite => None,
            Bandwidth::Bps(b) => Some(b.get()),
        }
    }
}

/// Physical parameters of a link.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkParams {
    /// One-way propagation latency.
    pub latency: SimDuration,
    /// Link capacity.
    pub bandwidth: Bandwidth,
    /// Loss process applied per traversal, per direction, to lossy
    /// traffic classes.
    pub loss: LossModel,
}

impl LinkParams {
    /// Convenience constructor for a finite-rate link with i.i.d.
    /// Bernoulli loss (the historical default process).
    ///
    /// # Panics
    ///
    /// Panics if `loss` is outside `[0, 1]` or `bandwidth_bps` is zero
    /// (use [`LinkParams::infinite`] for an infinitely fast link).
    pub fn new(latency: SimDuration, bandwidth_bps: u64, loss: f64) -> LinkParams {
        LinkParams {
            latency,
            bandwidth: Bandwidth::bps(bandwidth_bps),
            loss: LossModel::bernoulli(loss),
        }
    }

    /// A finite-rate link with an explicit loss process.
    pub fn with_loss_model(
        latency: SimDuration,
        bandwidth: Bandwidth,
        loss: LossModel,
    ) -> LinkParams {
        LinkParams {
            latency,
            bandwidth,
            loss,
        }
    }

    /// A lossless finite-rate link.
    pub fn lossless(latency: SimDuration, bandwidth_bps: u64) -> LinkParams {
        LinkParams::new(latency, bandwidth_bps, 0.0)
    }

    /// An infinitely fast (latency-only) link with Bernoulli loss.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is outside `[0, 1]`.
    pub fn infinite(latency: SimDuration, loss: f64) -> LinkParams {
        LinkParams {
            latency,
            bandwidth: Bandwidth::Infinite,
            loss: LossModel::bernoulli(loss),
        }
    }

    /// A lossless infinitely fast (latency-only) link.
    pub fn lossless_infinite(latency: SimDuration) -> LinkParams {
        LinkParams::infinite(latency, 0.0)
    }
}

/// Incrementally constructs a [`Topology`].
#[derive(Default)]
pub struct TopologyBuilder {
    labels: Vec<String>,
    links: Vec<LinkSpec>,
    /// Normalized `(min, max)` endpoint pairs, for O(1) duplicate checks
    /// (a linear scan per `add_link` would make building a 10⁶-link tree
    /// quadratic).
    seen_links: std::collections::HashSet<(u32, u32)>,
}

impl TopologyBuilder {
    /// An empty builder.
    pub fn new() -> TopologyBuilder {
        TopologyBuilder::default()
    }

    /// Adds a node and returns its id (ids are dense and sequential).
    pub fn add_node(&mut self, label: impl Into<String>) -> NodeId {
        let id = NodeId(self.labels.len() as u32);
        self.labels.push(label.into());
        id
    }

    /// Adds `n` nodes labelled `prefix0..prefixN-1`, returning their ids.
    pub fn add_nodes(&mut self, prefix: &str, n: usize) -> Vec<NodeId> {
        (0..n)
            .map(|i| self.add_node(format!("{prefix}{i}")))
            .collect()
    }

    /// Adds `n` unlabelled nodes (empty label, no per-node allocation),
    /// returning the contiguous id range.  Large generated topologies use
    /// this: a million `format!`ed labels are pure overhead when nodes
    /// are only ever addressed by id.
    pub fn add_unlabeled_nodes(&mut self, n: usize) -> std::ops::Range<u32> {
        let start = self.labels.len() as u32;
        self.labels.resize_with(self.labels.len() + n, String::new);
        start..start + n as u32
    }

    /// Adds an undirected link between two existing nodes.
    ///
    /// # Panics
    ///
    /// Panics on unknown endpoints, a self-loop, or a duplicate link.
    pub fn add_link(&mut self, a: NodeId, b: NodeId, params: LinkParams) -> LinkId {
        assert!(a.idx() < self.labels.len(), "unknown node {a:?}");
        assert!(b.idx() < self.labels.len(), "unknown node {b:?}");
        assert_ne!(a, b, "self-loops are not allowed");
        let key = (a.0.min(b.0), a.0.max(b.0));
        assert!(self.seen_links.insert(key), "duplicate link {a:?}-{b:?}");
        let id = LinkId(self.links.len() as u32);
        self.links.push(LinkSpec { a, b, params });
        id
    }

    /// Finalizes the topology.
    ///
    /// # Panics
    ///
    /// Panics if the graph is empty or not connected — every paper scenario
    /// is a single connected session, and an unreachable node is always a
    /// builder bug.
    pub fn build(self) -> Topology {
        assert!(!self.labels.is_empty(), "topology must have nodes");
        let n = self.labels.len();
        let mut adjacency = vec![Vec::new(); n];
        for (i, l) in self.links.iter().enumerate() {
            adjacency[l.a.idx()].push((l.b, LinkId(i as u32)));
            adjacency[l.b.idx()].push((l.a, LinkId(i as u32)));
        }
        // Deterministic neighbour order regardless of insertion order.
        for adj in &mut adjacency {
            adj.sort_by_key(|(n, _)| *n);
        }
        let topo = Topology {
            labels: self.labels,
            links: self.links,
            adjacency,
        };
        assert!(
            topo.is_connected(),
            "topology must be connected (some node is unreachable)"
        );
        topo
    }
}

/// An immutable network graph.
#[derive(Clone)]
pub struct Topology {
    labels: Vec<String>,
    links: Vec<LinkSpec>,
    adjacency: Vec<Vec<(NodeId, LinkId)>>,
}

impl Topology {
    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.labels.len()
    }

    /// Number of links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.labels.len() as u32).map(NodeId)
    }

    /// Human label of a node.
    pub fn label(&self, node: NodeId) -> &str {
        &self.labels[node.idx()]
    }

    /// Specification of a link.
    pub fn link(&self, id: LinkId) -> &LinkSpec {
        &self.links[id.idx()]
    }

    /// Neighbours of a node with the connecting link, sorted by neighbour id.
    pub fn neighbors(&self, node: NodeId) -> &[(NodeId, LinkId)] {
        &self.adjacency[node.idx()]
    }

    /// Replaces a link's loss process (both directions).  Used by the
    /// fault-injection `SetLoss` event and by scenario post-passes that
    /// convert Bernoulli rates into burst models of equal mean.
    pub fn set_loss_model(&mut self, id: LinkId, model: LossModel) {
        self.links[id.idx()].params.loss = model;
    }

    /// The link joining two adjacent nodes, if any.
    pub fn link_between(&self, a: NodeId, b: NodeId) -> Option<LinkId> {
        self.adjacency[a.idx()]
            .iter()
            .find(|(n, _)| *n == b)
            .map(|&(_, l)| l)
    }

    fn is_connected(&self) -> bool {
        let n = self.node_count();
        let mut seen = vec![false; n];
        let mut stack = vec![NodeId(0)];
        seen[0] = true;
        let mut count = 1;
        while let Some(u) = stack.pop() {
            for &(v, _) in self.neighbors(u) {
                if !seen[v.idx()] {
                    seen[v.idx()] = true;
                    count += 1;
                    stack.push(v);
                }
            }
        }
        count == n
    }
}

impl fmt::Debug for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Topology({} nodes, {} links)",
            self.node_count(),
            self.link_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn build_simple_triangle() {
        let mut b = TopologyBuilder::new();
        let n0 = b.add_node("a");
        let n1 = b.add_node("b");
        let n2 = b.add_node("c");
        b.add_link(n0, n1, LinkParams::lossless(ms(1), 1_000_000));
        b.add_link(n1, n2, LinkParams::lossless(ms(2), 1_000_000));
        b.add_link(n2, n0, LinkParams::lossless(ms(3), 1_000_000));
        let t = b.build();
        assert_eq!(t.node_count(), 3);
        assert_eq!(t.link_count(), 3);
        assert_eq!(t.neighbors(n0).len(), 2);
        assert_eq!(t.label(n1), "b");
        assert!(t.link_between(n0, n1).is_some());
        assert!(t.link_between(n0, n0).is_none());
    }

    #[test]
    fn add_nodes_labels_sequentially() {
        let mut b = TopologyBuilder::new();
        let ids = b.add_nodes("r", 3);
        assert_eq!(ids, vec![NodeId(0), NodeId(1), NodeId(2)]);
        b.add_link(ids[0], ids[1], LinkParams::lossless_infinite(ms(1)));
        b.add_link(ids[1], ids[2], LinkParams::lossless_infinite(ms(1)));
        let t = b.build();
        assert_eq!(t.label(NodeId(2)), "r2");
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_rejected() {
        let mut b = TopologyBuilder::new();
        let n = b.add_node("x");
        b.add_link(n, n, LinkParams::lossless_infinite(ms(1)));
    }

    #[test]
    #[should_panic(expected = "duplicate link")]
    fn duplicate_link_rejected_either_direction() {
        let mut b = TopologyBuilder::new();
        let a = b.add_node("a");
        let c = b.add_node("b");
        b.add_link(a, c, LinkParams::lossless_infinite(ms(1)));
        b.add_link(c, a, LinkParams::lossless_infinite(ms(1)));
    }

    #[test]
    #[should_panic(expected = "connected")]
    fn disconnected_graph_rejected() {
        let mut b = TopologyBuilder::new();
        b.add_node("a");
        b.add_node("b");
        b.build();
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn invalid_loss_rejected() {
        LinkParams::new(ms(1), 1_000_000, 1.5);
    }

    #[test]
    #[should_panic(expected = "bandwidth of 0")]
    fn zero_bandwidth_rejected() {
        LinkParams::new(ms(1), 0, 0.0);
    }

    #[test]
    #[should_panic(expected = "bandwidth of 0")]
    fn zero_bandwidth_rejected_in_bps_constructor() {
        Bandwidth::bps(0);
    }

    #[test]
    fn bandwidth_as_bps_round_trips() {
        assert_eq!(Bandwidth::bps(800_000).as_bps(), Some(800_000));
        assert_eq!(Bandwidth::Infinite.as_bps(), None);
    }

    #[test]
    fn neighbors_sorted_by_id() {
        let mut b = TopologyBuilder::new();
        let hub = b.add_node("hub");
        let n3 = b.add_node("n1");
        let n2 = b.add_node("n2");
        let n1 = b.add_node("n3");
        // Insert in scrambled order.
        b.add_link(hub, n1, LinkParams::lossless_infinite(ms(1)));
        b.add_link(hub, n3, LinkParams::lossless_infinite(ms(1)));
        b.add_link(hub, n2, LinkParams::lossless_infinite(ms(1)));
        let t = b.build();
        let ns: Vec<NodeId> = t.neighbors(hub).iter().map(|&(n, _)| n).collect();
        assert_eq!(ns, vec![n3, n2, n1]);
    }
}
