//! Link specification and runtime (queueing) state.

use crate::graph::{LinkParams, NodeId};
use crate::time::{SimDuration, SimTime};

/// Static description of an undirected link.
#[derive(Clone, Debug)]
pub struct LinkSpec {
    /// One endpoint.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// Physical parameters (latency, bandwidth, loss).
    pub params: LinkParams,
}

impl LinkSpec {
    /// The endpoint opposite `from`, if `from` is an endpoint at all.
    pub fn other(&self, from: NodeId) -> Option<NodeId> {
        if from == self.a {
            Some(self.b)
        } else if from == self.b {
            Some(self.a)
        } else {
            None
        }
    }
}

/// Mutable per-direction transmit-queue state: the time at which the
/// outgoing serializer frees up.  Models an infinite FIFO output queue
/// (store-and-forward), the same abstraction ns-2's DropTail queue provides
/// when it never overflows — at the paper's 800 kbit/s workload on 10/45
/// Mbit/s links, queues stay far from any realistic limit.
#[derive(Clone, Debug, Default)]
pub struct LinkState {
    /// Serializer-free time for the a→b direction.
    pub busy_until_ab: SimTime,
    /// Serializer-free time for the b→a direction.
    pub busy_until_ba: SimTime,
    /// Gilbert–Elliott chain state for the a→b direction (`true` = bad).
    /// Ignored by the Bernoulli loss model.
    pub bad_ab: bool,
    /// Gilbert–Elliott chain state for the b→a direction.
    pub bad_ba: bool,
}

impl LinkState {
    /// The Gilbert–Elliott chain state for the direction leaving `from`.
    pub fn chain_state_mut(&mut self, spec: &LinkSpec, from: NodeId) -> &mut bool {
        if from == spec.a {
            &mut self.bad_ab
        } else {
            debug_assert_eq!(from, spec.b, "sample from non-endpoint");
            &mut self.bad_ba
        }
    }

    /// Resets both directions' chain state to good (used when a fault
    /// plan swaps the link's loss model).
    pub fn reset_chain(&mut self) {
        self.bad_ab = false;
        self.bad_ba = false;
    }

    /// Enqueues a transmission of `bytes` from `from` at time `now`.
    /// Returns the arrival time at the far end and updates the serializer.
    pub fn transmit(&mut self, spec: &LinkSpec, from: NodeId, now: SimTime, bytes: u32) -> SimTime {
        let tx = match spec.params.bandwidth.as_bps() {
            Some(bps) => SimDuration::transmission(bytes, bps),
            None => SimDuration::ZERO,
        };
        let busy = if from == spec.a {
            &mut self.busy_until_ab
        } else {
            debug_assert_eq!(from, spec.b, "transmit from non-endpoint");
            &mut self.busy_until_ba
        };
        let start = if *busy > now { *busy } else { now };
        let done = start + tx;
        *busy = done;
        done + spec.params.latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::LinkParams;

    fn spec(lat_ms: u64, bps: u64) -> LinkSpec {
        LinkSpec {
            a: NodeId(0),
            b: NodeId(1),
            params: LinkParams::lossless(SimDuration::from_millis(lat_ms), bps),
        }
    }

    fn spec_infinite(lat_ms: u64) -> LinkSpec {
        LinkSpec {
            a: NodeId(0),
            b: NodeId(1),
            params: LinkParams::lossless_infinite(SimDuration::from_millis(lat_ms)),
        }
    }

    #[test]
    fn other_endpoint() {
        let s = spec(1, 800_000);
        assert_eq!(s.other(NodeId(0)), Some(NodeId(1)));
        assert_eq!(s.other(NodeId(1)), Some(NodeId(0)));
        assert_eq!(s.other(NodeId(9)), None);
    }

    #[test]
    fn idle_link_arrival_is_tx_plus_latency() {
        let s = spec(10, 800_000); // 1000B => 10ms tx
        let mut st = LinkState::default();
        let arrive = st.transmit(&s, NodeId(0), SimTime::ZERO, 1000);
        assert_eq!(arrive, SimTime::from_millis(20));
    }

    #[test]
    fn back_to_back_packets_queue_fifo() {
        let s = spec(10, 800_000);
        let mut st = LinkState::default();
        let a1 = st.transmit(&s, NodeId(0), SimTime::ZERO, 1000);
        let a2 = st.transmit(&s, NodeId(0), SimTime::ZERO, 1000);
        assert_eq!(a1, SimTime::from_millis(20));
        assert_eq!(a2, SimTime::from_millis(30)); // waits for serializer
    }

    #[test]
    fn directions_do_not_interfere() {
        let s = spec(10, 800_000);
        let mut st = LinkState::default();
        let a1 = st.transmit(&s, NodeId(0), SimTime::ZERO, 1000);
        let a2 = st.transmit(&s, NodeId(1), SimTime::ZERO, 1000);
        assert_eq!(a1, a2); // full duplex
    }

    #[test]
    fn serializer_frees_up_over_time() {
        let s = spec(0, 800_000);
        let mut st = LinkState::default();
        let _ = st.transmit(&s, NodeId(0), SimTime::ZERO, 1000); // busy till 10ms
        let a = st.transmit(&s, NodeId(0), SimTime::from_millis(50), 1000);
        assert_eq!(a, SimTime::from_millis(60)); // no residual queueing
    }

    #[test]
    fn infinite_bandwidth_is_latency_only() {
        let s = spec_infinite(7);
        let mut st = LinkState::default();
        let a = st.transmit(&s, NodeId(0), SimTime::from_millis(3), 123456);
        assert_eq!(a, SimTime::from_millis(10));
    }
}
