//! The slab-backed indexed event queue.
//!
//! A discrete-event simulator spends much of its life pushing and popping
//! events, so the queue's memory behaviour is a first-order performance
//! concern.  This queue separates *ordering* from *storage*:
//!
//! * the binary min-heap holds only small `Copy` keys — `(time, seq, slot)`,
//!   24 bytes — so every sift moves three words instead of a whole event
//!   payload;
//! * event payloads live in a slab (`Vec<Option<T>>`) addressed by the
//!   key's slot index, with a free list recycling slots, so steady-state
//!   scheduling touches no allocator at all once the simulation's
//!   high-water mark is reached.
//!
//! Ordering is the lexicographic minimum of `(time, seq)` where `seq` is a
//! monotonically increasing push counter: events at the same timestamp pop
//! in insertion (FIFO) order.  This is exactly the tie-breaking contract of
//! the `BinaryHeap<QItem>` it replaced (reverse-ordered on `(time, seq)`),
//! so event order — and therefore every seeded reference number — is
//! bit-identical across the swap.  A property test in
//! `tests/proptests.rs` pins the equivalence against a `BinaryHeap` model
//! over random push/pop/cancel interleavings.

use crate::time::SimTime;

/// Heap entry: the ordering key plus the slab slot holding the payload.
#[derive(Clone, Copy, Debug)]
struct Key {
    time: SimTime,
    seq: u64,
    slot: u32,
}

impl Key {
    #[inline]
    fn rank(&self) -> (SimTime, u64) {
        (self.time, self.seq)
    }
}

/// A min-ordered event queue: `pop` yields events in ascending `(time,
/// insertion sequence)` order.
///
/// `T` is the event payload; it is stored once in the slab and moved out
/// exactly once on pop — the heap itself only ever copies small keys.
#[derive(Debug)]
pub struct EventQueue<T> {
    heap: Vec<Key>,
    slots: Vec<Option<T>>,
    free: Vec<u32>,
    seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<T> EventQueue<T> {
    /// An empty queue.
    pub fn new() -> EventQueue<T> {
        EventQueue {
            heap: Vec::new(),
            slots: Vec::new(),
            free: Vec::new(),
            seq: 0,
        }
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue holds no events.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// High-water mark of the slab (diagnostics): slots ever allocated,
    /// including currently free ones.
    pub fn slot_capacity(&self) -> usize {
        self.slots.len()
    }

    /// Schedules `item` at `time` and returns its insertion sequence
    /// number.  Events pushed at the same `time` pop in push order.
    pub fn push(&mut self, time: SimTime, item: T) -> u64 {
        let seq = self.seq;
        self.seq += 1;
        let slot = match self.free.pop() {
            Some(s) => {
                debug_assert!(self.slots[s as usize].is_none());
                self.slots[s as usize] = Some(item);
                s
            }
            None => {
                let s = u32::try_from(self.slots.len()).expect("event slab exceeds u32 slots");
                self.slots.push(Some(item));
                s
            }
        };
        self.heap.push(Key { time, seq, slot });
        self.sift_up(self.heap.len() - 1);
        seq
    }

    /// Timestamp of the earliest event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.first().map(|k| k.time)
    }

    /// Removes and returns the earliest event as `(time, payload)`.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        let top = *self.heap.first()?;
        let last = self.heap.pop().expect("non-empty");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.sift_down(0);
        }
        let item = self.slots[top.slot as usize]
            .take()
            .expect("heap key points at a filled slot");
        self.free.push(top.slot);
        Some((top.time, item))
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.heap[i].rank() < self.heap[parent].rank() {
                self.heap.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.heap.len();
        loop {
            let left = 2 * i + 1;
            if left >= n {
                break;
            }
            let right = left + 1;
            let smallest_child = if right < n && self.heap[right].rank() < self.heap[left].rank() {
                right
            } else {
                left
            };
            if self.heap[smallest_child].rank() < self.heap[i].rank() {
                self.heap.swap(i, smallest_child);
                i = smallest_child;
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(30), "c");
        q.push(t(10), "a");
        q.push(t(20), "b");
        assert_eq!(q.peek_time(), Some(t(10)));
        assert_eq!(q.pop(), Some((t(10), "a")));
        assert_eq!(q.pop(), Some((t(20), "b")));
        assert_eq!(q.pop(), Some((t(30), "c")));
        assert_eq!(q.pop(), None);
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn same_time_pops_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100u32 {
            q.push(t(5), i);
        }
        for i in 0..100u32 {
            assert_eq!(q.pop(), Some((t(5), i)));
        }
    }

    #[test]
    fn interleaved_push_pop_keeps_fifo_within_time() {
        let mut q = EventQueue::new();
        q.push(t(1), 0u32);
        q.push(t(2), 1);
        assert_eq!(q.pop(), Some((t(1), 0)));
        // Pushed after a pop, still at the already-seen time 2: must come
        // after the earlier time-2 event.
        q.push(t(2), 2);
        q.push(t(2), 3);
        assert_eq!(q.pop(), Some((t(2), 1)));
        assert_eq!(q.pop(), Some((t(2), 2)));
        assert_eq!(q.pop(), Some((t(2), 3)));
    }

    #[test]
    fn slab_recycles_slots() {
        let mut q = EventQueue::new();
        for round in 0..50u64 {
            for i in 0..8u64 {
                q.push(t(round * 10 + i), i);
            }
            for _ in 0..8 {
                q.pop().unwrap();
            }
        }
        // 400 events flowed through, but never more than 8 at once.
        assert_eq!(q.slot_capacity(), 8);
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn payloads_are_moved_not_cloned() {
        // A non-Clone payload type compiles and round-trips: the slab
        // moves values, never duplicates them.
        struct NoClone(#[allow(dead_code)] u64);
        let mut q = EventQueue::new();
        q.push(t(1), NoClone(7));
        let (_, v) = q.pop().unwrap();
        assert_eq!(v.0, 7);
    }
}
