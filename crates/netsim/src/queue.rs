//! The slab-backed indexed event queue.
//!
//! A discrete-event simulator spends much of its life pushing and popping
//! events, so the queue's memory behaviour is a first-order performance
//! concern.  This queue separates *ordering* from *storage*:
//!
//! * the binary min-heap holds only small `Copy` keys — an [`EventKey`]
//!   plus the slab slot — so every sift moves a few words instead of a
//!   whole event payload;
//! * event payloads live in a slab (`Vec<Option<T>>`) addressed by the
//!   key's slot index, with a free list recycling slots, so steady-state
//!   scheduling touches no allocator at all once the simulation's
//!   high-water mark is reached.
//!
//! Ordering is the lexicographic minimum of an [`EventKey`] — `(time,
//! push_time, origin, oseq)`.  The legacy [`EventQueue::push`] entry point
//! assigns keys from a monotone per-queue counter, which reproduces the
//! old global-FIFO tie-break exactly: events at the same timestamp pop in
//! insertion order.  A property test in `tests/proptests.rs` pins that
//! equivalence against a `BinaryHeap` model over random push/pop
//! interleavings.
//!
//! The richer keyed entry points ([`EventQueue::push_keyed`],
//! [`EventQueue::pop_keyed`]) exist for the sharded engine: a key that is
//! a pure function of *which node pushed the event and when* (rather than
//! a global push counter) totally orders events the same way no matter
//! which shard queue they pass through, so per-shard runs merge
//! bit-identically into the serial schedule (see `shard.rs`).

use crate::time::SimTime;

/// Total event order for deterministic scheduling, shard-invariant.
///
/// Lexicographic: `(time, push_time, origin, oseq)`.
///
/// * `time` — when the event fires;
/// * `push_time` — the simulation instant it was scheduled;
/// * `origin` — 0 for events scheduled outside any node's event
///   processing (agent attachment, fault plans), `node + 1` for events a
///   node scheduled while being processed (timers, forwarded arrivals);
/// * `oseq` — a per-origin monotone sequence number.
///
/// Because an origin's pushes are sequential, `(origin, oseq)` is unique,
/// and because the tuple depends only on simulation-visible history (not
/// on which queue or thread carried the event), the order is identical
/// at any shard count.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct EventKey {
    /// When the event fires.
    pub time: SimTime,
    /// When the event was scheduled.
    pub push_time: SimTime,
    /// Scheduling origin: 0 = external/build, `n + 1` = node `n`.
    pub origin: u32,
    /// Per-origin monotone sequence number.
    pub oseq: u64,
}

/// Heap entry: the ordering key plus the slab slot holding the payload.
#[derive(Clone, Copy, Debug)]
struct Key {
    key: EventKey,
    slot: u32,
}

impl Key {
    #[inline]
    fn rank(&self) -> EventKey {
        self.key
    }
}

/// A min-ordered event queue: `pop` yields events in ascending `(time,
/// insertion sequence)` order.
///
/// `T` is the event payload; it is stored once in the slab and moved out
/// exactly once on pop — the heap itself only ever copies small keys.
#[derive(Debug)]
pub struct EventQueue<T> {
    heap: Vec<Key>,
    slots: Vec<Option<T>>,
    free: Vec<u32>,
    seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<T> EventQueue<T> {
    /// An empty queue.
    pub fn new() -> EventQueue<T> {
        EventQueue {
            heap: Vec::new(),
            slots: Vec::new(),
            free: Vec::new(),
            seq: 0,
        }
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue holds no events.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// High-water mark of the slab (diagnostics): slots ever allocated,
    /// including currently free ones.
    pub fn slot_capacity(&self) -> usize {
        self.slots.len()
    }

    /// Schedules `item` at `time` and returns its insertion sequence
    /// number.  Events pushed at the same `time` pop in push order (the
    /// key is derived from a per-queue monotone counter).
    pub fn push(&mut self, time: SimTime, item: T) -> u64 {
        let seq = self.seq;
        self.seq += 1;
        self.push_keyed(
            EventKey {
                time,
                push_time: SimTime::ZERO,
                origin: 0,
                oseq: seq,
            },
            item,
        );
        seq
    }

    /// Schedules `item` under an explicit ordering key.  Keys must be
    /// unique per queue lifetime (the engine guarantees this via per-origin
    /// sequence numbers).
    pub fn push_keyed(&mut self, key: EventKey, item: T) {
        let slot = match self.free.pop() {
            Some(s) => {
                debug_assert!(self.slots[s as usize].is_none());
                self.slots[s as usize] = Some(item);
                s
            }
            None => {
                let s = u32::try_from(self.slots.len()).expect("event slab exceeds u32 slots");
                self.slots.push(Some(item));
                s
            }
        };
        self.heap.push(Key { key, slot });
        self.sift_up(self.heap.len() - 1);
    }

    /// Timestamp of the earliest event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.first().map(|k| k.key.time)
    }

    /// Full ordering key of the earliest event, if any.
    pub fn peek_key(&self) -> Option<EventKey> {
        self.heap.first().map(|k| k.key)
    }

    /// Removes and returns the earliest event as `(time, payload)`.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        self.pop_keyed().map(|(k, item)| (k.time, item))
    }

    /// Removes and returns the earliest event with its full key.
    pub fn pop_keyed(&mut self) -> Option<(EventKey, T)> {
        let top = *self.heap.first()?;
        let last = self.heap.pop().expect("non-empty");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.sift_down(0);
        }
        let item = self.slots[top.slot as usize]
            .take()
            .expect("heap key points at a filled slot");
        self.free.push(top.slot);
        Some((top.key, item))
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.heap[i].rank() < self.heap[parent].rank() {
                self.heap.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.heap.len();
        loop {
            let left = 2 * i + 1;
            if left >= n {
                break;
            }
            let right = left + 1;
            let smallest_child = if right < n && self.heap[right].rank() < self.heap[left].rank() {
                right
            } else {
                left
            };
            if self.heap[smallest_child].rank() < self.heap[i].rank() {
                self.heap.swap(i, smallest_child);
                i = smallest_child;
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(30), "c");
        q.push(t(10), "a");
        q.push(t(20), "b");
        assert_eq!(q.peek_time(), Some(t(10)));
        assert_eq!(q.pop(), Some((t(10), "a")));
        assert_eq!(q.pop(), Some((t(20), "b")));
        assert_eq!(q.pop(), Some((t(30), "c")));
        assert_eq!(q.pop(), None);
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn same_time_pops_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100u32 {
            q.push(t(5), i);
        }
        for i in 0..100u32 {
            assert_eq!(q.pop(), Some((t(5), i)));
        }
    }

    #[test]
    fn interleaved_push_pop_keeps_fifo_within_time() {
        let mut q = EventQueue::new();
        q.push(t(1), 0u32);
        q.push(t(2), 1);
        assert_eq!(q.pop(), Some((t(1), 0)));
        // Pushed after a pop, still at the already-seen time 2: must come
        // after the earlier time-2 event.
        q.push(t(2), 2);
        q.push(t(2), 3);
        assert_eq!(q.pop(), Some((t(2), 1)));
        assert_eq!(q.pop(), Some((t(2), 2)));
        assert_eq!(q.pop(), Some((t(2), 3)));
    }

    #[test]
    fn slab_recycles_slots() {
        let mut q = EventQueue::new();
        for round in 0..50u64 {
            for i in 0..8u64 {
                q.push(t(round * 10 + i), i);
            }
            for _ in 0..8 {
                q.pop().unwrap();
            }
        }
        // 400 events flowed through, but never more than 8 at once.
        assert_eq!(q.slot_capacity(), 8);
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn keyed_pushes_order_by_full_key_not_insertion() {
        let key = |time_ms: u64, push_ms: u64, origin: u32, oseq: u64| EventKey {
            time: t(time_ms),
            push_time: t(push_ms),
            origin,
            oseq,
        };
        let mut q = EventQueue::new();
        // Same fire time, inserted out of key order: pops sort by
        // (push_time, origin, oseq), not insertion order.
        q.push_keyed(key(5, 2, 3, 0), "late-push");
        q.push_keyed(key(5, 1, 7, 9), "early-push");
        q.push_keyed(key(5, 2, 1, 4), "low-origin");
        q.push_keyed(key(4, 3, 9, 9), "earlier-time");
        assert_eq!(q.peek_key(), Some(key(4, 3, 9, 9)));
        let order: Vec<&str> = std::iter::from_fn(|| q.pop_keyed().map(|(_, v)| v)).collect();
        assert_eq!(
            order,
            vec!["earlier-time", "early-push", "low-origin", "late-push"]
        );
    }

    #[test]
    fn legacy_and_keyed_pushes_share_one_heap() {
        let mut q = EventQueue::new();
        q.push(t(10), 1u32);
        q.push_keyed(
            EventKey {
                time: t(10),
                push_time: t(2),
                origin: 4,
                oseq: 0,
            },
            2,
        );
        // Legacy keys carry push_time ZERO, so they sort ahead of any
        // runtime-keyed event at the same fire time.
        assert_eq!(q.pop(), Some((t(10), 1)));
        assert_eq!(q.pop(), Some((t(10), 2)));
    }

    #[test]
    fn payloads_are_moved_not_cloned() {
        // A non-Clone payload type compiles and round-trips: the slab
        // moves values, never duplicates them.
        struct NoClone(#[allow(dead_code)] u64);
        let mut q = EventQueue::new();
        q.push(t(1), NoClone(7));
        let (_, v) = q.pop().unwrap();
        assert_eq!(v.0, 7);
    }
}
