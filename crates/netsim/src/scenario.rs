//! Declarative workload scenarios: dynamic membership as pure DES events.
//!
//! A [`ScenarioPlan`] is to *membership* what [`FaultPlan`](crate::faults::FaultPlan)
//! is to the network substrate: a declarative, timestamped schedule that
//! [`EngineBuilder`](crate::engine::EngineBuilder::scenario) compiles down
//! to ordinary engine events before the run starts, so a run stays a pure
//! function of `(plan, seed)` and is bit-identical at any shard or thread
//! count.  It models the workloads the paper's §7 hierarchy claims hinge
//! on:
//!
//! * **Late joins and flash crowds** — [`ScenarioPlan::join_at`] /
//!   [`ScenarioPlan::batch_join`] start an agent mid-run and splice the
//!   node into its zone channels at the join instant.  A node with a
//!   scheduled join is stripped from those channels' initial member lists,
//!   so before the join it neither receives nor forwards zone traffic.
//! * **Leaves and churn** — [`ScenarioPlan::leave_at`] stops the agent
//!   (compiled to a node-crash event: timers die, state freezes) and
//!   prunes it from its channels; [`ScenarioPlan::rejoin_at`] restarts it
//!   warm.  [`ScenarioPlan::churn`] draws seeded leave/rejoin processes
//!   over a member pool.
//! * **Sender handoff** — [`ScenarioPlan::handoff`] retires the active
//!   source and brings up a standby mid-stream; the auditor's
//!   single-sender invariant checks exactly one source is ever live.
//!
//! ## Determinism argument
//!
//! Membership events are scheduled at build time with origin-0 event keys
//! (the same keying as fault events), *before* any agent start event, so a
//! join at time `t` orders before an agent start at `t`.  In a sharded run
//! they are replicated to every shard under identical keys — channel
//! membership is replicated state, exactly like link masks — so every
//! shard observes the same membership at the same instant and forwarding
//! prunes identically everywhere.  Channel mutation is idempotent
//! ([`Channel::insert`](crate::channel::Channel::insert)), so replaying a
//! replicated event converges.  Routing is membership-independent (scope
//! pruning is checked live per hop), so no SPT or tree-forwarding state is
//! invalidated by a membership change: the "lazy SPT invalidation" for
//! membership is that there is nothing to invalidate.

use crate::channel::ChannelId;
use crate::graph::NodeId;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// A channel-membership change, applied at a scheduled [`SimTime`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MembershipEvent {
    /// `node` becomes a member of `channel`.
    Join {
        /// The channel gaining the member.
        channel: ChannelId,
        /// The joining node.
        node: NodeId,
    },
    /// `node` stops being a member of `channel`.
    Leave {
        /// The channel losing the member.
        channel: ChannelId,
        /// The leaving node.
        node: NodeId,
    },
}

impl MembershipEvent {
    /// The node the event concerns.
    pub fn node(self) -> NodeId {
        match self {
            MembershipEvent::Join { node, .. } | MembershipEvent::Leave { node, .. } => node,
        }
    }

    /// The channel the event concerns.
    pub fn channel(self) -> ChannelId {
        match self {
            MembershipEvent::Join { channel, .. } | MembershipEvent::Leave { channel, .. } => {
                channel
            }
        }
    }
}

/// A declarative schedule of membership events, agent start/stop times,
/// and sender handoffs.
///
/// ```
/// use sharqfec_netsim::prelude::*;
/// use sharqfec_netsim::scenario::ScenarioPlan;
///
/// let plan = ScenarioPlan::new()
///     .join_at(SimTime::from_secs(10), NodeId(7), &[ChannelId(0), ChannelId(2)])
///     .leave_at(SimTime::from_secs(30), NodeId(7), &[ChannelId(0), ChannelId(2)]);
/// assert_eq!(plan.events().len(), 4);
/// assert_eq!(plan.start_override(NodeId(7)), Some(SimTime::from_secs(10)));
/// ```
#[derive(Clone, Debug, Default)]
pub struct ScenarioPlan {
    events: Vec<(SimTime, MembershipEvent)>,
    /// Agent start-time overrides (late joiners, handoff standbys).
    starts: Vec<(NodeId, SimTime)>,
    /// Agent stops, compiled to node-crash events.
    stops: Vec<(SimTime, NodeId)>,
    /// Agent restarts (warm), compiled to node-restart events.
    restarts: Vec<(SimTime, NodeId)>,
}

impl ScenarioPlan {
    /// An empty plan.
    pub fn new() -> ScenarioPlan {
        ScenarioPlan::default()
    }

    /// Adds one raw membership event (builder style).
    pub fn at(mut self, when: SimTime, ev: MembershipEvent) -> ScenarioPlan {
        self.push(when, ev);
        self
    }

    /// Adds one raw membership event in place.
    pub fn push(&mut self, when: SimTime, ev: MembershipEvent) {
        self.events.push((when, ev));
    }

    /// `node` joins the session at `when`: its agent starts then, and it
    /// becomes a member of each listed channel at the same instant.  The
    /// node is stripped from those channels' *initial* member lists, so
    /// before the join it neither hears nor forwards their traffic.
    pub fn join_at(mut self, when: SimTime, node: NodeId, channels: &[ChannelId]) -> ScenarioPlan {
        self.starts.push((node, when));
        for &channel in channels {
            self.push(when, MembershipEvent::Join { channel, node });
        }
        self
    }

    /// A flash crowd: every `(node, channels)` pair joins at `when` (one
    /// batched instant, the paper's live-event case).
    pub fn batch_join<'a>(
        mut self,
        when: SimTime,
        joins: impl IntoIterator<Item = (NodeId, &'a [ChannelId])>,
    ) -> ScenarioPlan {
        for (node, channels) in joins {
            self = self.join_at(when, node, channels);
        }
        self
    }

    /// `node` leaves at `when`: its agent stops (timers die, state
    /// freezes) and it is pruned from each listed channel.
    pub fn leave_at(mut self, when: SimTime, node: NodeId, channels: &[ChannelId]) -> ScenarioPlan {
        self.stops.push((when, node));
        for &channel in channels {
            self.push(when, MembershipEvent::Leave { channel, node });
        }
        self
    }

    /// `node` comes back at `when` after a [`ScenarioPlan::leave_at`]:
    /// its agent restarts warm and rejoins each listed channel.
    pub fn rejoin_at(
        mut self,
        when: SimTime,
        node: NodeId,
        channels: &[ChannelId],
    ) -> ScenarioPlan {
        self.restarts.push((when, node));
        for &channel in channels {
            self.push(when, MembershipEvent::Join { channel, node });
        }
        self
    }

    /// Sender handoff at `when`: the active source at `from` stops and a
    /// standby source agent at `to` starts, joining the listed channels.
    /// The standby's agent must be attached by the setup layer (configured
    /// to start its stream at `when`); this schedules the switchover.
    pub fn handoff(
        mut self,
        when: SimTime,
        from: NodeId,
        to: NodeId,
        to_channels: &[ChannelId],
    ) -> ScenarioPlan {
        self.stops.push((when, from));
        self.starts.push((to, when));
        for &channel in to_channels {
            self.push(when, MembershipEvent::Join { channel, node: to });
        }
        self
    }

    /// A seeded churn process over a pool of members: each pool node
    /// draws exponential session/downtime lengths (means `mean_session` /
    /// `mean_down`) inside `[window.0, window.1)`, leaving and rejoining
    /// its channels on each cycle.  A node still down when the window
    /// closes rejoins at the window end, so every member is back for the
    /// delivery-completeness audit.  Identical `(plan, seed)` pairs yield
    /// identical schedules.
    pub fn churn<'a>(
        mut self,
        seed: u64,
        window: (SimTime, SimTime),
        mean_session: SimDuration,
        mean_down: SimDuration,
        pool: impl IntoIterator<Item = (NodeId, &'a [ChannelId])>,
    ) -> ScenarioPlan {
        assert!(window.0 < window.1, "churn window must be non-empty");
        let mut rng = SimRng::new(seed ^ 0x4348_5552_4E21); // "CHURN!"
        let draw = |rng: &mut SimRng, mean: SimDuration| -> SimDuration {
            // Inverse-CDF exponential; clamp the uniform away from 0 so
            // ln stays finite.
            let u = rng.range_f64(1e-12, 1.0);
            mean.mul_f64(-u.ln())
        };
        for (node, channels) in pool {
            let mut t = window.0 + draw(&mut rng, mean_session);
            while t < window.1 {
                self = self.leave_at(t, node, channels);
                let back = t + draw(&mut rng, mean_down);
                let back = back.min(window.1);
                self = self.rejoin_at(back, node, channels);
                t = back + draw(&mut rng, mean_session);
            }
        }
        self
    }

    /// The raw membership events, in schedule (push) order.
    pub fn events(&self) -> &[(SimTime, MembershipEvent)] {
        &self.events
    }

    /// Agent start-time overrides `(node, start)`.
    pub fn starts(&self) -> &[(NodeId, SimTime)] {
        &self.starts
    }

    /// Scheduled agent stops `(when, node)`.
    pub fn stops(&self) -> &[(SimTime, NodeId)] {
        &self.stops
    }

    /// Scheduled warm agent restarts `(when, node)`.
    pub fn restarts(&self) -> &[(SimTime, NodeId)] {
        &self.restarts
    }

    /// The start-time override for `node`, if the plan schedules one
    /// (the last scheduled override wins).
    pub fn start_override(&self, node: NodeId) -> Option<SimTime> {
        self.starts
            .iter()
            .rev()
            .find(|(n, _)| *n == node)
            .map(|&(_, at)| at)
    }

    /// Whether `node` must be stripped from `channel`'s initial member
    /// list: true iff the node's earliest scheduled event on that channel
    /// is a `Join` (ties broken by schedule order).
    pub fn initially_out(&self, channel: ChannelId, node: NodeId) -> bool {
        self.events
            .iter()
            .filter(|(_, ev)| ev.channel() == channel && ev.node() == node)
            .min_by_key(|(t, _)| *t)
            .is_some_and(|(_, ev)| matches!(ev, MembershipEvent::Join { .. }))
    }

    /// Every instant at which the plan perturbs the session — membership
    /// changes, agent starts/stops/restarts — sorted ascending.  The
    /// auditor derives its membership excuse windows from these (see
    /// `AuditConfig::excuse_scenario`).
    pub fn disruption_times(&self) -> Vec<SimTime> {
        let mut times: Vec<SimTime> = self
            .events
            .iter()
            .map(|&(t, _)| t)
            .chain(self.starts.iter().map(|&(_, t)| t))
            .chain(self.stops.iter().map(|&(t, _)| t))
            .chain(self.restarts.iter().map(|&(t, _)| t))
            .collect();
        times.sort_unstable();
        times.dedup();
        times
    }

    /// Number of raw membership events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan schedules nothing at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
            && self.starts.is_empty()
            && self.stops.is_empty()
            && self.restarts.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ch(i: u32) -> ChannelId {
        ChannelId(i)
    }

    #[test]
    fn join_strips_initial_membership_but_leave_does_not() {
        let plan = ScenarioPlan::new()
            .join_at(SimTime::from_secs(5), NodeId(1), &[ch(0), ch(3)])
            .leave_at(SimTime::from_secs(9), NodeId(2), &[ch(0)]);
        assert!(plan.initially_out(ch(0), NodeId(1)));
        assert!(plan.initially_out(ch(3), NodeId(1)));
        assert!(!plan.initially_out(ch(1), NodeId(1)), "unlisted channel");
        assert!(!plan.initially_out(ch(0), NodeId(2)), "leaver starts in");
        assert!(!plan.initially_out(ch(0), NodeId(9)), "unlisted node");
    }

    #[test]
    fn leave_then_rejoin_keeps_initial_membership() {
        // The earliest event is the Leave, so the node starts as a member.
        let plan = ScenarioPlan::new()
            .leave_at(SimTime::from_secs(10), NodeId(4), &[ch(2)])
            .rejoin_at(SimTime::from_secs(20), NodeId(4), &[ch(2)]);
        assert!(!plan.initially_out(ch(2), NodeId(4)));
        assert_eq!(plan.stops(), &[(SimTime::from_secs(10), NodeId(4))]);
        assert_eq!(plan.restarts(), &[(SimTime::from_secs(20), NodeId(4))]);
    }

    #[test]
    fn batch_join_fans_out_and_overrides_starts() {
        let members = [ch(0), ch(1)];
        let joins = (10..20u32).map(|i| (NodeId(i), &members[..]));
        let plan = ScenarioPlan::new().batch_join(SimTime::from_secs(8), joins);
        assert_eq!(plan.len(), 20, "two channels per joiner");
        assert_eq!(plan.starts().len(), 10);
        for i in 10..20u32 {
            assert_eq!(
                plan.start_override(NodeId(i)),
                Some(SimTime::from_secs(8)),
                "node {i}"
            );
        }
        assert_eq!(plan.start_override(NodeId(9)), None);
    }

    #[test]
    fn handoff_stops_old_and_starts_standby() {
        let plan =
            ScenarioPlan::new().handoff(SimTime::from_secs(12), NodeId(0), NodeId(5), &[ch(0)]);
        assert_eq!(plan.stops(), &[(SimTime::from_secs(12), NodeId(0))]);
        assert_eq!(plan.start_override(NodeId(5)), Some(SimTime::from_secs(12)));
        assert_eq!(
            plan.events(),
            &[(
                SimTime::from_secs(12),
                MembershipEvent::Join {
                    channel: ch(0),
                    node: NodeId(5)
                }
            )]
        );
    }

    #[test]
    fn churn_is_deterministic_and_windowed() {
        let members = [ch(0)];
        let pool: Vec<(NodeId, &[ChannelId])> =
            (1..6u32).map(|i| (NodeId(i), &members[..])).collect();
        let window = (SimTime::from_secs(10), SimTime::from_secs(60));
        let build = |seed| {
            ScenarioPlan::new().churn(
                seed,
                window,
                SimDuration::from_secs(15),
                SimDuration::from_secs(5),
                pool.iter().cloned(),
            )
        };
        let a = build(7);
        let b = build(7);
        assert_eq!(a.events(), b.events());
        assert_eq!(a.stops(), b.stops());
        assert_ne!(
            build(8).disruption_times(),
            a.disruption_times(),
            "different seeds draw different schedules"
        );
        assert!(!a.is_empty(), "50 s window at 15 s mean must churn");
        // Every leave pairs with a rejoin, and everything stays in-window
        // (rejoins may land exactly at the window end).
        assert_eq!(a.stops().len(), a.restarts().len());
        for &(t, _) in a.stops() {
            assert!(t >= window.0 && t < window.1);
        }
        for &(t, _) in a.restarts() {
            assert!(t >= window.0 && t <= window.1);
        }
    }

    #[test]
    fn disruption_times_are_sorted_and_deduped() {
        let t = SimTime::from_secs(4);
        let plan = ScenarioPlan::new()
            .join_at(t, NodeId(1), &[ch(0), ch(1)])
            .leave_at(SimTime::from_secs(2), NodeId(2), &[ch(0)]);
        assert_eq!(plan.disruption_times(), vec![SimTime::from_secs(2), t]);
    }
}
