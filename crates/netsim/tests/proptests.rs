//! Property-based tests for the simulator substrate: routing correctness
//! against an independent oracle, delivery invariants under random
//! topologies, determinism, and the event queue's ordering contract.

use proptest::prelude::*;
use sharqfec_netsim::prelude::*;
use sharqfec_netsim::queue::EventQueue;
use sharqfec_netsim::routing::{DistanceOracle, Spt};

/// A random connected topology: a random tree plus a few extra edges.
#[derive(Debug, Clone)]
struct RandomTopo {
    n: usize,
    /// (a, b, latency_ms) — tree edges first, then extras.
    edges: Vec<(usize, usize, u64)>,
}

fn random_topo() -> impl Strategy<Value = RandomTopo> {
    (3usize..14).prop_flat_map(|n| {
        let tree = proptest::collection::vec(1u64..50, n - 1);
        let parents: Vec<_> = (1..n).map(|i| 0..i).collect();
        let extra = proptest::collection::vec((0usize..n, 0usize..n, 1u64..50), 0..4);
        (tree, parents, extra).prop_map(move |(lats, parents, extra)| {
            let mut edges: Vec<(usize, usize, u64)> = parents
                .into_iter()
                .enumerate()
                .map(|(i, p)| (p, i + 1, lats[i]))
                .collect();
            for (a, b, w) in extra {
                if a != b
                    && !edges
                        .iter()
                        .any(|&(x, y, _)| (x, y) == (a, b) || (x, y) == (b, a))
                {
                    edges.push((a, b, w));
                }
            }
            RandomTopo { n, edges }
        })
    })
}

/// A random tree only (no extra edges): exactly the shape
/// `ShardPlan::by_subtrees` partitions, so sharded runs actually shard.
fn random_tree_topo() -> impl Strategy<Value = RandomTopo> {
    (4usize..12).prop_flat_map(|n| {
        let tree = proptest::collection::vec(1u64..50, n - 1);
        let parents: Vec<_> = (1..n).map(|i| 0..i).collect();
        (tree, parents).prop_map(move |(lats, parents)| {
            let edges = parents
                .into_iter()
                .enumerate()
                .map(|(i, p)| (p, i + 1, lats[i]))
                .collect();
            RandomTopo { n, edges }
        })
    })
}

fn build(t: &RandomTopo) -> Topology {
    let mut b = TopologyBuilder::new();
    let ids = b.add_nodes("n", t.n);
    for &(a, bb, w) in &t.edges {
        b.add_link(
            ids[a],
            ids[bb],
            LinkParams::lossless_infinite(SimDuration::from_millis(w)),
        );
    }
    b.build()
}

/// Independent all-pairs shortest paths (Floyd–Warshall) as the oracle.
fn floyd_warshall(t: &RandomTopo) -> Vec<Vec<u64>> {
    let inf = u64::MAX / 4;
    let mut d = vec![vec![inf; t.n]; t.n];
    for (i, row) in d.iter_mut().enumerate() {
        row[i] = 0;
    }
    for &(a, b, w) in &t.edges {
        let w = w * 1_000_000; // ms → ns
        d[a][b] = d[a][b].min(w);
        d[b][a] = d[b][a].min(w);
    }
    for k in 0..t.n {
        for i in 0..t.n {
            for j in 0..t.n {
                if d[i][k] + d[k][j] < d[i][j] {
                    d[i][j] = d[i][k] + d[k][j];
                }
            }
        }
    }
    d
}

#[derive(Clone, Debug)]
struct Ping;
impl Classify for Ping {
    fn class(&self) -> TrafficClass {
        TrafficClass::Data
    }
}

/// One step of the queue-model equivalence test.
#[derive(Debug, Clone)]
enum QueueOp {
    /// Schedule an event at the given millisecond timestamp.
    Push(u64),
    /// Cancel an arbitrary pending event (selector reduced mod pending).
    Cancel(u16),
    /// Pop the next non-cancelled event from both structures.
    Pop,
}

struct Once {
    chan: ChannelId,
}
impl Agent<Ping> for Once {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Ping>) {
        ctx.multicast(self.chan, Ping, 100);
    }
    fn on_packet(&mut self, _: &mut Ctx<'_, Ping>, _: &Packet<Ping>) {}
}

/// Two-class traffic for the shard-equivalence test: ticks fan out from
/// the root, echoes fan back in.  Echoes are never themselves echoed, so
/// traffic is bounded.
#[derive(Clone, Debug)]
enum Beat {
    Tick(u32),
    Echo,
}
impl Classify for Beat {
    fn class(&self) -> TrafficClass {
        match self {
            Beat::Tick(_) => TrafficClass::Data,
            Beat::Echo => TrafficClass::Nack,
        }
    }
}

/// Root source: one tick every 7 ms, `left` in total.
struct Metronome {
    chan: ChannelId,
    next: u32,
    left: u32,
}
impl Agent<Beat> for Metronome {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Beat>) {
        ctx.set_timer(SimDuration::from_millis(1), 0);
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_, Beat>, _token: u64) {
        ctx.multicast(self.chan, Beat::Tick(self.next), 200);
        self.next += 1;
        self.left -= 1;
        if self.left > 0 {
            ctx.set_timer(SimDuration::from_millis(7), 0);
        }
    }
    fn on_packet(&mut self, _: &mut Ctx<'_, Beat>, _: &Packet<Beat>) {}
}

/// Receiver: echoes each tick with probability ½ after an RNG-jittered
/// back-off — exercises per-agent RNG streams, timers, and cross-shard
/// traffic in both directions.
struct EchoBack {
    chan: ChannelId,
}
impl Agent<Beat> for EchoBack {
    fn on_packet(&mut self, ctx: &mut Ctx<'_, Beat>, pkt: &Packet<Beat>) {
        if let Beat::Tick(seq) = pkt.payload {
            if ctx.rng().next_f64() < 0.5 {
                let jitter = (ctx.rng().next_f64() * 5e6) as u64;
                ctx.set_timer(
                    SimDuration(SimDuration::from_millis(2).0 + jitter),
                    u64::from(seq),
                );
            }
        }
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_, Beat>, _token: u64) {
        ctx.multicast(self.chan, Beat::Echo, 60);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Dijkstra's distances must equal Floyd–Warshall's for every pair.
    #[test]
    fn spt_matches_floyd_warshall(t in random_topo()) {
        let topo = build(&t);
        let fw = floyd_warshall(&t);
        let oracle = DistanceOracle::compute(&topo);
        for (a, fw_row) in fw.iter().enumerate() {
            let spt = Spt::compute(&topo, NodeId(a as u32));
            for (b, &fw_dist) in fw_row.iter().enumerate() {
                let ours = spt.delay_to(NodeId(b as u32)).as_nanos();
                prop_assert_eq!(ours, fw_dist, "dist {}->{}", a, b);
                prop_assert_eq!(
                    oracle.one_way(NodeId(a as u32), NodeId(b as u32)).as_nanos(),
                    fw_dist
                );
            }
        }
    }

    /// Masked Dijkstra (fault injection's re-route) must agree with
    /// Floyd–Warshall computed over the surviving edge set, including on
    /// unreachability.
    #[test]
    fn masked_spt_matches_floyd_warshall_on_survivors(t in random_topo(), kill in any::<u32>()) {
        let topo = build(&t);
        let kill = kill as usize % t.edges.len();
        let survivors = RandomTopo {
            n: t.n,
            edges: t
                .edges
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != kill)
                .map(|(_, &e)| e)
                .collect(),
        };
        let fw = floyd_warshall(&survivors);
        let inf = u64::MAX / 4;
        let mut up = vec![true; topo.link_count()];
        // Builder may have dropped duplicate extras, so map the killed
        // edge to its LinkId through the topology.
        let (a, b, _) = t.edges[kill];
        let killed_link = topo
            .link_between(NodeId(a as u32), NodeId(b as u32))
            .expect("edge exists");
        up[killed_link.idx()] = false;
        for (src, fw_row) in fw.iter().enumerate() {
            let spt = Spt::compute_masked(&topo, NodeId(src as u32), Some(&up));
            prop_assert!(!spt.uses_link(killed_link));
            for (dst, &dist) in fw_row.iter().enumerate() {
                let node = NodeId(dst as u32);
                if dist >= inf {
                    prop_assert!(!spt.reachable(node));
                    prop_assert_eq!(spt.delay_to(node), SimDuration::MAX);
                } else {
                    prop_assert!(spt.reachable(node));
                    prop_assert_eq!(spt.delay_to(node).as_nanos(), dist);
                }
            }
        }
    }

    /// SPT structure: every non-root's path is acyclic, ends at the root,
    /// and each hop's distance decreases toward the root by exactly the
    /// link latency.
    #[test]
    fn spt_paths_are_consistent(t in random_topo(), src in 0usize..14) {
        let src = src % t.n;
        let topo = build(&t);
        let spt = Spt::compute(&topo, NodeId(src as u32));
        for b in 0..t.n {
            let path = spt.path_to(NodeId(b as u32));
            prop_assert_eq!(path[0], NodeId(src as u32));
            prop_assert_eq!(*path.last().unwrap(), NodeId(b as u32));
            prop_assert!(path.len() <= t.n, "path has a cycle");
            for w in path.windows(2) {
                let link = topo.link_between(w[0], w[1]).expect("path edges exist");
                let lat = topo.link(link).params.latency;
                prop_assert_eq!(spt.delay_to(w[0]) + lat, spt.delay_to(w[1]));
            }
        }
    }

    /// On a lossless network every member except the sender receives a
    /// multicast exactly once, at exactly its oracle distance (plus
    /// serialization, which is zero on infinite-rate links).
    #[test]
    fn lossless_multicast_reaches_everyone_once(t in random_topo(), seed in any::<u64>()) {
        let topo = build(&t);
        let oracle = DistanceOracle::compute(&topo);
        let mut builder: EngineBuilder<Ping> = EngineBuilder::new(topo, seed);
        let members: Vec<NodeId> = (0..t.n as u32).map(NodeId).collect();
        let chan = builder.add_channel(&members);
        builder.add_agent(members[0], Box::new(Once { chan }));
        let mut engine = builder.build();
        engine.advance(RunSpec::drain());
        let rec = engine.recorder();
        for &m in &members[1..] {
            let hits: Vec<_> = rec
                .deliveries
                .iter()
                .filter(|d| d.node == m)
                .collect();
            prop_assert_eq!(hits.len(), 1, "node {} heard {} copies", m, hits.len());
            prop_assert_eq!(
                hits[0].time.as_nanos(),
                oracle.one_way(members[0], m).as_nanos(),
                "arrival time at {}",
                m
            );
        }
        prop_assert!(rec.deliveries.iter().all(|d| d.node != members[0]));
    }

    /// Scope pruning: only channel members receive, and members cut off
    /// by non-member intermediates receive nothing.
    #[test]
    fn scope_pruning_never_leaks(t in random_topo(), mask in any::<u16>(), seed in any::<u64>()) {
        let topo = build(&t);
        let mut builder: EngineBuilder<Ping> = EngineBuilder::new(topo, seed);
        // Random member subset always containing the sender (node 0).
        let members: Vec<NodeId> = (0..t.n as u32)
            .map(NodeId)
            .filter(|n| n.0 == 0 || mask & (1 << (n.0 % 16)) != 0)
            .collect();
        let chan = builder.add_channel(&members);
        builder.add_agent(members[0], Box::new(Once { chan }));
        let mut engine = builder.build();
        engine.advance(RunSpec::drain());
        for d in &engine.recorder().deliveries {
            prop_assert!(
                members.contains(&d.node),
                "non-member {} received a scoped packet",
                d.node
            );
        }
    }

    /// Bit-for-bit determinism: identical seeds give identical delivery
    /// logs even with loss.
    #[test]
    fn identical_seeds_identical_logs(t in random_topo(), seed in any::<u64>()) {
        let run = || {
            let mut b = TopologyBuilder::new();
            let ids = b.add_nodes("n", t.n);
            for &(a, bb, w) in &t.edges {
                b.add_link(
                    ids[a],
                    ids[bb],
                    LinkParams::new(SimDuration::from_millis(w), 1_000_000, 0.3),
                );
            }
            let mut builder: EngineBuilder<Ping> = EngineBuilder::new(b.build(), seed);
            let chan = builder.add_channel(&ids);
            builder.add_agent(ids[0], Box::new(Once { chan }));
            let mut engine = builder.build();
            engine.advance(RunSpec::drain());
            engine
                .recorder()
                .deliveries
                .iter()
                .map(|d| (d.time.as_nanos(), d.node.0))
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(), run());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Seed sweeps through the parallel runner are bit-identical to the
    /// serial run of the same cells: thread count is not an input to the
    /// simulation.  Each cell runs a lossy random-topology scenario and
    /// reports its full delivery log.
    #[test]
    fn runner_seed_sweep_matches_serial(t in random_topo(), base_seed in any::<u32>()) {
        use sharqfec_netsim::runner::{grid, run_sweep, Cell};
        use std::num::NonZeroUsize;

        let run_cell = |c: &Cell| {
            let mut b = TopologyBuilder::new();
            let ids = b.add_nodes("n", t.n);
            for &(a, bb, w) in &t.edges {
                b.add_link(
                    ids[a],
                    ids[bb],
                    LinkParams::new(SimDuration::from_millis(w), 1_000_000, 0.3),
                );
            }
            let mut builder: EngineBuilder<Ping> = EngineBuilder::new(b.build(), c.seed);
            let chan = builder.add_channel(&ids);
            builder.add_agent(ids[0], Box::new(Once { chan }));
            let mut engine = builder.build();
            engine.advance(RunSpec::drain());
            engine
                .recorder()
                .deliveries
                .iter()
                .map(|d| (d.time.as_nanos(), d.node.0))
                .collect::<Vec<_>>()
        };

        let seeds: Vec<u64> = (0..8).map(|i| base_seed as u64 + i).collect();
        let serial = run_sweep(grid(&["lossy"], &seeds), NonZeroUsize::MIN, run_cell);
        let parallel = run_sweep(
            grid(&["lossy"], &seeds),
            NonZeroUsize::new(4).unwrap(),
            run_cell,
        );
        prop_assert_eq!(serial.into_values(), parallel.into_values());
    }

    /// The slab-backed [`EventQueue`] must pop in exactly the order the
    /// engine's old `BinaryHeap<QItem>` did: ascending time, FIFO within
    /// a timestamp (insertion-sequence tie-break).  The model is that
    /// very `BinaryHeap` over reverse-ordered `(time, seq)` pairs, and
    /// the op stream interleaves pushes, pops, and timer-style
    /// cancellations (an overlay set consulted at pop time, exactly as
    /// the engine skips cancelled timers).
    #[test]
    fn event_queue_matches_binary_heap_semantics(
        ops in proptest::collection::vec(
            // Pushes dominate (repeated arms stand in for weights), with
            // a tiny time range to force ties.
            prop_oneof![
                (0u64..16).prop_map(QueueOp::Push),
                (0u64..16).prop_map(QueueOp::Push),
                (0u64..16).prop_map(QueueOp::Push),
                any::<u16>().prop_map(QueueOp::Cancel),
                Just(QueueOp::Pop),
                Just(QueueOp::Pop),
            ],
            1..200,
        ),
    ) {
        use std::cmp::Reverse;
        use std::collections::{BinaryHeap, HashSet};

        let mut model: BinaryHeap<Reverse<(SimTime, u64)>> = BinaryHeap::new();
        let mut queue: EventQueue<u64> = EventQueue::new();
        let mut next_seq = 0u64;
        let mut pending: Vec<u64> = Vec::new();
        let mut cancelled: HashSet<u64> = HashSet::new();
        let mut popped: Vec<(SimTime, u64)> = Vec::new();

        for op in ops {
            match op {
                QueueOp::Push(ms) => {
                    let time = SimTime::from_millis(ms);
                    let seq = queue.push(time, next_seq);
                    prop_assert_eq!(seq, next_seq, "queue must assign dense push sequences");
                    model.push(Reverse((time, seq)));
                    pending.push(seq);
                    next_seq += 1;
                }
                QueueOp::Cancel(pick) => {
                    // Cancel an arbitrary still-queued event, engine-style:
                    // it stays in both structures and is skipped on pop.
                    if !pending.is_empty() {
                        let seq = pending[pick as usize % pending.len()];
                        cancelled.insert(seq);
                    }
                }
                QueueOp::Pop => loop {
                    let expect = model.pop().map(|Reverse(pair)| pair);
                    let got = queue.pop();
                    prop_assert_eq!(got, expect);
                    let Some((time, seq)) = got else { break };
                    pending.retain(|&s| s != seq);
                    if !cancelled.remove(&seq) {
                        popped.push((time, seq));
                        break;
                    }
                },
            }
        }
        // Drain both and check the full surviving pop order once more.
        while let Some(Reverse(pair)) = model.pop() {
            prop_assert_eq!(queue.pop(), Some(pair));
            if !cancelled.contains(&pair.1) {
                popped.push(pair);
            }
        }
        prop_assert!(queue.is_empty());
        // Global FIFO contract: two events at the same timestamp always
        // pop in push (sequence) order, no matter how pushes and pops
        // interleaved.  (Across different timestamps a later push may
        // legally pop earlier, so only the tie case is globally ordered.)
        for (i, a) in popped.iter().enumerate() {
            for b in &popped[i + 1..] {
                if a.0 == b.0 {
                    prop_assert!(
                        a.1 < b.1,
                        "same-time FIFO violated: {:?} before {:?}", a, b
                    );
                }
            }
        }
    }

    /// The sharded engine is bit-identical to serial on random small
    /// trees, at shard counts 1/2/4, under random fault plans: same
    /// processed-event count, same recorder logs (deliveries,
    /// transmissions, drops), same final clock.  The drain also doubles
    /// as a deadlock-freedom check — a stuck barrier would hang the test.
    #[test]
    fn sharded_runs_match_serial_on_random_trees(
        t in random_tree_topo(),
        seed in any::<u64>(),
        flap_pick in any::<u16>(),
        crash_pick in any::<u16>(),
        do_flap in any::<bool>(),
        do_crash in any::<bool>(),
    ) {
        use sharqfec_netsim::faults::{FaultEvent, FaultPlan};
        use sharqfec_netsim::graph::LinkId;
        use std::sync::Arc;

        let mut fp = FaultPlan::new();
        if do_flap {
            let link = LinkId(flap_pick as u32 % (t.n as u32 - 1));
            fp = fp.link_flap(link, SimTime::from_millis(20), SimTime::from_millis(50));
        }
        if do_crash {
            let node = NodeId(1 + crash_pick as u32 % (t.n as u32 - 1));
            fp = fp
                .at(SimTime::from_millis(30), FaultEvent::NodeCrash(node))
                .at(SimTime::from_millis(70), FaultEvent::NodeRestart(node));
        }

        let run = |shards: usize| {
            let mut b = TopologyBuilder::new();
            let ids = b.add_nodes("n", t.n);
            for &(a, bb, w) in &t.edges {
                b.add_link(
                    ids[a],
                    ids[bb],
                    LinkParams::new(SimDuration::from_millis(w), 500_000, 0.25),
                );
            }
            let topo = b.build();
            let plan = Arc::new(ShardPlan::by_subtrees(&topo, ids[0], shards));
            let mut builder: EngineBuilder<Beat> = EngineBuilder::new(topo, seed);
            builder.fault_plan(fp.clone());
            let chan = builder.add_channel(&ids);
            builder.add_agent(ids[0], Box::new(Metronome { chan, next: 0, left: 5 }));
            for &r in &ids[1..] {
                builder.add_agent(r, Box::new(EchoBack { chan }));
            }
            let mut engine = builder.build();
            // A mid-run horizon stop exercises the split/absorb round
            // trip twice per run.
            let mut processed =
                engine.advance(RunSpec::to(SimTime::from_millis(45)).with_plan(plan.clone()));
            processed += engine.advance(RunSpec::drain().with_plan(plan));
            let rec = engine.recorder();
            (
                processed,
                engine.now(),
                rec.deliveries.clone(),
                rec.transmissions.clone(),
                rec.drops.clone(),
            )
        };

        let serial = run(1);
        for shards in [2usize, 4] {
            prop_assert_eq!(&serial, &run(shards), "shards = {}", shards);
        }
    }

    /// The streaming recorder's O(1) aggregates agree with raw-mode counts
    /// for the same seeded run.
    #[test]
    fn streaming_counts_match_raw(t in random_topo(), seed in any::<u64>()) {
        use sharqfec_netsim::metrics::RecorderMode;

        let run_mode = |mode: RecorderMode| {
            let mut b = TopologyBuilder::new();
            let ids = b.add_nodes("n", t.n);
            for &(a, bb, w) in &t.edges {
                b.add_link(
                    ids[a],
                    ids[bb],
                    LinkParams::new(SimDuration::from_millis(w), 1_000_000, 0.3),
                );
            }
            let mut builder: EngineBuilder<Ping> = EngineBuilder::new(b.build(), seed);
            builder.recorder_mode(mode);
            let chan = builder.add_channel(&ids);
            builder.add_agent(ids[0], Box::new(Once { chan }));
            let mut engine = builder.build();
            engine.advance(RunSpec::drain());
            let rec = engine.recorder();
            let counts: Vec<usize> = (0..t.n as u32)
                .map(|n| rec.delivered_count(NodeId(n), TrafficClass::Data))
                .collect();
            (counts, rec.total_sent(TrafficClass::Data), rec.total_dropped(TrafficClass::Data))
        };

        let raw = run_mode(RecorderMode::Raw);
        let streaming = run_mode(RecorderMode::Streaming);
        prop_assert_eq!(raw, streaming);
    }
}
