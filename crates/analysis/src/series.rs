//! Time-series binning of recorder events.
//!
//! Two paths produce the same series:
//!
//! * [`bin_deliveries`] / [`bin_transmissions`] scan raw event vectors
//!   (recorder in `Raw` mode);
//! * [`bin_deliveries_streaming`] / [`bin_transmissions_streaming`] read
//!   the per-(node, class) bins a `Streaming`-mode recorder aggregated at
//!   record time, for runs too large (or too numerous) to keep raw traces.
//!
//! [`bin_probe_count`] and [`bin_probe_mean`] apply the same [`BinSpec`]
//! geometry to the protocol-decision probe stream
//! ([`sharqfec_netsim::probe`]), so packet traffic and protocol internals
//! (ZLC trajectories, suppression rates, window constants) plot on a
//! shared time axis.

use sharqfec_netsim::metrics::{Record, Recorder, TrafficClass};
use sharqfec_netsim::probe::ProbeRecord;
use sharqfec_netsim::{NodeId, SimTime};

/// A binning specification: window `[start, end)` cut into fixed-width
/// intervals (the paper uses 0.1 s bins over the data phase).
#[derive(Clone, Debug)]
pub struct BinSpec {
    /// Window start.
    pub start: SimTime,
    /// Window end (exclusive).
    pub end: SimTime,
    /// Bin width in seconds.
    pub width_secs: f64,
}

impl BinSpec {
    /// The paper's measurement window: 0.1 s bins.
    pub fn paper(start: SimTime, end: SimTime) -> BinSpec {
        BinSpec {
            start,
            end,
            width_secs: 0.1,
        }
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        let span = self.end.saturating_since(self.start).as_secs_f64();
        (span / self.width_secs).ceil() as usize
    }

    /// Bin index for an instant, or `None` if outside the window.
    pub fn index(&self, t: SimTime) -> Option<usize> {
        if t < self.start || t >= self.end {
            return None;
        }
        let offset = t.saturating_since(self.start).as_secs_f64();
        let idx = (offset / self.width_secs) as usize;
        (idx < self.bins()).then_some(idx)
    }

    /// Midpoint time (seconds) of each bin, for plotting.
    pub fn midpoints(&self) -> Vec<f64> {
        let t0 = self.start.as_secs_f64();
        (0..self.bins())
            .map(|i| t0 + (i as f64 + 0.5) * self.width_secs)
            .collect()
    }
}

/// Bins delivery records matching `classes` and `nodes`, yielding the
/// *average packet count per selected node* per bin — the paper's
/// Figures 14–21 y-axis.
pub fn bin_deliveries(
    records: &[Record],
    spec: &BinSpec,
    classes: &[TrafficClass],
    nodes: &[NodeId],
) -> Vec<f64> {
    let mut counts = vec![0u64; spec.bins()];
    let node_set: std::collections::HashSet<NodeId> = nodes.iter().copied().collect();
    for r in records {
        if !classes.contains(&r.class) || !node_set.contains(&r.node) {
            continue;
        }
        if let Some(i) = spec.index(r.time) {
            counts[i] += 1;
        }
    }
    let n = nodes.len().max(1) as f64;
    counts.into_iter().map(|c| c as f64 / n).collect()
}

/// Bins transmission records matching `classes` across *all* nodes,
/// yielding total transmissions per bin (used for aggregate NACK counts).
pub fn bin_transmissions(records: &[Record], spec: &BinSpec, classes: &[TrafficClass]) -> Vec<f64> {
    let mut counts = vec![0f64; spec.bins()];
    for r in records {
        if !classes.contains(&r.class) {
            continue;
        }
        if let Some(i) = spec.index(r.time) {
            counts[i] += 1.0;
        }
    }
    counts
}

/// Offset of the recorder bin that corresponds to `spec`'s first bin.
///
/// # Panics
///
/// Panics if the spec's bin width differs from the recorder's, or the
/// window start is not on a recorder bin boundary — the streaming bins are
/// fixed at record time, so a misaligned spec cannot be served.
fn streaming_base(rec: &Recorder, spec: &BinSpec) -> usize {
    let width_ns = rec.bin_width().as_nanos();
    let spec_width_ns = (spec.width_secs * 1e9).round() as u64;
    assert_eq!(
        spec_width_ns, width_ns,
        "spec bin width must match the recorder's streaming bin width"
    );
    assert_eq!(
        spec.start.as_nanos() % width_ns,
        0,
        "spec window must start on a streaming bin boundary"
    );
    (spec.start.as_nanos() / width_ns) as usize
}

/// Streaming-mode counterpart of [`bin_deliveries`]: average packet count
/// per selected node per bin, read from the recorder's aggregated bins.
pub fn bin_deliveries_streaming(
    rec: &Recorder,
    spec: &BinSpec,
    classes: &[TrafficClass],
    nodes: &[NodeId],
) -> Vec<f64> {
    let base = streaming_base(rec, spec);
    let mut counts = vec![0u64; spec.bins()];
    for &node in nodes {
        for &class in classes {
            let bins = rec.delivered_bins(node, class);
            for (i, c) in counts.iter_mut().enumerate() {
                if let Some(t) = bins.get(base + i) {
                    *c += t.packets;
                }
            }
        }
    }
    let n = nodes.len().max(1) as f64;
    counts.into_iter().map(|c| c as f64 / n).collect()
}

/// Streaming-mode counterpart of [`bin_transmissions`]: total
/// transmissions per bin across all nodes.
pub fn bin_transmissions_streaming(
    rec: &Recorder,
    spec: &BinSpec,
    classes: &[TrafficClass],
) -> Vec<f64> {
    let base = streaming_base(rec, spec);
    let mut counts = vec![0f64; spec.bins()];
    for node in (0..rec.node_count() as u32).map(NodeId) {
        for &class in classes {
            let bins = rec.sent_bins(node, class);
            for (i, c) in counts.iter_mut().enumerate() {
                if let Some(t) = bins.get(base + i) {
                    *c += t.packets as f64;
                }
            }
        }
    }
    counts
}

/// Counts probe events per bin, filtered by a predicate — e.g. NACK
/// suppressions only, or one node's injections.  Events outside the
/// window are ignored.
pub fn bin_probe_count(
    records: &[ProbeRecord],
    spec: &BinSpec,
    mut filter: impl FnMut(&ProbeRecord) -> bool,
) -> Vec<f64> {
    let mut counts = vec![0f64; spec.bins()];
    for r in records {
        if !filter(r) {
            continue;
        }
        if let Some(i) = spec.index(r.time) {
            counts[i] += 1.0;
        }
    }
    counts
}

/// Means of a numeric projection of probe events per bin — e.g. the ZLC
/// prediction after each EWMA fold, or the adaptive window's `ave_dup`.
/// `project` returns `None` to skip an event; bins with no selected
/// events yield `None` (absence of data, not zero).
pub fn bin_probe_mean(
    records: &[ProbeRecord],
    spec: &BinSpec,
    mut project: impl FnMut(&ProbeRecord) -> Option<f64>,
) -> Vec<Option<f64>> {
    let mut sums = vec![0f64; spec.bins()];
    let mut counts = vec![0u64; spec.bins()];
    for r in records {
        let Some(v) = project(r) else { continue };
        if let Some(i) = spec.index(r.time) {
            sums[i] += v;
            counts[i] += 1;
        }
    }
    sums.into_iter()
        .zip(counts)
        .map(|(s, c)| (c > 0).then(|| s / c as f64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sharqfec_netsim::metrics::RecorderMode;
    use sharqfec_netsim::ChannelId;

    fn rec(t_ms: u64, node: u32, class: TrafficClass) -> Record {
        Record {
            time: SimTime::from_millis(t_ms),
            node: NodeId(node),
            src: NodeId(0),
            class,
            bytes: 1000,
            channel: ChannelId(0),
        }
    }

    #[test]
    fn spec_geometry() {
        let spec = BinSpec::paper(SimTime::from_secs(6), SimTime::from_secs(17));
        assert_eq!(spec.bins(), 110);
        assert_eq!(spec.index(SimTime::from_secs(6)), Some(0));
        assert_eq!(spec.index(SimTime::from_millis(6099)), Some(0));
        assert_eq!(spec.index(SimTime::from_millis(6100)), Some(1));
        assert_eq!(spec.index(SimTime::from_secs(17)), None);
        assert_eq!(spec.index(SimTime::from_secs(5)), None);
        let mids = spec.midpoints();
        assert_eq!(mids.len(), 110);
        assert!((mids[0] - 6.05).abs() < 1e-9);
    }

    #[test]
    fn deliveries_average_over_nodes() {
        let spec = BinSpec::paper(SimTime::ZERO, SimTime::from_secs(1));
        let records = vec![
            rec(10, 1, TrafficClass::Data),
            rec(20, 2, TrafficClass::Data),
            rec(30, 1, TrafficClass::Repair),
            rec(40, 3, TrafficClass::Data),  // node 3 not selected
            rec(50, 1, TrafficClass::Nack),  // class not selected
            rec(950, 2, TrafficClass::Data), // last bin
        ];
        let bins = bin_deliveries(
            &records,
            &spec,
            &[TrafficClass::Data, TrafficClass::Repair],
            &[NodeId(1), NodeId(2)],
        );
        assert_eq!(bins.len(), 10);
        assert!((bins[0] - 1.5).abs() < 1e-9); // 3 packets / 2 nodes
        assert!((bins[9] - 0.5).abs() < 1e-9);
        assert_eq!(bins[1], 0.0);
    }

    #[test]
    fn transmissions_count_totals() {
        let spec = BinSpec::paper(SimTime::ZERO, SimTime::from_secs(1));
        let records = vec![
            rec(10, 1, TrafficClass::Nack),
            rec(20, 2, TrafficClass::Nack),
            rec(130, 9, TrafficClass::Nack),
            rec(140, 9, TrafficClass::Data),
        ];
        let bins = bin_transmissions(&records, &spec, &[TrafficClass::Nack]);
        assert_eq!(bins[0], 2.0);
        assert_eq!(bins[1], 1.0);
        assert_eq!(bins[2], 0.0);
    }

    #[test]
    fn streaming_bins_match_raw_binning() {
        let spec = BinSpec::paper(SimTime::ZERO, SimTime::from_secs(1));
        let records = vec![
            rec(10, 1, TrafficClass::Data),
            rec(20, 2, TrafficClass::Data),
            rec(30, 1, TrafficClass::Repair),
            rec(40, 3, TrafficClass::Data),
            rec(950, 2, TrafficClass::Data),
            rec(1500, 2, TrafficClass::Data), // outside the window
        ];
        let mut streaming = Recorder::new(RecorderMode::Streaming);
        for r in &records {
            streaming.record_delivery(r.clone());
            streaming.record_transmission(r.clone());
        }
        let classes = [TrafficClass::Data, TrafficClass::Repair];
        let nodes = [NodeId(1), NodeId(2)];
        assert_eq!(
            bin_deliveries_streaming(&streaming, &spec, &classes, &nodes),
            bin_deliveries(&records, &spec, &classes, &nodes)
        );
        assert_eq!(
            bin_transmissions_streaming(&streaming, &spec, &[TrafficClass::Data]),
            bin_transmissions(&records, &spec, &[TrafficClass::Data])
        );
    }

    #[test]
    fn streaming_window_offset_is_applied() {
        // Window starting at 0.2 s: a delivery at 0.25 s lands in bin 0.
        let spec = BinSpec::paper(SimTime::from_millis(200), SimTime::from_millis(500));
        let mut r = Recorder::new(RecorderMode::Streaming);
        r.record_delivery(rec(250, 1, TrafficClass::Data));
        r.record_delivery(rec(50, 1, TrafficClass::Data)); // before window
        let bins = bin_deliveries_streaming(&r, &spec, &[TrafficClass::Data], &[NodeId(1)]);
        assert_eq!(bins, vec![1.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "bin width must match")]
    fn streaming_rejects_mismatched_width() {
        let spec = BinSpec {
            start: SimTime::ZERO,
            end: SimTime::from_secs(1),
            width_secs: 0.25,
        };
        let r = Recorder::new(RecorderMode::Streaming);
        bin_deliveries_streaming(&r, &spec, &[TrafficClass::Data], &[NodeId(1)]);
    }

    #[test]
    fn probe_binning_counts_and_means() {
        use sharqfec_netsim::probe::ProbeEvent;
        let spec = BinSpec::paper(SimTime::ZERO, SimTime::from_secs(1));
        let zlc = |t_ms: u64, pred: f64| ProbeRecord {
            time: SimTime::from_millis(t_ms),
            node: NodeId(1),
            event: ProbeEvent::ZlcUpdate {
                group: 0,
                level: 0,
                observed: 0.0,
                pred,
            },
        };
        let records = vec![
            zlc(10, 1.0),
            zlc(20, 3.0),
            zlc(150, 5.0),
            zlc(1500, 9.0), // outside the window
        ];
        let counts = bin_probe_count(&records, &spec, |r| {
            matches!(r.event, ProbeEvent::ZlcUpdate { .. })
        });
        assert_eq!(counts[0], 2.0);
        assert_eq!(counts[1], 1.0);
        assert_eq!(counts[2], 0.0);
        let means = bin_probe_mean(&records, &spec, |r| match r.event {
            ProbeEvent::ZlcUpdate { pred, .. } => Some(pred),
            _ => None,
        });
        assert_eq!(means[0], Some(2.0));
        assert_eq!(means[1], Some(5.0));
        assert_eq!(means[2], None);
    }

    #[test]
    fn empty_selection_is_all_zeroes() {
        let spec = BinSpec::paper(SimTime::ZERO, SimTime::from_secs(1));
        let bins = bin_deliveries(&[], &spec, &[TrafficClass::Data], &[NodeId(1)]);
        assert!(bins.iter().all(|&b| b == 0.0));
    }
}
