//! The paper's §3.1 analytic example (Figure 1).
//!
//! A single source multicasts down a small lossy tree.  The paper derives:
//!
//! * total loss at each node by compounding link losses,
//! * `P(all nodes receive a given packet) = Π (1 − loss)` over every link
//!   — 27.0 % for its example tree, "a better than 70 % probability that
//!   at least one receiver will fail to receive",
//! * the *normalized traffic volume* when non-scoped FEC is sized for the
//!   worst receiver X (9.73 % loss): every node then carries
//!   `(1 − loss_node) / (1 − loss_X)` units per useful packet, i.e.
//!   lightly-lossy receivers pay for X's losses.
//!
//! The figure's exact tree is not printed in the text, so
//! [`ExampleTree::paper`] reconstructs one pinned to the two quantities
//! the text *does* give (27.0 % and 9.73 %); the analytics themselves are
//! generic over any tree.

/// A node in the example multicast tree.
#[derive(Clone, Debug)]
pub struct TreeNode {
    /// Parent index (`None` for the root/source).
    pub parent: Option<usize>,
    /// Loss probability of the link from the parent (0 for the root).
    pub link_loss: f64,
    /// Human label.
    pub label: String,
}

/// A rooted tree with per-link loss probabilities.
#[derive(Clone, Debug)]
pub struct ExampleTree {
    nodes: Vec<TreeNode>,
}

impl ExampleTree {
    /// An empty tree with just the source.
    pub fn new() -> ExampleTree {
        ExampleTree {
            nodes: vec![TreeNode {
                parent: None,
                link_loss: 0.0,
                label: "src".into(),
            }],
        }
    }

    /// Adds a node under `parent` with the given link loss; returns its
    /// index.
    ///
    /// # Panics
    ///
    /// Panics on an unknown parent or a loss outside `[0, 1)`.
    pub fn add(&mut self, parent: usize, link_loss: f64, label: impl Into<String>) -> usize {
        assert!(parent < self.nodes.len(), "unknown parent {parent}");
        assert!(
            (0.0..1.0).contains(&link_loss),
            "link loss must be in [0, 1)"
        );
        self.nodes.push(TreeNode {
            parent: Some(parent),
            link_loss,
            label: label.into(),
        });
        self.nodes.len() - 1
    }

    /// Number of nodes including the source.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether only the source exists.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// Node access.
    pub fn node(&self, i: usize) -> &TreeNode {
        &self.nodes[i]
    }

    /// Total (compounded) loss from the source to node `i`:
    /// `1 − Π (1 − link_loss)` over the path.
    pub fn total_loss(&self, i: usize) -> f64 {
        let mut survive = 1.0;
        let mut cur = i;
        while let Some(p) = self.nodes[cur].parent {
            survive *= 1.0 - self.nodes[cur].link_loss;
            cur = p;
        }
        1.0 - survive
    }

    /// `P(all nodes receive a given packet) = Π (1 − loss)` over all links
    /// (the paper's independence assumption).
    pub fn p_all_receive(&self) -> f64 {
        self.nodes
            .iter()
            .skip(1)
            .map(|n| 1.0 - n.link_loss)
            .product()
    }

    /// The worst total loss over all nodes and which node suffers it.
    pub fn worst(&self) -> (usize, f64) {
        (1..self.nodes.len())
            .map(|i| (i, self.total_loss(i)))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("loss is finite"))
            .expect("tree has receivers")
    }

    /// Reconstructs the paper's example: a 3-branch two-level tree whose
    /// worst receiver X loses exactly 9.73 % and whose
    /// `P(all receive) = 27.0 %`, the two quantities §3.1 states.
    ///
    /// Shape: three mid nodes (2 %, 3 %, 4 % links), eight leaves each.
    /// One leaf under the 4 % branch is pinned so its compound loss is
    /// exactly 9.73 %; the remaining leaf losses share a base rate solved
    /// numerically so the all-links product is 0.270.
    pub fn paper() -> ExampleTree {
        // Worst leaf: (1-0.04)(1-x) = 1-0.0973  =>  x = 1 - 0.9027/0.96.
        let worst_leaf = 1.0 - 0.9027 / 0.96;

        let build = |base: f64| -> ExampleTree {
            let mut t = ExampleTree::new();
            let mids = [
                t.add(0, 0.02, "A"),
                t.add(0, 0.03, "B"),
                t.add(0, 0.04, "C"),
            ];
            for (m, &mid) in mids.iter().enumerate() {
                for l in 0..8 {
                    if m == 2 && l == 0 {
                        t.add(mid, worst_leaf, "X");
                    } else {
                        t.add(mid, base, format!("m{m}l{l}"));
                    }
                }
            }
            t
        };

        // Solve the base leaf loss so P(all receive) = 0.270 by bisection
        // (monotone decreasing in `base`).
        let (mut lo, mut hi) = (0.0f64, 0.06f64);
        for _ in 0..60 {
            let mid = (lo + hi) / 2.0;
            if build(mid).p_all_receive() > 0.270 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        build((lo + hi) / 2.0)
    }
}

impl Default for ExampleTree {
    fn default() -> ExampleTree {
        ExampleTree::new()
    }
}

/// The paper's non-scoped FEC traffic model: redundancy sized for the
/// worst receiver is carried (and wasted) everywhere.
#[derive(Clone, Debug)]
pub struct NonScopedFecModel {
    /// Worst receiver's total loss (the paper's receiver X at 9.73 %).
    pub worst_loss: f64,
}

impl NonScopedFecModel {
    /// Builds the model from a tree's worst receiver.
    pub fn for_tree(tree: &ExampleTree) -> NonScopedFecModel {
        NonScopedFecModel {
            worst_loss: tree.worst().1,
        }
    }

    /// Redundancy ratio `h/k` the source must add so the worst receiver's
    /// expected arrivals cover the group: `h/k = p/(1−p)`.
    pub fn redundancy_ratio(&self) -> f64 {
        self.worst_loss / (1.0 - self.worst_loss)
    }

    /// Normalized traffic volume seen at a node with the given total loss:
    /// `(1 + h/k) · (1 − loss) = (1 − loss) / (1 − worst_loss)` units per
    /// useful data packet (1.0 means "exactly what the node needed").
    pub fn normalized_traffic(&self, node_loss: f64) -> f64 {
        (1.0 - node_loss) / (1.0 - self.worst_loss)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compound_loss_multiplies_along_path() {
        let mut t = ExampleTree::new();
        let a = t.add(0, 0.1, "a");
        let b = t.add(a, 0.2, "b");
        assert!((t.total_loss(a) - 0.1).abs() < 1e-12);
        assert!((t.total_loss(b) - (1.0 - 0.9 * 0.8)).abs() < 1e-12);
        assert_eq!(t.total_loss(0), 0.0);
    }

    #[test]
    fn p_all_is_product_over_links() {
        let mut t = ExampleTree::new();
        let a = t.add(0, 0.1, "a");
        t.add(a, 0.2, "b");
        t.add(0, 0.3, "c");
        assert!((t.p_all_receive() - 0.9 * 0.8 * 0.7).abs() < 1e-12);
    }

    #[test]
    fn paper_tree_reproduces_both_stated_quantities() {
        let t = ExampleTree::paper();
        // P(all receive) = 27.0%
        assert!(
            (t.p_all_receive() - 0.270).abs() < 1e-6,
            "P(all) = {}",
            t.p_all_receive()
        );
        // Worst receiver loses 9.73%.
        let (worst_idx, worst_loss) = t.worst();
        assert!((worst_loss - 0.0973).abs() < 1e-6, "worst = {worst_loss}");
        assert_eq!(t.node(worst_idx).label, "X");
        // "better than 70% probability that at least one receiver fails".
        assert!(1.0 - t.p_all_receive() > 0.70);
    }

    #[test]
    fn fec_model_wastes_bandwidth_on_clean_receivers() {
        let t = ExampleTree::paper();
        let model = NonScopedFecModel::for_tree(&t);
        // X gets exactly what it needs…
        assert!((model.normalized_traffic(0.0973) - 1.0).abs() < 1e-9);
        // …while a lossless node carries ~10.8% extra.
        let clean = model.normalized_traffic(0.0);
        assert!((clean - 1.0 / (1.0 - 0.0973)).abs() < 1e-12);
        assert!(clean > 1.07 && clean < 1.12);
        // Redundancy ratio matches h/k = p/(1-p).
        assert!((model.redundancy_ratio() - 0.0973 / 0.9027).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "unknown parent")]
    fn bad_parent_rejected() {
        ExampleTree::new().add(5, 0.1, "x");
    }

    #[test]
    #[should_panic(expected = "link loss")]
    fn total_loss_probability_rejected() {
        ExampleTree::new().add(0, 1.0, "x");
    }
}
