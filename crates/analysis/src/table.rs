//! Plain-text table rendering for the figure-harness binaries.

/// A simple column-aligned text table with an optional TSV form, so the
//  harness output can be both read in a terminal and piped into plotting.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Table {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Table {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width must match header"
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Tab-separated rendering (header first).
    pub fn to_tsv(&self) -> String {
        let mut out = self.header.join("\t");
        out.push('\n');
        for r in &self.rows {
            out.push_str(&r.join("\t"));
            out.push('\n');
        }
        out
    }

    /// Column-aligned rendering for terminals.
    pub fn to_aligned(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(r[c].len());
            }
        }
        let render_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(c, cell)| format!("{:>width$}", cell, width = widths[c]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = render_row(&self.header);
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&render_row(r));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tsv_round_trip_shape() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["1", "2"]).row(vec!["3", "4"]);
        let tsv = t.to_tsv();
        let lines: Vec<&str> = tsv.lines().collect();
        assert_eq!(lines, vec!["a\tb", "1\t2", "3\t4"]);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn aligned_pads_columns() {
        let mut t = Table::new(vec!["name", "v"]);
        t.row(vec!["x", "10000"]);
        let s = t.to_aligned();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].contains("name"));
        assert!(lines[1].starts_with('-'));
        // value column right-aligned to width 5
        assert!(lines[2].ends_with("10000"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_row_rejected() {
        Table::new(vec!["a", "b"]).row(vec!["only-one"]);
    }
}
