//! The §5.1 national-distribution arithmetic (Figure 8).
//!
//! The paper sizes session state and traffic for a 4-level hierarchy:
//! 10 regions × 20 cities × 100 suburbs × 500 subscribers — one sender,
//! 10,000,210 receivers (dedicated caches at region and city bifurcations;
//! suburb representatives elected among the subscribers).
//!
//! Per level, a member participates in its own zone's session plus the
//! chain of its ancestor ZCRs' parent zones, so:
//!
//! * **RTTs maintained / receiver** = own-zone peers + Σ participants of
//!   each larger observable zone (the paper's 10 / 30 / 130 / 630 column);
//! * **session traffic** ∝ Σ n_α² over those zones, against n² non-scoped;
//! * **state ratio** = RTTs maintained / total non-scoped state
//!   (the paper's `x / 1,000,021` column).
//!
//! Note: the paper's suburb-row traffic entry is typeset corruptly
//! ("35,5000"); the formula it states (Σ n_α²) gives
//! 500² + 100² + 20² + 10² = 260,500, which is what we report.

/// One level of the hierarchy.
#[derive(Clone, Debug, PartialEq)]
pub struct NationalLevel {
    /// Level name.
    pub name: &'static str,
    /// Zone fan-out at this level (participants in one zone's session).
    pub participants: u64,
    /// Number of zones at this level.
    pub zones: u64,
    /// Receivers whose *smallest* zone is at this level.
    pub receivers: u64,
    /// RTT entries each such receiver maintains.
    pub rtts_per_receiver: u64,
    /// Scoped session-traffic units (Σ n_α² over observable zones).
    pub scoped_traffic: u64,
}

/// The Figure 8 computation.
#[derive(Clone, Debug)]
pub struct NationalAnalysis {
    /// Per-level rows, largest scope first (national → suburb).
    pub levels: Vec<NationalLevel>,
    /// Total receivers (the paper's 10,000,210).
    pub total_receivers: u64,
}

impl NationalAnalysis {
    /// Computes the table for a hierarchy with the given per-level
    /// fan-outs: `fanouts[0]` regions per nation, `fanouts[1]` cities per
    /// region, `fanouts[2]` suburbs per city, `fanouts[3]` subscribers per
    /// suburb.
    pub fn compute(fanouts: [u64; 4]) -> NationalAnalysis {
        let [regions, cities, suburbs, subs] = fanouts;
        let names = ["National", "Regional", "City", "Suburb"];
        // Participants of one zone's session at each level = its fan-out
        // (the child ZCRs / subscribers announcing there).
        let participants = [regions, cities, suburbs, subs];
        let zones = [1, regions, regions * cities, regions * cities * suburbs];
        // Receivers whose smallest zone is this level: the dedicated
        // caches (region, city) or the subscribers; the national zone has
        // only the sender.
        let receivers = [
            0,
            regions,
            regions * cities,
            regions * cities * suburbs * subs,
        ];

        let mut levels = Vec::with_capacity(4);
        let mut rtts: u64 = 0;
        let mut traffic: u64 = 0;
        for i in 0..4 {
            // A member at level i observes its own zone plus every larger
            // zone through its ZCR chain.
            rtts += participants[i];
            traffic += participants[i] * participants[i];
            levels.push(NationalLevel {
                name: names[i],
                participants: participants[i],
                zones: zones[i],
                receivers: receivers[i],
                rtts_per_receiver: rtts,
                scoped_traffic: traffic,
            });
        }
        NationalAnalysis {
            total_receivers: receivers.iter().sum(),
            levels,
        }
    }

    /// The paper's exact scenario.
    pub fn paper() -> NationalAnalysis {
        NationalAnalysis::compute([10, 20, 100, 500])
    }

    /// Non-scoped per-receiver state (track everyone else).
    pub fn nonscoped_state(&self) -> u64 {
        self.total_receivers
    }

    /// Non-scoped session-traffic units (n² with n = all members).
    pub fn nonscoped_traffic(&self) -> u64 {
        let n = self.total_receivers + 1; // + the sender
        n * n
    }

    /// The paper's state-reduction ratio denominators: it prints
    /// `x / 1,000,021` where `x = rtts/10` — i.e. ratios over
    /// `total_receivers`, reduced by the common factor 10.
    pub fn state_ratio(&self, level: usize) -> (u64, u64) {
        let rtts = self.levels[level].rtts_per_receiver;
        let total = self.total_receivers;
        let g = gcd(rtts, total);
        (rtts / g, total / g)
    }
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_totals() {
        let a = NationalAnalysis::paper();
        assert_eq!(a.total_receivers, 10_000_210);
        assert_eq!(a.nonscoped_state(), 10_000_210);
    }

    #[test]
    fn rtts_per_receiver_match_figure8() {
        let a = NationalAnalysis::paper();
        let rtts: Vec<u64> = a.levels.iter().map(|l| l.rtts_per_receiver).collect();
        assert_eq!(rtts, vec![10, 30, 130, 630]);
    }

    #[test]
    fn zone_counts_match_figure8() {
        let a = NationalAnalysis::paper();
        let zones: Vec<u64> = a.levels.iter().map(|l| l.zones).collect();
        assert_eq!(zones, vec![1, 10, 200, 20_000]);
        let recv: Vec<u64> = a.levels.iter().map(|l| l.receivers).collect();
        assert_eq!(recv, vec![0, 10, 200, 10_000_000]);
    }

    #[test]
    fn scoped_traffic_matches_figure8_formula() {
        let a = NationalAnalysis::paper();
        let traffic: Vec<u64> = a.levels.iter().map(|l| l.scoped_traffic).collect();
        // 10², +20², +100², +500² — the suburb row corrects the paper's
        // garbled "35,5000" cell (see module docs).
        assert_eq!(traffic, vec![100, 500, 10_500, 260_500]);
    }

    #[test]
    fn state_ratios_match_figure8() {
        let a = NationalAnalysis::paper();
        assert_eq!(a.state_ratio(0), (1, 1_000_021));
        assert_eq!(a.state_ratio(1), (3, 1_000_021));
        assert_eq!(a.state_ratio(2), (13, 1_000_021));
        assert_eq!(a.state_ratio(3), (63, 1_000_021));
    }

    #[test]
    fn reduction_is_orders_of_magnitude() {
        let a = NationalAnalysis::paper();
        // Worst case (suburb): 630 entries instead of 10M; traffic units
        // 260,500 instead of ~10M² — "several orders of magnitude".
        let worst = a.levels.last().unwrap();
        assert!(a.nonscoped_state() / worst.rtts_per_receiver > 10_000);
        assert!(a.nonscoped_traffic() / worst.scoped_traffic > 100_000_000);
    }

    #[test]
    fn generic_fanouts_compose() {
        let a = NationalAnalysis::compute([2, 3, 4, 5]);
        assert_eq!(a.total_receivers, 2 + 6 + 2 * 3 * 4 * 5);
        let rtts: Vec<u64> = a.levels.iter().map(|l| l.rtts_per_receiver).collect();
        assert_eq!(rtts, vec![2, 5, 9, 14]);
    }
}
