//! Small statistics helpers for the figure harnesses.

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// The `p`-th percentile (0–100) by nearest-rank on a sorted copy.
///
/// # Panics
///
/// Panics on an empty slice or `p` outside `[0, 100]`.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    assert!(!xs.is_empty(), "percentile of empty data");
    assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in data"));
    let rank = ((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
    sorted[rank]
}

/// Empirical CDF: sorted `(value, fraction ≤ value)` points.
pub fn cdf(xs: &[f64]) -> Vec<(f64, f64)> {
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in data"));
    let n = sorted.len() as f64;
    sorted
        .into_iter()
        .enumerate()
        .map(|(i, v)| (v, (i + 1) as f64 / n))
        .collect()
}

/// Five-number-style summary used in harness output.
#[derive(Clone, Debug, PartialEq)]
pub struct Summary {
    /// Sample count.
    pub n: usize,
    /// Mean.
    pub mean: f64,
    /// Minimum.
    pub min: f64,
    /// Median (p50).
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarizes a sample.
    ///
    /// # Panics
    ///
    /// Panics on an empty slice.
    pub fn of(xs: &[f64]) -> Summary {
        assert!(!xs.is_empty(), "summary of empty data");
        Summary {
            n: xs.len(),
            mean: mean(xs),
            min: percentile(xs, 0.0),
            p50: percentile(xs, 50.0),
            p90: percentile(xs, 90.0),
            max: percentile(xs, 100.0),
        }
    }
}

impl core::fmt::Display for Summary {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "n={} mean={:.4} min={:.4} p50={:.4} p90={:.4} max={:.4}",
            self.n, self.mean, self.min, self.p50, self.p90, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }

    #[test]
    fn percentile_endpoints_and_median() {
        let xs = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 50.0), 3.0);
        assert_eq!(percentile(&xs, 100.0), 5.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_empty_panics() {
        percentile(&[], 50.0);
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let points = cdf(&[3.0, 1.0, 2.0, 2.0]);
        assert_eq!(points.len(), 4);
        assert_eq!(points.last().unwrap().1, 1.0);
        for w in points.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
        // Fraction at the smallest value is 1/n.
        assert_eq!(points[0], (1.0, 0.25));
    }

    #[test]
    fn summary_fields() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 100.0]);
        assert_eq!(s.n, 5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert_eq!(s.p50, 3.0);
        assert_eq!(s.mean, 22.0);
        let line = format!("{s}");
        assert!(line.contains("p90"));
    }
}
