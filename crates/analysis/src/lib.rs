//! Analysis toolkit for regenerating the paper's tables and figures.
//!
//! * [`series`] — bins [`sharqfec_netsim::metrics::Recorder`] events into
//!   the 0.1-second intervals the paper's Figures 14–21 plot ("performance
//!   … was measured by comparing the sum of data and repair traffic
//!   visible at each session \[member\] over 0.1 second intervals");
//! * [`stats`] — means, percentiles, CDFs for the Figures 11–13 ratio
//!   plots;
//! * [`table`] — plain-text table/TSV rendering for the harness binaries;
//! * [`fig1`] — the §3.1 analytic example: compounded loss, the 27.0 %
//!   P(all receivers get a packet), and the normalized traffic of
//!   non-scoped FEC sized for the worst receiver;
//! * [`national`] — the §5.1 Figure 8 table: state and session-traffic
//!   reduction for the 10,000,210-receiver national hierarchy.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fig1;
pub mod national;
pub mod series;
pub mod spark;
pub mod stats;
pub mod table;

pub use fig1::{ExampleTree, NonScopedFecModel};
pub use national::{NationalAnalysis, NationalLevel};
pub use series::{
    bin_deliveries, bin_deliveries_streaming, bin_probe_count, bin_probe_mean, bin_transmissions,
    bin_transmissions_streaming, BinSpec,
};
pub use spark::{downsample, spark_row, sparkline};
pub use stats::{cdf, mean, percentile, Summary};
pub use table::Table;
