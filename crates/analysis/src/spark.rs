//! Tiny ASCII/Unicode sparklines so the figure harnesses can *show* the
//! binned time series in a terminal, not just summarize them — the
//! closest a text interface gets to the paper's traffic plots.

/// Unicode block ramp used for sparklines.
const RAMP: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Renders a series as a one-line sparkline scaled to `max` (pass the
/// shared maximum when comparing several series on one scale).  Empty
/// input renders as an empty string; a zero `max` renders all-low.
pub fn sparkline(series: &[f64], max: f64) -> String {
    series
        .iter()
        .map(|&v| {
            if max <= 0.0 {
                RAMP[0]
            } else {
                let t = (v / max).clamp(0.0, 1.0);
                RAMP[((t * (RAMP.len() - 1) as f64).round()) as usize]
            }
        })
        .collect()
}

/// Downsamples a series to at most `width` points by bucket-averaging, so
/// long runs fit a terminal row.
pub fn downsample(series: &[f64], width: usize) -> Vec<f64> {
    assert!(width > 0, "width must be positive");
    if series.len() <= width {
        return series.to_vec();
    }
    let mut out = Vec::with_capacity(width);
    for b in 0..width {
        let lo = b * series.len() / width;
        let hi = ((b + 1) * series.len() / width).max(lo + 1);
        let slice = &series[lo..hi];
        out.push(slice.iter().sum::<f64>() / slice.len() as f64);
    }
    out
}

/// Convenience: label + downsampled sparkline + max annotation, one line.
pub fn spark_row(label: &str, series: &[f64], shared_max: f64, width: usize) -> String {
    let ds = downsample(series, width);
    format!(
        "{label:<26} {} (peak {:.2})",
        sparkline(&ds, shared_max),
        series.iter().copied().fold(0.0, f64::max)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_maps_extremes() {
        let s = sparkline(&[0.0, 1.0], 1.0);
        let chars: Vec<char> = s.chars().collect();
        assert_eq!(chars[0], RAMP[0]);
        assert_eq!(chars[1], RAMP[7]);
    }

    #[test]
    fn sparkline_clamps_above_max() {
        let s = sparkline(&[5.0], 1.0);
        assert_eq!(s.chars().next().unwrap(), RAMP[7]);
    }

    #[test]
    fn zero_max_renders_low() {
        let s = sparkline(&[0.0, 0.0], 0.0);
        assert!(s.chars().all(|c| c == RAMP[0]));
    }

    #[test]
    fn empty_series_is_empty() {
        assert_eq!(sparkline(&[], 1.0), "");
    }

    #[test]
    fn downsample_averages_buckets() {
        let series: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let ds = downsample(&series, 10);
        assert_eq!(ds.len(), 10);
        // Each bucket of 10 consecutive ints averages to its midpoint.
        assert!((ds[0] - 4.5).abs() < 1e-9);
        assert!((ds[9] - 94.5).abs() < 1e-9);
        // Monotone input stays monotone.
        for w in ds.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn downsample_short_input_passthrough() {
        let s = [1.0, 2.0];
        assert_eq!(downsample(&s, 10), s.to_vec());
    }

    #[test]
    fn spark_row_contains_label_and_peak() {
        let row = spark_row("SRM", &[0.0, 3.0, 1.0], 3.0, 20);
        assert!(row.starts_with("SRM"));
        assert!(row.contains("peak 3.00"));
    }

    #[test]
    #[should_panic(expected = "width")]
    fn zero_width_rejected() {
        downsample(&[1.0], 0);
    }
}
