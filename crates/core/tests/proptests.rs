//! Property-based tests for the injection-policy layer: under arbitrary
//! interleavings of loss evidence (ZLC measurements, NACKs, seat
//! changes), no policy ever asks to inject more than the group size, and
//! predictions stay finite.  This is the trait-level counterpart of the
//! auditor's `chosen h ≤ group_size` invariant on `PolicyDecision`
//! probes.

use proptest::prelude::*;
use sharqfec::{
    EwmaPolicy, InjectionPolicy, OptimizingPolicy, PercentilePolicy, PolicyConfig, PolicyKind,
};

const LEVELS: usize = 3;

/// One step of evidence or decision traffic fed to a policy.
#[derive(Clone, Debug)]
enum Step {
    Measure { level: usize, observed: f64 },
    Nack { level: usize, needed: u32 },
    Seat { level: usize, is_zcr: bool },
    Decide { level: usize, group_size: u32 },
}

fn step() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0..LEVELS, 0.0f64..64.0).prop_map(|(level, observed)| Step::Measure { level, observed }),
        (0..LEVELS, 0u32..64).prop_map(|(level, needed)| Step::Nack { level, needed }),
        (0..LEVELS, any::<bool>()).prop_map(|(level, is_zcr)| Step::Seat { level, is_zcr }),
        (0..LEVELS, 1u32..64).prop_map(|(level, group_size)| Step::Decide { level, group_size }),
    ]
}

/// Every configurable policy, spanning the constructor parameter space.
fn policies() -> impl Strategy<Value = Box<dyn InjectionPolicy>> {
    prop_oneof![
        (0.01f64..1.0, 0.0f64..8.0).prop_map(|(gain, init)| {
            Box::new(EwmaPolicy::new(gain, init, LEVELS)) as Box<dyn InjectionPolicy>
        }),
        (0.0f64..1.0, 1usize..48, 0.0f64..8.0).prop_map(|(q, window, init)| {
            Box::new(PercentilePolicy::new(q, window, init, LEVELS)) as Box<dyn InjectionPolicy>
        }),
        (0.0f64..1.0, 1usize..48, 0u32..32, 0u32..8).prop_map(|(target, window, max_h, init)| {
            Box::new(OptimizingPolicy::new(target, window, max_h, init, LEVELS))
                as Box<dyn InjectionPolicy>
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// No policy, under any evidence history, injects more than the
    /// group size it was asked about, and its prediction stays finite.
    #[test]
    fn injected_never_exceeds_group_size(
        mut policy in policies(),
        steps in proptest::collection::vec(step(), 0..80),
    ) {
        for s in &steps {
            match *s {
                Step::Measure { level, observed } => policy.on_zlc_measurement(level, observed),
                Step::Nack { level, needed } => policy.on_nack(level, needed),
                Step::Seat { level, is_zcr } => policy.on_seat_change(level, is_zcr),
                Step::Decide { level, group_size } => {
                    let h = policy.injected(level, group_size);
                    prop_assert!(
                        h <= group_size as usize,
                        "{} injected {h} > group_size {group_size}",
                        policy.name()
                    );
                }
            }
            for level in 0..LEVELS {
                let p = policy.predicted(level);
                prop_assert!(p.is_finite(), "{} produced non-finite prediction {p}", policy.name());
            }
        }
    }

    /// The named-policy constructors honour the same bound: a policy
    /// built from any `PolicyConfig` never overshoots the group.
    #[test]
    fn named_policies_respect_the_bound(
        name_idx in 0usize..3,
        observations in proptest::collection::vec(0.0f64..128.0, 1..40),
        group_size in 1u32..64,
    ) {
        let cfg = PolicyConfig::named(["ewma", "percentile", "optimizing"][name_idx])
            .expect("known policy");
        prop_assert!(matches!(
            cfg.kind,
            PolicyKind::Ewma { .. } | PolicyKind::Percentile { .. } | PolicyKind::Optimizing { .. }
        ));
        let mut policy = cfg.build(LEVELS);
        for (i, &obs) in observations.iter().enumerate() {
            policy.on_zlc_measurement(i % LEVELS, obs);
            let h = policy.injected(i % LEVELS, group_size);
            prop_assert!(
                h <= group_size as usize,
                "{} injected {h} > group_size {group_size}",
                policy.name()
            );
        }
    }
}
