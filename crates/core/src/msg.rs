//! SHARQFEC wire messages.

use sharqfec_netsim::{Classify, TrafficClass};
use sharqfec_scoping::ZoneId;
use sharqfec_session::{AncestorEntry, SessionMsg};

/// SHARQFEC packets.  Within a group, packet indices `0..k` are original
/// data and indices `>= k` are FEC packets; *any* `k` distinct indices
/// reconstruct the group, which is why [`SfMsg::Nack`] carries a count.
#[derive(Clone, Debug)]
pub enum SfMsg {
    /// Original data packet `idx` (`0..k`) of `group`.
    Data {
        /// Group sequence number.
        group: u32,
        /// Packet index within the group.
        idx: u32,
        /// Data packets in this group (`k`); the tail group may be short.
        /// Advertised in-band so receivers can detect completion.
        k: u32,
    },
    /// FEC packet for `group` with unique index `idx >= k`.  Sent by the
    /// source (initial redundancy), by ZCRs (preemptive injection), and by
    /// repairers (on request).
    Fec {
        /// Group sequence number.
        group: u32,
        /// Packet index (unique within the group across all repairers via
        /// the max-identifier rule).
        idx: u32,
        /// Data packets in this group.
        k: u32,
        /// "What will be the new highest packet identifier" (paper §4):
        /// the sender of this repair is pacing a burst through this index,
        /// so hearing one packet cancels the whole promised burst at other
        /// would-be repairers and reserves the identifier range.
        burst_end: u32,
    },
    /// Count-based repair request (paper §4): "the NACK now indicates how
    /// many additional FEC packets are needed to complete the group and
    /// not the identity of an individual packet."
    Nack {
        /// Group sequence number.
        group: u32,
        /// Zone scope this NACK is addressed to.
        zone: ZoneId,
        /// Sender's Local Loss Count — becomes the zone's new ZLC.
        llc: u32,
        /// FEC packets needed to complete the group.
        needed: u32,
        /// Greatest packet identifier the sender has seen for this group
        /// (lets hearers detect losses they did not notice, and repairers
        /// avoid duplicating identifiers).
        max_idx: u32,
        /// Sender's ancestor-ZCR distances, so hearers can estimate their
        /// RTT to it for reply suppression (paper §5).
        chain: Vec<AncestorEntry>,
    },
    /// Embedded session-protocol message.
    Session(SessionMsg),
}

impl Classify for SfMsg {
    fn class(&self) -> TrafficClass {
        match self {
            SfMsg::Data { .. } => TrafficClass::Data,
            SfMsg::Fec { .. } => TrafficClass::Repair,
            SfMsg::Nack { .. } => TrafficClass::Nack,
            SfMsg::Session(SessionMsg::Announce(_)) => TrafficClass::Session,
            SfMsg::Session(_) => TrafficClass::Control,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_follow_the_papers_loss_rules() {
        // Data and FEC repairs are lossy; NACKs and session are not.
        assert!(SfMsg::Data {
            group: 0,
            idx: 0,
            k: 16
        }
        .class()
        .lossy());
        assert!(SfMsg::Fec {
            group: 0,
            idx: 16,
            k: 16,
            burst_end: 16
        }
        .class()
        .lossy());
        assert!(!SfMsg::Nack {
            group: 0,
            zone: ZoneId(0),
            llc: 1,
            needed: 1,
            max_idx: 15,
            chain: vec![],
        }
        .class()
        .lossy());
    }
}
