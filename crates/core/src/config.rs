//! SHARQFEC configuration and the §6.2 ablation ladder.

use crate::policy::PolicyConfig;
use sharqfec_netsim::{SimDuration, SimTime};
use sharqfec_session::SessionConfig;

/// The protocol variants the paper evaluates (its figures annotate
/// `ns` = no scoping, `ni` = no injection, `so` = sender-only repairs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Variant {
    /// Full SHARQFEC: scoping + injection + receiver repairs.
    Full,
    /// `SHARQFEC(ni)`: scoping, receiver repairs, no preemptive injection.
    NoInjection,
    /// `SHARQFEC(ns)`: no scoping; source injection + receiver repairs.
    NoScoping,
    /// `SHARQFEC(ns,ni)`: no scoping, no injection, receiver repairs.
    NoScopingNoInjection,
    /// `SHARQFEC(ns,ni,so)`: the paper's ECSRM-equivalent — reactive FEC
    /// from the sender only.
    Ecsrm,
}

impl Variant {
    /// The paper's figure annotation for this variant.
    pub fn label(self) -> &'static str {
        match self {
            Variant::Full => "SHARQFEC",
            Variant::NoInjection => "SHARQFEC(ni)",
            Variant::NoScoping => "SHARQFEC(ns)",
            Variant::NoScopingNoInjection => "SHARQFEC(ns,ni)",
            Variant::Ecsrm => "SHARQFEC(ns,ni,so)/ECSRM",
        }
    }
}

/// Full parameter set for a SHARQFEC run.  Defaults reproduce the paper's
/// §6.2 workload and §4 constants.
#[derive(Clone, Debug)]
pub struct SharqfecConfig {
    // ---- workload (paper §6.2) ----
    /// Total data packets in the stream (paper: 1024).
    pub total_packets: u32,
    /// Data/FEC packet size in bytes (paper: 1000).
    pub packet_bytes: u32,
    /// NACK base size in bytes (ancestor-chain entries add 12 B each).
    pub nack_bytes: u32,
    /// CBR inter-packet interval (paper: 10 ms = 800 kbit/s).
    pub send_interval: SimDuration,
    /// When the source starts sending (paper: t = 6 s).
    pub data_start: SimTime,
    /// Data packets per group (paper: 16).
    pub group_size: u32,
    /// First sequence this source sends fresh (default 0).  A standby
    /// source taking over mid-stream (scenario sender handoff) is seeded
    /// with the count of sequences the retired sender already put on the
    /// wire, so the stream continues without gap or overlap; it can still
    /// *repair* any earlier sequence from its warm-replica history.
    pub first_seq: u32,

    // ---- feature switches (ablations) ----
    /// Administrative scoping (`false` ⇒ the `ns` variants: one global
    /// zone).
    pub scoping: bool,
    /// Receivers repair their peers (`false` ⇒ the `so` variant: sender
    /// only).
    pub receiver_repairs: bool,

    // ---- injection policy ----
    /// How preemptive FEC injection is sized: predictor selection and
    /// parameters (`policy.enabled = false` ⇒ the `ni` variants).
    pub policy: PolicyConfig,

    // ---- timers (paper §4) ----
    /// Request window start factor (paper: C1 = 2).
    pub c1: f64,
    /// Request window width factor (paper: C2 = 2).
    pub c2: f64,
    /// Reply window start factor (paper: D1 = 1).
    pub d1: f64,
    /// Reply window width factor (paper: D2 = 1); no reply backoff.
    pub d2: f64,
    /// Cap on the request backoff exponent `i`.
    pub max_backoff: u32,
    /// NACK attempts per zone before escalating scope (paper: 2).
    pub attempts_per_zone: u32,
    /// §7 future-work extension: adapt C1/C2 per receiver from observed
    /// duplicate NACKs and recovery delay (SRM §V structure).  Off by
    /// default — the paper's evaluation uses fixed timers.
    pub adaptive_timers: bool,

    /// Fallback one-way distance used for timers before the session has
    /// produced an estimate.
    pub default_dist: SimDuration,
    /// Session-protocol constants.
    pub session: SessionConfig,
}

impl Default for SharqfecConfig {
    fn default() -> SharqfecConfig {
        SharqfecConfig {
            total_packets: 1024,
            packet_bytes: 1000,
            nack_bytes: 40,
            send_interval: SimDuration::from_millis(10),
            data_start: SimTime::from_secs(6),
            group_size: 16,
            first_seq: 0,
            scoping: true,
            receiver_repairs: true,
            c1: 2.0,
            c2: 2.0,
            d1: 1.0,
            d2: 1.0,
            max_backoff: 8,
            attempts_per_zone: 2,
            adaptive_timers: false,
            policy: PolicyConfig::default(),
            default_dist: SimDuration::from_millis(50),
            session: SessionConfig::default(),
        }
    }
}

impl SharqfecConfig {
    /// Configuration for a named variant.
    pub fn variant(v: Variant) -> SharqfecConfig {
        let mut c = SharqfecConfig::default();
        match v {
            Variant::Full => {}
            Variant::NoInjection => {
                c.policy.enabled = false;
            }
            Variant::NoScoping => {
                c.scoping = false;
            }
            Variant::NoScopingNoInjection => {
                c.scoping = false;
                c.policy.enabled = false;
            }
            Variant::Ecsrm => {
                c.scoping = false;
                c.policy.enabled = false;
                c.receiver_repairs = false;
            }
        }
        c
    }

    /// Full SHARQFEC.
    pub fn full() -> SharqfecConfig {
        Self::variant(Variant::Full)
    }

    /// `SHARQFEC(ni)`.
    pub fn ni() -> SharqfecConfig {
        Self::variant(Variant::NoInjection)
    }

    /// `SHARQFEC(ns)`.
    pub fn ns() -> SharqfecConfig {
        Self::variant(Variant::NoScoping)
    }

    /// `SHARQFEC(ns,ni)`.
    pub fn ns_ni() -> SharqfecConfig {
        Self::variant(Variant::NoScopingNoInjection)
    }

    /// `SHARQFEC(ns,ni,so)` — the ECSRM-equivalent baseline.
    pub fn ecsrm() -> SharqfecConfig {
        Self::variant(Variant::Ecsrm)
    }

    /// Number of groups in the stream (last group may be short).
    pub fn group_count(&self) -> u32 {
        self.total_packets.div_ceil(self.group_size)
    }

    /// Data packets in group `g` (the tail group may be shorter).
    pub fn packets_in_group(&self, g: u32) -> u32 {
        let start = g * self.group_size;
        (self.total_packets - start).min(self.group_size)
    }

    /// Number of fresh sequences a source on this schedule has sent
    /// strictly before `t` — sends happen at `data_start + s·interval`,
    /// and a send scheduled exactly at `t` has not yet fired.  This is
    /// the `first_seq` to give a standby taking over at `t`: the retiring
    /// sender's send timer at the handoff instant dies with its crash
    /// epoch, so the standby's first send replaces it seamlessly.
    pub fn seqs_sent_before(&self, t: SimTime) -> u32 {
        let dt = t.saturating_since(self.data_start);
        let sent = dt.0.div_ceil(self.send_interval.0);
        sent.min(self.total_packets as u64) as u32
    }

    /// Validates invariants.
    ///
    /// # Panics
    ///
    /// Panics with a description of the violated invariant.
    pub fn validate(&self) {
        assert!(self.total_packets > 0, "need at least one packet");
        assert!(self.group_size > 0, "group size must be positive");
        assert!(
            self.group_size as usize <= sharqfec_fec::MAX_GROUP,
            "group size exceeds the GF(256) erasure-code limit"
        );
        assert!(self.packet_bytes > 0, "packets must have a size");
        assert!(
            self.c1 > 0.0 && self.c2 >= 0.0 && self.d1 > 0.0 && self.d2 >= 0.0,
            "timer factors must be positive"
        );
        assert!(
            self.attempts_per_zone >= 1,
            "need at least one attempt per zone"
        );
        assert!(
            self.send_interval > SimDuration::ZERO,
            "CBR interval must be positive"
        );
        assert!(
            self.first_seq <= self.total_packets,
            "first_seq must not pass the end of the stream"
        );
        self.policy.validate();
        self.session.validate();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyKind;

    #[test]
    fn defaults_match_the_paper() {
        let c = SharqfecConfig::default();
        c.validate();
        assert_eq!(c.total_packets, 1024);
        assert_eq!(c.group_size, 16);
        assert_eq!(c.group_count(), 64);
        assert_eq!((c.c1, c.c2, c.d1, c.d2), (2.0, 2.0, 1.0, 1.0));
        let p = &c.policy;
        assert!(p.enabled);
        assert_eq!(p.measure_rtt_factor, 2.5);
        assert_eq!(
            p.kind,
            PolicyKind::Ewma {
                gain: 0.25,
                initial_pred: 1.0
            }
        );
        assert_eq!(c.attempts_per_zone, 2);
    }

    #[test]
    fn variant_ladder_flags() {
        let injection = |c: &SharqfecConfig| c.policy.enabled;
        assert!(SharqfecConfig::full().scoping);
        assert!(injection(&SharqfecConfig::full()));
        assert!(SharqfecConfig::full().receiver_repairs);

        let ecsrm = SharqfecConfig::ecsrm();
        assert!(!ecsrm.scoping && !injection(&ecsrm) && !ecsrm.receiver_repairs);

        let ns = SharqfecConfig::ns();
        assert!(!ns.scoping && injection(&ns) && ns.receiver_repairs);

        let ni = SharqfecConfig::ni();
        assert!(ni.scoping && !injection(&ni) && ni.receiver_repairs);

        let ns_ni = SharqfecConfig::ns_ni();
        assert!(!ns_ni.scoping && !injection(&ns_ni) && ns_ni.receiver_repairs);
    }

    #[test]
    fn explicit_policy_overrides_are_preserved() {
        let c = SharqfecConfig {
            policy: crate::policy::PolicyConfig::optimizing(),
            ..SharqfecConfig::default()
        };
        assert_eq!(c.policy.name(), "optimizing");
        assert!(c.policy.enabled);
        c.validate();
    }

    #[test]
    fn variant_labels_match_figures() {
        assert_eq!(Variant::Full.label(), "SHARQFEC");
        assert_eq!(Variant::Ecsrm.label(), "SHARQFEC(ns,ni,so)/ECSRM");
        assert_eq!(Variant::NoScoping.label(), "SHARQFEC(ns)");
    }

    #[test]
    fn tail_group_arithmetic() {
        let c = SharqfecConfig {
            total_packets: 20,
            group_size: 16,
            ..SharqfecConfig::default()
        };
        assert_eq!(c.group_count(), 2);
        assert_eq!(c.packets_in_group(0), 16);
        assert_eq!(c.packets_in_group(1), 4);
    }

    #[test]
    fn handoff_seq_arithmetic() {
        let c = SharqfecConfig::default(); // data_start 6 s, 10 ms interval
        assert_eq!(c.first_seq, 0, "plain sources start at the beginning");
        assert_eq!(c.seqs_sent_before(SimTime::from_secs(6)), 0);
        // At exactly 6 s + 40 ms the send of seq 4 has not fired yet.
        assert_eq!(c.seqs_sent_before(SimTime::from_millis(6040)), 4);
        assert_eq!(c.seqs_sent_before(SimTime::from_millis(6045)), 5);
        assert_eq!(c.seqs_sent_before(SimTime::from_secs(3)), 0, "before start");
        // Past the stream end the count saturates at the stream length.
        assert_eq!(c.seqs_sent_before(SimTime::from_secs(1000)), 1024);
        let bad = SharqfecConfig {
            first_seq: 2000,
            ..SharqfecConfig::default()
        };
        let err = std::panic::catch_unwind(move || bad.validate());
        assert!(err.is_err(), "first_seq past the stream is rejected");
    }

    #[test]
    #[should_panic(expected = "group size")]
    fn zero_group_size_rejected() {
        SharqfecConfig {
            group_size: 0,
            ..SharqfecConfig::default()
        }
        .validate();
    }
}
