//! Assembling a SHARQFEC simulation over a built topology.

use crate::agent::{Role, SfAgent};
use crate::config::SharqfecConfig;
use crate::msg::SfMsg;
use sharqfec_netsim::{ChannelId, Engine, EngineBuilder, NodeId, ScenarioPlan, SimTime};
use sharqfec_scoping::{ZoneHierarchy, ZoneHierarchyBuilder};
use sharqfec_session::core::{SessionCore, ZcrSeeding};
use sharqfec_topology::BuiltTopology;
use std::sync::Arc;

/// The engine channels `node` belongs to, smallest zone first, ending at
/// the root/data channel.
///
/// [`setup_sharqfec_builder`] registers one channel per zone *in zone
/// order*, so `ChannelId(i)` is exactly zone `i`'s channel.  Scenario
/// plans (joins, leaves, flash crowds) need that mapping to name the
/// channels a node enters or exits; this helper is the one place that
/// encodes it.  Pass the same hierarchy the setup used — for scoped
/// configs that is `built.hierarchy`; the `ns` variants collapse to a
/// single root zone whose channel is `ChannelId(0)`.
pub fn member_channels(hier: &ZoneHierarchy, node: NodeId) -> Vec<ChannelId> {
    hier.zone_chain(node)
        .into_iter()
        .map(|z| ChannelId(z.idx() as u32))
        .collect()
}

/// Assembles a fully-populated [`EngineBuilder`] for a SHARQFEC scenario:
/// one channel per zone (zone order, so the root zone's channel is also
/// the data channel), one [`SfAgent`] per member joining at `join_at`.
///
/// Harnesses that need more than the defaults — a streaming recorder, a
/// fault plan — set those on the returned builder before calling
/// [`EngineBuilder::build`].
pub fn setup_sharqfec_builder(
    built: &BuiltTopology,
    seed: u64,
    cfg: SharqfecConfig,
    join_at: SimTime,
) -> EngineBuilder<SfMsg> {
    setup_sharqfec_scenario_builder(built, seed, cfg, join_at, ScenarioPlan::new(), None)
}

/// [`setup_sharqfec_builder`] plus a declarative workload scenario.
///
/// The `plan` is handed to the engine builder verbatim: members the plan
/// joins later are stripped from the initial channel lists, leaves/rejoins
/// become crash/restart faults, and start overrides replace `join_at` for
/// the named nodes (see `sharqfec_netsim::scenario`).
///
/// `standby` names a node that takes over the stream at a sender handoff
/// (the plan must contain a matching [`ScenarioPlan::handoff`], whose
/// start override tells us the handoff instant).  That node's agent is
/// built as a *warm-replica source*: `Role::Source` with
/// [`SharqfecConfig::first_seq`] set to the count of sequences the
/// retiring sender has already put on the wire, and the original
/// `data_start` kept so its first send lands exactly on the handoff
/// instant — replacing the send the retiring sender's crash cancelled.
/// A warm standby is already a member of its zone channels, so the
/// handoff should be declared with empty `to_channels` (re-joining a
/// node that forwards for a subtree would strip it from the initial
/// membership and sever the subtree until the handoff).
///
/// # Panics
///
/// Panics if `standby` names the configured source, a node outside the
/// session, or a node the plan gives no start override.
pub fn setup_sharqfec_scenario_builder(
    built: &BuiltTopology,
    seed: u64,
    cfg: SharqfecConfig,
    join_at: SimTime,
    plan: ScenarioPlan,
    standby: Option<NodeId>,
) -> EngineBuilder<SfMsg> {
    cfg.validate();
    let standby_cfg = standby.map(|n| {
        assert_ne!(n, built.source, "standby must differ from the source");
        assert!(
            built.members().contains(&n),
            "standby {n} is not a session member"
        );
        let t = plan
            .start_override(n)
            .expect("standby needs a scenario start override (ScenarioPlan::handoff)");
        let mut c = cfg.clone();
        c.first_seq = cfg.seqs_sent_before(t);
        (n, c)
    });
    let (hierarchy, zcrs): (ZoneHierarchy, Vec<NodeId>) = if cfg.scoping {
        (built.hierarchy.clone(), built.designed_zcrs.clone())
    } else {
        let mut b = ZoneHierarchyBuilder::new(built.topology.node_count());
        b.root(&built.members());
        (
            b.build().expect("single root zone is always valid"),
            vec![built.source],
        )
    };
    let hier = Arc::new(hierarchy);

    let mut builder: EngineBuilder<SfMsg> = EngineBuilder::new(built.topology.clone(), seed);
    let channels: Vec<ChannelId> = hier
        .zones()
        .iter()
        .map(|z| builder.add_channel(&z.members))
        .collect();
    let channels = Arc::new(channels);
    let seeding = ZcrSeeding::Designed(zcrs);

    for member in built.members() {
        let (role, agent_cfg) = if member == built.source {
            (Role::Source, cfg.clone())
        } else {
            match &standby_cfg {
                Some((n, c)) if *n == member => (Role::Source, c.clone()),
                _ => (Role::Receiver, cfg.clone()),
            }
        };
        let session = SessionCore::new(member, Arc::clone(&hier), cfg.session.clone(), &seeding);
        let agent = SfAgent::new(
            agent_cfg,
            role,
            session,
            Arc::clone(&hier),
            Arc::clone(&channels),
            built.source,
        );
        builder.add_agent_at(member, Box::new(agent), join_at);
    }
    builder.scenario(plan);
    builder
}

/// Builds a ready-to-run SHARQFEC simulation.
///
/// With `cfg.scoping` the zone hierarchy and by-design ZCRs of the built
/// topology are used; without it (`ns` variants) the hierarchy collapses
/// to a single maximum-scope zone whose representative is the source —
/// which is exactly what "no administrative scoping" means operationally.
///
/// One engine channel is registered per zone; the root zone's channel is
/// also the data channel.  Members join at `join_at` (the paper uses
/// t = 1 s, five seconds before data starts, so session state stabilises).
pub fn setup_sharqfec_sim(
    built: &BuiltTopology,
    seed: u64,
    cfg: SharqfecConfig,
    join_at: SimTime,
) -> Engine<SfMsg> {
    setup_sharqfec_builder(built, seed, cfg, join_at).build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sharqfec_netsim::RunSpec;
    use sharqfec_netsim::TrafficClass;
    use sharqfec_topology::{chain, figure10, Figure10Params};

    fn small_cfg(mut cfg: SharqfecConfig) -> SharqfecConfig {
        cfg.total_packets = 64;
        cfg
    }

    #[test]
    fn lossless_run_completes_without_nacks() {
        let built = chain(4);
        let cfg = small_cfg(SharqfecConfig::full());
        let mut engine = setup_sharqfec_sim(&built, 1, cfg, SimTime::from_secs(1));
        engine.advance(RunSpec::to(SimTime::from_secs(60)));
        for &r in &built.receivers {
            let a = engine.agent::<SfAgent>(r).unwrap();
            assert!(
                a.complete(),
                "receiver {r} incomplete: {} missing",
                a.missing()
            );
        }
        let nacks = engine
            .recorder()
            .transmissions
            .iter()
            .filter(|t| t.class == TrafficClass::Nack)
            .count();
        assert_eq!(nacks, 0, "lossless run should never NACK");
    }

    #[test]
    fn full_sharqfec_recovers_figure10_losses() {
        let built = figure10(&Figure10Params::default());
        let cfg = small_cfg(SharqfecConfig::full());
        let mut engine = setup_sharqfec_sim(&built, 42, cfg, SimTime::from_secs(1));
        engine.advance(RunSpec::to(SimTime::from_secs(120)));
        let mut missing = 0u32;
        for &r in &built.receivers {
            missing += engine.agent::<SfAgent>(r).unwrap().missing();
        }
        assert_eq!(missing, 0, "{missing} packets unrecovered across receivers");
        // Real repair work must have happened at ~13-28% loss.
        assert!(engine
            .recorder()
            .transmissions
            .iter()
            .any(|t| t.class == TrafficClass::Repair));
    }

    #[test]
    fn every_ablation_variant_recovers() {
        use crate::config::Variant;
        let built = figure10(&Figure10Params::default());
        for v in [
            Variant::Ecsrm,
            Variant::NoScopingNoInjection,
            Variant::NoScoping,
            Variant::NoInjection,
            Variant::Full,
        ] {
            let cfg = small_cfg(SharqfecConfig::variant(v));
            let mut engine = setup_sharqfec_sim(&built, 7, cfg, SimTime::from_secs(1));
            engine.advance(RunSpec::to(SimTime::from_secs(180)));
            let missing: u32 = built
                .receivers
                .iter()
                .map(|&r| engine.agent::<SfAgent>(r).unwrap().missing())
                .sum();
            assert_eq!(
                missing,
                0,
                "{} left {missing} packets unrecovered",
                v.label()
            );
        }
    }

    #[test]
    fn scoping_localizes_repairs() {
        // Intra-tree link losses are identical across trees, so the
        // localization benefit shows up (as in the paper's Figures 20-21)
        // at the source and in what the clean trees are spared, not as a
        // per-tree skew.  Compare full SHARQFEC against the non-scoped
        // variant on identical seeds.
        let built = figure10(&Figure10Params::default());
        let run = |scoped: bool| {
            let cfg = small_cfg(if scoped {
                SharqfecConfig::full()
            } else {
                SharqfecConfig::ns()
            });
            let mut engine = setup_sharqfec_sim(&built, 11, cfg, SimTime::from_secs(1));
            engine.advance(RunSpec::to(SimTime::from_secs(120)));
            let missing: u32 = built
                .receivers
                .iter()
                .map(|&r| engine.agent::<SfAgent>(r).unwrap().missing())
                .sum();
            assert_eq!(missing, 0, "run(scoped={scoped}) failed to recover");
            let source_sees = engine
                .recorder()
                .deliveries
                .iter()
                .filter(|d| {
                    d.node == built.source
                        && matches!(d.class, TrafficClass::Repair | TrafficClass::Nack)
                })
                .count();
            let clean_tree_repairs = engine
                .recorder()
                .deliveries
                .iter()
                .filter(|d| {
                    d.class == TrafficClass::Repair
                        && d.node.0 >= 1
                        && (d.node.0 as usize - 1) / 16 == 5 // least-loss tree
                })
                .count();
            (source_sees, clean_tree_repairs)
        };
        let (src_scoped, clean_scoped) = run(true);
        let (src_unscoped, clean_unscoped) = run(false);
        // The source must be insulated from localized recovery traffic…
        assert!(
            (src_scoped as f64) < 0.7 * src_unscoped as f64,
            "scoping should shield the source: scoped={src_scoped} unscoped={src_unscoped}"
        );
        // …and the cleanest tree must carry less repair traffic than when
        // every repair is global.
        assert!(
            (clean_scoped as f64) < clean_unscoped as f64,
            "clean tree should be spared: scoped={clean_scoped} unscoped={clean_unscoped}"
        );
    }

    #[test]
    fn zlc_measurement_defers_until_rtt_known() {
        // Startup-ordering regression: with a short `default_dist`, the
        // source's first ZLC measurement timer — armed off the
        // `default_dist * 2` fallback because no RTT is known yet — fires
        // before the stream's first NACK can possibly arrive.  It used to
        // fold `zone_needed = 0` into the EWMA and mark the level
        // measured, so the prediction decayed to 0.75 and the zone's real
        // repair demand never fed it.  The measurement must instead defer
        // until the session has an RTT estimate (bounded), by which time
        // the receiver's NACK has established the true demand.
        use sharqfec_netsim::prelude::{FaultEvent, FaultPlan, LossModel};
        use sharqfec_netsim::{LinkId, SimDuration};
        let built = chain(2);
        let mut cfg = small_cfg(SharqfecConfig::full());
        cfg.total_packets = 16; // one group
        cfg.data_start = SimTime::from_millis(10);
        cfg.send_interval = SimDuration::from_millis(1);
        cfg.default_dist = SimDuration::from_millis(1); // fallback: 5 ms
        let plan = FaultPlan::new()
            .at(
                SimTime::ZERO,
                FaultEvent::SetLoss(LinkId(0), LossModel::bernoulli(1.0)),
            )
            .at(
                SimTime::from_millis(18),
                FaultEvent::SetLoss(LinkId(0), LossModel::bernoulli(0.0)),
            );
        let mut builder = setup_sharqfec_builder(&built, 3, cfg, SimTime::ZERO);
        builder.fault_plan(plan);
        let mut engine = builder.build();
        engine.advance(RunSpec::to(SimTime::from_secs(30)));
        let src = engine.agent::<SfAgent>(built.source).unwrap();
        // The root-level prediction must reflect the NACKed demand (many
        // lost packets folded at gain 0.25 from an initial 1.0), not the
        // decayed 0.75 a premature measurement would produce.
        assert!(
            src.zlc_prediction(0) > 1.0,
            "ZLC prediction fed before the first repair round settled: {}",
            src.zlc_prediction(0)
        );
        let rx = engine.agent::<SfAgent>(built.receivers[0]).unwrap();
        assert!(rx.complete(), "receiver should still recover fully");
    }

    #[test]
    fn probe_recording_never_perturbs_the_simulation() {
        // Tentpole acceptance: probes are observation only.  The same
        // scenario with recording (and the auditor) on and off must
        // produce identical traffic traces.
        use sharqfec_netsim::prelude::AuditConfig;
        let built = figure10(&Figure10Params::default());
        let run = |probes: bool| {
            let cfg = small_cfg(SharqfecConfig::full());
            let mut builder = setup_sharqfec_builder(&built, 42, cfg, SimTime::from_secs(1));
            if probes {
                builder.audit(AuditConfig::default());
            }
            let mut engine = builder.build();
            engine.advance(RunSpec::to(SimTime::from_secs(60)));
            (
                engine.recorder().transmissions.clone(),
                engine.recorder().deliveries.clone(),
                engine.recorder().drops.clone(),
            )
        };
        let (tx_off, rx_off, drop_off) = run(false);
        let (tx_on, rx_on, drop_on) = run(true);
        assert_eq!(tx_off, tx_on, "transmissions diverged with probes on");
        assert_eq!(rx_off, rx_on, "deliveries diverged with probes on");
        assert_eq!(drop_off, drop_on, "drops diverged with probes on");
    }

    #[test]
    fn audited_figure10_run_reports_no_violations() {
        use sharqfec_netsim::prelude::AuditConfig;
        let built = figure10(&Figure10Params::default());
        let cfg = small_cfg(SharqfecConfig::full());
        let mut builder = setup_sharqfec_builder(&built, 42, cfg, SimTime::from_secs(1));
        builder.audit(AuditConfig::default());
        let mut engine = builder.build();
        engine.advance(RunSpec::to(SimTime::from_secs(120)));
        assert!(
            !engine.probe_records().is_empty(),
            "an audited run must record probe events"
        );
        let report = engine.audit_report().expect("auditor attached");
        assert!(
            report.ok(),
            "invariant violations in a healthy run: {}",
            report.summary()
        );
    }

    #[test]
    fn member_channels_match_setup_registration_order() {
        let built = figure10(&Figure10Params::default());
        let hier = &built.hierarchy;
        for member in built.members() {
            let chans = member_channels(hier, member);
            assert!(!chans.is_empty(), "{member} belongs to no channel");
            // Smallest zone first, root (the data channel) last.
            assert_eq!(
                chans.first().copied().unwrap(),
                ChannelId(hier.smallest_zone(member).idx() as u32)
            );
            for &c in &chans {
                assert!(
                    hier.zones()[c.idx()].members.contains(&member),
                    "{member} mapped to channel {c:?} of a zone it is not in"
                );
            }
        }
    }

    #[test]
    fn sender_handoff_completes_the_stream_with_one_active_sender() {
        // The retiring sender crashes at the handoff instant; the warm
        // standby — built as a Role::Source with `first_seq` — takes over
        // on the very send slot the crash cancelled.  Receivers must
        // complete and the single-sender audit must stay clean.
        use sharqfec_netsim::prelude::AuditConfig;
        use sharqfec_netsim::TrafficClass;
        let built = chain(4);
        let standby = built.receivers[2]; // leaf: never forwards for others
        let mut cfg = small_cfg(SharqfecConfig::full());
        cfg.total_packets = 64;
        // 6 s data start + 10 ms interval: handoff lands exactly on the
        // send slot of seq 20.
        let handoff_at = SimTime::from_millis(6200);
        assert_eq!(cfg.seqs_sent_before(handoff_at), 20);
        let plan = ScenarioPlan::new().handoff(handoff_at, built.source, standby, &[]);
        let mut builder = setup_sharqfec_scenario_builder(
            &built,
            9,
            cfg,
            SimTime::from_secs(1),
            plan,
            Some(standby),
        );
        builder.audit(AuditConfig::default());
        let mut engine = builder.build();
        engine.advance(sharqfec_netsim::RunSpec::to(SimTime::from_secs(120)));

        for &r in &built.receivers {
            if r == standby {
                continue;
            }
            let a = engine.agent::<SfAgent>(r).unwrap();
            assert!(a.complete(), "receiver {r} missing {} packets", a.missing());
        }
        // Both halves of the stream made it onto the wire exactly once as
        // fresh data: 20 sequences from the retiring sender, 44 from the
        // standby.
        let fresh_by = |n: NodeId| {
            engine
                .recorder()
                .transmissions
                .iter()
                .filter(|t| t.node == n && t.class == TrafficClass::Data)
                .count()
        };
        assert_eq!(fresh_by(built.source), 20, "retiring sender overran");
        assert_eq!(fresh_by(standby), 44, "standby sent the wrong tail");
        let report = engine.audit_report().expect("auditor attached");
        assert!(report.ok(), "handoff run not clean: {}", report.summary());
    }

    /// Scenario-fuzzing regression (churn cells of the scenario sweep):
    /// a receiver that crashes *while request timers are armed* used to
    /// wedge — the crash epoch killed its pending timers but the group
    /// state kept the handles, so `maybe_request` and the completeness
    /// watchdog both saw "a request is already pending" forever and the
    /// node never asked again.  Churn it twice: once mid-stream (to
    /// leave groups incomplete) and once mid-recovery (to orphan the
    /// armed timers).  It must still finish the stream.
    #[test]
    fn restart_mid_recovery_forgets_dead_request_timers() {
        use sharqfec_netsim::prelude::AuditConfig;
        let built = chain(4);
        // The chain's last receiver: the only member that forwards for
        // nobody, so its leaves cannot sever anyone else.
        let victim = *built.receivers.last().unwrap();
        let chans = member_channels(&built.hierarchy, victim);
        let cfg = small_cfg(SharqfecConfig::full());
        // Stream spans 6.0-6.64 s; the completeness watchdog first fires
        // at 7.14 s and arms request timers for whatever is missing.
        let plan = ScenarioPlan::new()
            .leave_at(SimTime::from_millis(6_250), victim, &chans)
            .rejoin_at(SimTime::from_millis(6_450), victim, &chans)
            .leave_at(SimTime::from_millis(7_180), victim, &chans)
            .rejoin_at(SimTime::from_millis(7_500), victim, &chans);
        let mut builder =
            setup_sharqfec_scenario_builder(&built, 13, cfg, SimTime::from_secs(1), plan, None);
        builder.audit(AuditConfig::default());
        let mut engine = builder.build();
        engine.advance(RunSpec::to(SimTime::from_secs(60)));
        for &r in &built.receivers {
            let a = engine.agent::<SfAgent>(r).unwrap();
            assert!(
                a.complete(),
                "receiver {r} never recovered after churn: {} missing",
                a.missing()
            );
        }
        let report = engine.audit_report().expect("auditor attached");
        assert!(report.ok(), "churn run not clean: {}", report.summary());
    }

    #[test]
    fn deterministic_across_identical_seeds() {
        let built = figure10(&Figure10Params::default());
        let run = |seed: u64| {
            let cfg = small_cfg(SharqfecConfig::full());
            let mut engine = setup_sharqfec_sim(&built, seed, cfg, SimTime::from_secs(1));
            engine.advance(RunSpec::to(SimTime::from_secs(60)));
            (
                engine.recorder().transmissions.len(),
                engine.recorder().deliveries.len(),
                engine.recorder().drops.len(),
            )
        };
        assert_eq!(run(5), run(5));
    }
}
