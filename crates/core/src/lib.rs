//! SHARQFEC — Scoped Hybrid Automatic Repeat reQuest with Forward Error
//! Correction (Kermode, SIGCOMM '98).
//!
//! The paper's contribution, implemented in full:
//!
//! * **Packet groups + FEC** — the source streams data in groups of `k`
//!   packets; any `k` distinct packets (data or FEC) reconstruct a group,
//!   so NACKs carry *how many* packets are missing, never which ones.
//! * **Two-phase delivery** — a Loss Detection Phase (LDP) while the group
//!   is on the wire, then a Repair Phase (RP); see [`agent`].
//! * **Scoped recovery** — one maximum-scope data channel plus a repair
//!   channel per administratively scoped zone.  NACKs start at the
//!   receiver's smallest zone and escalate outward after two attempts per
//!   zone; repairs stay inside the zone that needed them.
//! * **LLC/ZLC suppression** — receivers count their own losses (LLC) and
//!   track the worst loss reported per zone (ZLC); a NACK is suppressed
//!   whenever the receiver's LLC does not exceed the zone's known ZLC,
//!   because the FEC repairs provoked by the worse-off receiver cover
//!   everyone with fewer losses.
//! * **Preemptive injection** — Zone Closest Receivers inject
//!   `zlc_pred = 0.75·zlc_pred + 0.25·zlc` FEC packets into their zone as
//!   soon as they can reconstruct a group, before any NACK arrives.
//! * **Hierarchical session management** — embedded
//!   [`sharqfec_session::SessionCore`] provides the RTT estimates for all
//!   suppression timers and the ZCR identities for injection.
//!
//! Every feature is individually switchable for the paper's §6.2 ablation
//! ladder — see [`config::SharqfecConfig`] and its constructors
//! [`config::SharqfecConfig::ecsrm`] (`ns,ni,so`), `ns_ni`, `ns`, `ni`,
//! and `full`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adapt;
pub mod agent;
pub mod config;
pub mod group;
pub mod msg;
pub mod policy;
pub mod setup;

pub use agent::{Role, SfAgent};
pub use config::{SharqfecConfig, Variant};
pub use msg::SfMsg;
pub use policy::{
    EwmaPolicy, InjectionPolicy, OptimizingPolicy, PercentilePolicy, PolicyConfig, PolicyKind,
};
pub use setup::{
    member_channels, setup_sharqfec_builder, setup_sharqfec_scenario_builder, setup_sharqfec_sim,
};
