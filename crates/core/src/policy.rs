//! Pluggable preemptive-injection sizing: the [`InjectionPolicy`] trait.
//!
//! The paper sizes preemptive FEC with a fixed-gain EWMA of the measured
//! ZLC (§4).  TAROT-style controllers reframe the same decision as an
//! online optimization: predict the zone's loss process, then pick the
//! smallest redundancy `h` that meets a delivery target.  This module
//! extracts the decision behind a trait so the EWMA becomes one
//! implementation among several:
//!
//! * [`EwmaPolicy`] — the paper's predictor, bit-identical to the
//!   pre-trait hard-coded path.
//! * [`PercentilePolicy`] — a quantile of the recent ZLC history held in
//!   a bounded ring buffer; conservative tail-tracking without EWMA lag.
//! * [`OptimizingPolicy`] — a Gilbert–Elliott-aware controller: it
//!   reconstructs the zone's *total* repair demand per measurement round
//!   (observed residual + what it injected itself), estimates the loss
//!   burst process from that, and chooses the smallest `h` whose modeled
//!   residual-loss probability meets a configurable delivery target.
//!
//! Policies are fed by the agent's existing evidence path: ZLC
//! measurements ([`InjectionPolicy::on_zlc_measurement`], the same
//! observation the probe layer records as `ProbeEvent::ZlcUpdate`) and
//! NACK arrivals ([`InjectionPolicy::on_nack`]).  ZCR seat changes from
//! the session layer reach [`InjectionPolicy::on_seat_change`] so a
//! policy can discard history collected while it was not responsible for
//! a zone.  Every decision is recorded as `ProbeEvent::PolicyDecision`
//! and audited against `chosen h ≤ group_size`.

/// Sizes preemptive FEC injection for the zones one member represents.
///
/// Levels index the member's zone chain (smallest zone first), matching
/// the agent's `chain`.  Implementations must be deterministic: the
/// engine replays runs bit-identically and policies hold no clock or RNG.
/// `Send` is a supertrait because policies live inside agents, which the
/// sharded engine moves to worker threads; policies are plain
/// deterministic state machines, so this costs implementations nothing.
pub trait InjectionPolicy: Send {
    /// Stable short name recorded in `ProbeEvent::PolicyDecision` and
    /// accepted by [`PolicyConfig::named`].
    fn name(&self) -> &'static str;

    /// Folds one ZLC measurement — the worst residual repair demand any
    /// NACK in the zone advertised for a group, observed ~2.5 RTT after
    /// the group completed — into the predictor for `level`.
    fn on_zlc_measurement(&mut self, level: usize, observed: f64);

    /// A NACK for `needed` repairs reached this member at `level`.
    /// Default: ignored (the EWMA only consumes settled measurements).
    fn on_nack(&mut self, level: usize, needed: u32) {
        let _ = (level, needed);
    }

    /// This member gained (`is_zcr`) or lost the ZCR seat at `level`.
    /// Default: ignored.  History-bearing policies reset the level so a
    /// freshly elected ZCR does not act on another era's evidence.
    fn on_seat_change(&mut self, level: usize, is_zcr: bool) {
        let _ = (level, is_zcr);
    }

    /// Current loss prediction for `level` (diagnostics, probes, and the
    /// `ZlcUpdate` event).
    fn predicted(&self, level: usize) -> f64;

    /// The number of FEC packets to inject preemptively into `level`'s
    /// zone for a freshly completed group.  Must not exceed
    /// `group_size`; the agent clamps and the auditor flags violations.
    fn injected(&mut self, level: usize, group_size: u32) -> usize;

    /// The delivery/coverage target this policy steers toward, or `0.0`
    /// when the policy is not target-driven (recorded in
    /// `ProbeEvent::PolicyDecision`).
    fn target(&self) -> f64 {
        0.0
    }
}

// ---------------------------------------------------------------------------
// EwmaPolicy — the paper's §4 predictor.
// ---------------------------------------------------------------------------

/// The paper's fixed-gain EWMA: `pred += gain · (observed − pred)`,
/// injecting `round(pred)` packets.  Selected by default; bit-identical
/// to the pre-trait hard-coded agent path.
#[derive(Clone, Debug)]
pub struct EwmaPolicy {
    gain: f64,
    pred: Vec<f64>,
}

impl EwmaPolicy {
    /// An EWMA predictor over `levels` chain levels.
    pub fn new(gain: f64, initial_pred: f64, levels: usize) -> EwmaPolicy {
        EwmaPolicy {
            gain,
            pred: vec![initial_pred; levels],
        }
    }
}

impl InjectionPolicy for EwmaPolicy {
    fn name(&self) -> &'static str {
        "ewma"
    }

    fn on_zlc_measurement(&mut self, level: usize, observed: f64) {
        self.pred[level] += self.gain * (observed - self.pred[level]);
    }

    fn predicted(&self, level: usize) -> f64 {
        self.pred[level]
    }

    fn injected(&mut self, level: usize, group_size: u32) -> usize {
        let n = self.pred[level].round().max(0.0) as u32;
        n.min(group_size) as usize
    }
}

// ---------------------------------------------------------------------------
// PercentilePolicy — quantile of recent ZLC history.
// ---------------------------------------------------------------------------

/// Per-level bounded history ring.
#[derive(Clone, Debug, Default)]
struct Ring {
    buf: Vec<f64>,
    next: usize,
}

impl Ring {
    fn push(&mut self, window: usize, v: f64) {
        if self.buf.len() < window {
            self.buf.push(v);
        } else {
            self.buf[self.next] = v;
            self.next = (self.next + 1) % window;
        }
    }

    fn clear(&mut self) {
        self.buf.clear();
        self.next = 0;
    }
}

/// Predicts the ZLC as a quantile of the last `window` measurements.
///
/// Where the EWMA tracks the *mean* demand (and lags bursts by
/// `1/gain` rounds), a high quantile tracks the *tail*: under bursty
/// loss it keeps injecting near the recent worst case until the burst
/// ages out of the window.  An empty history predicts `initial_pred`.
#[derive(Clone, Debug)]
pub struct PercentilePolicy {
    quantile: f64,
    window: usize,
    initial_pred: f64,
    hist: Vec<Ring>,
}

impl PercentilePolicy {
    /// A quantile predictor over `levels` chain levels.
    ///
    /// # Panics
    ///
    /// Panics when `quantile` is outside `[0, 1]` or `window` is zero.
    pub fn new(quantile: f64, window: usize, initial_pred: f64, levels: usize) -> PercentilePolicy {
        assert!(
            (0.0..=1.0).contains(&quantile),
            "quantile must lie in [0,1]"
        );
        assert!(window > 0, "history window must be positive");
        PercentilePolicy {
            quantile,
            window,
            initial_pred,
            hist: vec![Ring::default(); levels],
        }
    }

    /// The quantile of a level's history by linear interpolation on the
    /// sorted samples at rank `q·(n−1)`; `initial_pred` when empty.
    fn quantile_of(&self, level: usize) -> f64 {
        let buf = &self.hist[level].buf;
        if buf.is_empty() {
            return self.initial_pred;
        }
        let mut sorted = buf.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("ZLC samples are finite"));
        let rank = self.quantile * (sorted.len() - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        let frac = rank - lo as f64;
        sorted[lo] + frac * (sorted[hi] - sorted[lo])
    }
}

impl InjectionPolicy for PercentilePolicy {
    fn name(&self) -> &'static str {
        "percentile"
    }

    fn on_zlc_measurement(&mut self, level: usize, observed: f64) {
        self.hist[level].push(self.window, observed);
    }

    fn on_seat_change(&mut self, level: usize, is_zcr: bool) {
        if is_zcr {
            // A fresh seat must not inherit demand observed from the
            // vantage point of a different (or failed) representative.
            self.hist[level].clear();
        }
    }

    fn predicted(&self, level: usize) -> f64 {
        self.quantile_of(level)
    }

    fn injected(&mut self, level: usize, group_size: u32) -> usize {
        let n = self.quantile_of(level).round().max(0.0) as u32;
        n.min(group_size) as usize
    }

    fn target(&self) -> f64 {
        self.quantile
    }
}

// ---------------------------------------------------------------------------
// OptimizingPolicy — TAROT-style smallest-h-meeting-a-target controller.
// ---------------------------------------------------------------------------

/// Per-level state for the optimizing controller.
#[derive(Clone, Debug, Default)]
struct OptLevel {
    /// Ring of reconstructed total demands (observed residual + our own
    /// injection that round): the zone's loss process as a Gilbert–
    /// Elliott style sequence of per-group demand observations.
    demands: Ring,
    /// FIFO of h values injected but not yet matched to a measurement.
    pending_h: Vec<u32>,
    /// Worst shortfall advertised by a NACK since the last injection —
    /// a reactive floor under the model-chosen h, consumed on use.
    nack_floor: u32,
}

/// Chooses the smallest `h` whose modeled residual-loss probability
/// meets a delivery target, from a Gilbert–Elliott view of the zone's
/// demand process.
///
/// The ZLC measurement the agent feeds policies is *net of our own
/// injection* — when injection covered everyone, the observation is 0
/// regardless of how lossy the zone was.  A controller trained on the
/// net signal would conclude the zone is clean, cut `h`, provoke NACKs,
/// and oscillate.  This policy therefore reconstructs the *gross*
/// demand per measurement round as `observed + h_injected` (pairing
/// rounds through a FIFO of its own decisions) and models that:
///
/// * `p_loss` — fraction of rounds with any demand: the stationary
///   probability a group gets clipped by a bad-state visit.
/// * `b` — mean demand given demand > 0: the mean burst clip, which for
///   Gilbert–Elliott loss tracks the bad-state sojourn length.
/// * residual after injecting `h`: a burst needs more than `h` repairs
///   with probability ≈ `((b−1)/b)^h` (geometric sojourn tail), so the
///   group misses its first repair round with probability
///   `p_loss · ((b−1)/b)^h`.
///
/// It picks the smallest `h` pushing that below `1 − delivery_target`,
/// raised to any NACK-advertised shortfall since the last round and
/// clamped to `min(max_h, group_size)`.
#[derive(Clone, Debug)]
pub struct OptimizingPolicy {
    delivery_target: f64,
    window: usize,
    max_h: u32,
    initial_h: u32,
    levels: Vec<OptLevel>,
}

impl OptimizingPolicy {
    /// An optimizing controller over `levels` chain levels.
    ///
    /// # Panics
    ///
    /// Panics when `delivery_target` is outside `(0, 1]` or `window` is
    /// zero.
    pub fn new(
        delivery_target: f64,
        window: usize,
        max_h: u32,
        initial_h: u32,
        levels: usize,
    ) -> OptimizingPolicy {
        assert!(
            delivery_target > 0.0 && delivery_target <= 1.0,
            "delivery target must lie in (0,1]"
        );
        assert!(window > 0, "demand window must be positive");
        OptimizingPolicy {
            delivery_target,
            window,
            max_h,
            initial_h,
            levels: vec![OptLevel::default(); levels],
        }
    }

    /// `(p_loss, b)` for a level: loss-round frequency and mean clip.
    fn loss_model(&self, level: usize) -> Option<(f64, f64)> {
        let buf = &self.levels[level].demands.buf;
        if buf.is_empty() {
            return None;
        }
        let lossy: Vec<f64> = buf.iter().copied().filter(|&d| d > 0.0).collect();
        let p_loss = lossy.len() as f64 / buf.len() as f64;
        let b = if lossy.is_empty() {
            0.0
        } else {
            lossy.iter().sum::<f64>() / lossy.len() as f64
        };
        Some((p_loss, b))
    }

    /// Smallest `h` with `p_loss · ((b−1)/b)^h ≤ 1 − delivery_target`.
    fn model_h(&self, level: usize) -> u32 {
        let Some((p_loss, b)) = self.loss_model(level) else {
            return self.initial_h;
        };
        let eps = 1.0 - self.delivery_target;
        if p_loss <= eps || b <= 0.0 {
            return 0;
        }
        if b <= 1.0 {
            // Bursts clip one packet: a single repair covers the mean
            // bad-state visit.
            return 1;
        }
        let tail = (b - 1.0) / b;
        // h = ⌈ln(eps / p_loss) / ln(tail)⌉, guarded for eps = 0 (100%
        // target): fall back to the worst demand in the window.
        if eps <= 0.0 {
            let worst = self.levels[level]
                .demands
                .buf
                .iter()
                .copied()
                .fold(0.0_f64, f64::max);
            return worst.ceil() as u32;
        }
        let h = (eps / p_loss).ln() / tail.ln();
        h.ceil().max(0.0) as u32
    }
}

impl InjectionPolicy for OptimizingPolicy {
    fn name(&self) -> &'static str {
        "optimizing"
    }

    fn on_zlc_measurement(&mut self, level: usize, observed: f64) {
        let window = self.window;
        let st = &mut self.levels[level];
        // Reconstruct the round's gross demand: what the zone still
        // asked for on top of what we had already injected for the
        // group this measurement settles (FIFO pairing — injections and
        // measurements both proceed in group order).
        let own = if st.pending_h.is_empty() {
            0
        } else {
            st.pending_h.remove(0)
        };
        st.demands.push(window, observed + own as f64);
    }

    fn on_nack(&mut self, level: usize, needed: u32) {
        let st = &mut self.levels[level];
        st.nack_floor = st.nack_floor.max(needed);
    }

    fn on_seat_change(&mut self, level: usize, is_zcr: bool) {
        if is_zcr {
            self.levels[level] = OptLevel::default();
        }
    }

    fn predicted(&self, level: usize) -> f64 {
        match self.loss_model(level) {
            Some((p_loss, b)) => p_loss * b,
            None => self.initial_h as f64,
        }
    }

    fn injected(&mut self, level: usize, group_size: u32) -> usize {
        let h = self.model_h(level);
        let st = &mut self.levels[level];
        let floor = std::mem::take(&mut st.nack_floor);
        let h = h.max(floor).min(self.max_h).min(group_size);
        st.pending_h.push(h);
        // Bound the FIFO: measurements for very late groups can be
        // skipped entirely (audit path), so stale entries must not pile
        // up and skew reconstruction forever.
        if st.pending_h.len() > self.window {
            st.pending_h.remove(0);
        }
        h as usize
    }

    fn target(&self) -> f64 {
        self.delivery_target
    }
}

// ---------------------------------------------------------------------------
// Configuration.
// ---------------------------------------------------------------------------

/// Which predictor a [`PolicyConfig`] builds, with its parameters.
#[derive(Clone, Debug, PartialEq)]
pub enum PolicyKind {
    /// The paper's fixed-gain EWMA (default).
    Ewma {
        /// New-sample weight (paper: 0.25).
        gain: f64,
        /// Prediction before any measurement (paper: "a small number").
        initial_pred: f64,
    },
    /// Quantile-of-recent-history predictor.
    Percentile {
        /// The quantile tracked, in `[0,1]`.
        quantile: f64,
        /// Ring-buffer capacity (measurements kept per level).
        window: usize,
        /// Prediction while the history is empty.
        initial_pred: f64,
    },
    /// TAROT-style optimizing controller.
    Optimizing {
        /// Probability a group must be covered by the first repair
        /// round, in `(0,1]`.
        delivery_target: f64,
        /// Demand-history window per level.
        window: usize,
        /// Hard cap on chosen `h` (further clamped to the group size).
        max_h: u32,
        /// `h` before any demand has been observed.
        initial_h: u32,
    },
}

/// Injection-policy selection and shared measurement parameters, carried
/// by `SharqfecConfig` and threaded through `EngineBuilder` and the
/// bench CLI (`--policy`).
#[derive(Clone, Debug, PartialEq)]
pub struct PolicyConfig {
    /// Master switch for preemptive injection (`false` ⇒ the paper's
    /// `ni` variants: no policy runs and nothing is injected).
    pub enabled: bool,
    /// ZLC measurement delay as a multiple of the RTT to the most
    /// distant known receiver (paper: 2.5).  A property of the
    /// measurement pipeline, not of any one predictor, so it lives here.
    pub measure_rtt_factor: f64,
    /// The predictor to build.
    pub kind: PolicyKind,
}

impl Default for PolicyConfig {
    fn default() -> PolicyConfig {
        PolicyConfig::ewma()
    }
}

impl PolicyConfig {
    /// The paper's EWMA with §4 constants (gain 0.25, initial 1.0).
    pub fn ewma() -> PolicyConfig {
        PolicyConfig {
            enabled: true,
            measure_rtt_factor: 2.5,
            kind: PolicyKind::Ewma {
                gain: 0.25,
                initial_pred: 1.0,
            },
        }
    }

    /// The 0.95-quantile of the last 32 measurements.
    pub fn percentile() -> PolicyConfig {
        PolicyConfig {
            enabled: true,
            measure_rtt_factor: 2.5,
            kind: PolicyKind::Percentile {
                quantile: 0.95,
                window: 32,
                initial_pred: 1.0,
            },
        }
    }

    /// The optimizing controller with its tuned defaults.
    pub fn optimizing() -> PolicyConfig {
        PolicyConfig {
            enabled: true,
            measure_rtt_factor: 2.5,
            kind: PolicyKind::Optimizing {
                delivery_target: 0.75,
                window: 8,
                max_h: 16,
                initial_h: 0,
            },
        }
    }

    /// Resolves a CLI policy name (`ewma` | `percentile` | `optimizing`)
    /// to its default configuration.
    pub fn named(name: &str) -> Option<PolicyConfig> {
        match name {
            "ewma" => Some(PolicyConfig::ewma()),
            "percentile" => Some(PolicyConfig::percentile()),
            "optimizing" => Some(PolicyConfig::optimizing()),
            _ => None,
        }
    }

    /// The stable name of the configured kind (matches
    /// [`InjectionPolicy::name`]).
    pub fn name(&self) -> &'static str {
        match self.kind {
            PolicyKind::Ewma { .. } => "ewma",
            PolicyKind::Percentile { .. } => "percentile",
            PolicyKind::Optimizing { .. } => "optimizing",
        }
    }

    /// Validates invariants.
    ///
    /// # Panics
    ///
    /// Panics with a description of the violated invariant.
    pub fn validate(&self) {
        assert!(
            self.measure_rtt_factor > 0.0,
            "measure_rtt_factor must be positive"
        );
        match self.kind {
            PolicyKind::Ewma { gain, initial_pred } => {
                assert!(
                    (0.0..=1.0).contains(&gain),
                    "EWMA gain must be a weight in [0,1]"
                );
                assert!(initial_pred >= 0.0, "initial prediction must be >= 0");
            }
            PolicyKind::Percentile {
                quantile,
                window,
                initial_pred,
            } => {
                assert!(
                    (0.0..=1.0).contains(&quantile),
                    "quantile must lie in [0,1]"
                );
                assert!(window > 0, "history window must be positive");
                assert!(initial_pred >= 0.0, "initial prediction must be >= 0");
            }
            PolicyKind::Optimizing {
                delivery_target,
                window,
                ..
            } => {
                assert!(
                    delivery_target > 0.0 && delivery_target <= 1.0,
                    "delivery target must lie in (0,1]"
                );
                assert!(window > 0, "demand window must be positive");
            }
        }
    }

    /// Builds the configured policy for a member with `levels` chain
    /// levels.
    pub fn build(&self, levels: usize) -> Box<dyn InjectionPolicy> {
        match self.kind {
            PolicyKind::Ewma { gain, initial_pred } => {
                Box::new(EwmaPolicy::new(gain, initial_pred, levels))
            }
            PolicyKind::Percentile {
                quantile,
                window,
                initial_pred,
            } => Box::new(PercentilePolicy::new(
                quantile,
                window,
                initial_pred,
                levels,
            )),
            PolicyKind::Optimizing {
                delivery_target,
                window,
                max_h,
                initial_h,
            } => Box::new(OptimizingPolicy::new(
                delivery_target,
                window,
                max_h,
                initial_h,
                levels,
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ewma_matches_the_papers_fold() {
        let mut p = EwmaPolicy::new(0.25, 1.0, 2);
        // pred = 1.0 → observe 5 → 1 + 0.25·(5−1) = 2.0
        p.on_zlc_measurement(0, 5.0);
        assert_eq!(p.predicted(0), 2.0);
        // Untouched level keeps its initial prediction.
        assert_eq!(p.predicted(1), 1.0);
        // Rounds to nearest, clamps at the group size.
        assert_eq!(p.injected(0, 16), 2);
        p.on_zlc_measurement(0, 100.0);
        assert_eq!(p.injected(0, 16), 16);
    }

    #[test]
    fn ewma_decays_toward_zero_on_clean_measurements() {
        let mut p = EwmaPolicy::new(0.25, 4.0, 1);
        for _ in 0..16 {
            p.on_zlc_measurement(0, 0.0);
        }
        assert!(p.predicted(0) < 0.1);
        assert_eq!(p.injected(0, 16), 0);
    }

    #[test]
    fn percentile_empty_history_uses_initial_pred() {
        let mut p = PercentilePolicy::new(0.9, 16, 3.0, 1);
        assert_eq!(p.predicted(0), 3.0);
        assert_eq!(p.injected(0, 16), 3);
    }

    #[test]
    fn percentile_all_equal_samples_returns_the_sample() {
        let mut p = PercentilePolicy::new(0.5, 8, 1.0, 1);
        for _ in 0..20 {
            p.on_zlc_measurement(0, 7.0);
        }
        assert_eq!(p.predicted(0), 7.0);
        assert_eq!(p.injected(0, 16), 7);
    }

    #[test]
    fn percentile_quantile_zero_and_one_are_min_and_max() {
        let samples = [4.0, 1.0, 9.0, 2.0];
        let mut lo = PercentilePolicy::new(0.0, 16, 0.0, 1);
        let mut hi = PercentilePolicy::new(1.0, 16, 0.0, 1);
        for s in samples {
            lo.on_zlc_measurement(0, s);
            hi.on_zlc_measurement(0, s);
        }
        assert_eq!(lo.predicted(0), 1.0);
        assert_eq!(hi.predicted(0), 9.0);
    }

    #[test]
    fn percentile_interpolates_between_ranks() {
        // Sorted: [0, 10]; q=0.75 → rank 0.75 → 7.5.
        let mut p = PercentilePolicy::new(0.75, 16, 0.0, 1);
        p.on_zlc_measurement(0, 10.0);
        p.on_zlc_measurement(0, 0.0);
        assert_eq!(p.predicted(0), 7.5);
    }

    #[test]
    fn percentile_window_evicts_oldest() {
        let mut p = PercentilePolicy::new(1.0, 4, 0.0, 1);
        p.on_zlc_measurement(0, 50.0);
        for _ in 0..4 {
            p.on_zlc_measurement(0, 2.0);
        }
        // The 50 aged out of the 4-deep window.
        assert_eq!(p.predicted(0), 2.0);
    }

    #[test]
    fn percentile_seat_gain_clears_history() {
        let mut p = PercentilePolicy::new(1.0, 16, 1.0, 2);
        p.on_zlc_measurement(0, 9.0);
        p.on_zlc_measurement(1, 9.0);
        p.on_seat_change(0, true);
        p.on_seat_change(1, false); // losing the seat keeps history
        assert_eq!(p.predicted(0), 1.0);
        assert_eq!(p.predicted(1), 9.0);
    }

    #[test]
    fn optimizing_clean_history_chooses_zero() {
        let mut p = OptimizingPolicy::new(0.75, 32, 16, 1, 1);
        // Initial h before evidence:
        assert_eq!(p.injected(0, 16), 1);
        for _ in 0..10 {
            p.on_zlc_measurement(0, 0.0);
        }
        // p_loss dropped under 1−target ⇒ no preemptive FEC.  (The
        // predicted demand is not exactly 0: the initial h=1 round is
        // itself part of the reconstructed demand history.)
        assert_eq!(p.injected(0, 16), 0);
        assert!(p.predicted(0) < 0.25);
    }

    #[test]
    fn optimizing_persistent_bursts_raise_h() {
        let mut p = OptimizingPolicy::new(0.9, 32, 16, 0, 1);
        for _ in 0..10 {
            p.on_zlc_measurement(0, 6.0);
        }
        // Every round lost ~6 packets: h must cover most of the burst.
        let h = p.injected(0, 16);
        assert!(h >= 6, "burst demand 6 every round needs h >= 6, got {h}");
        assert!(h <= 16);
    }

    #[test]
    fn optimizing_reconstructs_gross_demand_past_own_injection() {
        let mut p = OptimizingPolicy::new(0.9, 32, 16, 4, 1);
        // Round trip: inject 4, then the measurement reads 0 because our
        // own injection covered the zone.  Gross demand is 4, not 0 —
        // the policy must keep injecting rather than concluding "clean".
        for _ in 0..8 {
            let h = p.injected(0, 16);
            assert!(h >= 1, "must not collapse to zero while demand persists");
            p.on_zlc_measurement(0, 0.0);
        }
        assert!(p.predicted(0) >= 1.0);
    }

    #[test]
    fn optimizing_nack_floor_is_consumed_once() {
        let mut p = OptimizingPolicy::new(0.75, 32, 16, 0, 1);
        for _ in 0..10 {
            p.on_zlc_measurement(0, 0.0); // model says 0
        }
        p.on_nack(0, 5);
        assert_eq!(p.injected(0, 16), 5); // floor applies…
        p.on_zlc_measurement(0, 0.0);
        assert!(p.injected(0, 16) <= 1); // …once
    }

    #[test]
    fn optimizing_clamps_to_max_h_and_group_size() {
        let mut p = OptimizingPolicy::new(1.0, 32, 6, 0, 1);
        for _ in 0..4 {
            p.on_zlc_measurement(0, 40.0);
        }
        assert_eq!(p.injected(0, 16), 6); // max_h
        let mut q = OptimizingPolicy::new(1.0, 32, 64, 0, 1);
        for _ in 0..4 {
            q.on_zlc_measurement(0, 40.0);
        }
        assert_eq!(q.injected(0, 8), 8); // group_size
    }

    #[test]
    fn optimizing_seat_gain_resets_the_level() {
        let mut p = OptimizingPolicy::new(0.9, 32, 16, 2, 1);
        for _ in 0..10 {
            p.on_zlc_measurement(0, 8.0);
        }
        assert!(p.injected(0, 16) >= 6);
        p.on_seat_change(0, true);
        assert_eq!(p.injected(0, 16), 2); // back to initial_h
    }

    #[test]
    fn config_names_round_trip() {
        for name in ["ewma", "percentile", "optimizing"] {
            let cfg = PolicyConfig::named(name).expect("known policy");
            assert_eq!(cfg.name(), name);
            cfg.validate();
            assert_eq!(cfg.build(3).name(), name);
        }
        assert_eq!(PolicyConfig::named("fixed"), None);
    }

    #[test]
    fn config_default_is_the_papers_ewma() {
        let cfg = PolicyConfig::default();
        assert!(cfg.enabled);
        assert_eq!(cfg.measure_rtt_factor, 2.5);
        assert_eq!(
            cfg.kind,
            PolicyKind::Ewma {
                gain: 0.25,
                initial_pred: 1.0
            }
        );
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn config_rejects_out_of_range_quantile() {
        PolicyConfig {
            kind: PolicyKind::Percentile {
                quantile: 1.5,
                window: 16,
                initial_pred: 1.0,
            },
            ..PolicyConfig::percentile()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "delivery target")]
    fn config_rejects_zero_delivery_target() {
        PolicyConfig {
            kind: PolicyKind::Optimizing {
                delivery_target: 0.0,
                window: 32,
                max_h: 16,
                initial_h: 1,
            },
            ..PolicyConfig::optimizing()
        }
        .validate();
    }
}
