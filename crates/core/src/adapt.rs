//! Adaptive request-timer constants — the paper's §7 future work.
//!
//! "SHARQFEC currently uses fixed timers for suppression purposes.  As was
//! noted in \[SRM\] fixed timers are incapable of coping with all network
//! topologies, and therefore inclusion of some mechanism for adjusting the
//! timer constants can lead to enhanced performance.  Further work is
//! needed to explore mechanisms for adjusting the timer constants used by
//! SHARQFEC."
//!
//! This module is that exploration: the SRM §V adjustment structure
//! applied to SHARQFEC's request window `2^i·[C1·d, (C1+C2)·d]`.  Each
//! receiver tracks an EWMA of duplicate NACKs overheard per recovery
//! round and of its own recovery delay (in units of `d_SA`), widening the
//! window under duplicate pressure and narrowing it when rounds are quiet
//! but slow.  Off by default ([`crate::SharqfecConfig::adaptive_timers`]);
//! the `ablation_sweep` harness compares both settings.
//!
//! The update machinery itself lives in
//! [`sharqfec_netsim::adaptive`] and is shared with the SRM baseline
//! (`sharqfec-srm::timers`); the two call sites had drifted copies.  The
//! one *intentional* divergence is the narrowing trigger `delay_high`:
//! SHARQFEC rounds are measured against `d_SA` to the zone's ZCR (short,
//! since scoping keeps recovery local), so only genuinely slow rounds —
//! past [`DELAY_HIGH`] = 4 units — should narrow the window, where SRM's
//! global sessions narrow from 1.5.

use sharqfec_netsim::adaptive::{AdaptiveConfig, AdaptiveTimer};

/// Recovery delay (in units of `d_SA`) above which narrowing kicks in.
/// Deliberately higher than SRM's 1.5 — see the module docs.
pub const DELAY_HIGH: f64 = 4.0;

/// Adaptive request window state for one receiver.
///
/// Thin wrapper over the shared [`AdaptiveTimer`] keeping SHARQFEC's
/// `C1`/`C2` naming and its `delay_high` trigger point.
#[derive(Clone, Debug)]
pub struct AdaptiveWindow {
    inner: AdaptiveTimer,
}

impl AdaptiveWindow {
    /// Starts from the configured fixed constants.
    pub fn new(c1: f64, c2: f64, enabled: bool) -> AdaptiveWindow {
        let cfg = AdaptiveConfig {
            delay_high: DELAY_HIGH,
            ..AdaptiveConfig::default()
        };
        AdaptiveWindow {
            inner: AdaptiveTimer::new(c1, c2, enabled, cfg),
        }
    }

    /// Current window start factor (C1).
    pub fn c1(&self) -> f64 {
        self.inner.lo()
    }

    /// Current window width factor (C2).
    pub fn c2(&self) -> f64 {
        self.inner.width()
    }

    /// Records an overheard NACK that did not raise any ZLC (a duplicate
    /// in SRM's sense).  Inert while adaptation is disabled.
    pub fn saw_duplicate(&mut self) {
        self.inner.saw_duplicate();
    }

    /// Closes a recovery round (a group completed after losses): folds
    /// the duplicate count and this receiver's recovery delay into the
    /// EWMAs and adjusts the window.  Inert while disabled.
    pub fn end_round(&mut self, delay_in_d: f64) {
        self.inner.end_round(delay_in_d);
    }

    /// Current duplicate-pressure EWMA (diagnostics / probes).
    pub fn ave_dup(&self) -> f64 {
        self.inner.ave_dup()
    }

    /// Current recovery-delay EWMA (diagnostics / probes).
    pub fn ave_delay(&self) -> f64 {
        self.inner.ave_delay()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_window_stays_fixed_and_folds_nothing() {
        let mut w = AdaptiveWindow::new(2.0, 2.0, false);
        for _ in 0..20 {
            w.saw_duplicate();
            w.saw_duplicate();
            w.end_round(10.0);
        }
        assert_eq!((w.c1(), w.c2()), (2.0, 2.0));
        // Regression: end_round used to fold the EWMAs even while
        // disabled, so a mid-run enable inherited averages accumulated
        // under fixed-window dynamics.
        assert_eq!(w.ave_dup(), 0.0);
        assert_eq!(w.ave_delay(), 1.0);
    }

    #[test]
    fn duplicate_pressure_widens() {
        let mut w = AdaptiveWindow::new(2.0, 2.0, true);
        for _ in 0..10 {
            for _ in 0..3 {
                w.saw_duplicate();
            }
            w.end_round(1.0);
        }
        assert!(w.c1() > 2.0 && w.c2() > 2.0, "({}, {})", w.c1(), w.c2());
        assert!(w.ave_dup() > 1.0);
    }

    #[test]
    fn quiet_slow_rounds_narrow_with_floors() {
        let mut w = AdaptiveWindow::new(1.0, 1.0, true);
        for _ in 0..100 {
            w.end_round(10.0);
        }
        assert_eq!((w.c1(), w.c2()), (0.5, 0.5));
    }

    #[test]
    fn quiet_fast_rounds_hold() {
        let mut w = AdaptiveWindow::new(2.0, 2.0, true);
        for _ in 0..10 {
            w.end_round(1.0);
        }
        assert_eq!((w.c1(), w.c2()), (2.0, 2.0));
    }

    #[test]
    fn moderately_slow_rounds_hold_unlike_srm() {
        // Call-site pin for the intentional delay_high divergence: a
        // quiet round at 3 units of d narrows under SRM's 1.5 trigger
        // but must NOT narrow here (3.0 < DELAY_HIGH = 4.0).
        let mut w = AdaptiveWindow::new(2.0, 2.0, true);
        for _ in 0..12 {
            w.end_round(3.0);
        }
        assert_eq!((w.c1(), w.c2()), (2.0, 2.0));
    }
}
