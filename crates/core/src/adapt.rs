//! Adaptive request-timer constants — the paper's §7 future work.
//!
//! "SHARQFEC currently uses fixed timers for suppression purposes.  As was
//! noted in \[SRM\] fixed timers are incapable of coping with all network
//! topologies, and therefore inclusion of some mechanism for adjusting the
//! timer constants can lead to enhanced performance.  Further work is
//! needed to explore mechanisms for adjusting the timer constants used by
//! SHARQFEC."
//!
//! This module is that exploration: the SRM §V adjustment structure
//! applied to SHARQFEC's request window `2^i·[C1·d, (C1+C2)·d]`.  Each
//! receiver tracks an EWMA of duplicate NACKs overheard per recovery
//! round and of its own recovery delay (in units of `d_SA`), widening the
//! window under duplicate pressure and narrowing it when rounds are quiet
//! but slow.  Off by default ([`crate::SharqfecConfig::adaptive_timers`]);
//! the `ablation_sweep` harness compares both settings.

/// Adaptive request window state for one receiver.
#[derive(Clone, Debug)]
pub struct AdaptiveWindow {
    /// Current window start factor (C1).
    pub c1: f64,
    /// Current window width factor (C2).
    pub c2: f64,
    ave_dup: f64,
    ave_delay: f64,
    round_dups: u32,
    enabled: bool,
}

/// EWMA gain for the averages (SRM: 1/4).
const GAIN: f64 = 0.25;
/// Duplicate pressure above which the window widens.
const DUP_HIGH: f64 = 1.0;
/// Duplicate pressure below which narrowing is considered.
const DUP_LOW: f64 = 0.25;
/// Recovery delay (in units of d_SA) above which narrowing kicks in.
const DELAY_HIGH: f64 = 4.0;
/// Floors.
const MIN_C1: f64 = 0.5;
const MIN_C2: f64 = 0.5;

impl AdaptiveWindow {
    /// Starts from the configured fixed constants.
    pub fn new(c1: f64, c2: f64, enabled: bool) -> AdaptiveWindow {
        AdaptiveWindow {
            c1,
            c2,
            ave_dup: 0.0,
            ave_delay: 1.0,
            round_dups: 0,
            enabled,
        }
    }

    /// Records an overheard NACK that did not raise any ZLC (a duplicate
    /// in SRM's sense).
    pub fn saw_duplicate(&mut self) {
        self.round_dups = self.round_dups.saturating_add(1);
    }

    /// Closes a recovery round (a group completed after losses): folds
    /// the duplicate count and this receiver's recovery delay into the
    /// EWMAs and adjusts the window.
    pub fn end_round(&mut self, delay_in_d: f64) {
        let dups = self.round_dups as f64;
        self.round_dups = 0;
        self.ave_dup += GAIN * (dups - self.ave_dup);
        self.ave_delay += GAIN * (delay_in_d - self.ave_delay);
        if !self.enabled {
            return;
        }
        if self.ave_dup >= DUP_HIGH {
            self.c1 += 0.1;
            self.c2 += 0.5;
        } else if self.ave_dup < DUP_LOW && self.ave_delay > DELAY_HIGH {
            self.c1 = (self.c1 - 0.05).max(MIN_C1);
            self.c2 = (self.c2 - 0.1).max(MIN_C2);
        }
    }

    /// Current duplicate-pressure EWMA (diagnostics).
    pub fn ave_dup(&self) -> f64 {
        self.ave_dup
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_window_stays_fixed() {
        let mut w = AdaptiveWindow::new(2.0, 2.0, false);
        for _ in 0..20 {
            w.saw_duplicate();
            w.saw_duplicate();
            w.end_round(10.0);
        }
        assert_eq!((w.c1, w.c2), (2.0, 2.0));
    }

    #[test]
    fn duplicate_pressure_widens() {
        let mut w = AdaptiveWindow::new(2.0, 2.0, true);
        for _ in 0..10 {
            for _ in 0..3 {
                w.saw_duplicate();
            }
            w.end_round(1.0);
        }
        assert!(w.c1 > 2.0 && w.c2 > 2.0, "({}, {})", w.c1, w.c2);
        assert!(w.ave_dup() > 1.0);
    }

    #[test]
    fn quiet_slow_rounds_narrow_with_floors() {
        let mut w = AdaptiveWindow::new(1.0, 1.0, true);
        for _ in 0..100 {
            w.end_round(10.0);
        }
        assert_eq!((w.c1, w.c2), (MIN_C1, MIN_C2));
    }

    #[test]
    fn quiet_fast_rounds_hold() {
        let mut w = AdaptiveWindow::new(2.0, 2.0, true);
        for _ in 0..10 {
            w.end_round(1.0);
        }
        assert_eq!((w.c1, w.c2), (2.0, 2.0));
    }
}
