//! Per-group receiver bookkeeping: which packet indices are held, the
//! Local Loss Count, and per-zone ZLC / speculative-repair state.

use sharqfec_netsim::agent::TimerId;
use sharqfec_netsim::{SimDuration, SimTime};

/// Compact set of packet indices: bitset words, lazily grown.
///
/// Group indices are dense and small (data `0..k`, FEC a few dozen past
/// `k`), so a `HashSet<u32>` per group — tens of groups per receiver,
/// 10⁵–10⁶ receivers — wasted a heap table plus ~48 bytes of header on a
/// set that fits in one or two machine words.  Iteration order is
/// ascending by construction.
#[derive(Debug, Default)]
struct IndexBitset {
    words: Vec<u64>,
    len: u32,
}

impl IndexBitset {
    /// Inserts `idx`; `true` if it was absent.
    fn insert(&mut self, idx: u32) -> bool {
        let w = (idx / 64) as usize;
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let bit = 1u64 << (idx % 64);
        if self.words[w] & bit != 0 {
            return false;
        }
        self.words[w] |= bit;
        self.len += 1;
        true
    }

    fn contains(&self, idx: u32) -> bool {
        let w = (idx / 64) as usize;
        w < self.words.len() && self.words[w] & (1u64 << (idx % 64)) != 0
    }

    fn len(&self) -> u32 {
        self.len
    }

    /// Set members in ascending order.
    fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.words.iter().enumerate().flat_map(|(w, &word)| {
            (0..64)
                .filter(move |b| word & (1u64 << b) != 0)
                .map(move |b| (w as u32) * 64 + b)
        })
    }

    fn heap_bytes(&self) -> usize {
        self.words.capacity() * std::mem::size_of::<u64>()
    }
}

/// Delivery phase of one group (paper §4's two-phase process).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Loss Detection Phase: the group is still on the wire.
    Ldp,
    /// Repair Phase: entered on LDP-timer expiry or on reconstruction.
    Repair,
}

/// State for one packet group at one session member.
///
/// Indices `0..k` are data, `>= k` FEC.  `k` distinct indices reconstruct
/// the group.  The Local Loss Count (LLC) is the number of indices at or
/// below the highest identifier known to exist that this member has not
/// received — the quantity NACKs advertise and zones aggregate into ZLCs.
#[derive(Debug)]
pub struct GroupState {
    /// Data packets in this group.
    pub k: u32,
    received: IndexBitset,
    /// Highest packet identifier known to exist (from local receptions or
    /// NACK advertisements); `None` until anything is known.
    max_idx: Option<u32>,
    /// Indices ≤ `max_idx` not yet received (the LLC).
    missing: u32,
    /// Highest LLC this group ever reached (feeds the ZLC EWMA when no
    /// NACK revealed a true ZLC).
    pub peak_llc: u32,
    /// Current phase.
    pub phase: Phase,
    /// Zone Loss Count per chain level (max LLC heard in NACKs).
    pub zlc: Vec<u32>,
    /// Max `needed` count heard in NACKs per chain level — the zone's
    /// repair demand *net of upstream redundancy*, which is what the
    /// injection EWMA must track so that nested zones do not double-cover
    /// the same losses (paper §3.2: "Should too much redundancy be
    /// injected at one level in the hierarchy, receivers in subservient
    /// zones will add less redundancy").
    pub zone_needed: Vec<u32>,
    /// Speculatively queued repairs per chain level.
    pub outstanding: Vec<u32>,
    /// Pending reply timer per chain level.
    pub reply_timer: Vec<Option<TimerId>>,
    /// Whether a repair-pacing chain (spacing timer) is running per level.
    pub pacing: Vec<bool>,
    /// One-way distance to the most recent NACKer per level (reply-timer
    /// base).
    pub last_nack_dist: Vec<Option<SimDuration>>,
    /// Whether the ZCR-injection for this group has fired per level.
    pub injected: Vec<bool>,
    /// Whether the ZLC measurement fed the EWMA per level.
    pub measured: Vec<bool>,
    /// How many times the ZLC measurement was deferred per level because
    /// no RTT was known yet (startup ordering — see `measure_fire`).
    pub measure_defers: Vec<u8>,
    /// Pending request (NACK) timer.
    pub request_timer: Option<TimerId>,
    /// Request backoff exponent `i` (paper: starts at 1).
    pub i: u32,
    /// Current NACK scope as an index into the member's zone chain.
    pub scope_idx: usize,
    /// NACK attempts at the current scope.
    pub attempts: u32,
    /// Pending LDP timer.
    pub ldp_timer: Option<TimerId>,
    /// When the first packet of this group arrived (for recovery-delay
    /// accounting in the adaptive-timer extension).
    pub first_heard: Option<SimTime>,
    /// When the group became reconstructable.
    pub complete_at: Option<SimTime>,
    /// Highest identifier *reserved* by an announced repair burst still in
    /// flight (paper §4's max-identifier rule).  Kept separate from
    /// `max_idx` so promised-but-unarrived packets never count as losses.
    reserved: u32,
}

impl GroupState {
    /// Fresh state for a group of `k` data packets under a chain of
    /// `levels` zones, with NACKs starting at scope `initial_scope`.
    pub fn new(k: u32, levels: usize, initial_scope: usize) -> GroupState {
        GroupState {
            k,
            received: IndexBitset::default(),
            max_idx: None,
            missing: 0,
            peak_llc: 0,
            phase: Phase::Ldp,
            zlc: vec![0; levels],
            zone_needed: vec![0; levels],
            outstanding: vec![0; levels],
            reply_timer: vec![None; levels],
            pacing: vec![false; levels],
            last_nack_dist: vec![None; levels],
            injected: vec![false; levels],
            measured: vec![false; levels],
            measure_defers: vec![0; levels],
            request_timer: None,
            i: 1,
            scope_idx: initial_scope,
            attempts: 0,
            ldp_timer: None,
            first_heard: None,
            complete_at: None,
            reserved: 0,
        }
    }

    /// State for a member that originated the group and holds everything
    /// (the source).
    pub fn complete_source(k: u32, levels: usize) -> GroupState {
        let mut g = GroupState::new(k, levels, 0);
        for idx in 0..k {
            g.received.insert(idx);
        }
        g.max_idx = Some(k.saturating_sub(1));
        g.phase = Phase::Repair;
        g.complete_at = Some(SimTime::ZERO);
        g
    }

    /// Number of distinct indices held.
    pub fn held(&self) -> u32 {
        self.received.len()
    }

    /// Whether `idx` is held.
    pub fn has(&self, idx: u32) -> bool {
        self.received.contains(idx)
    }

    /// All held packet indices, sorted ascending (data first, then FEC) —
    /// what an application would hand to the erasure decoder.
    pub fn held_indices(&self) -> Vec<u32> {
        self.received.iter().collect()
    }

    /// Approximate heap bytes retained by this group's state (bitset
    /// words plus the per-chain-level vectors), for the scaling harness's
    /// resident-state accounting.
    pub fn heap_bytes(&self) -> usize {
        use std::mem::size_of;
        self.received.heap_bytes()
            + self.zlc.capacity() * size_of::<u32>()
            + self.zone_needed.capacity() * size_of::<u32>()
            + self.outstanding.capacity() * size_of::<u32>()
            + self.reply_timer.capacity() * size_of::<Option<TimerId>>()
            + self.pacing.capacity() * size_of::<bool>()
            + self.last_nack_dist.capacity() * size_of::<Option<SimDuration>>()
            + self.injected.capacity() * size_of::<bool>()
            + self.measured.capacity() * size_of::<bool>()
            + self.measure_defers.capacity() * size_of::<u8>()
    }

    /// FEC packets still needed to reconstruct (`needed` in NACKs).
    pub fn deficit(&self) -> u32 {
        self.k.saturating_sub(self.held())
    }

    /// Whether the group can be reconstructed.
    pub fn complete(&self) -> bool {
        self.deficit() == 0
    }

    /// The Local Loss Count.
    pub fn llc(&self) -> u32 {
        self.missing
    }

    /// Highest identifier known to exist.
    pub fn max_idx(&self) -> Option<u32> {
        self.max_idx
    }

    /// The identifier a new repair should use: one past everything known
    /// *or reserved by an announced burst*.
    pub fn next_repair_idx(&self) -> u32 {
        let past_known = match self.max_idx {
            Some(m) => (m + 1).max(self.k),
            None => self.k,
        };
        past_known.max(self.reserved + 1).max(self.k)
    }

    /// Reserves identifiers through `idx` (a repairer announced a burst).
    pub fn reserve(&mut self, idx: u32) {
        self.reserved = self.reserved.max(idx);
    }

    /// Notes that identifier `idx` exists (without receiving it), counting
    /// any newly revealed gaps as losses.  Returns how many new losses were
    /// detected.
    pub fn note_exists(&mut self, idx: u32) -> u32 {
        let prev = self.max_idx;
        let newly = match prev {
            Some(m) if idx <= m => 0,
            Some(m) => idx - m,
            None => idx + 1,
        };
        if newly > 0 {
            self.max_idx = Some(idx);
            self.missing += newly;
            self.peak_llc = self.peak_llc.max(self.missing);
        }
        newly
    }

    /// Receives packet `idx`.  Returns `true` if it was new.
    pub fn receive(&mut self, idx: u32) -> bool {
        // Identifiers strictly below idx are revealed (and counted lost if
        // unseen); idx itself arrives in hand, so it is never transiently
        // counted as missing.
        let was_known = matches!(self.max_idx, Some(m) if m >= idx);
        if idx > 0 {
            self.note_exists(idx - 1);
        }
        if !was_known {
            self.max_idx = Some(idx);
        }
        if self.received.insert(idx) {
            if was_known {
                // It had been counted among the missing.
                debug_assert!(self.missing > 0);
                self.missing -= 1;
            }
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_reception_counts_no_losses() {
        let mut g = GroupState::new(4, 1, 0);
        for idx in 0..4 {
            assert!(g.receive(idx));
        }
        assert_eq!(g.llc(), 0);
        assert_eq!(g.peak_llc, 0);
        assert!(g.complete());
        assert_eq!(g.deficit(), 0);
    }

    #[test]
    fn gaps_raise_llc_and_repairs_lower_it() {
        let mut g = GroupState::new(4, 1, 0);
        g.receive(0);
        g.receive(3); // gap: 1, 2 missing
        assert_eq!(g.llc(), 2);
        assert_eq!(g.peak_llc, 2);
        assert_eq!(g.deficit(), 2);
        // FEC repairs with fresh identifiers don't reduce the loss count
        // for identifiers 1,2 but do reduce the deficit.
        g.receive(4);
        assert_eq!(g.llc(), 2);
        assert_eq!(g.deficit(), 1);
        g.receive(5);
        assert!(g.complete());
        assert_eq!(g.peak_llc, 2);
    }

    #[test]
    fn advertised_max_reveals_losses() {
        let mut g = GroupState::new(16, 2, 0);
        g.receive(0);
        assert_eq!(g.llc(), 0);
        // A NACK advertises identifier 17 (16 data + 2 FEC were sent).
        let newly = g.note_exists(17);
        assert_eq!(newly, 17);
        assert_eq!(g.llc(), 17);
        assert_eq!(g.deficit(), 15);
        // Re-advertising doesn't double-count.
        assert_eq!(g.note_exists(17), 0);
        assert_eq!(g.note_exists(5), 0);
    }

    #[test]
    fn duplicate_reception_is_idempotent() {
        let mut g = GroupState::new(4, 1, 0);
        assert!(g.receive(2));
        assert!(!g.receive(2));
        assert_eq!(g.held(), 1);
        assert_eq!(g.llc(), 2); // identifiers 0,1 revealed missing
    }

    #[test]
    fn next_repair_idx_never_collides() {
        let mut g = GroupState::new(4, 1, 0);
        assert_eq!(g.next_repair_idx(), 4); // nothing known: first FEC id
        g.receive(0);
        assert_eq!(g.next_repair_idx(), 4); // ids 0..=0 known, FEC starts at k
        g.note_exists(6);
        assert_eq!(g.next_repair_idx(), 7);
    }

    #[test]
    fn source_state_is_born_complete() {
        let g = GroupState::complete_source(16, 1);
        assert!(g.complete());
        assert_eq!(g.held(), 16);
        assert_eq!(g.llc(), 0);
        assert_eq!(g.phase, Phase::Repair);
        assert_eq!(g.next_repair_idx(), 16);
    }

    #[test]
    fn first_packet_mid_group_reveals_predecessors() {
        let mut g = GroupState::new(8, 1, 0);
        g.receive(5);
        assert_eq!(g.llc(), 5); // 0..5 missing
        assert_eq!(g.held(), 1);
    }
}
