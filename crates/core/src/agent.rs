//! The SHARQFEC protocol agent.
//!
//! One agent type plays both roles: the *source* is simply the member
//! that originates data packets and is born holding every group, while
//! *receivers* run the Loss Detection Phase / Repair Phase state machine
//! of paper §4.  Both embed a [`SessionCore`] for RTT estimates and ZCR
//! identity, and both act as repairers for the zones they belong to.

use crate::adapt::AdaptiveWindow;
use crate::config::SharqfecConfig;
use crate::group::{GroupState, Phase};
use crate::msg::SfMsg;
use crate::policy::InjectionPolicy;
use sharqfec_netsim::prelude::*;
use sharqfec_scoping::{ZoneHierarchy, ZoneId};
use sharqfec_session::core::{is_session_token, SessionCore, SessionCtx};
use sharqfec_session::msg::SessionMsg;
use std::collections::HashMap;
use std::sync::Arc;

/// Whether this member originates the stream or receives it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Role {
    /// The data source (root ZCR).
    Source,
    /// A receiving session member.
    Receiver,
}

// Timer token layout (bit 63 is reserved for the session layer):
// bits 40..44 = kind, bits 8..40 = group, bits 0..8 = chain level.
const KIND_SEND: u64 = 1;
const KIND_LDP: u64 = 2;
const KIND_REQ: u64 = 3;
const KIND_REPLY: u64 = 4;
const KIND_SPACING: u64 = 5;
const KIND_MEASURE: u64 = 6;
const KIND_AUDIT: u64 = 7;

fn tok(kind: u64, group: u32, level: usize) -> u64 {
    (kind << 40) | ((group as u64) << 8) | level as u64
}

fn tok_parts(token: u64) -> (u64, u32, usize) {
    (
        (token >> 40) & 0xF,
        ((token >> 8) & 0xFFFF_FFFF) as u32,
        (token & 0xFF) as usize,
    )
}

/// The SHARQFEC protocol state machine for one session member.
pub struct SfAgent {
    cfg: SharqfecConfig,
    role: Role,
    session: SessionCore,
    /// Channel of each zone, indexed by `ZoneId`.
    channels: Arc<Vec<ChannelId>>,
    /// Reverse map for classifying received repairs by scope.
    chan_to_level: HashMap<ChannelId, usize>,
    /// This member's zone chain (smallest zone first).
    chain: Vec<ZoneId>,
    /// Data channel = the root zone's channel (maximum scope).
    root_channel: ChannelId,
    /// The scope index new NACKs start at (paper §4's smallest-partition
    /// rule).
    initial_scope: usize,
    groups: HashMap<u32, GroupState>,
    /// Sizes preemptive injection where this member is a level's ZCR
    /// (paper §4's EWMA by default; see [`crate::policy`]).
    policy: Box<dyn InjectionPolicy>,
    /// Whether preemptive injection runs at all (`policy.enabled`,
    /// resolved once — `false` reproduces the `ni` variants).
    injection_on: bool,
    /// ZLC measurement delay as a multiple of the farthest known RTT.
    measure_rtt_factor: f64,
    /// Source only: next absolute data sequence number.
    next_seq: u32,
    /// Request-window constants, optionally adapted (paper §7 extension).
    window: AdaptiveWindow,
    /// EWMA of this receiver's observed loss fraction, fed to the session
    /// layer's §7 receiver-report summarization.
    observed_loss: f64,
    /// NACKs transmitted (diagnostics).
    pub nacks_sent: u32,
    /// Repair packets transmitted, including preemptive injections.
    pub repairs_sent: u32,
}

/// Bridges the netsim context to the session layer.
struct Bridge<'a, 'b> {
    ctx: &'a mut Ctx<'b, SfMsg>,
    channels: &'a [ChannelId],
}

impl SessionCtx for Bridge<'_, '_> {
    fn now(&self) -> SimTime {
        self.ctx.now()
    }
    fn rng(&mut self) -> &mut SimRng {
        self.ctx.rng()
    }
    fn send(&mut self, zone: ZoneId, msg: SessionMsg, bytes: u32) {
        self.ctx
            .multicast(self.channels[zone.idx()], SfMsg::Session(msg), bytes);
    }
    fn set_timer(&mut self, delay: SimDuration, token: u64) -> TimerId {
        self.ctx.set_timer(delay, token)
    }
    fn cancel_timer(&mut self, id: TimerId) {
        self.ctx.cancel_timer(id);
    }
    fn probe(&mut self, event: ProbeEvent) {
        self.ctx.probe(event);
    }
}

macro_rules! bridge {
    ($self:ident, $ctx:ident) => {
        Bridge {
            ctx: $ctx,
            channels: &$self.channels,
        }
    };
}

impl SfAgent {
    /// Creates an agent.  `channels[zone.idx()]` must carry zone traffic;
    /// the root zone's channel doubles as the maximum-scope data channel.
    pub fn new(
        cfg: SharqfecConfig,
        role: Role,
        session: SessionCore,
        hier: Arc<ZoneHierarchy>,
        channels: Arc<Vec<ChannelId>>,
        source_node: NodeId,
    ) -> SfAgent {
        cfg.validate();
        let chain = session.chain_zones().to_vec();
        let chan_to_level = chain
            .iter()
            .enumerate()
            .map(|(l, z)| (channels[z.idx()], l))
            .collect();
        let root_channel = channels[chain.last().expect("chain nonempty").idx()];
        let initial_scope = if hier.is_member(chain[0], source_node) {
            chain.len() - 1
        } else {
            0
        };
        let pcfg = cfg.policy.clone();
        let policy = pcfg.build(chain.len());
        let window = AdaptiveWindow::new(cfg.c1, cfg.c2, cfg.adaptive_timers);
        let cfg_first_seq = cfg.first_seq;
        SfAgent {
            cfg,
            role,
            session,
            channels,
            chan_to_level,
            chain,
            root_channel,
            initial_scope,
            groups: HashMap::new(),
            policy,
            injection_on: pcfg.enabled,
            measure_rtt_factor: pcfg.measure_rtt_factor,
            next_seq: cfg_first_seq,
            window,
            observed_loss: 0.0,
            nacks_sent: 0,
            repairs_sent: 0,
        }
    }

    /// The embedded session state machine.
    pub fn session(&self) -> &SessionCore {
        &self.session
    }

    /// Whether every group of the stream is reconstructable here.
    pub fn complete(&self) -> bool {
        if self.role == Role::Source {
            return true;
        }
        (0..self.cfg.group_count()).all(|g| self.groups.get(&g).is_some_and(|s| s.complete()))
    }

    /// Total packets still missing across all groups.
    pub fn missing(&self) -> u32 {
        if self.role == Role::Source {
            return 0;
        }
        (0..self.cfg.group_count())
            .map(|g| {
                self.groups
                    .get(&g)
                    .map_or(self.cfg.packets_in_group(g), |s| s.deficit())
            })
            .sum()
    }

    /// Current predicted ZLC at a chain level (diagnostics / benches).
    pub fn zlc_prediction(&self, level: usize) -> f64 {
        self.policy.predicted(level)
    }

    /// The injection policy driving this member's ZCR duties.
    pub fn policy(&self) -> &dyn InjectionPolicy {
        &*self.policy
    }

    /// When this receiver completed its last group, once *every* group
    /// of the stream is reconstructable here (`None` for the source and
    /// for receivers still missing packets).
    pub fn completion_time(&self) -> Option<SimTime> {
        if self.role == Role::Source {
            return None;
        }
        let mut worst = SimTime::ZERO;
        for g in 0..self.cfg.group_count() {
            let t = self.groups.get(&g).and_then(|s| s.complete_at)?;
            worst = worst.max(t);
        }
        Some(worst)
    }

    /// Forwards ZCR seat transitions recorded by the session layer to
    /// the policy, so history-bearing predictors can reset on election.
    fn drain_seat_events(&mut self) {
        for (level, is_zcr) in self.session.take_seat_events() {
            self.policy.on_seat_change(level, is_zcr);
        }
    }

    /// The packet indices this member holds for group `g`, sorted — the
    /// shards an application hands to `sharqfec-fec`'s decoder.
    pub fn held_indices(&self, g: u32) -> Vec<u32> {
        self.groups
            .get(&g)
            .map(|s| s.held_indices())
            .unwrap_or_default()
    }

    fn group_entry(&mut self, g: u32) -> &mut GroupState {
        let k = self.cfg.packets_in_group(g);
        let levels = self.chain.len();
        let initial_scope = self.initial_scope;
        let role = self.role;
        self.groups.entry(g).or_insert_with(|| match role {
            Role::Source => GroupState::complete_source(k, levels),
            Role::Receiver => GroupState::new(k, levels, initial_scope),
        })
    }

    /// One-way distance estimate to the source (the root ZCR) for request
    /// timers, with the configured fallback before the session converges.
    fn d_sa(&self) -> SimDuration {
        if self.role == Role::Source {
            return self.cfg.default_dist;
        }
        self.session
            .dist_to_ancestor(self.chain.len() - 1)
            .unwrap_or(self.cfg.default_dist)
    }

    // ---- request (NACK) side ---------------------------------------------

    fn arm_request(&mut self, ctx: &mut Ctx<'_, SfMsg>, g: u32) {
        let d = self.d_sa();
        let (c1, c2, max_backoff) = (self.window.c1(), self.window.c2(), self.cfg.max_backoff);
        let st = self.groups.get_mut(&g).expect("group exists");
        let factor = ctx.rng().range_f64(c1, c1 + c2);
        let delay = d.mul_f64(factor) * (1u64 << st.i.min(max_backoff));
        if let Some(old) = st.request_timer.take() {
            ctx.cancel_timer(old);
        }
        st.request_timer = Some(ctx.set_timer(delay, tok(KIND_REQ, g, 0)));
    }

    /// Arms a request timer if this receiver's losses exceed the ZLC known
    /// at *every* zone it belongs to (the paper's suppression rule: a NACK
    /// at any enclosing scope with `llc >= ours` provokes repairs that
    /// reach us, since zone channels nest).
    fn maybe_request(&mut self, ctx: &mut Ctx<'_, SfMsg>, g: u32) {
        if self.role == Role::Source {
            return;
        }
        let st = self.groups.get(&g).expect("group exists");
        if st.request_timer.is_some() || st.complete() || st.deficit() == 0 {
            return;
        }
        // Only scopes our next request would ask at (or wider) can cover
        // us — narrower ones already failed to produce a repair if the
        // request escalated past them.
        let covered_by = st.zlc[st.scope_idx..].iter().copied().max().unwrap_or(0);
        if st.llc() > covered_by {
            self.arm_request(ctx, g);
        }
    }

    fn request_fire(&mut self, ctx: &mut Ctx<'_, SfMsg>, g: u32) {
        let chain_entries = self.session.ancestor_chain();
        // A zone's representative asks *upstream*: its own zone shares its
        // losses by construction (everything it missed, its subtree missed
        // too), so its requests start at the parent scope.
        let zcr_floor = if self.chain.len() > 1 && self.session.is_zcr_of(self.chain[0]) {
            1
        } else {
            0
        };
        let st = self.groups.get_mut(&g).expect("group exists");
        st.request_timer = None;
        if st.complete() || st.deficit() == 0 {
            return;
        }
        st.scope_idx = st.scope_idx.max(zcr_floor);
        let sent_level = st.scope_idx;
        let zone = self.chain[sent_level];
        let needed = st.deficit();
        let llc = st.llc();
        let max_idx = st.max_idx().unwrap_or(st.k.saturating_sub(1));
        // Our own NACK establishes the new ZLC for the zone.
        st.zlc[sent_level] = st.zlc[sent_level].max(llc);
        let zlc_now = st.zlc[sent_level];
        st.attempts += 1;
        if st.attempts >= self.cfg.attempts_per_zone && st.scope_idx + 1 < self.chain.len() {
            // Escalate to the next-larger scope (paper §4: "after two
            // attempts at each zone").
            st.scope_idx += 1;
            st.attempts = 0;
        }
        st.i = (st.i + 1).min(self.cfg.max_backoff);
        let bytes = self.cfg.nack_bytes + 12 * chain_entries.len() as u32;
        ctx.multicast(
            self.channels[zone.idx()],
            SfMsg::Nack {
                group: g,
                zone,
                llc,
                needed,
                max_idx,
                chain: chain_entries,
            },
            bytes,
        );
        self.nacks_sent += 1;
        ctx.probe(ProbeEvent::Nack {
            group: g,
            level: sent_level as u32,
            outcome: NackOutcome::Sent,
            llc,
            zlc: zlc_now,
        });
        // Keep waiting: if the repairs get lost we must re-request.
        self.arm_request(ctx, g);
    }

    // ---- reply (repair) side ---------------------------------------------

    fn can_repair(&self, g: u32) -> bool {
        match self.role {
            Role::Source => true,
            Role::Receiver => {
                self.cfg.receiver_repairs && self.groups.get(&g).is_some_and(|s| s.complete())
            }
        }
    }

    fn arm_reply(&mut self, ctx: &mut Ctx<'_, SfMsg>, g: u32, level: usize) {
        let (d1, d2, default) = (self.cfg.d1, self.cfg.d2, self.cfg.default_dist);
        let st = self.groups.get_mut(&g).expect("group exists");
        if st.reply_timer[level].is_some() || st.outstanding[level] == 0 {
            return;
        }
        let d = st.last_nack_dist[level].unwrap_or(default);
        let factor = ctx.rng().range_f64(d1, d1 + d2);
        // No backoff on reply timers (paper §4).
        st.reply_timer[level] = Some(ctx.set_timer(d.mul_f64(factor), tok(KIND_REPLY, g, level)));
    }

    /// Starts (or continues) transmitting queued repairs for a zone if a
    /// pacing chain is not already running.  The zone's ZCR and the sender
    /// call this directly on NACK arrival / group completion — they repair
    /// *immediately* (paper §4: the sender "immediately generating and
    /// transmitting the first of any queued repairs"), which is what
    /// suppresses the slower timer-based repairers.
    fn kick_repairs(&mut self, ctx: &mut Ctx<'_, SfMsg>, g: u32, level: usize) {
        let st = self.groups.get_mut(&g).expect("group exists");
        if st.pacing[level] || st.outstanding[level] == 0 {
            return;
        }
        if !self.can_repair(g) {
            return;
        }
        self.send_repair(ctx, g, level);
    }

    /// Transmits one FEC repair into the given zone and paces the next.
    fn send_repair(&mut self, ctx: &mut Ctx<'_, SfMsg>, g: u32, level: usize) {
        let spacing = self.cfg.send_interval / 2;
        let bytes = self.cfg.packet_bytes;
        let zone = self.chain[level];
        let chan = self.channels[zone.idx()];
        let st = self.groups.get_mut(&g).expect("group exists");
        if st.outstanding[level] == 0 {
            st.pacing[level] = false;
            return;
        }
        let idx = st.next_repair_idx();
        st.receive(idx); // a repairer holds what it generates
        st.outstanding[level] -= 1;
        let k = st.k;
        let more = st.outstanding[level] > 0;
        st.pacing[level] = more;
        // Announce the whole paced burst (paper §4's "what will be the new
        // highest packet identifier") so one heard packet suppresses rival
        // repairers for the entire burst.
        let burst_end = idx + st.outstanding[level];
        st.reserve(burst_end);
        ctx.multicast(
            chan,
            SfMsg::Fec {
                group: g,
                idx,
                k,
                burst_end,
            },
            bytes,
        );
        self.repairs_sent += 1;
        if more {
            // Half the inter-packet interval, the paper's §4 repair pacing.
            ctx.set_timer(spacing, tok(KIND_SPACING, g, level));
        }
    }

    fn reply_fire(&mut self, ctx: &mut Ctx<'_, SfMsg>, g: u32, level: usize) {
        let st = self.groups.get_mut(&g).expect("group exists");
        st.reply_timer[level] = None;
        if st.outstanding[level] == 0 {
            return;
        }
        if !self.can_repair(g) {
            // Speculation failed: we never completed the group, so we
            // cannot generate FEC.  Surrender this round; the requester
            // will escalate if nobody else answered either.
            self.groups.get_mut(&g).expect("group exists").outstanding[level] = 0;
            return;
        }
        self.kick_repairs(ctx, g, level);
    }

    // ---- preemptive injection and ZLC measurement --------------------------

    /// On group completion: inject predicted FEC into zones this member
    /// represents, and schedule the ZLC measurement that feeds the EWMA.
    fn on_complete(&mut self, ctx: &mut Ctx<'_, SfMsg>, g: u32) {
        let now = ctx.now();
        let d_sa = self.d_sa().as_secs_f64().max(1e-9);
        {
            let st = self.groups.get_mut(&g).expect("group exists");
            st.complete_at = Some(now);
            // Close the adaptive-timer round if this group saw losses.
            if st.peak_llc > 0 {
                let waited = st
                    .first_heard
                    .map(|t| now.saturating_since(t).as_secs_f64())
                    .unwrap_or(0.0);
                self.window.end_round(waited / d_sa);
                ctx.probe(ProbeEvent::Window {
                    lo: self.window.c1(),
                    width: self.window.c2(),
                    ave_dup: self.window.ave_dup(),
                    ave_delay: self.window.ave_delay(),
                });
            }
            ctx.probe(ProbeEvent::GroupClose {
                group: g,
                complete: true,
                held: st.held(),
                k: st.k,
            });
            st.phase = Phase::Repair;
            st.i = 1;
            if let Some(t) = st.request_timer.take() {
                ctx.cancel_timer(t);
            }
            if let Some(t) = st.ldp_timer.take() {
                ctx.cancel_timer(t);
            }
            // Feed the §7 receiver-report summary: the fraction of this
            // group's identifiers we never received, smoothed.
            if self.role == Role::Receiver {
                let span = st.max_idx().map(|m| m + 1).unwrap_or(st.k).max(1);
                let frac = st.peak_llc as f64 / span as f64;
                self.observed_loss += 0.25 * (frac - self.observed_loss);
                self.session.set_local_loss(self.observed_loss);
            }
        }
        let repairs_allowed = self.role == Role::Source || self.cfg.receiver_repairs;
        for level in 0..self.chain.len() {
            let zone = self.chain[level];
            let is_zcr = match self.role {
                Role::Source => level == self.chain.len() - 1,
                Role::Receiver => self.session.is_zcr_of(zone),
            };
            if !is_zcr {
                // Plain repairers answer queued NACKs now that they can.
                if repairs_allowed && self.groups[&g].outstanding[level] > 0 {
                    self.arm_reply(ctx, g, level);
                }
                continue;
            }
            // ZCR duties: preemptive injection sized by the policy…
            if self.injection_on && repairs_allowed && !self.groups[&g].injected[level] {
                self.groups.get_mut(&g).expect("exists").injected[level] = true;
                let n = self.decide_injection(ctx, g, level);
                if n > 0 {
                    let st = self.groups.get_mut(&g).expect("exists");
                    st.outstanding[level] += n;
                }
            }
            // …the first queued repair goes out immediately (paper §4)…
            if repairs_allowed {
                self.kick_repairs(ctx, g, level);
            }
            // …and the true ZLC is measured 2.5 RTTs later (paper §4).
            if !self.groups[&g].measured[level] {
                let rtt = self
                    .session
                    .max_known_rtt()
                    .unwrap_or(self.cfg.default_dist * 2);
                let delay = rtt.mul_f64(self.measure_rtt_factor);
                ctx.set_timer(delay, tok(KIND_MEASURE, g, level));
            }
        }
    }

    /// Upper bound on how often a ZLC measurement is re-armed while the
    /// session layer still has no RTT estimate.  Bounds the startup defer
    /// so a permanently partitioned member still measures eventually.
    const MAX_MEASURE_DEFERS: u8 = 8;

    /// Asks the policy how much FEC to inject into `level`'s zone for
    /// group `g`, records the decision, and returns the clamped count.
    fn decide_injection(&mut self, ctx: &mut Ctx<'_, SfMsg>, g: u32, level: usize) -> u32 {
        let pred = self.policy.predicted(level);
        let n = self.policy.injected(level, self.cfg.group_size) as u32;
        // The budget invariant is the agent's to enforce; the auditor
        // still flags a policy that tried to exceed it.
        let chosen = n.min(self.cfg.group_size);
        ctx.probe(ProbeEvent::PolicyDecision {
            policy: self.policy.name(),
            group: g,
            level: level as u32,
            pred,
            target: self.policy.target(),
            chosen: n,
            group_size: self.cfg.group_size,
        });
        chosen
    }

    fn measure_fire(&mut self, ctx: &mut Ctx<'_, SfMsg>, g: u32, level: usize) {
        // Startup ordering: when the measurement was armed before the
        // session converged, its delay came from the `default_dist * 2`
        // fallback.  If that undershoots the true round-trip the timer
        // fires before the zone's first repair round settles, folding a
        // spurious low observation into the predictor.  Defer until an
        // RTT is known (bounded by `MAX_MEASURE_DEFERS`).
        if self.session.max_known_rtt().is_none() {
            let fallback = self.cfg.default_dist * 2;
            let factor = self.measure_rtt_factor;
            let st = self.groups.get_mut(&g).expect("group exists");
            if !st.measured[level] && st.measure_defers[level] < Self::MAX_MEASURE_DEFERS {
                st.measure_defers[level] += 1;
                ctx.set_timer(fallback.mul_f64(factor), tok(KIND_MEASURE, g, level));
                return;
            }
        }
        let st = self.groups.get_mut(&g).expect("group exists");
        if st.measured[level] {
            return;
        }
        st.measured[level] = true;
        // The zone's observed repair demand for this group: the largest
        // `needed` any NACK in the zone advertised.  This is measured net
        // of upstream redundancy — a receiver already covered by packets
        // injected at larger scopes never NACKed — which realizes the
        // paper's rule that subservient zones add less redundancy when
        // upstream zones add more.  When injection suppressed every NACK
        // the observation is 0 and the prediction decays, matching the
        // paper's "decays over time; receivers request additional repairs
        // as necessary".
        let observed = st.zone_needed[level] as f64;
        self.policy.on_zlc_measurement(level, observed);
        ctx.probe(ProbeEvent::ZlcUpdate {
            group: g,
            level: level as u32,
            observed,
            pred: self.policy.predicted(level),
        });
    }

    // ---- packet handling ---------------------------------------------------

    fn handle_payload(
        &mut self,
        ctx: &mut Ctx<'_, SfMsg>,
        g: u32,
        idx: u32,
        channel: ChannelId,
        // For repairs: the sender's announced burst end (its "new highest
        // packet identifier"); `idx` for data packets.
        burst_end: u32,
        is_repair: bool,
    ) {
        self.group_entry(g);
        let send_interval = self.cfg.send_interval;
        {
            let st = self.groups.get_mut(&g).expect("exists");
            if st.first_heard.is_none() {
                st.first_heard = Some(ctx.now());
            }
            // First contact with the group: arm the LDP timer (receivers).
            if self.role == Role::Receiver
                && st.phase == Phase::Ldp
                && st.ldp_timer.is_none()
                && st.complete_at.is_none()
            {
                // Expected residue of the group at the advertised rate,
                // plus slack for jitter (paper §4's inter-packet estimate).
                let remaining = st.k.saturating_sub(idx.min(st.k - 1) + 1) as u64;
                let delay = send_interval * (remaining + 3);
                st.ldp_timer = Some(ctx.set_timer(delay, tok(KIND_LDP, g, 0)));
            }
            st.receive(idx);
        }

        if is_repair {
            // Repairs heard on zone `z` also satisfy every nested zone we
            // belong to: dequeue speculative repairs at this level and all
            // deeper ones (paper §4) — an entire announced burst at once,
            // and the promised identifier range is reserved so our own
            // later repairs cannot collide with it.
            let burst = burst_end.saturating_sub(idx) + 1;
            if let Some(&level) = self.chan_to_level.get(&channel) {
                for j in 0..=level {
                    let st = self.groups.get_mut(&g).expect("exists");
                    st.reserve(burst_end);
                    st.outstanding[j] = st.outstanding[j].saturating_sub(burst);
                    if st.outstanding[j] == 0 {
                        if let Some(t) = st.reply_timer[j].take() {
                            // Enough repairs seen or promised: suppress.
                            ctx.cancel_timer(t);
                        }
                    }
                }
            }
            // A repair resets the request backoff (paper §4: "any time a
            // repair arrives, i is reset to 1").
            let st = self.groups.get_mut(&g).expect("exists");
            if st.request_timer.is_some() && !st.complete() {
                st.i = 1;
                self.arm_request(ctx, g);
            }
        }

        let complete_now = {
            let st = self.groups.get_mut(&g).expect("exists");
            st.complete() && st.complete_at.is_none()
        };
        if complete_now {
            self.on_complete(ctx, g);
        } else {
            self.maybe_request(ctx, g);
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn handle_nack(
        &mut self,
        ctx: &mut Ctx<'_, SfMsg>,
        src: NodeId,
        g: u32,
        zone: ZoneId,
        llc: u32,
        needed: u32,
        max_idx: u32,
        chain: &[sharqfec_session::AncestorEntry],
    ) {
        let Some(level) = self.chain.iter().position(|&z| z == zone) else {
            return; // NACK for a zone we are not in (cannot happen via scoping)
        };
        self.group_entry(g);
        let dist = self
            .session
            .estimate_rtt(src, chain)
            .map(|rtt| rtt / 2)
            .unwrap_or(self.cfg.default_dist);
        let max_backoff = self.cfg.max_backoff;

        let (became_visible, suppress_outcome, my_llc, zlc_now) = {
            let st = self.groups.get_mut(&g).expect("exists");
            let newly = st.note_exists(max_idx);
            let zlc_increased = llc > st.zlc[level];
            st.zlc[level] = st.zlc[level].max(llc);
            // Repairer bookkeeping: the zone needs max(needed) repairs —
            // FEC covers concurrent NACKers with one set of packets.
            st.outstanding[level] = st.outstanding[level].max(needed);
            st.zone_needed[level] = st.zone_needed[level].max(needed);
            st.last_nack_dist[level] = Some(dist);

            // Requester-side suppression — but only by NACKs at or above
            // the scope our own next request will use.  A request that
            // escalated to `scope_idx` did so because every narrower
            // scope failed to produce a repair (correlated zone loss
            // leaves nobody there able to serve); chatter at those
            // proven-futile scopes must not postpone the wider ask, or a
            // zone that lost the same packets everywhere livelocks on
            // its own retries.
            let mut outcome = None;
            if st.request_timer.is_some() && !st.complete() && level >= st.scope_idx {
                if !zlc_increased {
                    // Duplicate pressure: back off (paper §4's `i` rule)
                    // and, with §7 adaptive timers, widen the window.
                    st.i = (st.i + 1).min(max_backoff);
                    self.window.saw_duplicate();
                    outcome = Some(NackOutcome::SuppressedDuplicate);
                } else if st.llc() <= st.zlc[st.scope_idx..].iter().copied().max().unwrap_or(0) {
                    // Someone worse off spoke for us at a scope enclosing
                    // our next request: the repairs it provokes reach
                    // every nested member, so push our NACK out.
                    outcome = Some(NackOutcome::SuppressedCovered);
                }
            }
            (newly > 0, outcome, st.llc(), st.zlc[level])
        };
        // Loss evidence for the injection policy: a NACK advertises the
        // zone's uncovered shortfall (the EWMA ignores this; reactive
        // policies fold it in as a floor on the next decision).
        self.policy.on_nack(level, needed);
        if let Some(outcome) = suppress_outcome {
            ctx.probe(ProbeEvent::Nack {
                group: g,
                level: level as u32,
                outcome,
                llc: my_llc,
                zlc: zlc_now,
            });
            self.arm_request(ctx, g); // redraw with the (possibly bumped) i
        }
        if became_visible {
            // The advertised identifier revealed losses we hadn't seen.
            self.maybe_request(ctx, g);
        }
        // Reply scheduling.  The zone's representative (and the sender at
        // the largest scope) repairs immediately; everyone else arms a
        // suppression timer and usually gets beaten to it (speculative for
        // receivers that have not completed the group yet).
        let is_zone_rep = match self.role {
            Role::Source => level == self.chain.len() - 1,
            Role::Receiver => self.session.is_zcr_of(self.chain[level]),
        };
        let may_reply = match self.role {
            Role::Source => true,
            Role::Receiver => self.cfg.receiver_repairs,
        };
        if is_zone_rep && may_reply && self.can_repair(g) {
            self.kick_repairs(ctx, g, level);
        } else if may_reply {
            self.arm_reply(ctx, g, level);
        }
    }

    fn ldp_fire(&mut self, ctx: &mut Ctx<'_, SfMsg>, g: u32) {
        {
            let st = self.groups.get_mut(&g).expect("exists");
            st.ldp_timer = None;
            if st.complete() {
                return;
            }
            st.phase = Phase::Repair;
            // Every data identifier must exist by now; tail losses that no
            // gap could reveal become visible here.
            st.note_exists(st.k - 1);
        }
        self.maybe_request(ctx, g);
    }

    fn audit_fire(&mut self, ctx: &mut Ctx<'_, SfMsg>, _token_group: u32) {
        if self.role == Role::Source {
            return;
        }
        let mut all_done = true;
        for g in 0..self.cfg.group_count() {
            self.group_entry(g);
            let (incomplete, needs_timer, held, k) = {
                let st = self.groups.get_mut(&g).expect("exists");
                if st.complete() {
                    (false, false, 0, 0)
                } else {
                    st.phase = Phase::Repair;
                    st.note_exists(st.k - 1);
                    (true, st.request_timer.is_none(), st.held(), st.k)
                }
            };
            if incomplete {
                all_done = false;
                ctx.probe(ProbeEvent::GroupClose {
                    group: g,
                    complete: false,
                    held,
                    k,
                });
                if needs_timer {
                    // Liveness watchdog: regardless of suppression state,
                    // a receiver still missing packets must eventually ask
                    // again (the paper's repairee rule).
                    self.arm_request(ctx, g);
                }
            }
        }
        if !all_done {
            ctx.set_timer(self.cfg.send_interval * 50, tok(KIND_AUDIT, 0, 0));
        }
    }

    // ---- source transmission ------------------------------------------------

    fn send_tick(&mut self, ctx: &mut Ctx<'_, SfMsg>) {
        debug_assert_eq!(self.role, Role::Source);
        if self.next_seq >= self.cfg.total_packets {
            return;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let g = seq / self.cfg.group_size;
        let idx = seq % self.cfg.group_size;
        let k = self.cfg.packets_in_group(g);
        self.group_entry(g);
        ctx.probe(ProbeEvent::Sender { seq });
        ctx.multicast(
            self.root_channel,
            SfMsg::Data { group: g, idx, k },
            self.cfg.packet_bytes,
        );
        let group_finished = idx + 1 == k;
        if group_finished {
            self.finish_group(ctx, g);
        }
        if self.next_seq < self.cfg.total_packets {
            ctx.set_timer(self.cfg.send_interval, tok(KIND_SEND, 0, 0));
        }
    }

    /// The source's end-of-group duties: preemptive redundancy sized by
    /// the root-zone policy, the first queued repair, and the ZLC
    /// measurement timer.
    fn finish_group(&mut self, ctx: &mut Ctx<'_, SfMsg>, g: u32) {
        let root = self.chain.len() - 1;
        if self.injection_on && !self.groups[&g].injected[root] {
            self.groups.get_mut(&g).expect("exists").injected[root] = true;
            let n = self.decide_injection(ctx, g, root);
            if n > 0 {
                self.groups.get_mut(&g).expect("exists").outstanding[root] += n;
            }
        }
        self.kick_repairs(ctx, g, root);
        if !self.groups[&g].measured[root] {
            let rtt = self
                .session
                .max_known_rtt()
                .unwrap_or(self.cfg.default_dist * 2);
            ctx.set_timer(
                rtt.mul_f64(self.measure_rtt_factor),
                tok(KIND_MEASURE, g, root),
            );
        }
    }
}

impl Agent<SfMsg> for SfAgent {
    fn state_bytes(&self) -> usize {
        use std::mem::size_of;
        // The per-zone channel table is behind a shared `Arc` (one copy
        // per run, not per member) and is excluded, like the hierarchy
        // inside the session core.
        let mut bytes = size_of::<SfAgent>()
            + self.session.state_bytes()
            + self.chain.capacity() * size_of::<ZoneId>()
            + self.chan_to_level.capacity()
                * (size_of::<ChannelId>() + size_of::<usize>() + size_of::<u64>())
            + self.groups.capacity()
                * (size_of::<u32>() + size_of::<GroupState>() + size_of::<u64>());
        for g in self.groups.values() {
            bytes += g.heap_bytes();
        }
        bytes
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_, SfMsg>) {
        {
            let mut b = bridge!(self, ctx);
            self.session.start(&mut b);
        }
        self.drain_seat_events();
        // On a warm restart (NodeRestart after a crash) every timer this
        // agent had pending died with the crash epoch, but the per-group
        // state still holds the handles.  A handle that *looks* armed
        // suppresses both `maybe_request` and the completeness watchdog's
        // re-arm, so a group mid-recovery at crash time would never ask
        // again.  Forget the dead timers and restart recovery: LDP cannot
        // resume (the group's burst is long gone from the wire), repair
        // pacing chains are broken, and the speculative repair queues
        // died with their reply timers.  On a cold start the group map is
        // empty and this is a no-op.  Group order matters: every armed
        // request consumes an RNG draw, so reconcile in group order, not
        // hash order.
        let mut groups: Vec<u32> = self.groups.keys().copied().collect();
        groups.sort_unstable();
        for g in groups {
            let st = self.groups.get_mut(&g).expect("exists");
            st.ldp_timer = None;
            st.request_timer = None;
            if st.phase == Phase::Ldp {
                st.phase = Phase::Repair;
            }
            for l in 0..st.reply_timer.len() {
                st.reply_timer[l] = None;
                st.pacing[l] = false;
                st.outstanding[l] = 0;
            }
            self.maybe_request(ctx, g);
        }
        match self.role {
            Role::Source => {
                let delay = self.cfg.data_start.saturating_since(ctx.now());
                ctx.set_timer(delay, tok(KIND_SEND, 0, 0));
            }
            Role::Receiver => {
                let end = self.cfg.data_start
                    + self.cfg.send_interval * self.cfg.total_packets as u64
                    + self.cfg.send_interval * 50;
                ctx.set_timer(end.saturating_since(ctx.now()), tok(KIND_AUDIT, 0, 0));
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, SfMsg>, token: u64) {
        if is_session_token(token) {
            {
                let mut b = bridge!(self, ctx);
                self.session.on_timer(&mut b, token);
            }
            self.drain_seat_events();
            return;
        }
        let (kind, g, level) = tok_parts(token);
        match kind {
            KIND_SEND => self.send_tick(ctx),
            KIND_LDP => self.ldp_fire(ctx, g),
            KIND_REQ => self.request_fire(ctx, g),
            KIND_REPLY => self.reply_fire(ctx, g, level),
            KIND_SPACING => {
                self.groups.get_mut(&g).expect("group exists").pacing[level] = false;
                if self.can_repair(g) {
                    self.send_repair(ctx, g, level);
                }
            }
            KIND_MEASURE => self.measure_fire(ctx, g, level),
            KIND_AUDIT => self.audit_fire(ctx, g),
            other => unreachable!("unknown protocol timer kind {other}"),
        }
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_, SfMsg>, pkt: &Packet<SfMsg>) {
        match &pkt.payload {
            SfMsg::Session(msg) => {
                {
                    let mut b = bridge!(self, ctx);
                    self.session.on_msg(&mut b, pkt.src, msg);
                }
                self.drain_seat_events();
            }
            SfMsg::Data { group, idx, .. } => {
                self.handle_payload(ctx, *group, *idx, pkt.channel, *idx, false);
            }
            SfMsg::Fec {
                group,
                idx,
                burst_end,
                ..
            } => {
                self.handle_payload(ctx, *group, *idx, pkt.channel, *burst_end, true);
            }
            SfMsg::Nack {
                group,
                zone,
                llc,
                needed,
                max_idx,
                chain,
            } => {
                self.handle_nack(ctx, pkt.src, *group, *zone, *llc, *needed, *max_idx, chain);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_round_trip() {
        for kind in [KIND_SEND, KIND_REQ, KIND_REPLY, KIND_MEASURE] {
            for g in [0u32, 1, 63, 1000] {
                for l in [0usize, 1, 2] {
                    let t = tok(kind, g, l);
                    assert!(!is_session_token(t));
                    assert_eq!(tok_parts(t), (kind, g, l));
                }
            }
        }
    }
}
