//! The hierarchy of administratively scoped zones (paper §3.2, Figure 2/3).
//!
//! SHARQFEC's localization rests on nesting: a single data channel with
//! maximum scope, plus one repair channel per zone, where zones form a tree
//! — every zone's member set is a subset of its parent's, and sibling zones
//! are disjoint.  A receiver belongs to a *chain* of zones from its
//! smallest (most local) zone up to the root; NACK scope escalation walks
//! up that chain.
//!
//! This crate is purely structural: it validates and answers queries about
//! the nesting.  Dynamic state (ZCR election, loss counts) lives in the
//! protocol crates.
//!
//! # Example
//!
//! ```
//! use sharqfec_netsim::NodeId;
//! use sharqfec_scoping::ZoneHierarchyBuilder;
//!
//! let n = |i| NodeId(i);
//! let mut b = ZoneHierarchyBuilder::new(6);
//! let root = b.root(&[n(0), n(1), n(2), n(3), n(4), n(5)]);
//! let left = b.child(root, &[n(1), n(2)]).unwrap();
//! let _right = b.child(root, &[n(3), n(4), n(5)]).unwrap();
//! let h = b.build().unwrap();
//!
//! assert_eq!(h.smallest_zone(n(2)), left);
//! assert_eq!(h.zone(left).parent, Some(root));
//! // Node 0 only belongs to the root zone.
//! assert_eq!(h.zone_chain(n(0)), vec![root]);
//! // Node 2's chain runs smallest -> largest.
//! assert_eq!(h.zone_chain(n(2)), vec![left, root]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use sharqfec_netsim::NodeId;

/// Identifier of a zone within one [`ZoneHierarchy`], dense from 0.
/// Zone 0 is always the root (largest scope).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ZoneId(pub u32);

impl ZoneId {
    /// The root (largest-scope) zone.
    pub const ROOT: ZoneId = ZoneId(0);

    /// The index as usize, for table lookups.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl core::fmt::Debug for ZoneId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Z{}", self.0)
    }
}

impl core::fmt::Display for ZoneId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Z{}", self.0)
    }
}

/// One administratively scoped zone.
#[derive(Clone, Debug)]
pub struct Zone {
    /// This zone's id.
    pub id: ZoneId,
    /// Enclosing zone (`None` for the root).
    pub parent: Option<ZoneId>,
    /// Child zones, in creation order.
    pub children: Vec<ZoneId>,
    /// Session members inside this zone, sorted by node id.
    pub members: Vec<NodeId>,
    /// Nesting depth: 0 for the root, parent's level + 1 otherwise.
    pub level: u32,
}

/// Errors detected while building a hierarchy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScopeError {
    /// `root` was never called, or called twice.
    RootMisuse(&'static str),
    /// A child zone referenced an unknown parent.
    UnknownParent(ZoneId),
    /// A child zone contained a node its parent does not.
    NotNested {
        /// The offending zone.
        zone: ZoneId,
        /// The node missing from the parent.
        node: NodeId,
    },
    /// Two sibling zones share a node.
    SiblingOverlap {
        /// First sibling.
        a: ZoneId,
        /// Second sibling.
        b: ZoneId,
        /// A node they share.
        node: NodeId,
    },
    /// A zone was declared with no members.
    EmptyZone(ZoneId),
    /// A member node id was out of range.
    NodeOutOfRange(NodeId),
}

impl core::fmt::Display for ScopeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ScopeError::RootMisuse(msg) => write!(f, "root zone misuse: {msg}"),
            ScopeError::UnknownParent(z) => write!(f, "unknown parent zone {z}"),
            ScopeError::NotNested { zone, node } => {
                write!(f, "zone {zone} contains node {node} absent from its parent")
            }
            ScopeError::SiblingOverlap { a, b, node } => {
                write!(f, "sibling zones {a} and {b} overlap at node {node}")
            }
            ScopeError::EmptyZone(z) => write!(f, "zone {z} has no members"),
            ScopeError::NodeOutOfRange(n) => write!(f, "node {n} out of range"),
        }
    }
}

impl std::error::Error for ScopeError {}

/// Builder for a [`ZoneHierarchy`].
pub struct ZoneHierarchyBuilder {
    node_count: usize,
    zones: Vec<Zone>,
    have_root: bool,
}

impl ZoneHierarchyBuilder {
    /// Starts building a hierarchy over `node_count` session nodes.
    pub fn new(node_count: usize) -> ZoneHierarchyBuilder {
        ZoneHierarchyBuilder {
            node_count,
            zones: Vec::new(),
            have_root: false,
        }
    }

    /// Declares the root (largest-scope) zone.  Must be called exactly once,
    /// before any children.
    pub fn root(&mut self, members: &[NodeId]) -> ZoneId {
        assert!(!self.have_root, "root zone already declared");
        assert!(self.zones.is_empty(), "root must be the first zone");
        self.have_root = true;
        let mut ms: Vec<NodeId> = members.to_vec();
        ms.sort();
        ms.dedup();
        self.zones.push(Zone {
            id: ZoneId::ROOT,
            parent: None,
            children: Vec::new(),
            members: ms,
            level: 0,
        });
        ZoneId::ROOT
    }

    /// Declares a zone nested inside `parent`.
    pub fn child(&mut self, parent: ZoneId, members: &[NodeId]) -> Result<ZoneId, ScopeError> {
        if parent.idx() >= self.zones.len() {
            return Err(ScopeError::UnknownParent(parent));
        }
        let id = ZoneId(self.zones.len() as u32);
        let level = self.zones[parent.idx()].level + 1;
        let mut ms: Vec<NodeId> = members.to_vec();
        ms.sort();
        ms.dedup();
        self.zones[parent.idx()].children.push(id);
        self.zones.push(Zone {
            id,
            parent: Some(parent),
            children: Vec::new(),
            members: ms,
            level,
        });
        Ok(id)
    }

    /// Validates nesting and produces the hierarchy.
    pub fn build(self) -> Result<ZoneHierarchy, ScopeError> {
        if !self.have_root {
            return Err(ScopeError::RootMisuse("no root zone declared"));
        }
        // Per-zone sanity.
        for z in &self.zones {
            if z.members.is_empty() {
                return Err(ScopeError::EmptyZone(z.id));
            }
            for &m in &z.members {
                if m.idx() >= self.node_count {
                    return Err(ScopeError::NodeOutOfRange(m));
                }
            }
        }
        // Nesting: every member of a child is a member of the parent.
        // Member vectors are sorted, so a two-pointer subset scan checks
        // each child in O(|parent| + |child|) — a per-child `HashSet` of
        // the parent rebuilt fanout times was the dominant build cost at
        // 10⁵–10⁶ members.
        for z in &self.zones {
            if let Some(p) = z.parent {
                let parent = &self.zones[p.idx()].members;
                let mut pi = 0;
                for &m in &z.members {
                    while pi < parent.len() && parent[pi] < m {
                        pi += 1;
                    }
                    if pi >= parent.len() || parent[pi] != m {
                        return Err(ScopeError::NotNested {
                            zone: z.id,
                            node: m,
                        });
                    }
                }
            }
        }
        // Sibling disjointness: tag every member of every child with its
        // zone, sort once per parent, and look for adjacent duplicates.
        // O(n log n) per level instead of pairwise set intersections.
        for z in &self.zones {
            if z.children.len() < 2 {
                continue;
            }
            let mut tagged: Vec<(NodeId, ZoneId)> = z
                .children
                .iter()
                .flat_map(|&c| self.zones[c.idx()].members.iter().map(move |&m| (m, c)))
                .collect();
            tagged.sort();
            for w in tagged.windows(2) {
                if w[0].0 == w[1].0 {
                    return Err(ScopeError::SiblingOverlap {
                        a: w[0].1,
                        b: w[1].1,
                        node: w[0].0,
                    });
                }
            }
        }

        // Smallest zone per node: the deepest zone containing it.  Depth
        // increases with index only within one chain, so scan all zones and
        // keep the deepest hit.
        let mut smallest: Vec<Option<ZoneId>> = vec![None; self.node_count];
        for z in &self.zones {
            for &m in &z.members {
                let cur = &mut smallest[m.idx()];
                let replace = match cur {
                    None => true,
                    Some(old) => self.zones[old.idx()].level < z.level,
                };
                if replace {
                    *cur = Some(z.id);
                }
            }
        }

        Ok(ZoneHierarchy {
            zones: self.zones,
            smallest,
        })
    }
}

/// A validated nesting of administratively scoped zones.
#[derive(Clone, Debug)]
pub struct ZoneHierarchy {
    zones: Vec<Zone>,
    /// Deepest zone containing each node (None if the node is outside the
    /// session entirely).
    smallest: Vec<Option<ZoneId>>,
}

impl ZoneHierarchy {
    /// Number of zones.
    pub fn zone_count(&self) -> usize {
        self.zones.len()
    }

    /// All zones, root first.
    pub fn zones(&self) -> &[Zone] {
        &self.zones
    }

    /// Zone lookup.
    pub fn zone(&self, id: ZoneId) -> &Zone {
        &self.zones[id.idx()]
    }

    /// The deepest (smallest-scope) zone containing `node`.
    ///
    /// # Panics
    ///
    /// Panics if the node belongs to no zone — every session member must be
    /// in at least the root zone.
    pub fn smallest_zone(&self, node: NodeId) -> ZoneId {
        self.smallest[node.idx()].unwrap_or_else(|| panic!("node {node} belongs to no zone"))
    }

    /// Whether `node` is in any zone (i.e. in the session).
    pub fn in_session(&self, node: NodeId) -> bool {
        self.smallest.get(node.idx()).is_some_and(|s| s.is_some())
    }

    /// The chain of zones containing `node`, smallest first, ending at the
    /// root.  This is the NACK scope-escalation order.
    pub fn zone_chain(&self, node: NodeId) -> Vec<ZoneId> {
        let mut chain = Vec::new();
        let mut cur = Some(self.smallest_zone(node));
        while let Some(z) = cur {
            chain.push(z);
            cur = self.zones[z.idx()].parent;
        }
        chain
    }

    /// Whether `node` is a member of `zone`.
    pub fn is_member(&self, zone: ZoneId, node: NodeId) -> bool {
        self.zones[zone.idx()].members.binary_search(&node).is_ok()
    }

    /// The next-larger zone (parent), if any.
    pub fn parent(&self, zone: ZoneId) -> Option<ZoneId> {
        self.zones[zone.idx()].parent
    }

    /// Walks from `zone` up `steps` levels (clamped at the root).
    pub fn escalate(&self, zone: ZoneId, steps: u32) -> ZoneId {
        let mut cur = zone;
        for _ in 0..steps {
            match self.parent(cur) {
                Some(p) => cur = p,
                None => break,
            }
        }
        cur
    }

    /// Zones listed deepest-first (useful for bottom-up election phases the
    /// paper performs top-down: reverse it).
    pub fn zones_by_depth_desc(&self) -> Vec<ZoneId> {
        let mut ids: Vec<ZoneId> = self.zones.iter().map(|z| z.id).collect();
        ids.sort_by_key(|z| std::cmp::Reverse(self.zones[z.idx()].level));
        ids
    }

    /// Leaf zones (no children).
    pub fn leaves(&self) -> Vec<ZoneId> {
        self.zones
            .iter()
            .filter(|z| z.children.is_empty())
            .map(|z| z.id)
            .collect()
    }
}

/// Interned symbol naming one zone path, dense from 0 within one
/// [`ZoneInterner`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ZoneSym(pub u32);

impl ZoneSym {
    /// The index as usize, for table lookups.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// Interns hierarchical zone names as dense `u32` symbols.
///
/// Large generated topologies must not carry a heap `String` per zone (or
/// worse, per node): at 10⁶ receivers even short labels cost tens of
/// megabytes and a pointer chase per use.  The interner stores each zone
/// name as a fixed-size `(parent symbol, ordinal)` pair — 8 bytes per
/// zone, total memory O(zones) — and reconstructs the human-readable
/// dotted path only on demand (diagnostics, plots).
///
/// Interning is idempotent: the same `(parent, ordinal)` pair always
/// yields the same symbol.
#[derive(Clone, Debug, Default)]
pub struct ZoneInterner {
    /// Per symbol: parent symbol (`u32::MAX` for a root) and ordinal.
    entries: Vec<(u32, u32)>,
    index: std::collections::HashMap<(u32, u32), u32>,
}

impl ZoneInterner {
    const NO_PARENT: u32 = u32::MAX;

    /// An empty interner.
    pub fn new() -> ZoneInterner {
        ZoneInterner::default()
    }

    /// Interns the zone that is child number `ordinal` of `parent`
    /// (`None` for a root-level name).  Returns the existing symbol if
    /// this exact path was interned before.
    pub fn intern(&mut self, parent: Option<ZoneSym>, ordinal: u32) -> ZoneSym {
        let p = parent.map_or(Self::NO_PARENT, |s| s.0);
        if let Some(&sym) = self.index.get(&(p, ordinal)) {
            return ZoneSym(sym);
        }
        if let Some(parent) = parent {
            assert!(parent.idx() < self.entries.len(), "unknown parent symbol");
        }
        let sym = u32::try_from(self.entries.len()).expect("interner full");
        self.entries.push((p, ordinal));
        self.index.insert((p, ordinal), sym);
        ZoneSym(sym)
    }

    /// The parent symbol, or `None` for a root-level name.
    pub fn parent(&self, sym: ZoneSym) -> Option<ZoneSym> {
        match self.entries[sym.idx()].0 {
            Self::NO_PARENT => None,
            p => Some(ZoneSym(p)),
        }
    }

    /// The ordinal this symbol holds under its parent.
    pub fn ordinal(&self, sym: ZoneSym) -> u32 {
        self.entries[sym.idx()].1
    }

    /// Renders the dotted path, e.g. `"0.2.7"` — root ordinal first.
    /// Allocates; intended for diagnostics, never for hot paths.
    pub fn path(&self, sym: ZoneSym) -> String {
        let mut ordinals = Vec::new();
        let mut cur = Some(sym);
        while let Some(s) = cur {
            ordinals.push(self.ordinal(s));
            cur = self.parent(s);
        }
        ordinals.reverse();
        let mut out = String::new();
        for (i, o) in ordinals.iter().enumerate() {
            if i > 0 {
                out.push('.');
            }
            out.push_str(&o.to_string());
        }
        out
    }

    /// Number of interned symbols.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no symbol was interned yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    /// Paper Figure 3 shape: Z0 root over everything, Z1/Z2 intermediate,
    /// Z3..Z6 leaves.
    fn figure3() -> (ZoneHierarchy, [ZoneId; 7]) {
        let all: Vec<NodeId> = (0..14).map(n).collect();
        let mut b = ZoneHierarchyBuilder::new(14);
        let z0 = b.root(&all);
        let z1 = b
            .child(
                z0,
                &[n(2), n(4), n(5), n(8), n(9), n(10), n(11), n(12), n(13)],
            )
            .unwrap();
        let z2 = b.child(z0, &[n(3), n(6), n(7)]).unwrap();
        let z3 = b.child(z1, &[n(8), n(9), n(10)]).unwrap();
        let z4 = b.child(z1, &[n(5), n(11), n(12), n(13)]).unwrap();
        let z5 = b.child(z2, &[n(6)]).unwrap();
        let z6 = b.child(z2, &[n(7)]).unwrap();
        (b.build().unwrap(), [z0, z1, z2, z3, z4, z5, z6])
    }

    #[test]
    fn figure3_nesting_queries() {
        let (h, [z0, z1, _z2, _z3, z4, ..]) = figure3();
        assert_eq!(h.zone_count(), 7);
        assert_eq!(h.smallest_zone(n(11)), z4);
        assert_eq!(h.zone_chain(n(11)), vec![z4, z1, z0]);
        assert_eq!(h.smallest_zone(n(0)), z0);
        assert_eq!(h.zone_chain(n(0)), vec![z0]);
        assert_eq!(h.zone(z4).level, 2);
        assert_eq!(h.parent(z4), Some(z1));
        assert_eq!(h.parent(z0), None);
    }

    #[test]
    fn escalation_clamps_at_root() {
        let (h, [z0, z1, _, _, z4, ..]) = figure3();
        assert_eq!(h.escalate(z4, 0), z4);
        assert_eq!(h.escalate(z4, 1), z1);
        assert_eq!(h.escalate(z4, 2), z0);
        assert_eq!(h.escalate(z4, 99), z0);
    }

    #[test]
    fn membership_checks() {
        let (h, [z0, z1, z2, ..]) = figure3();
        assert!(h.is_member(z0, n(0)));
        assert!(h.is_member(z1, n(5)));
        assert!(!h.is_member(z2, n(5)));
        assert!(h.in_session(n(13)));
    }

    #[test]
    fn leaves_and_depth_order() {
        let (h, [z0, _, _, z3, z4, z5, z6]) = figure3();
        assert_eq!(h.leaves(), vec![z3, z4, z5, z6]);
        let order = h.zones_by_depth_desc();
        assert_eq!(order.last(), Some(&z0));
        assert_eq!(h.zone(order[0]).level, 2);
    }

    #[test]
    fn non_nested_child_rejected() {
        let mut b = ZoneHierarchyBuilder::new(4);
        let z0 = b.root(&[n(0), n(1)]);
        b.child(z0, &[n(1), n(2)]).unwrap(); // n(2) not in root
        assert!(matches!(
            b.build().unwrap_err(),
            ScopeError::NotNested {
                node: NodeId(2),
                ..
            }
        ));
    }

    #[test]
    fn overlapping_siblings_rejected() {
        let mut b = ZoneHierarchyBuilder::new(4);
        let z0 = b.root(&[n(0), n(1), n(2)]);
        b.child(z0, &[n(0), n(1)]).unwrap();
        b.child(z0, &[n(1), n(2)]).unwrap();
        assert!(matches!(
            b.build().unwrap_err(),
            ScopeError::SiblingOverlap {
                node: NodeId(1),
                ..
            }
        ));
    }

    #[test]
    fn empty_zone_rejected() {
        let mut b = ZoneHierarchyBuilder::new(2);
        let z0 = b.root(&[n(0)]);
        b.child(z0, &[]).unwrap();
        assert!(matches!(b.build().unwrap_err(), ScopeError::EmptyZone(_)));
    }

    #[test]
    fn out_of_range_member_rejected() {
        let mut b = ZoneHierarchyBuilder::new(2);
        b.root(&[n(0), n(5)]);
        assert!(matches!(
            b.build().unwrap_err(),
            ScopeError::NodeOutOfRange(NodeId(5))
        ));
    }

    #[test]
    fn missing_root_rejected() {
        let b = ZoneHierarchyBuilder::new(2);
        assert!(matches!(b.build().unwrap_err(), ScopeError::RootMisuse(_)));
    }

    #[test]
    #[should_panic(expected = "already declared")]
    fn double_root_panics() {
        let mut b = ZoneHierarchyBuilder::new(2);
        b.root(&[n(0)]);
        b.root(&[n(0)]);
    }

    #[test]
    fn unknown_parent_rejected() {
        let mut b = ZoneHierarchyBuilder::new(2);
        b.root(&[n(0)]);
        assert_eq!(
            b.child(ZoneId(9), &[n(0)]).unwrap_err(),
            ScopeError::UnknownParent(ZoneId(9))
        );
    }

    #[test]
    fn members_are_sorted_and_deduped() {
        let mut b = ZoneHierarchyBuilder::new(4);
        b.root(&[n(3), n(1), n(3), n(0)]);
        let h = b.build().unwrap();
        assert_eq!(h.zone(ZoneId::ROOT).members, vec![n(0), n(1), n(3)]);
    }

    #[test]
    #[should_panic(expected = "belongs to no zone")]
    fn smallest_zone_panics_for_outsider() {
        let mut b = ZoneHierarchyBuilder::new(3);
        b.root(&[n(0), n(1)]);
        let h = b.build().unwrap();
        h.smallest_zone(n(2));
    }

    #[test]
    fn interner_is_idempotent_and_walks_paths() {
        let mut i = ZoneInterner::new();
        let root = i.intern(None, 0);
        let a = i.intern(Some(root), 2);
        let b = i.intern(Some(a), 7);
        assert_eq!(i.intern(Some(root), 2), a, "re-interning dedups");
        assert_eq!(i.intern(None, 0), root);
        assert_eq!(i.len(), 3);
        assert_eq!(i.parent(b), Some(a));
        assert_eq!(i.parent(root), None);
        assert_eq!(i.ordinal(b), 7);
        assert_eq!(i.path(b), "0.2.7");
        assert_eq!(i.path(root), "0");
        // Same ordinal under a different parent is a different symbol.
        let c = i.intern(Some(b), 2);
        assert_ne!(c, a);
        assert_eq!(i.path(c), "0.2.7.2");
    }

    #[test]
    #[should_panic(expected = "unknown parent symbol")]
    fn interner_rejects_unknown_parent() {
        let mut i = ZoneInterner::new();
        i.intern(Some(ZoneSym(5)), 0);
    }
}
