//! Property-based tests for zone-hierarchy invariants under randomly
//! generated (valid) nestings.

use proptest::prelude::*;
use sharqfec_netsim::NodeId;
use sharqfec_scoping::{ZoneHierarchy, ZoneHierarchyBuilder, ZoneId};

/// Strategy: a random valid hierarchy over `n` nodes.
///
/// Construction guarantees validity: recursively partition a contiguous
/// id range; each partition cell optionally becomes a child zone.
#[derive(Debug, Clone)]
struct Spec {
    n: u32,
    /// Split points as fractions for two levels of partitioning.
    level1_cells: usize,
    level2_split: bool,
}

fn spec() -> impl Strategy<Value = Spec> {
    (6u32..40, 2usize..5, any::<bool>()).prop_map(|(n, level1_cells, level2_split)| Spec {
        n,
        level1_cells,
        level2_split,
    })
}

fn build(s: &Spec) -> ZoneHierarchy {
    let ids = |lo: u32, hi: u32| -> Vec<NodeId> { (lo..hi).map(NodeId).collect() };
    let mut b = ZoneHierarchyBuilder::new(s.n as usize);
    let root = b.root(&ids(0, s.n));
    // Node 0 is "the source" and stays root-only; partition 1..n.
    let span = s.n - 1;
    let cells = s.level1_cells.min(span as usize).max(1) as u32;
    let per = span / cells;
    for c in 0..cells {
        let lo = 1 + c * per;
        let hi = if c == cells - 1 {
            s.n
        } else {
            1 + (c + 1) * per
        };
        if hi <= lo {
            continue;
        }
        let z1 = b.child(root, &ids(lo, hi)).expect("contiguous cell nests");
        if s.level2_split && hi - lo >= 2 {
            let mid = lo + (hi - lo) / 2;
            b.child(z1, &ids(lo, mid)).expect("half nests");
            b.child(z1, &ids(mid, hi)).expect("half nests");
        }
    }
    b.build().expect("construction is valid by design")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every node's zone chain starts at its smallest zone, ends at the
    /// root, strictly decreases in level toward the root, and each zone
    /// in it contains the node.
    #[test]
    fn zone_chains_are_well_formed(s in spec()) {
        let h = build(&s);
        for node in (0..s.n).map(NodeId) {
            let chain = h.zone_chain(node);
            prop_assert_eq!(chain[0], h.smallest_zone(node));
            prop_assert_eq!(*chain.last().unwrap(), ZoneId::ROOT);
            for w in chain.windows(2) {
                prop_assert_eq!(h.parent(w[0]), Some(w[1]));
                prop_assert!(h.zone(w[0]).level == h.zone(w[1]).level + 1);
            }
            for &z in &chain {
                prop_assert!(h.is_member(z, node));
            }
        }
    }

    /// Nesting: every zone's members are a subset of its parent's, and
    /// sibling zones are disjoint.
    #[test]
    fn nesting_and_disjointness(s in spec()) {
        let h = build(&s);
        for z in h.zones() {
            if let Some(p) = z.parent {
                for &m in &z.members {
                    prop_assert!(h.is_member(p, m));
                }
            }
            for (i, &a) in z.children.iter().enumerate() {
                for &b in &z.children[i + 1..] {
                    for &m in &h.zone(a).members {
                        prop_assert!(!h.is_member(b, m), "{m} in siblings {a} and {b}");
                    }
                }
            }
        }
    }

    /// Escalation walks exactly `levels` steps up and clamps at the root.
    #[test]
    fn escalation_is_bounded_by_depth(s in spec()) {
        let h = build(&s);
        for node in (0..s.n).map(NodeId) {
            let z = h.smallest_zone(node);
            let depth = h.zone(z).level;
            prop_assert_eq!(h.escalate(z, depth), ZoneId::ROOT);
            prop_assert_eq!(h.escalate(z, depth + 7), ZoneId::ROOT);
        }
    }

    /// The membership partition: nodes whose smallest zone is `z` are
    /// exactly z's members minus all descendants' members.
    #[test]
    fn smallest_zone_partitions_members(s in spec()) {
        let h = build(&s);
        for z in h.zones() {
            let in_children: std::collections::HashSet<NodeId> = z
                .children
                .iter()
                .flat_map(|&c| h.zone(c).members.iter().copied())
                .collect();
            for &m in &z.members {
                let expect_here = !in_children.contains(&m);
                prop_assert_eq!(
                    h.smallest_zone(m) == z.id,
                    expect_here,
                    "node {} zone {}",
                    m,
                    z.id
                );
            }
        }
    }

    /// Deepest-first ordering really is deepest-first.
    #[test]
    fn depth_ordering(s in spec()) {
        let h = build(&s);
        let order = h.zones_by_depth_desc();
        for w in order.windows(2) {
            prop_assert!(h.zone(w[0]).level >= h.zone(w[1]).level);
        }
    }
}
