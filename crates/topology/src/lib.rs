//! Evaluation topologies.
//!
//! Every simulation in the paper runs on a concrete network; this crate
//! builds them:
//!
//! * [`figure10()`] — the paper's §6 test network: a source feeding 7
//!   backbone ("mesh") receivers over 45 Mbit/s links, each of which heads
//!   a balanced tree of 3 children × 4 leaves on 10 Mbit/s, 20 ms links —
//!   112 receivers under a 3-level zone hierarchy.
//! * [`simple`] — chains, stars, and balanced trees used by the §6.1
//!   ZCR-election experiments and unit tests.
//! * [`national()`] — the §5.1 "national distribution" 4-level hierarchy
//!   (regions → cities → suburbs → subscribers), scaled down for
//!   simulation; the full 10,000,210-receiver version is evaluated
//!   analytically in `sharqfec-analysis`.
//!
//! Each builder returns a [`BuiltTopology`]: graph + source + zone
//! hierarchy + the by-design Zone Closest Receivers (paper §5: "a cache is
//! placed next to the zone's Border Gateway Router").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figure10;
pub mod national;
pub mod random;
pub mod scaled;
pub mod simple;

pub use figure10::{figure10, Figure10Params};
pub use national::{national, NationalParams};
pub use random::{random_tree, RandomTreeParams};
pub use scaled::{scaled_tree, ScaledTopology, ScaledTreeParams};
pub use simple::{balanced_tree, chain, star};

use sharqfec_netsim::{NodeId, ShardPlan, Topology};
use sharqfec_scoping::{ZoneHierarchy, ZoneId};

/// A topology bundled with everything a protocol run needs.
#[derive(Debug)]
pub struct BuiltTopology {
    /// The network graph.
    pub topology: Topology,
    /// The data source.
    pub source: NodeId,
    /// All receivers (every session member except the source).
    pub receivers: Vec<NodeId>,
    /// The administrative zone hierarchy.
    pub hierarchy: ZoneHierarchy,
    /// The by-design ZCR of each zone, indexed by [`ZoneId`].  For the root
    /// zone this is the source.  Protocol runs may start from these
    /// (static configuration) or elect their own (paper §5.2).
    pub designed_zcrs: Vec<NodeId>,
}

impl BuiltTopology {
    /// All session members: source plus receivers.
    pub fn members(&self) -> Vec<NodeId> {
        let mut all = vec![self.source];
        all.extend_from_slice(&self.receivers);
        all
    }

    /// The by-design ZCR of a zone.
    pub fn zcr(&self, zone: ZoneId) -> NodeId {
        self.designed_zcrs[zone.idx()]
    }

    /// A deterministic [`ShardPlan`] for the sharded engine: the
    /// source-rooted subtrees of this (tree) topology are packed into at
    /// most `shards` shards, so no zone straddles a shard boundary and
    /// every inter-shard edge is one of the source's uplinks.  Non-tree
    /// topologies fall back to a single shard (serial execution).
    pub fn shard_plan(&self, shards: usize) -> ShardPlan {
        ShardPlan::by_subtrees(&self.topology, self.source, shards)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sharqfec_netsim::routing::Spt;
    use sharqfec_scoping::ZoneId;

    /// Shared invariant check: every zone's membership must be contiguous
    /// under the source-rooted routing tree, or scope pruning would
    /// disconnect it (see `sharqfec-netsim::channel`).
    fn assert_zones_spt_connected(built: &BuiltTopology) {
        use sharqfec_netsim::channel::Channel;
        for zone in built.hierarchy.zones() {
            // A zone channel is rooted wherever repairs originate; the
            // strictest requirement is connectivity under the zone's own
            // ZCR as source. Check both the global source (for the root
            // zone) and the designed ZCR.
            let root = built.zcr(zone.id);
            let spt = Spt::compute(&built.topology, root);
            let chan = Channel::new(built.topology.node_count(), &zone.members);
            assert!(
                chan.is_spt_connected(&spt, root),
                "zone {} not SPT-connected from its ZCR {root}",
                zone.id
            );
        }
    }

    #[test]
    fn figure10_zones_are_routable() {
        let built = figure10(&Figure10Params::default());
        assert_zones_spt_connected(&built);
    }

    #[test]
    fn national_zones_are_routable() {
        let built = national(&NationalParams::small());
        assert_zones_spt_connected(&built);
    }

    #[test]
    fn simple_builders_zones_are_routable() {
        assert_zones_spt_connected(&chain(6));
        assert_zones_spt_connected(&star(6));
        assert_zones_spt_connected(&balanced_tree(3, 3));
    }

    #[test]
    fn members_includes_source_first() {
        let built = chain(4);
        let m = built.members();
        assert_eq!(m[0], built.source);
        assert_eq!(m.len(), 4);
    }

    #[test]
    fn zcr_of_root_zone_is_source() {
        for built in [chain(5), star(6), balanced_tree(2, 3)] {
            assert_eq!(built.zcr(ZoneId::ROOT), built.source);
        }
    }
}
