//! Chains, forks ("stars"), and balanced trees.
//!
//! The paper's §6.1 reports that "other networks that were purely chain- or
//! tree-based were also simulated, and, as expected, the appropriate
//! receivers were elected as the ZCR for each zone with each election at
//! each zone taking either one or two challenges."  These builders supply
//! those networks, shaped like the paper's Figure 9 challenge cases.
//!
//! A zone must be *physically contiguous* for administrative scoping to
//! work — every routing path between two zone members must stay inside the
//! zone.  That is why the chain puts the source at one end, the star is
//! really the paper's **fork** (a gateway receiver between the source and
//! the spokes), and the balanced tree gets one child zone per level-1
//! subtree rather than a single all-receivers zone.

use crate::BuiltTopology;
use sharqfec_netsim::{LinkParams, NodeId, SimDuration, TopologyBuilder};
use sharqfec_scoping::ZoneHierarchyBuilder;

/// Default link: 10 Mbit/s, 20 ms, lossless (loss is configured per
/// experiment, not per builder, for these protocol-logic topologies).
fn default_link() -> LinkParams {
    LinkParams::lossless(SimDuration::from_millis(20), 10_000_000)
}

/// A chain `source - r1 - r2 - … - r(n-1)` (the paper's Figure 9, left).
/// One child zone holds all receivers; `r1` — adjacent to the source — is
/// its true closest receiver and designed ZCR.
///
/// `n` counts all nodes including the source; must be ≥ 2.
pub fn chain(n: usize) -> BuiltTopology {
    assert!(n >= 2, "chain needs at least a source and one receiver");
    let mut b = TopologyBuilder::new();
    let ids = b.add_nodes("c", n);
    for w in ids.windows(2) {
        b.add_link(w[0], w[1], default_link());
    }
    let topology = b.build();
    let source = ids[0];
    let receivers = ids[1..].to_vec();

    let mut zb = ZoneHierarchyBuilder::new(n);
    let root = zb.root(&ids);
    let child = zb.child(root, &receivers).expect("receivers nest in root");
    let hierarchy = zb.build().expect("chain hierarchy is valid");
    let mut designed_zcrs = vec![source; 2];
    designed_zcrs[child.idx()] = receivers[0];

    BuiltTopology {
        topology,
        source,
        receivers,
        hierarchy,
        designed_zcrs,
    }
}

/// The paper's Figure 9 **fork** case (exported as `star` for its shape
/// seen from the gateway): `source — gw — {spoke₁, spoke₂, …}` with spokes
/// of increasing latency (20, 25, 30, … ms) so distances are distinct and
/// the election outcome is unambiguous — the gateway receiver is closest.
///
/// `n` counts all nodes including the source; must be ≥ 3 (source, gateway,
/// one spoke).  `receivers[0]` is the gateway.
pub fn star(n: usize) -> BuiltTopology {
    assert!(
        n >= 3,
        "star needs a source, a gateway, and at least one spoke"
    );
    let mut b = TopologyBuilder::new();
    let source = b.add_node("src");
    let gw = b.add_node("gw");
    b.add_link(source, gw, default_link());
    let mut receivers = vec![gw];
    for i in 0..(n - 2) {
        let spoke = b.add_node(format!("spoke{i}"));
        let lat = SimDuration::from_millis(20 + 5 * i as u64);
        b.add_link(gw, spoke, LinkParams::lossless(lat, 10_000_000));
        receivers.push(spoke);
    }
    let topology = b.build();

    let mut zb = ZoneHierarchyBuilder::new(n);
    let all: Vec<NodeId> = std::iter::once(source)
        .chain(receivers.iter().copied())
        .collect();
    let root = zb.root(&all);
    let child = zb.child(root, &receivers).expect("receivers nest in root");
    let hierarchy = zb.build().expect("star hierarchy is valid");
    let mut designed_zcrs = vec![source; 2];
    designed_zcrs[child.idx()] = gw;

    BuiltTopology {
        topology,
        source,
        receivers,
        hierarchy,
        designed_zcrs,
    }
}

/// A balanced tree of the given fanout and depth rooted at the source.
/// Depth 1 means the source plus `fanout` leaves.  Each level-1 subtree is
/// one child zone (physically contiguous), with the subtree head as its
/// designed ZCR.
pub fn balanced_tree(fanout: usize, depth: usize) -> BuiltTopology {
    assert!(fanout >= 1 && depth >= 1, "tree needs fanout, depth >= 1");
    let mut b = TopologyBuilder::new();
    let source = b.add_node("root");
    let mut receivers = Vec::new();
    // Build each level-1 subtree breadth-first, tracking its members.
    let mut subtrees: Vec<(NodeId, Vec<NodeId>)> = Vec::new();
    for s in 0..fanout {
        let head = b.add_node(format!("s{s}"));
        b.add_link(source, head, default_link());
        receivers.push(head);
        let mut members = vec![head];
        let mut frontier = vec![head];
        for d in 2..=depth {
            let mut next = Vec::new();
            for &parent in &frontier {
                for c in 0..fanout {
                    let node = b.add_node(format!("s{s}d{d}f{c}"));
                    b.add_link(parent, node, default_link());
                    receivers.push(node);
                    members.push(node);
                    next.push(node);
                }
            }
            frontier = next;
        }
        subtrees.push((head, members));
    }
    let topology = b.build();
    let n = topology.node_count();

    let mut zb = ZoneHierarchyBuilder::new(n);
    let all: Vec<NodeId> = std::iter::once(source)
        .chain(receivers.iter().copied())
        .collect();
    let root = zb.root(&all);
    let mut designed_zcrs = vec![source];
    debug_assert_eq!(root.idx(), 0);
    for (head, members) in &subtrees {
        let z = zb.child(root, members).expect("subtree nests");
        debug_assert_eq!(designed_zcrs.len(), z.idx());
        designed_zcrs.push(*head);
    }
    let hierarchy = zb.build().expect("tree hierarchy is valid");

    BuiltTopology {
        topology,
        source,
        receivers,
        hierarchy,
        designed_zcrs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sharqfec_netsim::routing::Spt;
    use sharqfec_scoping::ZoneId;

    #[test]
    fn chain_counts_and_shape() {
        let c = chain(5);
        assert_eq!(c.topology.node_count(), 5);
        assert_eq!(c.topology.link_count(), 4);
        assert_eq!(c.receivers.len(), 4);
        // Source sits at one end: farthest node is 4 hops * 20ms away.
        let spt = Spt::compute(&c.topology, c.source);
        assert_eq!(spt.delay_to(c.receivers[3]), SimDuration::from_millis(80));
    }

    #[test]
    fn star_is_a_fork_with_gateway_closest() {
        let s = star(5);
        assert_eq!(s.topology.node_count(), 5);
        let spt = Spt::compute(&s.topology, s.source);
        // gateway at 20ms; spokes at 40, 45, 50ms from the source.
        assert_eq!(spt.delay_to(s.receivers[0]), SimDuration::from_millis(20));
        assert_eq!(spt.delay_to(s.receivers[1]), SimDuration::from_millis(40));
        assert_eq!(spt.delay_to(s.receivers[2]), SimDuration::from_millis(45));
        assert_eq!(spt.delay_to(s.receivers[3]), SimDuration::from_millis(50));
        assert_eq!(s.zcr(ZoneId(1)), s.receivers[0]);
    }

    #[test]
    fn balanced_tree_counts_and_zones() {
        let t = balanced_tree(3, 2);
        // 1 + 3 + 9
        assert_eq!(t.topology.node_count(), 13);
        assert_eq!(t.receivers.len(), 12);
        // one zone per subtree + root
        assert_eq!(t.hierarchy.zone_count(), 4);
        // each subtree zone holds head + 3 leaves
        for z in t.hierarchy.zones().iter().skip(1) {
            assert_eq!(z.members.len(), 4);
            assert!(t.hierarchy.is_member(z.id, t.zcr(z.id)));
        }
    }

    #[test]
    fn chain_child_zone_excludes_source() {
        let c = chain(4);
        let child = ZoneId(1);
        assert!(!c.hierarchy.is_member(child, c.source));
        for r in &c.receivers {
            assert!(c.hierarchy.is_member(child, *r));
        }
        assert_eq!(c.zcr(child), c.receivers[0]);
    }

    #[test]
    #[should_panic(expected = "needs")]
    fn degenerate_chain_rejected() {
        chain(1);
    }

    #[test]
    #[should_panic(expected = "needs")]
    fn degenerate_star_rejected() {
        star(2);
    }
}
