//! The §5.1 "national distribution" hierarchy.
//!
//! The paper sizes a hypothetical sporting-event broadcast: one national
//! sender, 10 regions, 20 cities per region, 100 suburbs per city, 500
//! subscribers per suburb — 10,000,210 receivers under a 4-level zone
//! hierarchy, with dedicated caching receivers (by-design ZCRs) at every
//! bifurcation except the suburb level.
//!
//! The full-scale version is analysed arithmetically in
//! `sharqfec-analysis::national` (Figure 8's table needs no packet-level
//! simulation).  This builder produces the same *shape* at configurable,
//! simulation-friendly counts, so examples and integration tests can run a
//! real protocol over a miniature national network.
//!
//! Structure per zone level (each is a star off its parent hub):
//! `source — region hub — city hub — suburb hub — subscribers`.
//! Hubs are dedicated caching receivers; they are session members and the
//! by-design ZCRs of their zones.

use crate::BuiltTopology;
use sharqfec_netsim::{LinkParams, NodeId, SimDuration, TopologyBuilder};
use sharqfec_scoping::ZoneHierarchyBuilder;

/// Shape of the national hierarchy.
#[derive(Clone, Debug)]
pub struct NationalParams {
    /// Number of regions (paper: 10).
    pub regions: usize,
    /// Cities per region (paper: 20).
    pub cities_per_region: usize,
    /// Suburbs per city (paper: 100).
    pub suburbs_per_city: usize,
    /// Subscribers per suburb (paper: 500).
    pub subscribers_per_suburb: usize,
    /// Loss on subscriber access links (the congested edge).
    pub access_loss: f64,
    /// Loss on hub-to-hub distribution links.
    pub backbone_loss: f64,
}

impl NationalParams {
    /// The paper's full scale (10,000,210 receivers) — for arithmetic only;
    /// do not build a graph from this.
    pub fn paper() -> NationalParams {
        NationalParams {
            regions: 10,
            cities_per_region: 20,
            suburbs_per_city: 100,
            subscribers_per_suburb: 500,
            access_loss: 0.02,
            backbone_loss: 0.01,
        }
    }

    /// A simulation-friendly miniature: 2 regions × 2 cities × 2 suburbs ×
    /// 4 subscribers = 46 receivers.
    pub fn small() -> NationalParams {
        NationalParams {
            regions: 2,
            cities_per_region: 2,
            suburbs_per_city: 2,
            subscribers_per_suburb: 4,
            access_loss: 0.05,
            backbone_loss: 0.01,
        }
    }

    /// Total receiver count, mirroring the paper's 10,000,210 at full
    /// scale: dedicated caches at region and city bifurcations, plus the
    /// subscribers.  Suburbs get *no* dedicated node — "at the suburb level
    /// one of the 500 subscribers will be elected to perform this task"
    /// (§5.1), so the suburb star is centred on its first subscriber.
    pub fn receiver_count(&self) -> usize {
        let hubs = self.regions + self.regions * self.cities_per_region;
        let subs = self.regions
            * self.cities_per_region
            * self.suburbs_per_city
            * self.subscribers_per_suburb;
        hubs + subs
    }
}

/// Builds a miniature national hierarchy.
///
/// # Panics
///
/// Panics if the parameters would create more than 100,000 nodes — use
/// [`sharqfec_analysis`-style arithmetic](NationalParams::paper) for the
/// full-scale numbers instead of a graph.
pub fn national(params: &NationalParams) -> BuiltTopology {
    let total = params.receiver_count() + 1;
    assert!(
        total <= 100_000,
        "national({total} nodes) too large to simulate; use the analytic model"
    );

    let mut b = TopologyBuilder::new();
    let source = b.add_node("national-src");
    let backbone = |lat_ms: u64, loss: f64| {
        LinkParams::new(SimDuration::from_millis(lat_ms), 45_000_000, loss)
    };
    let access = LinkParams::new(SimDuration::from_millis(5), 10_000_000, params.access_loss);

    let mut receivers = Vec::new();
    let mut zb = ZoneHierarchyBuilder::new(total);
    // Collect member lists as we build, then declare zones afterwards.
    struct SuburbRec {
        hub: NodeId,
        members: Vec<NodeId>,
    }
    struct CityRec {
        hub: NodeId,
        members: Vec<NodeId>,
        suburbs: Vec<SuburbRec>,
    }
    struct RegionRec {
        hub: NodeId,
        members: Vec<NodeId>,
        cities: Vec<CityRec>,
    }

    let mut region_recs = Vec::new();
    for r in 0..params.regions {
        let region_hub = b.add_node(format!("region{r}"));
        b.add_link(source, region_hub, backbone(25, params.backbone_loss));
        receivers.push(region_hub);
        let mut region_members = vec![region_hub];
        let mut cities = Vec::new();
        for c in 0..params.cities_per_region {
            let city_hub = b.add_node(format!("r{r}c{c}"));
            b.add_link(region_hub, city_hub, backbone(10, params.backbone_loss));
            receivers.push(city_hub);
            let mut city_members = vec![city_hub];
            let mut suburbs = Vec::new();
            for s in 0..params.suburbs_per_city {
                // No dedicated suburb node: the first subscriber is the
                // star centre and by-design ZCR (paper §5.1 elects one of
                // the subscribers at this level).
                assert!(
                    params.subscribers_per_suburb >= 1,
                    "suburbs need at least one subscriber"
                );
                let suburb_hub = b.add_node(format!("r{r}c{c}s{s}u0"));
                b.add_link(city_hub, suburb_hub, backbone(5, params.backbone_loss));
                receivers.push(suburb_hub);
                let mut suburb_members = vec![suburb_hub];
                for u in 1..params.subscribers_per_suburb {
                    let sub = b.add_node(format!("r{r}c{c}s{s}u{u}"));
                    b.add_link(suburb_hub, sub, access);
                    receivers.push(sub);
                    suburb_members.push(sub);
                }
                city_members.extend_from_slice(&suburb_members);
                suburbs.push(SuburbRec {
                    hub: suburb_hub,
                    members: suburb_members,
                });
            }
            region_members.extend_from_slice(&city_members);
            cities.push(CityRec {
                hub: city_hub,
                members: city_members,
                suburbs,
            });
        }
        region_recs.push(RegionRec {
            hub: region_hub,
            members: region_members,
            cities,
        });
    }

    let topology = b.build();
    let all: Vec<NodeId> = (0..total as u32).map(NodeId).collect();
    let z_root = zb.root(&all);
    let mut designed_zcrs = vec![source];
    debug_assert_eq!(z_root.idx(), 0);
    for region in &region_recs {
        let zr = zb.child(z_root, &region.members).expect("region nests");
        debug_assert_eq!(designed_zcrs.len(), zr.idx());
        designed_zcrs.push(region.hub);
        for city in &region.cities {
            let zc = zb.child(zr, &city.members).expect("city nests");
            debug_assert_eq!(designed_zcrs.len(), zc.idx());
            designed_zcrs.push(city.hub);
            for suburb in &city.suburbs {
                let zs = zb.child(zc, &suburb.members).expect("suburb nests");
                debug_assert_eq!(designed_zcrs.len(), zs.idx());
                designed_zcrs.push(suburb.hub);
            }
        }
    }
    let hierarchy = zb.build().expect("national hierarchy is valid");

    BuiltTopology {
        topology,
        source,
        receivers,
        hierarchy,
        designed_zcrs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_matches_10m() {
        let p = NationalParams::paper();
        assert_eq!(p.receiver_count(), 10_000_210);
    }

    #[test]
    fn small_scale_counts() {
        let p = NationalParams::small();
        // hubs: 2 regions + 4 cities = 6; subs: 8 suburbs * 4 = 32; total 38.
        assert_eq!(p.receiver_count(), 38);
        let built = national(&p);
        assert_eq!(built.topology.node_count(), 39);
        assert_eq!(built.receivers.len(), 38);
        // zones: 1 root + 2 regions + 4 cities + 8 suburbs
        assert_eq!(built.hierarchy.zone_count(), 15);
    }

    #[test]
    fn subscriber_zone_chain_is_four_deep() {
        let built = national(&NationalParams::small());
        // The last-added receiver is a subscriber.
        let sub = *built.receivers.last().unwrap();
        assert_eq!(built.hierarchy.zone_chain(sub).len(), 4);
    }

    #[test]
    fn hub_is_designed_zcr_of_its_zone() {
        let built = national(&NationalParams::small());
        for zone in built.hierarchy.zones().iter().skip(1) {
            let zcr = built.zcr(zone.id);
            assert!(built.hierarchy.is_member(zone.id, zcr));
            // the designed ZCR of a non-root zone is its hub: the member
            // closest (in the graph) to the source.
            let spt = sharqfec_netsim::routing::Spt::compute(&built.topology, built.source);
            let best = zone
                .members
                .iter()
                .copied()
                .min_by_key(|m| (spt.delay_to(*m), m.idx()))
                .unwrap();
            assert_eq!(zcr, best, "zone {}", zone.id);
        }
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn full_scale_graph_is_refused() {
        national(&NationalParams::paper());
    }
}
