//! Hierarchical zone-tree generator for large-scale runs (10⁵–10⁶
//! receivers).
//!
//! [`random_tree`](crate::random_tree) shapes its network one random
//! attachment at a time, which is fine at hundreds of receivers but never
//! produces the deep, regular hub hierarchies the paper's scaling
//! argument lives on — and the paper-scale builders top out around 10³.
//! [`scaled_tree`] fills the gap: a source feeds `fanout` level-1 hubs,
//! each hub feeds `fanout` sub-hubs, and so on for `depth` hub levels;
//! every leaf hub heads a leaf zone of receivers whose sizes follow a
//! seeded jittered distribution that still sums to exactly
//! `receivers`.  Every hub heads a zone covering its subtree, so the zone
//! tree mirrors the physical tree, zone membership is a contiguous node-id
//! range (node ids are assigned in DFS preorder), and nothing O(n²) — or
//! even O(n) per node — is ever materialized:
//!
//! * nodes are added unlabelled (no per-node `String`);
//! * zones are named through a [`ZoneInterner`] — 8 bytes per zone, the
//!   dotted path rendered only on demand;
//! * the engine side stays scale-safe too (tree routing oracle, lazy
//!   SPTs, range-encoded channels — see `sharqfec-netsim`).
//!
//! Identical `(params, seed)` pairs yield identical networks, independent
//! of thread count or build order.

use crate::BuiltTopology;
use sharqfec_netsim::prelude::{FaultEvent, FaultPlan};
use sharqfec_netsim::{LinkId, LinkParams, NodeId, SimDuration, SimRng, SimTime, TopologyBuilder};
use sharqfec_scoping::{ZoneHierarchyBuilder, ZoneId, ZoneInterner, ZoneSym};

/// Parameters for [`scaled_tree`].
#[derive(Clone, Debug)]
pub struct ScaledTreeParams {
    /// Exact total receiver count (hubs are receivers too).  Must be at
    /// least the hub count `fanout + fanout² + … + fanout^depth`.
    pub receivers: usize,
    /// Hub levels between the source and the leaf receivers (≥ 1).
    pub depth: u32,
    /// Sub-hubs per hub (≥ 1); also the source's hub count.
    pub fanout: usize,
    /// Relative jitter of leaf-zone sizes in `[0, 1)`: 0 splits the
    /// receivers evenly, 0.5 draws zone weights in `[0.5, 1.5]`.  The
    /// total always stays exactly `receivers`.
    pub zone_spread: f64,
    /// Hub-to-hub (and source-to-hub) latency range in ms (lo, hi], drawn
    /// uniformly per link.
    pub hub_latency_ms: (u64, u64),
    /// Leaf-hub-to-receiver latency range in ms.
    pub leaf_latency_ms: (u64, u64),
    /// Per-link loss range on hub links.
    pub hub_loss: (f64, f64),
    /// Per-link loss range on leaf links.
    pub leaf_loss: (f64, f64),
}

impl Default for ScaledTreeParams {
    fn default() -> ScaledTreeParams {
        ScaledTreeParams {
            receivers: 500,
            depth: 2,
            fanout: 4,
            zone_spread: 0.3,
            hub_latency_ms: (10, 30),
            leaf_latency_ms: (2, 20),
            hub_loss: (0.0, 0.02),
            leaf_loss: (0.0, 0.05),
        }
    }
}

impl ScaledTreeParams {
    /// Picks a hierarchy shape for `receivers` total receivers: deeper
    /// and wider as the session grows, keeping leaf zones at a few
    /// hundred members so per-receiver state stays zone-bounded while the
    /// session spans orders of magnitude.
    pub fn for_receivers(receivers: usize) -> ScaledTreeParams {
        let (depth, fanout) = match receivers {
            0..=59 => (1, 2),
            60..=1_999 => (2, 4),
            2_000..=49_999 => (2, 10),
            50_000..=499_999 => (3, 10),
            _ => (3, 16),
        };
        ScaledTreeParams {
            receivers,
            depth,
            fanout,
            ..ScaledTreeParams::default()
        }
    }

    /// Number of hub nodes: `fanout + fanout² + … + fanout^depth`.
    pub fn hub_count(&self) -> usize {
        (1..=self.depth).map(|l| self.fanout.pow(l)).sum()
    }

    /// Number of leaf zones: `fanout^depth`.
    pub fn leaf_zone_count(&self) -> usize {
        self.fanout.pow(self.depth)
    }
}

/// A [`BuiltTopology`] plus the interned zone naming produced by
/// [`scaled_tree`].
#[derive(Debug)]
pub struct ScaledTopology {
    /// Graph, source, receivers, hierarchy, designed ZCRs.
    pub built: BuiltTopology,
    /// Interned zone names (dotted hub paths).
    pub zone_names: ZoneInterner,
    /// Symbol of each zone, indexed by [`ZoneId`].
    pub zone_syms: Vec<ZoneSym>,
}

impl ScaledTopology {
    /// Renders a zone's dotted hub path, e.g. `"0.2.7"` (root is `"0"`).
    pub fn zone_label(&self, zone: ZoneId) -> String {
        self.zone_names.path(self.zone_syms[zone.idx()])
    }

    /// The link bundle of a zone's region: every link internal to the
    /// zone's contiguous preorder member range plus the uplink that
    /// connects the zone's hub to its parent (the root zone has none).
    /// Taking the bundle down at once models a correlated regional
    /// outage — the paper-scale analogue of a metro backbone cut, not an
    /// independent per-link fault.
    ///
    /// Walks the members' adjacency lists, so the cost is proportional to
    /// the zone size, never the whole network.  In a tree a non-root
    /// zone's bundle has exactly as many links as the zone has members.
    pub fn zone_link_bundle(&self, zone: ZoneId) -> Vec<LinkId> {
        let members = &self.built.hierarchy.zone(zone).members;
        let (lo, hi) = (members[0], *members.last().unwrap());
        let mut links = Vec::with_capacity(members.len());
        for &m in members {
            for &(peer, link) in self.built.topology.neighbors(m) {
                // Internal links once (from the lower endpoint); the
                // hub's one lower neighbour is the uplink.
                if (peer > m && peer <= hi) || (m == lo && peer < lo) {
                    links.push(link);
                }
            }
        }
        links.sort_by_key(|l| l.0);
        links
    }

    /// Appends a correlated regional outage to `plan`: the whole
    /// [`zone_link_bundle`](Self::zone_link_bundle) goes down at `down`
    /// and comes back at `up`.
    ///
    /// # Panics
    ///
    /// Panics unless `down < up`.
    pub fn zone_outage(
        &self,
        plan: FaultPlan,
        zone: ZoneId,
        down: SimTime,
        up: SimTime,
    ) -> FaultPlan {
        assert!(down < up, "outage must end after it starts");
        let mut plan = plan;
        for l in self.zone_link_bundle(zone) {
            plan = plan
                .at(down, FaultEvent::LinkDown(l))
                .at(up, FaultEvent::LinkUp(l));
        }
        plan
    }
}

struct Gen<'a> {
    b: TopologyBuilder,
    zb: ZoneHierarchyBuilder,
    rng: SimRng,
    params: &'a ScaledTreeParams,
    /// Prefix sums of leaf-zone sizes, for O(1) subtree totals.
    leaf_prefix: Vec<u64>,
    designed_zcrs: Vec<NodeId>,
    names: ZoneInterner,
    zone_syms: Vec<ZoneSym>,
}

impl Gen<'_> {
    /// Nodes in the subtree of a hub at `level` owning leaf zones
    /// `[leaf_lo, leaf_hi)`: the hub chain below it plus the leaf
    /// members.
    fn subtree_nodes(&self, level: u32, leaf_lo: usize, leaf_hi: usize) -> u64 {
        let hubs: u64 = (0..=(self.params.depth - level))
            .map(|k| self.params.fanout.pow(k) as u64)
            .sum();
        hubs + self.leaf_prefix[leaf_hi] - self.leaf_prefix[leaf_lo]
    }

    fn hub_link(&mut self) -> LinkParams {
        let (lo, hi) = self.params.hub_latency_ms;
        let lat = lo + self.rng.below(hi - lo);
        let loss = self
            .rng
            .range_f64(self.params.hub_loss.0, self.params.hub_loss.1);
        LinkParams::new(SimDuration::from_millis(lat), 45_000_000, loss)
    }

    fn leaf_link(&mut self) -> LinkParams {
        let (lo, hi) = self.params.leaf_latency_ms;
        let lat = lo + self.rng.below(hi - lo);
        let loss = self
            .rng
            .range_f64(self.params.leaf_loss.0, self.params.leaf_loss.1);
        LinkParams::new(SimDuration::from_millis(lat), 10_000_000, loss)
    }

    /// Emits the hub described by `slot` (preorder) and its whole
    /// subtree.  Returns the next free node id.
    fn visit(&mut self, slot: Slot) -> u32 {
        let Slot {
            parent_node,
            parent_zone,
            parent_sym,
            level,
            id,
            leaf_lo,
            leaf_hi,
            ordinal,
        } = slot;
        let hub = NodeId(id);
        let link = self.hub_link();
        self.b.add_link(parent_node, hub, link);

        // The subtree occupies the contiguous preorder range starting at
        // the hub itself.
        let total = self.subtree_nodes(level, leaf_lo, leaf_hi) as u32;
        let members: Vec<NodeId> = (id..id + total).map(NodeId).collect();
        let zone = self
            .zb
            .child(parent_zone, &members)
            .expect("contiguous subtree nests");
        debug_assert_eq!(zone.idx(), self.designed_zcrs.len());
        self.designed_zcrs.push(hub);
        let sym = self.names.intern(Some(parent_sym), ordinal);
        debug_assert_eq!(zone.idx(), self.zone_syms.len());
        self.zone_syms.push(sym);

        if level == self.params.depth {
            // Leaf hub: attach this zone's receivers directly.
            let size = (self.leaf_prefix[leaf_hi] - self.leaf_prefix[leaf_lo]) as u32;
            for k in 0..size {
                let link = self.leaf_link();
                self.b.add_link(hub, NodeId(id + 1 + k), link);
            }
            id + 1 + size
        } else {
            let span = (leaf_hi - leaf_lo) / self.params.fanout;
            let mut next = id + 1;
            for c in 0..self.params.fanout {
                next = self.visit(Slot {
                    parent_node: hub,
                    parent_zone: zone,
                    parent_sym: sym,
                    level: level + 1,
                    id: next,
                    leaf_lo: leaf_lo + c * span,
                    leaf_hi: leaf_lo + (c + 1) * span,
                    ordinal: c as u32,
                });
            }
            next
        }
    }
}

/// One hub's slot in the preorder walk: the parent it hangs off, its
/// level, its preorder node id, the leaf-zone range `[leaf_lo, leaf_hi)`
/// its subtree owns, and its ordinal among siblings (for the interned
/// dotted name).
struct Slot {
    parent_node: NodeId,
    parent_zone: ZoneId,
    parent_sym: ZoneSym,
    level: u32,
    id: u32,
    leaf_lo: usize,
    leaf_hi: usize,
    ordinal: u32,
}

/// Builds a hierarchical scaled tree; identical `(params, seed)` pairs
/// yield identical networks.
///
/// Zones: the root zone covers everyone (ZCR = source); every hub heads a
/// zone over its subtree (ZCR = the hub), giving a zone tree of depth
/// `params.depth + 1`.
pub fn scaled_tree(params: &ScaledTreeParams, seed: u64) -> ScaledTopology {
    assert!(params.depth >= 1, "need at least one hub level");
    assert!(params.fanout >= 1, "fan-out must be at least 1");
    assert!(
        (0.0..1.0).contains(&params.zone_spread),
        "zone spread must be in [0, 1)"
    );
    assert!(
        params.hub_latency_ms.0 < params.hub_latency_ms.1
            && params.leaf_latency_ms.0 < params.leaf_latency_ms.1,
        "latency ranges must be non-empty"
    );
    assert!(
        params.hub_loss.0 <= params.hub_loss.1
            && params.leaf_loss.0 <= params.leaf_loss.1
            && params.hub_loss.1 <= 1.0
            && params.leaf_loss.1 <= 1.0,
        "loss ranges invalid"
    );
    let hub_count = params.hub_count();
    assert!(
        params.receivers >= hub_count,
        "receivers ({}) must cover the {hub_count} hubs",
        params.receivers
    );

    let mut rng = SimRng::new(seed ^ 0x5343414C_544F504F); // "SCALTOPO"

    // Apportion the non-hub receivers across leaf zones: jittered weights,
    // largest-remainder rounding, total exactly `rest`.
    let leaf_count = params.leaf_zone_count();
    let rest = (params.receivers - hub_count) as u64;
    let weights: Vec<f64> = (0..leaf_count)
        .map(|_| 1.0 + rng.range_f64(-params.zone_spread, params.zone_spread))
        .collect();
    let wsum: f64 = weights.iter().sum();
    let mut sizes = vec![0u64; leaf_count];
    let mut fracs: Vec<(usize, f64)> = Vec::with_capacity(leaf_count);
    let mut assigned = 0u64;
    for (i, w) in weights.iter().enumerate() {
        let quota = rest as f64 * w / wsum;
        sizes[i] = quota.floor() as u64;
        assigned += sizes[i];
        fracs.push((i, quota - quota.floor()));
    }
    // Ties broken by index, so apportionment is fully deterministic.
    fracs.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    for &(i, _) in fracs.iter().take((rest - assigned) as usize) {
        sizes[i] += 1;
    }
    let mut leaf_prefix = vec![0u64; leaf_count + 1];
    for (i, &s) in sizes.iter().enumerate() {
        leaf_prefix[i + 1] = leaf_prefix[i] + s;
    }
    debug_assert_eq!(leaf_prefix[leaf_count], rest);

    let total_nodes = 1 + params.receivers;
    let mut b = TopologyBuilder::new();
    let source = b.add_node("src");
    b.add_unlabeled_nodes(params.receivers);

    let mut zb = ZoneHierarchyBuilder::new(total_nodes);
    let all: Vec<NodeId> = (0..total_nodes as u32).map(NodeId).collect();
    let root = zb.root(&all);
    let mut names = ZoneInterner::new();
    let root_sym = names.intern(None, 0);

    let mut gen = Gen {
        b,
        zb,
        rng,
        params,
        leaf_prefix,
        designed_zcrs: vec![source],
        names,
        zone_syms: vec![root_sym],
    };
    let leaves_per_top = leaf_count / params.fanout;
    let mut next = 1u32;
    for c in 0..params.fanout {
        next = gen.visit(Slot {
            parent_node: source,
            parent_zone: root,
            parent_sym: root_sym,
            level: 1,
            id: next,
            leaf_lo: c * leaves_per_top,
            leaf_hi: (c + 1) * leaves_per_top,
            ordinal: c as u32,
        });
    }
    assert_eq!(next as usize, total_nodes, "preorder covered every node");

    let topology = gen.b.build();
    let hierarchy = gen.zb.build().expect("valid by construction");
    let receivers: Vec<NodeId> = (1..total_nodes as u32).map(NodeId).collect();

    ScaledTopology {
        built: BuiltTopology {
            topology,
            source,
            receivers,
            hierarchy,
            designed_zcrs: gen.designed_zcrs,
        },
        zone_names: gen.names,
        zone_syms: gen.zone_syms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sharqfec_netsim::channel::Channel;
    use sharqfec_netsim::routing::Spt;

    #[test]
    fn default_shape_counts() {
        let t = scaled_tree(&ScaledTreeParams::default(), 1);
        let b = &t.built;
        assert_eq!(b.topology.node_count(), 501);
        assert_eq!(b.topology.link_count(), 500, "a tree");
        assert_eq!(b.receivers.len(), 500);
        // Root + 4 level-1 + 16 level-2 hub zones.
        assert_eq!(b.hierarchy.zone_count(), 21);
        assert_eq!(t.zone_syms.len(), 21);
        assert_eq!(b.zcr(ZoneId::ROOT), b.source);
    }

    #[test]
    fn receiver_total_is_exact_under_jitter() {
        for seed in 0..5 {
            let p = ScaledTreeParams {
                receivers: 997, // prime: exercises remainder apportionment
                zone_spread: 0.6,
                ..ScaledTreeParams::default()
            };
            let t = scaled_tree(&p, seed);
            assert_eq!(t.built.receivers.len(), 997, "seed {seed}");
            let leaf_members: usize = t
                .built
                .hierarchy
                .leaves()
                .iter()
                .map(|&z| t.built.hierarchy.zone(z).members.len())
                .sum();
            // Leaf zones cover everything except the source and the hubs
            // above leaf level (leaf hubs are members of their own zone).
            let above_leaf: usize = (1..p.depth).map(|l| p.fanout.pow(l)).sum();
            assert_eq!(leaf_members, 997 - above_leaf, "seed {seed}");
        }
    }

    #[test]
    fn is_deterministic_per_seed() {
        let p = ScaledTreeParams::default();
        let a = scaled_tree(&p, 7);
        let b = scaled_tree(&p, 7);
        assert_eq!(a.built.topology.node_count(), b.built.topology.node_count());
        for i in 0..a.built.topology.link_count() {
            let id = sharqfec_netsim::graph::LinkId(i as u32);
            let (la, lb) = (a.built.topology.link(id), b.built.topology.link(id));
            assert_eq!(la.params.latency, lb.params.latency);
            assert_eq!(la.params.loss.mean_loss(), lb.params.loss.mean_loss());
        }
        let c = scaled_tree(&p, 8);
        let lat = |t: &ScaledTopology| -> Vec<SimDuration> {
            (0..t.built.topology.link_count())
                .map(|i| {
                    t.built
                        .topology
                        .link(sharqfec_netsim::graph::LinkId(i as u32))
                        .params
                        .latency
                })
                .collect()
        };
        assert_ne!(lat(&a), lat(&c), "different seeds differ");
    }

    #[test]
    fn zones_are_contiguous_ranges_and_routable() {
        let t = scaled_tree(&ScaledTreeParams::default(), 3);
        let b = &t.built;
        for zone in b.hierarchy.zones() {
            // Contiguous preorder range: dense ids.
            let m = &zone.members;
            assert_eq!(
                m.last().unwrap().0 - m.first().unwrap().0 + 1,
                m.len() as u32,
                "zone {} members not contiguous",
                zone.id
            );
            // First member is the hub = designed ZCR.
            assert_eq!(b.zcr(zone.id), m[0]);
            let zcr = b.zcr(zone.id);
            let spt = Spt::compute(&b.topology, zcr);
            let chan = Channel::new(b.topology.node_count(), m);
            assert!(
                chan.is_spt_connected(&spt, zcr),
                "zone {} not contiguous",
                zone.id
            );
        }
    }

    #[test]
    fn zone_labels_follow_hub_paths() {
        let t = scaled_tree(&ScaledTreeParams::default(), 2);
        assert_eq!(t.zone_label(ZoneId::ROOT), "0");
        // Level-1 zones are created in fan-out order right after the root.
        assert_eq!(t.zone_label(ZoneId(1)), "0.0");
        // Zone 2 is the first child of hub 0 (preorder).
        assert_eq!(t.zone_label(ZoneId(2)), "0.0.0");
        let labels: std::collections::HashSet<String> = t
            .built
            .hierarchy
            .zones()
            .iter()
            .map(|z| t.zone_label(z.id))
            .collect();
        assert_eq!(labels.len(), t.built.hierarchy.zone_count(), "unique");
    }

    #[test]
    fn zone_link_bundles_cover_each_region_exactly() {
        let t = scaled_tree(&ScaledTreeParams::default(), 4);
        let b = &t.built;
        for zone in b.hierarchy.zones() {
            let bundle = t.zone_link_bundle(zone.id);
            // In a tree: size-1 internal links, plus an uplink for every
            // zone but the root.
            let expect = if zone.id == ZoneId::ROOT {
                zone.members.len() - 1
            } else {
                zone.members.len()
            };
            assert_eq!(bundle.len(), expect, "zone {}", zone.id);
            // No duplicates, and every link touches the region.
            let mut seen = bundle.clone();
            seen.dedup();
            assert_eq!(seen.len(), bundle.len(), "zone {} duplicates", zone.id);
            let (lo, hi) = (zone.members[0], *zone.members.last().unwrap());
            for l in bundle {
                let spec = b.topology.link(l);
                let touches = |n: NodeId| n >= lo && n <= hi;
                assert!(
                    touches(spec.a) || touches(spec.b),
                    "zone {} pulled in a foreign link",
                    zone.id
                );
            }
        }
    }

    #[test]
    fn zone_outage_schedules_symmetric_down_up_pairs() {
        let t = scaled_tree(&ScaledTreeParams::default(), 4);
        let zone = t.built.hierarchy.leaves()[0];
        let down = SimTime::from_secs(10);
        let up = SimTime::from_secs(20);
        let plan = t.zone_outage(FaultPlan::new(), zone, down, up);
        let bundle = t.zone_link_bundle(zone);
        let mut downs = 0usize;
        let mut ups = 0usize;
        for (when, ev) in plan.events() {
            match ev {
                FaultEvent::LinkDown(l) => {
                    assert_eq!(*when, down);
                    assert!(bundle.contains(l));
                    downs += 1;
                }
                FaultEvent::LinkUp(l) => {
                    assert_eq!(*when, up);
                    assert!(bundle.contains(l));
                    ups += 1;
                }
                other => panic!("unexpected event {other:?}"),
            }
        }
        assert_eq!(downs, bundle.len());
        assert_eq!(ups, bundle.len());
    }

    #[test]
    fn for_receivers_scales_the_shape() {
        for n in [100usize, 1_000, 10_000] {
            let p = ScaledTreeParams::for_receivers(n);
            assert!(p.receivers >= p.hub_count(), "n={n}");
            let t = scaled_tree(&p, 42);
            assert_eq!(t.built.receivers.len(), n);
        }
        assert!(
            ScaledTreeParams::for_receivers(1_000_000).leaf_zone_count() >= 4096,
            "a million receivers must spread over thousands of leaf zones"
        );
    }

    #[test]
    #[should_panic(expected = "must cover")]
    fn too_few_receivers_rejected() {
        scaled_tree(
            &ScaledTreeParams {
                receivers: 3,
                ..ScaledTreeParams::default()
            },
            1,
        );
    }

    #[test]
    fn nodes_are_unlabelled_except_source() {
        let t = scaled_tree(&ScaledTreeParams::default(), 9);
        assert_eq!(t.built.topology.label(t.built.source), "src");
        assert_eq!(t.built.topology.label(NodeId(1)), "");
    }
}
