//! Seeded random topologies with automatic zone hierarchies.
//!
//! The paper evaluates on hand-built networks; a robust implementation
//! must survive networks nobody designed.  [`random_tree`] produces a
//! seed-deterministic random multicast tree with random latencies,
//! bandwidths, and loss rates, and partitions it into a zone hierarchy by
//! subtree — every zone physically contiguous by construction, so the
//! result is always a valid [`BuiltTopology`] for any protocol run.

use crate::BuiltTopology;
use sharqfec_netsim::{LinkParams, NodeId, SimDuration, SimRng, TopologyBuilder};
use sharqfec_scoping::ZoneHierarchyBuilder;

/// Parameters for [`random_tree`].
#[derive(Clone, Debug)]
pub struct RandomTreeParams {
    /// Number of receivers (the source is added on top).  Must be ≥ 1.
    pub receivers: usize,
    /// Maximum children per node (≥ 1); actual fan-out is random.
    pub max_fanout: usize,
    /// Latency range in milliseconds (inclusive low, exclusive high).
    pub latency_ms: (u64, u64),
    /// Per-link loss range.
    pub loss: (f64, f64),
    /// Minimum receivers in a subtree for it to get its own zone.
    pub zone_threshold: usize,
}

impl Default for RandomTreeParams {
    fn default() -> RandomTreeParams {
        RandomTreeParams {
            receivers: 24,
            max_fanout: 4,
            latency_ms: (5, 50),
            loss: (0.0, 0.15),
            zone_threshold: 4,
        }
    }
}

/// Builds a random tree topology; identical `(params, seed)` pairs yield
/// identical networks.
///
/// Zones: the root zone covers everyone; each direct subtree of the
/// source with at least `zone_threshold` receivers becomes a child zone
/// (its head is the designed ZCR).
pub fn random_tree(params: &RandomTreeParams, seed: u64) -> BuiltTopology {
    assert!(params.receivers >= 1, "need at least one receiver");
    assert!(params.max_fanout >= 1, "fan-out must be at least 1");
    assert!(
        params.latency_ms.0 < params.latency_ms.1,
        "latency range must be non-empty"
    );
    assert!(
        params.loss.0 <= params.loss.1 && params.loss.1 <= 1.0,
        "loss range invalid"
    );
    let mut rng = SimRng::new(seed ^ 0x52414E44_544F504F); // "RANDTOPO"

    let mut b = TopologyBuilder::new();
    let source = b.add_node("src");
    let mut receivers = Vec::with_capacity(params.receivers);
    // Attachment points: nodes that can still accept children.
    let mut open: Vec<(NodeId, usize)> = vec![(source, params.max_fanout)];
    // Track each receiver's top-level subtree (index into `subtrees`).
    let mut subtrees: Vec<(NodeId, Vec<NodeId>)> = Vec::new();
    let mut subtree_of: Vec<usize> = Vec::new(); // parallel to receivers

    for i in 0..params.receivers {
        let slot = rng.index(open.len());
        let (parent, left) = open[slot];
        let lat = params.latency_ms.0 + rng.below(params.latency_ms.1 - params.latency_ms.0);
        let loss = rng.range_f64(params.loss.0, params.loss.1);
        let node = b.add_node(format!("r{i}"));
        b.add_link(
            parent,
            node,
            LinkParams::new(SimDuration::from_millis(lat), 10_000_000, loss),
        );
        receivers.push(node);

        // Bookkeep subtree membership.
        let subtree = if parent == source {
            subtrees.push((node, vec![node]));
            subtrees.len() - 1
        } else {
            let parent_ix = receivers.iter().position(|&r| r == parent).expect("known");
            let s = subtree_of[parent_ix];
            subtrees[s].1.push(node);
            s
        };
        subtree_of.push(subtree);

        // Update attachment points.
        if left == 1 {
            open.swap_remove(slot);
        } else {
            open[slot].1 = left - 1;
        }
        open.push((node, params.max_fanout));
    }

    let topology = b.build();
    let n = topology.node_count();
    let mut zb = ZoneHierarchyBuilder::new(n);
    let all: Vec<NodeId> = std::iter::once(source)
        .chain(receivers.iter().copied())
        .collect();
    let root = zb.root(&all);
    let mut designed_zcrs = vec![source];
    for (head, members) in &subtrees {
        if members.len() >= params.zone_threshold {
            let z = zb.child(root, members).expect("subtree is contiguous");
            debug_assert_eq!(z.idx(), designed_zcrs.len());
            designed_zcrs.push(*head);
        }
    }
    let hierarchy = zb.build().expect("valid by construction");

    BuiltTopology {
        topology,
        source,
        receivers,
        hierarchy,
        designed_zcrs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sharqfec_netsim::channel::Channel;
    use sharqfec_netsim::routing::Spt;

    #[test]
    fn is_deterministic_per_seed() {
        let p = RandomTreeParams::default();
        let a = random_tree(&p, 7);
        let b = random_tree(&p, 7);
        assert_eq!(a.topology.node_count(), b.topology.node_count());
        assert_eq!(a.hierarchy.zone_count(), b.hierarchy.zone_count());
        for n in a.topology.nodes() {
            let la = Spt::compute(&a.topology, a.source).delay_to(n);
            let lb = Spt::compute(&b.topology, b.source).delay_to(n);
            assert_eq!(la, lb);
        }
        let c = random_tree(&p, 8);
        // Different seeds should (overwhelmingly) give different shapes.
        let da: Vec<_> = a
            .topology
            .nodes()
            .map(|n| Spt::compute(&a.topology, a.source).delay_to(n))
            .collect();
        let dc: Vec<_> = c
            .topology
            .nodes()
            .map(|n| Spt::compute(&c.topology, c.source).delay_to(n))
            .collect();
        assert_ne!(da, dc);
    }

    #[test]
    fn counts_and_structure() {
        let p = RandomTreeParams {
            receivers: 30,
            ..RandomTreeParams::default()
        };
        let built = random_tree(&p, 3);
        assert_eq!(built.topology.node_count(), 31);
        assert_eq!(built.topology.link_count(), 30); // a tree
        assert_eq!(built.receivers.len(), 30);
    }

    #[test]
    fn zones_are_always_routable() {
        for seed in 0..20 {
            let built = random_tree(&RandomTreeParams::default(), seed);
            for zone in built.hierarchy.zones() {
                let zcr = built.zcr(zone.id);
                let spt = Spt::compute(&built.topology, zcr);
                let chan = Channel::new(built.topology.node_count(), &zone.members);
                assert!(
                    chan.is_spt_connected(&spt, zcr),
                    "seed {seed}: zone {} not contiguous",
                    zone.id
                );
            }
        }
    }

    #[test]
    fn fanout_is_respected() {
        let p = RandomTreeParams {
            receivers: 40,
            max_fanout: 2,
            ..RandomTreeParams::default()
        };
        let built = random_tree(&p, 11);
        for n in built.topology.nodes() {
            let degree = built.topology.neighbors(n).len();
            // children ≤ 2, plus possibly one parent link.
            assert!(degree <= 3, "node {n} has degree {degree}");
        }
    }

    #[test]
    fn loss_range_respected() {
        let p = RandomTreeParams {
            loss: (0.05, 0.10),
            ..RandomTreeParams::default()
        };
        let built = random_tree(&p, 5);
        for id in 0..built.topology.link_count() {
            let l = built
                .topology
                .link(sharqfec_netsim::graph::LinkId(id as u32));
            assert!((0.05..0.10).contains(&l.params.loss.mean_loss()));
        }
    }

    #[test]
    #[should_panic(expected = "at least one receiver")]
    fn zero_receivers_rejected() {
        random_tree(
            &RandomTreeParams {
                receivers: 0,
                ..RandomTreeParams::default()
            },
            1,
        );
    }
}
