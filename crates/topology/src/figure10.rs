//! The paper's Figure 10 test network.
//!
//! §6.1: "the sender or top ZCR, node 0, fed data to a 3 level hierarchy of
//! 112 receivers arranged as a mesh of 7 receivers that each fed balanced
//! trees.  The links connecting the source to the top 7 receivers in each
//! tree were initialized to 45 Mbit/sec with all other remaining links set
//! to a rate of 10 Mbit/sec.  Latencies between the receivers located
//! within each tree were set to 20 ms for each link while the latencies
//! used for the backbone links are shown in Figure 10."
//!
//! §6.2 pins the loss plan: "The loss rate between each of the seven mesh
//! nodes and their three children was set to 8%, while the loss rate
//! between the three children and their children was set to 4%.  Thus …
//! receivers 53 through 62 experienced the worst loss (on the order of
//! 28.3%) while receivers 89 through 100 experienced the least loss (on
//! the order of 13.4%)."
//!
//! The exact backbone latencies and loss rates are legible only in the
//! figure (not reproduced in the text), so this module interpolates them
//! under the constraints the text *does* pin (see `DESIGN.md` §5):
//! compounded end-to-end loss at the leaves of the worst tree ≈ 28.3 % and
//! of the best trees ≈ 13.4 %.  Solving `1-(1-p)(1-0.08)(1-0.04)` gives a
//! backbone loss of ≈ 18.8 % for the worst mesh link and ≈ 2 % for the
//! best; the remaining five are spread between those extremes.
//!
//! Numbering: each of the 7 trees occupies 16 consecutive ids —
//! tree *t* is nodes `16t+1 .. 16t+16`, with `16t+1` the mesh (backbone)
//! node, `16t+2..16t+4` its three children, and `16t+5..16t+16` the twelve
//! leaves (four per child).  This places receivers 53–62 among the leaves
//! of tree 3 (the worst-loss tree) and 89–100 in the least-loss region,
//! matching the text.
//!
//! Zones (3 levels, 29 zones): Z0 = everything; one level-1 zone per tree
//! (16 nodes, designed ZCR = the mesh node); one level-2 zone per child
//! (child + its 4 leaves, designed ZCR = the child).

use crate::BuiltTopology;
use sharqfec_netsim::{LinkParams, NodeId, SimDuration, TopologyBuilder};
use sharqfec_scoping::ZoneHierarchyBuilder;

/// Tunable parameters of the Figure 10 build (defaults reproduce the
/// paper; sweeps perturb them for ablations).
#[derive(Clone, Debug)]
pub struct Figure10Params {
    /// Backbone (source → mesh node) one-way latencies, one per tree.
    pub backbone_latency_ms: [u64; 7],
    /// Backbone loss rates, one per tree (see module docs for how the
    /// defaults are pinned by the text).
    pub backbone_loss: [f64; 7],
    /// Loss on mesh-node → child links (paper: 8 %).
    pub mesh_child_loss: f64,
    /// Loss on child → leaf links (paper: 4 %).
    pub child_leaf_loss: f64,
    /// Backbone bandwidth (paper: 45 Mbit/s).
    pub backbone_bps: u64,
    /// Tree bandwidth (paper: 10 Mbit/s).
    pub tree_bps: u64,
    /// Tree link latency (paper: 20 ms).
    pub tree_latency_ms: u64,
}

impl Default for Figure10Params {
    fn default() -> Figure10Params {
        Figure10Params {
            backbone_latency_ms: [30, 40, 50, 60, 35, 10, 20],
            // Tree 3 worst (≈18.8% ⇒ 28.3% at its leaves); trees 5 & 6 best
            // (2% ⇒ 13.4% at their leaves).
            backbone_loss: [0.05, 0.08, 0.12, 0.188, 0.10, 0.02, 0.02],
            mesh_child_loss: 0.08,
            child_leaf_loss: 0.04,
            backbone_bps: 45_000_000,
            tree_bps: 10_000_000,
            tree_latency_ms: 20,
        }
    }
}

impl Figure10Params {
    /// A lossless variant (session-maintenance experiments, §6.1: "the
    /// link loss rates shown do not apply for session traffic" — and the
    /// engine already spares session/NACK classes, but a fully lossless
    /// network is useful for isolating protocol logic in tests).
    pub fn lossless() -> Figure10Params {
        Figure10Params {
            backbone_loss: [0.0; 7],
            mesh_child_loss: 0.0,
            child_leaf_loss: 0.0,
            ..Figure10Params::default()
        }
    }

    /// Scales every loss rate by `factor` (clamped to [0, 1]) for
    /// loss-sweep ablations.
    pub fn scaled_loss(mut self, factor: f64) -> Figure10Params {
        let clamp = |p: f64| (p * factor).clamp(0.0, 1.0);
        for p in &mut self.backbone_loss {
            *p = clamp(*p);
        }
        self.mesh_child_loss = clamp(self.mesh_child_loss);
        self.child_leaf_loss = clamp(self.child_leaf_loss);
        self
    }

    /// Compounded end-to-end loss from the source to a leaf of tree `t`.
    pub fn leaf_loss(&self, t: usize) -> f64 {
        1.0 - (1.0 - self.backbone_loss[t])
            * (1.0 - self.mesh_child_loss)
            * (1.0 - self.child_leaf_loss)
    }
}

/// Number of trees hanging off the backbone.
pub const TREES: usize = 7;
/// Children per mesh node.
pub const CHILDREN: usize = 3;
/// Leaves per child.
pub const LEAVES: usize = 4;
/// Nodes per tree (mesh node + children + leaves).
pub const TREE_SIZE: usize = 1 + CHILDREN + CHILDREN * LEAVES; // 16
/// Total receivers (112) — the paper's count.
pub const RECEIVERS: usize = TREES * TREE_SIZE;

/// The mesh (backbone) node of tree `t`.
pub fn mesh_node(t: usize) -> NodeId {
    NodeId((t * TREE_SIZE + 1) as u32)
}

/// Child `c` (0-based) of tree `t`.
pub fn child_node(t: usize, c: usize) -> NodeId {
    NodeId((t * TREE_SIZE + 2 + c) as u32)
}

/// Leaf `l` (0-based, 0..12) of tree `t`.
pub fn leaf_node(t: usize, l: usize) -> NodeId {
    NodeId((t * TREE_SIZE + 2 + CHILDREN + l) as u32)
}

/// Builds the Figure 10 network.
pub fn figure10(params: &Figure10Params) -> BuiltTopology {
    let mut b = TopologyBuilder::new();
    let source = b.add_node("src");
    // Create all receiver nodes first so ids are contiguous 1..=112.
    let mut receivers = Vec::with_capacity(RECEIVERS);
    for t in 0..TREES {
        let mesh = b.add_node(format!("t{t}-mesh"));
        receivers.push(mesh);
        for c in 0..CHILDREN {
            receivers.push(b.add_node(format!("t{t}-c{c}")));
        }
        for c in 0..CHILDREN {
            for l in 0..LEAVES {
                receivers.push(b.add_node(format!("t{t}-c{c}-l{l}")));
            }
        }
        debug_assert_eq!(mesh, mesh_node(t));
    }

    let tree_lat = SimDuration::from_millis(params.tree_latency_ms);
    for t in 0..TREES {
        b.add_link(
            source,
            mesh_node(t),
            LinkParams::new(
                SimDuration::from_millis(params.backbone_latency_ms[t]),
                params.backbone_bps,
                params.backbone_loss[t],
            ),
        );
        for c in 0..CHILDREN {
            b.add_link(
                mesh_node(t),
                child_node(t, c),
                LinkParams::new(tree_lat, params.tree_bps, params.mesh_child_loss),
            );
            for l in 0..LEAVES {
                b.add_link(
                    child_node(t, c),
                    leaf_node(t, c * LEAVES + l),
                    LinkParams::new(tree_lat, params.tree_bps, params.child_leaf_loss),
                );
            }
        }
    }
    let topology = b.build();
    let node_count = topology.node_count();
    debug_assert_eq!(node_count, 1 + RECEIVERS);

    // Zones.
    let mut zb = ZoneHierarchyBuilder::new(node_count);
    let all: Vec<NodeId> = (0..node_count as u32).map(NodeId).collect();
    let z0 = zb.root(&all);
    let mut designed_zcrs = vec![source];
    for t in 0..TREES {
        let tree_members: Vec<NodeId> = (0..TREE_SIZE)
            .map(|i| NodeId((t * TREE_SIZE + 1 + i) as u32))
            .collect();
        let z1 = zb.child(z0, &tree_members).expect("tree zone nests");
        debug_assert_eq!(designed_zcrs.len(), z1.idx());
        designed_zcrs.push(mesh_node(t));
        for c in 0..CHILDREN {
            let mut members = vec![child_node(t, c)];
            for l in 0..LEAVES {
                members.push(leaf_node(t, c * LEAVES + l));
            }
            let z2 = zb.child(z1, &members).expect("child zone nests");
            debug_assert_eq!(designed_zcrs.len(), z2.idx());
            designed_zcrs.push(child_node(t, c));
        }
    }
    let hierarchy = zb.build().expect("figure 10 hierarchy is valid");

    BuiltTopology {
        topology,
        source,
        receivers,
        hierarchy,
        designed_zcrs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sharqfec_netsim::routing::Spt;

    #[test]
    fn counts_match_the_paper() {
        let built = figure10(&Figure10Params::default());
        assert_eq!(built.topology.node_count(), 113);
        assert_eq!(built.receivers.len(), 112);
        assert_eq!(built.hierarchy.zone_count(), 1 + 7 + 21);
        // 7 backbone + 7*3 child + 7*12 leaf links
        assert_eq!(built.topology.link_count(), 7 + 21 + 84);
    }

    #[test]
    fn loss_extremes_match_the_text() {
        let p = Figure10Params::default();
        // Worst-loss tree (tree 3, leaves = nodes 53..64): ~28.3%.
        let worst = p.leaf_loss(3);
        assert!(
            (worst - 0.283).abs() < 0.005,
            "worst leaf loss {worst} should be ~0.283"
        );
        // Least-loss trees (5 and 6): ~13.4%.
        for t in [5, 6] {
            let least = p.leaf_loss(t);
            assert!(
                (least - 0.134).abs() < 0.005,
                "least leaf loss {least} should be ~0.134"
            );
        }
        // Every other tree sits strictly between the extremes.
        for t in [0, 1, 2, 4] {
            let l = p.leaf_loss(t);
            assert!(l > p.leaf_loss(5) && l < p.leaf_loss(3), "tree {t}");
        }
    }

    #[test]
    fn worst_receivers_are_53_to_62() {
        // Leaves of tree 3 are nodes 53..=64; the text names 53–62 as the
        // worst-loss receivers, which our numbering covers.
        let first_leaf = leaf_node(3, 0);
        let last_leaf = leaf_node(3, 11);
        assert_eq!(first_leaf, NodeId(53));
        assert_eq!(last_leaf, NodeId(64));
    }

    #[test]
    fn least_loss_region_covers_89_to_100() {
        // Nodes 89..=96 are leaves of tree 5; 97..=100 are the mesh/children
        // of tree 6 — the two least-lossy trees.
        assert_eq!(leaf_node(5, 4), NodeId(89));
        assert_eq!(leaf_node(5, 11), NodeId(96));
        assert_eq!(mesh_node(6), NodeId(97));
        assert_eq!(child_node(6, 2), NodeId(100));
    }

    #[test]
    fn routing_depth_is_three_hops() {
        let built = figure10(&Figure10Params::default());
        let spt = Spt::compute(&built.topology, built.source);
        // Leaf of tree 0: backbone 30ms + 20 + 20 = 70ms.
        assert_eq!(spt.delay_to(leaf_node(0, 0)), SimDuration::from_millis(70));
        assert_eq!(spt.path_to(leaf_node(0, 0)).len(), 4);
    }

    #[test]
    fn designed_zcrs_head_their_zones() {
        let built = figure10(&Figure10Params::default());
        for zone in built.hierarchy.zones() {
            let zcr = built.zcr(zone.id);
            assert!(
                built.hierarchy.is_member(zone.id, zcr),
                "ZCR of {} must be a member",
                zone.id
            );
        }
        // Spot-check: zone of tree 2 has mesh node 33 as ZCR.
        let z_tree2 = built.hierarchy.smallest_zone(mesh_node(2));
        assert_eq!(built.zcr(z_tree2), NodeId(33));
    }

    #[test]
    fn zone_chain_depth_is_three_for_leaves() {
        let built = figure10(&Figure10Params::default());
        let chain = built.hierarchy.zone_chain(leaf_node(4, 7));
        assert_eq!(chain.len(), 3);
        // And one for the source.
        assert_eq!(built.hierarchy.zone_chain(built.source).len(), 1);
    }

    #[test]
    fn scaled_loss_clamps() {
        let p = Figure10Params::default().scaled_loss(10.0);
        assert!(p.backbone_loss.iter().all(|&l| l <= 1.0));
        let p0 = Figure10Params::default().scaled_loss(0.0);
        assert!(p0.backbone_loss.iter().all(|&l| l == 0.0));
        assert_eq!(p0.leaf_loss(0), 0.0);
    }

    #[test]
    fn lossless_variant_has_no_loss() {
        let p = Figure10Params::lossless();
        for t in 0..TREES {
            assert_eq!(p.leaf_loss(t), 0.0);
        }
    }
}
