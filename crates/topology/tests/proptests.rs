//! Property-based tests for the scaled hierarchical generator.

use proptest::prelude::*;
use sharqfec_netsim::NodeId;
use sharqfec_topology::{scaled_tree, ScaledTopology, ScaledTreeParams};

/// Strategy: modest shapes (the invariants are shape-independent; size
/// only slows the suite down).
fn params() -> impl Strategy<Value = (ScaledTreeParams, u64)> {
    (1u32..4, 2usize..5, 0usize..200, 0u64..1000, 0u32..80).prop_map(
        |(depth, fanout, extra, seed, spread_pct)| {
            let mut p = ScaledTreeParams {
                depth,
                fanout,
                zone_spread: spread_pct as f64 / 100.0,
                ..ScaledTreeParams::default()
            };
            p.receivers = p.hub_count() + extra;
            (p, seed)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every non-hub receiver lives in exactly one leaf zone; hubs above
    /// the leaf level live in none; leaf hubs in exactly their own.
    #[test]
    fn every_receiver_in_exactly_one_leaf_zone((p, seed) in params()) {
        let t = scaled_tree(&p, seed);
        let h = &t.built.hierarchy;
        let n = t.built.topology.node_count();
        let mut leaf_zones_containing = vec![0u32; n];
        for &z in &h.leaves() {
            for &m in &h.zone(z).members {
                leaf_zones_containing[m.idx()] += 1;
            }
        }
        let above_leaf: usize = (1..p.depth).map(|l| p.fanout.pow(l)).sum();
        let mut outside = 0usize;
        for node in (0..n as u32).map(NodeId) {
            let c = leaf_zones_containing[node.idx()];
            prop_assert!(c <= 1, "node {node} in {c} leaf zones");
            if c == 0 {
                outside += 1;
            } else {
                // Its smallest zone is that leaf zone.
                prop_assert!(h.zone(h.smallest_zone(node)).children.is_empty(),
                    "node {node} in a leaf zone but smallest zone is interior");
            }
        }
        // Outside any leaf zone: the source plus the hubs above leaf level.
        prop_assert_eq!(outside, 1 + above_leaf);
    }

    /// The zone tree is well-formed: validated nesting, one zone per hub
    /// plus the root, levels mirror hub depth, each zone's ZCR is its
    /// first (lowest-id) member, and membership counts telescope.
    #[test]
    fn zone_tree_is_well_formed((p, seed) in params()) {
        let t = scaled_tree(&p, seed);
        let b = &t.built;
        prop_assert_eq!(b.hierarchy.zone_count(), 1 + p.hub_count());
        prop_assert_eq!(b.receivers.len(), p.receivers);
        prop_assert_eq!(b.topology.link_count(), b.topology.node_count() - 1);
        for zone in b.hierarchy.zones() {
            prop_assert!(zone.level <= p.depth);
            prop_assert_eq!(b.zcr(zone.id), zone.members[0]);
            // Children partition the zone minus the hub itself... minus
            // members attached directly (leaf receivers have no child
            // zones).
            let child_total: usize = zone
                .children
                .iter()
                .map(|&c| b.hierarchy.zone(c).members.len())
                .sum();
            prop_assert!(child_total < zone.members.len());
        }
        // Interned names are unique and one per zone.
        let labels: std::collections::HashSet<String> = b
            .hierarchy
            .zones()
            .iter()
            .map(|z| t.zone_label(z.id))
            .collect();
        prop_assert_eq!(labels.len(), b.hierarchy.zone_count());
    }

    /// Generation is deterministic and independent of the thread it runs
    /// on: concurrent builds of the same (params, seed) agree bit-for-bit
    /// with a build on the main thread.
    #[test]
    fn deterministic_across_threads((p, seed) in params()) {
        fn fingerprint(t: &ScaledTopology) -> (usize, Vec<u64>, Vec<Vec<NodeId>>) {
            let lat = (0..t.built.topology.link_count())
                .map(|i| {
                    t.built
                        .topology
                        .link(sharqfec_netsim::graph::LinkId(i as u32))
                        .params
                        .latency
                        .0
                })
                .collect();
            let members = t
                .built
                .hierarchy
                .zones()
                .iter()
                .map(|z| z.members.clone())
                .collect();
            (t.built.topology.node_count(), lat, members)
        }
        let local = fingerprint(&scaled_tree(&p, seed));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let p = p.clone();
                std::thread::spawn(move || fingerprint(&scaled_tree(&p, seed)))
            })
            .collect();
        for h in handles {
            prop_assert_eq!(h.join().expect("builder thread"), local.clone());
        }
    }
}
