//! Property-based tests on the erasure codec's core guarantee:
//! *any k of the k+h transmitted packets reconstruct the group*.

use proptest::prelude::*;
use sharqfec_fec::codec::{DecodeScratch, GroupCodec};
use sharqfec_fec::group::{GroupDecoder, GroupEncoder};

/// Encodes all parity shards into fresh vectors (test convenience over the
/// buffer-reusing `encode_into`).
fn encode_parity(codec: &GroupCodec, data: &[&[u8]]) -> Vec<Vec<u8>> {
    let len = data.first().map_or(0, |d| d.len());
    let mut parity = vec![vec![0u8; len]; codec.h()];
    let mut bufs: Vec<&mut [u8]> = parity.iter_mut().map(|v| v.as_mut_slice()).collect();
    codec.encode_into(data, &mut bufs).unwrap();
    parity
}

/// Strategy: a group shape (k, h) within a budget, payload data, and a
/// random survival subset of exactly k indices.
fn group_shape() -> impl Strategy<Value = (usize, usize)> {
    (1usize..=24, 0usize..=8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn any_k_of_n_reconstructs(
        (k, h) in group_shape(),
        len in 1usize..128,
        seed in any::<u64>(),
    ) {
        let codec = GroupCodec::new(k, h).unwrap();
        let data: Vec<Vec<u8>> = (0..k)
            .map(|i| {
                (0..len)
                    .map(|j| (seed as usize + i * 251 + j * 41) as u8)
                    .collect()
            })
            .collect();
        let refs: Vec<&[u8]> = data.iter().map(|v| v.as_slice()).collect();
        let parity = encode_parity(&codec, &refs);
        let all: Vec<&[u8]> = refs
            .iter()
            .copied()
            .chain(parity.iter().map(|v| v.as_slice()))
            .collect();

        // Pick k surviving indices pseudo-randomly from the seed.
        let n = k + h;
        let mut indices: Vec<usize> = (0..n).collect();
        let mut state = seed | 1;
        for i in (1..n).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            indices.swap(i, j);
        }
        let survivors: Vec<(usize, &[u8])> =
            indices[..k].iter().map(|&i| (i, all[i])).collect();

        let mut scratch = DecodeScratch::default();
        let recovered = codec.decode(&survivors, &mut scratch).unwrap();
        prop_assert_eq!(recovered.to_vecs(), data);
    }

    #[test]
    fn parity_packets_differ_from_each_other(
        k in 2usize..=16,
        h in 2usize..=6,
        len in 4usize..64,
    ) {
        // Non-degenerate data must yield pairwise distinct parity packets;
        // identical parity would make the "count, not identity" NACK scheme
        // unsound.
        let codec = GroupCodec::new(k, h).unwrap();
        let data: Vec<Vec<u8>> = (0..k)
            .map(|i| (0..len).map(|j| ((i + 1) * (j + 3) % 256) as u8).collect())
            .collect();
        let refs: Vec<&[u8]> = data.iter().map(|v| v.as_slice()).collect();
        let parity = encode_parity(&codec, &refs);
        for a in 0..parity.len() {
            for b in (a + 1)..parity.len() {
                prop_assert_ne!(&parity[a], &parity[b]);
            }
        }
    }

    #[test]
    fn object_round_trip_with_per_group_loss(
        obj_len in 0usize..4096,
        k in 2usize..=16,
        h in 1usize..=4,
        plen in 16usize..256,
        seed in any::<u64>(),
    ) {
        let obj: Vec<u8> = (0..obj_len).map(|i| (i as u64 ^ seed) as u8).collect();
        let enc = GroupEncoder::new(k, h, plen).unwrap();
        let groups = enc.encode_object(&obj).unwrap();
        let mut dec = GroupDecoder::new(k, h, plen, groups.len()).unwrap();

        let mut state = seed | 1;
        for g in &groups {
            // Drop up to h packets per group, chosen pseudo-randomly.
            let n = k + h;
            let mut order: Vec<usize> = (0..n).collect();
            for i in (1..n).rev() {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let j = (state >> 33) as usize % (i + 1);
                order.swap(i, j);
            }
            let keep: std::collections::HashSet<usize> = order[..n - h].iter().copied().collect();
            let all: Vec<Vec<u8>> = g.data.iter().cloned().chain(g.parity.iter().cloned()).collect();
            for (idx, payload) in all.iter().enumerate() {
                if keep.contains(&idx) {
                    dec.push(g.group_id, idx, payload).unwrap();
                }
            }
        }
        prop_assert!(dec.complete());
        prop_assert_eq!(dec.finish().unwrap(), obj);
    }
}
