//! Framing of an application byte stream into SHARQFEC packet groups.
//!
//! The simulator models packets abstractly, but a real deployment (and the
//! examples in this repository) must turn a byte object — the paper's
//! motivating "large newspaper" or a software update — into fixed-size
//! packets grouped `k` at a time.  [`GroupEncoder`] performs that split
//! (padding the tail group) and [`GroupDecoder`] reassembles the object
//! from whichever `k`-subsets of each group arrived.
//!
//! Frame layout: the object length is prepended as an 8-byte little-endian
//! header so the decoder can strip tail padding; everything after it is raw
//! object bytes.

use crate::codec::{DecodeScratch, GroupCodec};
use crate::FecError;

/// Header bytes prepended to the object (little-endian u64 length).
pub const FRAME_HEADER_LEN: usize = 8;

/// One encoded packet group: `k` data packets followed by `h` parity
/// packets, all `payload_len` bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodedGroup {
    /// Group sequence number, starting at 0.
    pub group_id: u64,
    /// The `k` data packets.
    pub data: Vec<Vec<u8>>,
    /// The `h` parity packets.
    pub parity: Vec<Vec<u8>>,
}

impl EncodedGroup {
    /// Iterates `(index, payload)` over all `k + h` packets of the group.
    pub fn packets(&self) -> impl Iterator<Item = (usize, &[u8])> {
        self.data
            .iter()
            .chain(self.parity.iter())
            .enumerate()
            .map(|(i, p)| (i, p.as_slice()))
    }
}

/// Splits a byte object into packet groups and encodes parity for each.
#[derive(Debug, Clone)]
pub struct GroupEncoder {
    codec: GroupCodec,
    payload_len: usize,
}

impl GroupEncoder {
    /// Creates an encoder producing groups of `k` data + `h` parity packets
    /// of `payload_len` bytes each.
    pub fn new(k: usize, h: usize, payload_len: usize) -> Result<GroupEncoder, FecError> {
        if payload_len == 0 {
            return Err(FecError::EmptyShards);
        }
        Ok(GroupEncoder {
            codec: GroupCodec::new(k, h)?,
            payload_len,
        })
    }

    /// The underlying codec.
    pub fn codec(&self) -> &GroupCodec {
        &self.codec
    }

    /// Packet payload size in bytes.
    pub fn payload_len(&self) -> usize {
        self.payload_len
    }

    /// Number of groups needed for an object of `object_len` bytes.
    pub fn groups_for(&self, object_len: usize) -> usize {
        let total = FRAME_HEADER_LEN + object_len;
        let group_bytes = self.codec.k() * self.payload_len;
        total.div_ceil(group_bytes)
    }

    /// Encodes a whole object into groups.
    pub fn encode_object(&self, object: &[u8]) -> Result<Vec<EncodedGroup>, FecError> {
        let mut framed = Vec::with_capacity(FRAME_HEADER_LEN + object.len());
        framed.extend_from_slice(&(object.len() as u64).to_le_bytes());
        framed.extend_from_slice(object);

        let k = self.codec.k();
        let group_bytes = k * self.payload_len;
        let n_groups = framed.len().div_ceil(group_bytes).max(1);
        framed.resize(n_groups * group_bytes, 0);

        let mut out = Vec::with_capacity(n_groups);
        for g in 0..n_groups {
            let chunk = &framed[g * group_bytes..(g + 1) * group_bytes];
            let data: Vec<Vec<u8>> = (0..k)
                .map(|i| chunk[i * self.payload_len..(i + 1) * self.payload_len].to_vec())
                .collect();
            let refs: Vec<&[u8]> = data.iter().map(|v| v.as_slice()).collect();
            let mut parity = vec![vec![0u8; self.payload_len]; self.codec.h()];
            let mut bufs: Vec<&mut [u8]> = parity.iter_mut().map(|v| v.as_mut_slice()).collect();
            self.codec.encode_into(&refs, &mut bufs)?;
            out.push(EncodedGroup {
                group_id: g as u64,
                data,
                parity,
            });
        }
        Ok(out)
    }
}

/// Reassembles an object from per-group packet subsets.
#[derive(Debug)]
pub struct GroupDecoder {
    codec: GroupCodec,
    payload_len: usize,
    /// Per group: received `(index, payload)` pairs, deduplicated.
    groups: Vec<Vec<(usize, Vec<u8>)>>,
}

impl GroupDecoder {
    /// Creates a decoder for an object spanning `n_groups` groups with the
    /// same shape parameters as the encoder.
    pub fn new(
        k: usize,
        h: usize,
        payload_len: usize,
        n_groups: usize,
    ) -> Result<GroupDecoder, FecError> {
        if payload_len == 0 {
            return Err(FecError::EmptyShards);
        }
        Ok(GroupDecoder {
            codec: GroupCodec::new(k, h)?,
            payload_len,
            groups: vec![Vec::new(); n_groups],
        })
    }

    /// Feeds one received packet.  Duplicate `(group, index)` pairs are
    /// ignored (multicast repair traffic routinely duplicates packets).
    pub fn push(&mut self, group_id: u64, index: usize, payload: &[u8]) -> Result<(), FecError> {
        let g = group_id as usize;
        if g >= self.groups.len() {
            return Err(FecError::BadFrame("group id beyond object"));
        }
        if index >= self.codec.n() {
            return Err(FecError::IndexOutOfRange {
                index,
                group: self.codec.n(),
            });
        }
        if payload.len() != self.payload_len {
            return Err(FecError::UnequalShardLengths);
        }
        let slot = &mut self.groups[g];
        if slot.iter().any(|(i, _)| *i == index) {
            return Ok(()); // duplicate: drop silently
        }
        slot.push((index, payload.to_vec()));
        Ok(())
    }

    /// Whether group `g` has enough packets to reconstruct.
    pub fn group_complete(&self, group_id: u64) -> bool {
        self.groups
            .get(group_id as usize)
            .is_some_and(|g| g.len() >= self.codec.k())
    }

    /// How many more packets group `g` needs — the quantity a SHARQFEC NACK
    /// carries.
    pub fn deficit(&self, group_id: u64) -> usize {
        match self.groups.get(group_id as usize) {
            Some(g) => self.codec.k().saturating_sub(g.len()),
            None => 0,
        }
    }

    /// Whether the whole object can be reconstructed.
    pub fn complete(&self) -> bool {
        (0..self.groups.len() as u64).all(|g| self.group_complete(g))
    }

    /// Reconstructs the object.  Fails if any group is still short.
    pub fn finish(&self) -> Result<Vec<u8>, FecError> {
        let mut framed = Vec::with_capacity(self.groups.len() * self.codec.k() * self.payload_len);
        // One decode scratch reused across every group of the object: the
        // recovered shards land flat in index order, which is exactly the
        // framed layout, so each group is one decode + one memcpy.
        let mut scratch = DecodeScratch::default();
        for shards in self.groups.iter() {
            if shards.len() < self.codec.k() {
                return Err(FecError::NotEnoughShards {
                    needed: self.codec.k(),
                    got: shards.len(),
                });
            }
            let refs: Vec<(usize, &[u8])> =
                shards.iter().map(|(i, p)| (*i, p.as_slice())).collect();
            let recovered = self.codec.decode(&refs, &mut scratch)?;
            framed.extend_from_slice(recovered.flat());
        }
        if framed.len() < FRAME_HEADER_LEN {
            return Err(FecError::BadFrame("object shorter than header"));
        }
        let mut len_bytes = [0u8; 8];
        len_bytes.copy_from_slice(&framed[..FRAME_HEADER_LEN]);
        let object_len = u64::from_le_bytes(len_bytes) as usize;
        if object_len > framed.len() - FRAME_HEADER_LEN {
            return Err(FecError::BadFrame("length header exceeds payload"));
        }
        Ok(framed[FRAME_HEADER_LEN..FRAME_HEADER_LEN + object_len].to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn object(len: usize) -> Vec<u8> {
        (0..len).map(|i| ((i * 37 + 11) % 256) as u8).collect()
    }

    fn round_trip_with_losses(obj: &[u8], k: usize, h: usize, plen: usize, drop_each: usize) {
        let enc = GroupEncoder::new(k, h, plen).unwrap();
        let groups = enc.encode_object(obj).unwrap();
        let mut dec = GroupDecoder::new(k, h, plen, groups.len()).unwrap();
        for g in &groups {
            for (idx, payload) in g.packets().skip(drop_each) {
                dec.push(g.group_id, idx, payload).unwrap();
            }
        }
        assert!(dec.complete());
        assert_eq!(dec.finish().unwrap(), obj);
    }

    #[test]
    fn lossless_round_trip() {
        round_trip_with_losses(&object(10_000), 16, 4, 100, 0);
    }

    #[test]
    fn round_trip_surviving_h_losses_per_group() {
        round_trip_with_losses(&object(5_000), 16, 4, 64, 4);
    }

    #[test]
    fn empty_object_round_trips() {
        round_trip_with_losses(&[], 4, 2, 32, 2);
    }

    #[test]
    fn object_smaller_than_one_packet() {
        round_trip_with_losses(&object(3), 8, 2, 1000, 2);
    }

    #[test]
    fn object_exactly_group_sized() {
        // 16 packets of 100 bytes minus the 8-byte header.
        round_trip_with_losses(&object(16 * 100 - FRAME_HEADER_LEN), 16, 2, 100, 0);
    }

    #[test]
    fn groups_for_counts_header() {
        let enc = GroupEncoder::new(4, 0, 10).unwrap();
        // 40 bytes per group; 32 payload bytes + 8 header = exactly 1 group.
        assert_eq!(enc.groups_for(32), 1);
        assert_eq!(enc.groups_for(33), 2);
        assert_eq!(enc.groups_for(0), 1);
    }

    #[test]
    fn deficit_tracks_missing_count() {
        let enc = GroupEncoder::new(4, 2, 16).unwrap();
        let groups = enc.encode_object(&object(100)).unwrap();
        let mut dec = GroupDecoder::new(4, 2, 16, groups.len()).unwrap();
        assert_eq!(dec.deficit(0), 4);
        dec.push(0, 0, &groups[0].data[0]).unwrap();
        assert_eq!(dec.deficit(0), 3);
        // duplicates don't shrink the deficit
        dec.push(0, 0, &groups[0].data[0]).unwrap();
        assert_eq!(dec.deficit(0), 3);
        dec.push(0, 4, &groups[0].parity[0]).unwrap();
        dec.push(0, 5, &groups[0].parity[1]).unwrap();
        dec.push(0, 1, &groups[0].data[1]).unwrap();
        assert_eq!(dec.deficit(0), 0);
        assert!(dec.group_complete(0));
    }

    #[test]
    fn finish_fails_when_short() {
        let dec = GroupDecoder::new(4, 2, 16, 1).unwrap();
        assert!(!dec.complete());
        assert!(matches!(
            dec.finish().unwrap_err(),
            FecError::NotEnoughShards { needed: 4, got: 0 }
        ));
    }

    #[test]
    fn push_validates_inputs() {
        let mut dec = GroupDecoder::new(4, 2, 16, 1).unwrap();
        assert!(matches!(
            dec.push(5, 0, &[0; 16]).unwrap_err(),
            FecError::BadFrame(_)
        ));
        assert!(matches!(
            dec.push(0, 6, &[0; 16]).unwrap_err(),
            FecError::IndexOutOfRange { .. }
        ));
        assert!(matches!(
            dec.push(0, 0, &[0; 15]).unwrap_err(),
            FecError::UnequalShardLengths
        ));
    }

    #[test]
    fn zero_payload_len_rejected() {
        assert_eq!(
            GroupEncoder::new(4, 2, 0).unwrap_err(),
            FecError::EmptyShards
        );
        assert_eq!(
            GroupDecoder::new(4, 2, 0, 1).unwrap_err(),
            FecError::EmptyShards
        );
    }

    #[test]
    fn corrupted_length_header_detected() {
        // Hand-craft a group whose header claims more bytes than exist.
        let enc = GroupEncoder::new(2, 0, 8).unwrap();
        let mut groups = enc.encode_object(&object(4)).unwrap();
        groups[0].data[0][..8].copy_from_slice(&u64::MAX.to_le_bytes());
        let mut dec = GroupDecoder::new(2, 0, 8, 1).unwrap();
        for (idx, p) in groups[0].packets() {
            dec.push(0, idx, p).unwrap();
        }
        assert!(matches!(dec.finish().unwrap_err(), FecError::BadFrame(_)));
    }

    #[test]
    fn paper_newspaper_scenario_shape() {
        // ~1 MB object, paper's group shape: k=16, 1000-byte packets.
        let obj = object(1_000_000);
        let enc = GroupEncoder::new(16, 4, 1000).unwrap();
        let groups = enc.encode_object(&obj).unwrap();
        assert_eq!(groups.len(), enc.groups_for(obj.len()));
        let mut dec = GroupDecoder::new(16, 4, 1000, groups.len()).unwrap();
        // Drop a different loss pattern in each group (rotate which packets die).
        for g in &groups {
            let skip = (g.group_id % 5) as usize;
            let mut fed = 0;
            for (idx, p) in g.packets() {
                if idx >= skip && fed < 16 {
                    dec.push(g.group_id, idx, p).unwrap();
                    fed += 1;
                }
            }
        }
        assert_eq!(dec.finish().unwrap(), obj);
    }
}
