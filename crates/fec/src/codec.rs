//! The systematic "any k of n" erasure codec.
//!
//! Construction (Rizzo '97): start from the `n × k` Vandermonde matrix `V`
//! over GF(256) with distinct evaluation points, then post-multiply by the
//! inverse of its top `k × k` block: `W = V · (V_top)⁻¹`.  The top `k` rows
//! of `W` are the identity — so the first `k` output packets are the data
//! packets verbatim (systematic) — while any `k` rows of `W` remain
//! invertible, because they are the product of an invertible Vandermonde
//! row-selection with a fixed invertible matrix.

use crate::matrix::Matrix;
use crate::{FecError, MAX_GROUP};
use sharqfec_gf256::{mul_acc_slice, Gf256};

/// A fixed-rate systematic erasure codec for one packet-group shape.
///
/// `k` is the number of data packets per group and `h` the maximum number of
/// parity ("FEC") packets this codec can produce.  Construction cost is
/// O(k³); encoding one parity packet is O(k · len); decoding with `e`
/// erasures costs one k×k inversion plus O(e · k · len).
///
/// The codec is immutable and shareable; in the simulator one codec per
/// group shape is built once and reused for every group.
#[derive(Clone)]
pub struct GroupCodec {
    k: usize,
    h: usize,
    /// The full (k+h) × k generator matrix `W`; rows `0..k` are identity.
    generator: Matrix,
}

impl core::fmt::Debug for GroupCodec {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "GroupCodec(k={}, h={})", self.k, self.h)
    }
}

impl GroupCodec {
    /// Creates a codec for groups of `k` data packets and up to `h` parity
    /// packets.
    pub fn new(k: usize, h: usize) -> Result<GroupCodec, FecError> {
        if k == 0 {
            return Err(FecError::ZeroDataShards);
        }
        if k + h > MAX_GROUP {
            return Err(FecError::GroupTooLarge { k, h });
        }
        let n = k + h;
        let v = Matrix::vandermonde(n, k);
        let top = v.select_rows(&(0..k).collect::<Vec<_>>());
        let top_inv = top
            .inverse()
            .expect("top block of a Vandermonde matrix is invertible");
        let generator = v.mul(&top_inv);
        debug_assert!(generator
            .select_rows(&(0..k).collect::<Vec<_>>())
            .is_identity());
        Ok(GroupCodec { k, h, generator })
    }

    /// Number of data packets per group.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Maximum number of parity packets.
    pub fn h(&self) -> usize {
        self.h
    }

    /// Total group size `k + h`.
    pub fn n(&self) -> usize {
        self.k + self.h
    }

    /// Encodes all `h` parity packets for a group of `k` equal-length data
    /// packets.
    pub fn encode(&self, data: &[&[u8]]) -> Result<Vec<Vec<u8>>, FecError> {
        self.check_data(data)?;
        (self.k..self.n())
            .map(|row| self.encode_shard_checked(data, row))
            .collect()
    }

    /// Encodes the single output packet with index `index` (`0..k` returns
    /// a copy of the data packet; `k..k+h` computes a parity packet).
    ///
    /// SHARQFEC repairers use this to generate *specific* FEC packets above
    /// the highest identifier already seen, so that concurrent repairers
    /// never duplicate each other's repair packets.
    pub fn encode_shard(&self, data: &[&[u8]], index: usize) -> Result<Vec<u8>, FecError> {
        self.check_data(data)?;
        if index >= self.n() {
            return Err(FecError::IndexOutOfRange {
                index,
                group: self.n(),
            });
        }
        self.encode_shard_checked(data, index)
    }

    fn encode_shard_checked(&self, data: &[&[u8]], row: usize) -> Result<Vec<u8>, FecError> {
        if row < self.k {
            return Ok(data[row].to_vec());
        }
        let len = data[0].len();
        let mut out = vec![0u8; len];
        let coeffs = self.generator.row(row);
        for (j, shard) in data.iter().enumerate() {
            mul_acc_slice(&mut out, shard, coeffs[j]);
        }
        Ok(out)
    }

    /// Reconstructs the `k` original data packets from any `k` received
    /// packets given as `(index, payload)` pairs.
    ///
    /// Extra packets beyond `k` are ignored (the first `k` valid ones are
    /// used).  Indices must be distinct and in `0..k+h`; payloads must be
    /// non-empty and of equal length.
    pub fn decode(&self, shards: &[(usize, &[u8])]) -> Result<Vec<Vec<u8>>, FecError> {
        if shards.len() < self.k {
            return Err(FecError::NotEnoughShards {
                needed: self.k,
                got: shards.len(),
            });
        }
        let len = shards[0].1.len();
        if len == 0 {
            return Err(FecError::EmptyShards);
        }
        let mut seen = vec![false; self.n()];
        let mut use_shards: Vec<(usize, &[u8])> = Vec::with_capacity(self.k);
        for &(idx, payload) in shards {
            if idx >= self.n() {
                return Err(FecError::IndexOutOfRange {
                    index: idx,
                    group: self.n(),
                });
            }
            if seen[idx] {
                return Err(FecError::DuplicateIndex(idx));
            }
            seen[idx] = true;
            if payload.len() != len {
                return Err(FecError::UnequalShardLengths);
            }
            if use_shards.len() < self.k {
                use_shards.push((idx, payload));
            }
        }
        if use_shards.len() < self.k {
            return Err(FecError::NotEnoughShards {
                needed: self.k,
                got: use_shards.len(),
            });
        }

        // Fast path: if the k selected shards are exactly the data shards,
        // no algebra is needed.
        if use_shards.iter().all(|&(idx, _)| idx < self.k) {
            let mut out: Vec<Option<Vec<u8>>> = vec![None; self.k];
            for &(idx, payload) in &use_shards {
                out[idx] = Some(payload.to_vec());
            }
            // All k data indices are distinct and < k, so all slots filled.
            return Ok(out.into_iter().map(|s| s.expect("slot filled")).collect());
        }

        let rows: Vec<usize> = use_shards.iter().map(|&(i, _)| i).collect();
        let sub = self.generator.select_rows(&rows);
        let inv = sub.inverse().ok_or(FecError::SingularMatrix)?;

        let mut out = vec![vec![0u8; len]; self.k];
        for (data_row, out_shard) in out.iter_mut().enumerate() {
            let coeffs = inv.row(data_row);
            for (j, &(_, payload)) in use_shards.iter().enumerate() {
                mul_acc_slice(out_shard, payload, coeffs[j]);
            }
        }
        Ok(out)
    }

    fn check_data(&self, data: &[&[u8]]) -> Result<(), FecError> {
        if data.len() != self.k {
            return Err(FecError::WrongShardCount {
                expected: self.k,
                got: data.len(),
            });
        }
        let len = data[0].len();
        if len == 0 {
            return Err(FecError::EmptyShards);
        }
        if data.iter().any(|s| s.len() != len) {
            return Err(FecError::UnequalShardLengths);
        }
        Ok(())
    }

    /// Coefficient row for output packet `index` (exposed for tests and for
    /// protocol implementations that serialize coefficients).
    pub fn generator_row(&self, index: usize) -> &[Gf256] {
        self.generator.row(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_data(k: usize, len: usize) -> Vec<Vec<u8>> {
        (0..k)
            .map(|i| {
                (0..len)
                    .map(|j| ((i * 131 + j * 17 + 7) % 256) as u8)
                    .collect()
            })
            .collect()
    }

    fn refs(data: &[Vec<u8>]) -> Vec<&[u8]> {
        data.iter().map(|v| v.as_slice()).collect()
    }

    #[test]
    fn systematic_prefix_is_identity() {
        let codec = GroupCodec::new(16, 8).unwrap();
        for i in 0..16 {
            for j in 0..16 {
                let expect = if i == j { Gf256::ONE } else { Gf256::ZERO };
                assert_eq!(codec.generator_row(i)[j], expect);
            }
        }
    }

    #[test]
    fn paper_group_shape_k16_survives_any_loss_pattern_of_h() {
        // The paper sends groups of 16; test a few parity levels.
        for h in [1usize, 2, 4] {
            let codec = GroupCodec::new(16, h).unwrap();
            let data = sample_data(16, 64);
            let parity = codec.encode(&refs(&data)).unwrap();
            assert_eq!(parity.len(), h);

            // Drop the first h data packets, decode from the rest + parity.
            let mut shards: Vec<(usize, &[u8])> = Vec::new();
            for (i, d) in data.iter().enumerate().skip(h) {
                shards.push((i, d.as_slice()));
            }
            for (j, p) in parity.iter().enumerate() {
                shards.push((16 + j, p.as_slice()));
            }
            let rec = codec.decode(&shards).unwrap();
            assert_eq!(rec, data, "h={h}");
        }
    }

    #[test]
    fn all_loss_patterns_recover_small_group() {
        // k=4, h=3: exhaustively try every subset of size 4 from the 7
        // transmitted packets.
        let (k, h) = (4usize, 3usize);
        let codec = GroupCodec::new(k, h).unwrap();
        let data = sample_data(k, 32);
        let parity = codec.encode(&refs(&data)).unwrap();
        let all: Vec<Vec<u8>> = data.iter().cloned().chain(parity.iter().cloned()).collect();

        let n = k + h;
        for mask in 0u32..(1 << n) {
            if mask.count_ones() as usize != k {
                continue;
            }
            let shards: Vec<(usize, &[u8])> = (0..n)
                .filter(|i| mask & (1 << i) != 0)
                .map(|i| (i, all[i].as_slice()))
                .collect();
            let rec = codec.decode(&shards).unwrap();
            assert_eq!(rec, data, "mask={mask:07b}");
        }
    }

    #[test]
    fn decode_uses_only_first_k_and_ignores_extras() {
        let codec = GroupCodec::new(3, 2).unwrap();
        let data = sample_data(3, 8);
        let parity = codec.encode(&refs(&data)).unwrap();
        let shards = vec![
            (0usize, data[0].as_slice()),
            (3, parity[0].as_slice()),
            (2, data[2].as_slice()),
            (4, parity[1].as_slice()), // extra
            (1, data[1].as_slice()),   // extra
        ];
        assert_eq!(codec.decode(&shards).unwrap(), data);
    }

    #[test]
    fn decode_fast_path_with_all_data_shards() {
        let codec = GroupCodec::new(4, 2).unwrap();
        let data = sample_data(4, 10);
        let shards: Vec<(usize, &[u8])> = data
            .iter()
            .enumerate()
            .map(|(i, d)| (i, d.as_slice()))
            .collect();
        assert_eq!(codec.decode(&shards).unwrap(), data);
        // Out-of-order data shards still land in the right slots.
        let shuffled = vec![
            (2usize, data[2].as_slice()),
            (0, data[0].as_slice()),
            (3, data[3].as_slice()),
            (1, data[1].as_slice()),
        ];
        assert_eq!(codec.decode(&shuffled).unwrap(), data);
    }

    #[test]
    fn encode_shard_matches_batch_encode() {
        let codec = GroupCodec::new(5, 4).unwrap();
        let data = sample_data(5, 20);
        let parity = codec.encode(&refs(&data)).unwrap();
        for (j, expected) in parity.iter().enumerate() {
            assert_eq!(&codec.encode_shard(&refs(&data), 5 + j).unwrap(), expected);
        }
        for (i, expected) in data.iter().enumerate() {
            assert_eq!(&codec.encode_shard(&refs(&data), i).unwrap(), expected);
        }
    }

    #[test]
    fn error_cases_are_reported() {
        assert_eq!(GroupCodec::new(0, 1).unwrap_err(), FecError::ZeroDataShards);
        assert!(matches!(
            GroupCodec::new(200, 100).unwrap_err(),
            FecError::GroupTooLarge { .. }
        ));

        let codec = GroupCodec::new(3, 2).unwrap();
        let data = sample_data(3, 8);

        // wrong shard count
        assert!(matches!(
            codec.encode(&refs(&data)[..2]).unwrap_err(),
            FecError::WrongShardCount {
                expected: 3,
                got: 2
            }
        ));
        // unequal lengths
        let bad = vec![&data[0][..], &data[1][..4], &data[2][..]];
        assert_eq!(
            codec.encode(&bad).unwrap_err(),
            FecError::UnequalShardLengths
        );
        // empty shards
        let empty: Vec<&[u8]> = vec![&[], &[], &[]];
        assert_eq!(codec.encode(&empty).unwrap_err(), FecError::EmptyShards);
        // decode: not enough
        assert!(matches!(
            codec.decode(&[(0, data[0].as_slice())]).unwrap_err(),
            FecError::NotEnoughShards { needed: 3, got: 1 }
        ));
        // decode: duplicate index
        let dup = vec![
            (0usize, data[0].as_slice()),
            (0, data[0].as_slice()),
            (1, data[1].as_slice()),
        ];
        assert_eq!(codec.decode(&dup).unwrap_err(), FecError::DuplicateIndex(0));
        // decode: index out of range
        let oor = vec![
            (0usize, data[0].as_slice()),
            (1, data[1].as_slice()),
            (9, data[2].as_slice()),
        ];
        assert!(matches!(
            codec.decode(&oor).unwrap_err(),
            FecError::IndexOutOfRange { index: 9, group: 5 }
        ));
        // encode_shard: index out of range
        assert!(matches!(
            codec.encode_shard(&refs(&data), 5).unwrap_err(),
            FecError::IndexOutOfRange { index: 5, group: 5 }
        ));
    }

    #[test]
    fn one_byte_payloads_work() {
        let codec = GroupCodec::new(2, 1).unwrap();
        let data = vec![vec![0xAAu8], vec![0x55u8]];
        let parity = codec.encode(&refs(&data)).unwrap();
        let shards = vec![(1usize, data[1].as_slice()), (2, parity[0].as_slice())];
        assert_eq!(codec.decode(&shards).unwrap(), data);
    }

    #[test]
    fn k_equals_one_repetition_code() {
        // With k=1 every parity packet is a copy of the single data packet.
        let codec = GroupCodec::new(1, 3).unwrap();
        let data = vec![vec![1u8, 2, 3]];
        let parity = codec.encode(&refs(&data)).unwrap();
        for p in &parity {
            assert_eq!(p, &data[0]);
        }
        let rec = codec.decode(&[(3usize, parity[2].as_slice())]).unwrap();
        assert_eq!(rec, data);
    }

    #[test]
    fn zero_parity_codec_is_a_noop_pass_through() {
        let codec = GroupCodec::new(4, 0).unwrap();
        let data = sample_data(4, 6);
        assert!(codec.encode(&refs(&data)).unwrap().is_empty());
        let shards: Vec<(usize, &[u8])> = data
            .iter()
            .enumerate()
            .map(|(i, d)| (i, d.as_slice()))
            .collect();
        assert_eq!(codec.decode(&shards).unwrap(), data);
    }

    #[test]
    fn debug_format_names_shape() {
        let codec = GroupCodec::new(16, 4).unwrap();
        assert_eq!(format!("{codec:?}"), "GroupCodec(k=16, h=4)");
    }
}
