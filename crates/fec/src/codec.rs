//! The systematic "any k of n" erasure codec.
//!
//! Construction (Rizzo '97): start from the `n × k` Vandermonde matrix `V`
//! over GF(256) with distinct evaluation points, then post-multiply by the
//! inverse of its top `k × k` block: `W = V · (V_top)⁻¹`.  The top `k` rows
//! of `W` are the identity — so the first `k` output packets are the data
//! packets verbatim (systematic) — while any `k` rows of `W` remain
//! invertible, because they are the product of an invertible Vandermonde
//! row-selection with a fixed invertible matrix.

use crate::matrix::Matrix;
use crate::{FecError, MAX_GROUP};
use sharqfec_gf256::{mul_acc_slice, Gf256};

/// Reusable decode workspace.
///
/// [`GroupCodec::decode`] writes the recovered data shards into this
/// scratch's flat buffer and borrows the result back as a
/// [`RecoveredGroup`].  All buffers (seen-set, row selection, decode
/// matrices, output) are grown once and reused, so steady-state repair
/// decoding — the same codec shape group after group — performs no heap
/// allocation at all.
#[derive(Debug, Default, Clone)]
pub struct DecodeScratch {
    /// Dedup bitmap over shard indices, `n` entries.
    seen: Vec<bool>,
    /// Indices of the k shards used for reconstruction.
    rows: Vec<usize>,
    /// The selected k×k generator rows (destroyed by inversion).
    sub: Matrix,
    /// The inverse decode matrix.
    inv: Matrix,
    /// Flat `k × shard_len` output buffer.
    out: Vec<u8>,
}

/// A borrowed view of the `k` recovered data shards of one group, laid out
/// contiguously inside a [`DecodeScratch`].
///
/// The view lives only as long as the scratch borrow; copy out what must
/// outlive it (or use [`RecoveredGroup::to_vecs`] in tests).
#[derive(Debug, Clone, Copy)]
pub struct RecoveredGroup<'a> {
    flat: &'a [u8],
    shard_len: usize,
}

impl<'a> RecoveredGroup<'a> {
    /// Number of data shards recovered (`k`).
    pub fn k(&self) -> usize {
        self.flat.len() / self.shard_len
    }

    /// Length of each shard in bytes.
    pub fn shard_len(&self) -> usize {
        self.shard_len
    }

    /// Data shard `i` (`0..k`).
    pub fn shard(&self, i: usize) -> &'a [u8] {
        &self.flat[i * self.shard_len..(i + 1) * self.shard_len]
    }

    /// Iterates the shards in index order.
    pub fn iter(&self) -> impl Iterator<Item = &'a [u8]> {
        self.flat.chunks_exact(self.shard_len)
    }

    /// The shards as one contiguous `k × shard_len` byte run — shard `i`
    /// starts at offset `i * shard_len`, which is exactly the layout a
    /// framed object wants.
    pub fn flat(&self) -> &'a [u8] {
        self.flat
    }

    /// Copies the shards out into owned vectors (convenience for tests and
    /// non-hot paths).
    pub fn to_vecs(&self) -> Vec<Vec<u8>> {
        self.iter().map(|s| s.to_vec()).collect()
    }
}

/// A fixed-rate systematic erasure codec for one packet-group shape.
///
/// `k` is the number of data packets per group and `h` the maximum number of
/// parity ("FEC") packets this codec can produce.  Construction cost is
/// O(k³); encoding one parity packet is O(k · len); decoding with `e`
/// erasures costs one k×k inversion plus O(e · k · len).
///
/// The codec is immutable and shareable; in the simulator one codec per
/// group shape is built once and reused for every group.
#[derive(Clone)]
pub struct GroupCodec {
    k: usize,
    h: usize,
    /// The full (k+h) × k generator matrix `W`; rows `0..k` are identity.
    generator: Matrix,
}

impl core::fmt::Debug for GroupCodec {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "GroupCodec(k={}, h={})", self.k, self.h)
    }
}

impl GroupCodec {
    /// Creates a codec for groups of `k` data packets and up to `h` parity
    /// packets.
    pub fn new(k: usize, h: usize) -> Result<GroupCodec, FecError> {
        if k == 0 {
            return Err(FecError::ZeroDataShards);
        }
        if k + h > MAX_GROUP {
            return Err(FecError::GroupTooLarge { k, h });
        }
        let n = k + h;
        let v = Matrix::vandermonde(n, k);
        let top = v.select_rows(&(0..k).collect::<Vec<_>>());
        let top_inv = top
            .inverse()
            .expect("top block of a Vandermonde matrix is invertible");
        let generator = v.mul(&top_inv);
        debug_assert!(generator
            .select_rows(&(0..k).collect::<Vec<_>>())
            .is_identity());
        Ok(GroupCodec { k, h, generator })
    }

    /// Number of data packets per group.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Maximum number of parity packets.
    pub fn h(&self) -> usize {
        self.h
    }

    /// Total group size `k + h`.
    pub fn n(&self) -> usize {
        self.k + self.h
    }

    /// Encodes all `h` parity packets for a group of `k` equal-length data
    /// packets into caller-provided buffers — one per parity packet, each
    /// exactly the data packets' length.
    ///
    /// The buffers are zeroed and overwritten; on error their contents are
    /// unspecified.  Callers own the storage, so a steady-state encoder
    /// reuses the same parity buffers group after group.
    pub fn encode_into(&self, data: &[&[u8]], parity: &mut [&mut [u8]]) -> Result<(), FecError> {
        self.check_data(data)?;
        if parity.len() != self.h {
            return Err(FecError::WrongShardCount {
                expected: self.h,
                got: parity.len(),
            });
        }
        let len = data[0].len();
        for (j, out) in parity.iter_mut().enumerate() {
            if out.len() != len {
                return Err(FecError::UnequalShardLengths);
            }
            out.fill(0);
            let coeffs = self.generator.row(self.k + j);
            for (i, shard) in data.iter().enumerate() {
                mul_acc_slice(out, shard, coeffs[i]);
            }
        }
        Ok(())
    }

    /// Encodes the single output packet with index `index` into `out`
    /// (`0..k` copies the data packet; `k..k+h` computes a parity packet).
    /// `out` must have the data packets' length.
    ///
    /// SHARQFEC repairers use this to generate *specific* FEC packets above
    /// the highest identifier already seen, so that concurrent repairers
    /// never duplicate each other's repair packets.
    pub fn encode_shard_into(
        &self,
        data: &[&[u8]],
        index: usize,
        out: &mut [u8],
    ) -> Result<(), FecError> {
        self.check_data(data)?;
        if index >= self.n() {
            return Err(FecError::IndexOutOfRange {
                index,
                group: self.n(),
            });
        }
        if out.len() != data[0].len() {
            return Err(FecError::UnequalShardLengths);
        }
        if index < self.k {
            out.copy_from_slice(data[index]);
            return Ok(());
        }
        out.fill(0);
        let coeffs = self.generator.row(index);
        for (i, shard) in data.iter().enumerate() {
            mul_acc_slice(out, shard, coeffs[i]);
        }
        Ok(())
    }

    /// Reconstructs the `k` original data packets from any `k` received
    /// packets given as `(index, payload)` pairs, writing them into
    /// `scratch` and returning a borrowed [`RecoveredGroup`] view.
    ///
    /// Extra packets beyond `k` are ignored (the first `k` are used; all
    /// entries are still validated).  Indices must be distinct and in
    /// `0..k+h`; payloads must be non-empty and of equal length.
    ///
    /// The scratch may be shared across codecs of different shapes; its
    /// buffers grow to the largest shape seen and are then reused without
    /// further allocation.
    pub fn decode<'s>(
        &self,
        shards: &[(usize, &[u8])],
        scratch: &'s mut DecodeScratch,
    ) -> Result<RecoveredGroup<'s>, FecError> {
        if shards.len() < self.k {
            return Err(FecError::NotEnoughShards {
                needed: self.k,
                got: shards.len(),
            });
        }
        let len = shards[0].1.len();
        if len == 0 {
            return Err(FecError::EmptyShards);
        }
        scratch.seen.clear();
        scratch.seen.resize(self.n(), false);
        for &(idx, payload) in shards {
            if idx >= self.n() {
                return Err(FecError::IndexOutOfRange {
                    index: idx,
                    group: self.n(),
                });
            }
            if scratch.seen[idx] {
                return Err(FecError::DuplicateIndex(idx));
            }
            scratch.seen[idx] = true;
            if payload.len() != len {
                return Err(FecError::UnequalShardLengths);
            }
        }
        // Every entry is valid and indices are distinct, so the shards used
        // for reconstruction are simply the first k in input order.
        let use_shards = &shards[..self.k];
        scratch.out.clear();
        scratch.out.resize(self.k * len, 0);

        // Fast path: if the k selected shards are exactly the data shards,
        // no algebra is needed.
        if use_shards.iter().all(|&(idx, _)| idx < self.k) {
            for &(idx, payload) in use_shards {
                scratch.out[idx * len..(idx + 1) * len].copy_from_slice(payload);
            }
            // All k data indices are distinct and < k, so all slots filled.
            return Ok(RecoveredGroup {
                flat: &scratch.out,
                shard_len: len,
            });
        }

        scratch.rows.clear();
        scratch.rows.extend(use_shards.iter().map(|&(i, _)| i));
        scratch.sub.select_rows_into(&self.generator, &scratch.rows);
        if !scratch.sub.invert_into(&mut scratch.inv) {
            return Err(FecError::SingularMatrix);
        }

        for data_row in 0..self.k {
            let out_shard = &mut scratch.out[data_row * len..(data_row + 1) * len];
            let coeffs = scratch.inv.row(data_row);
            for (j, &(_, payload)) in use_shards.iter().enumerate() {
                mul_acc_slice(out_shard, payload, coeffs[j]);
            }
        }
        Ok(RecoveredGroup {
            flat: &scratch.out,
            shard_len: len,
        })
    }

    fn check_data(&self, data: &[&[u8]]) -> Result<(), FecError> {
        if data.len() != self.k {
            return Err(FecError::WrongShardCount {
                expected: self.k,
                got: data.len(),
            });
        }
        let len = data[0].len();
        if len == 0 {
            return Err(FecError::EmptyShards);
        }
        if data.iter().any(|s| s.len() != len) {
            return Err(FecError::UnequalShardLengths);
        }
        Ok(())
    }

    /// Coefficient row for output packet `index` (exposed for tests and for
    /// protocol implementations that serialize coefficients).
    pub fn generator_row(&self, index: usize) -> &[Gf256] {
        self.generator.row(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_data(k: usize, len: usize) -> Vec<Vec<u8>> {
        (0..k)
            .map(|i| {
                (0..len)
                    .map(|j| ((i * 131 + j * 17 + 7) % 256) as u8)
                    .collect()
            })
            .collect()
    }

    fn refs(data: &[Vec<u8>]) -> Vec<&[u8]> {
        data.iter().map(|v| v.as_slice()).collect()
    }

    /// Test convenience: encode all parity shards into fresh vectors.
    fn encode_parity(codec: &GroupCodec, data: &[&[u8]]) -> Vec<Vec<u8>> {
        let len = data.first().map_or(0, |d| d.len());
        let mut parity = vec![vec![0u8; len]; codec.h()];
        let mut bufs: Vec<&mut [u8]> = parity.iter_mut().map(|v| v.as_mut_slice()).collect();
        codec.encode_into(data, &mut bufs).unwrap();
        parity
    }

    /// Test convenience: decode through a throwaway scratch into vectors.
    fn decode_vecs(
        codec: &GroupCodec,
        shards: &[(usize, &[u8])],
    ) -> Result<Vec<Vec<u8>>, FecError> {
        let mut scratch = DecodeScratch::default();
        codec.decode(shards, &mut scratch).map(|r| r.to_vecs())
    }

    #[test]
    fn systematic_prefix_is_identity() {
        let codec = GroupCodec::new(16, 8).unwrap();
        for i in 0..16 {
            for j in 0..16 {
                let expect = if i == j { Gf256::ONE } else { Gf256::ZERO };
                assert_eq!(codec.generator_row(i)[j], expect);
            }
        }
    }

    #[test]
    fn paper_group_shape_k16_survives_any_loss_pattern_of_h() {
        // The paper sends groups of 16; test a few parity levels.
        for h in [1usize, 2, 4] {
            let codec = GroupCodec::new(16, h).unwrap();
            let data = sample_data(16, 64);
            let parity = encode_parity(&codec, &refs(&data));
            assert_eq!(parity.len(), h);

            // Drop the first h data packets, decode from the rest + parity.
            let mut shards: Vec<(usize, &[u8])> = Vec::new();
            for (i, d) in data.iter().enumerate().skip(h) {
                shards.push((i, d.as_slice()));
            }
            for (j, p) in parity.iter().enumerate() {
                shards.push((16 + j, p.as_slice()));
            }
            let rec = decode_vecs(&codec, &shards).unwrap();
            assert_eq!(rec, data, "h={h}");
        }
    }

    #[test]
    fn all_loss_patterns_recover_small_group() {
        // k=4, h=3: exhaustively try every subset of size 4 from the 7
        // transmitted packets.
        let (k, h) = (4usize, 3usize);
        let codec = GroupCodec::new(k, h).unwrap();
        let data = sample_data(k, 32);
        let parity = encode_parity(&codec, &refs(&data));
        let all: Vec<Vec<u8>> = data.iter().cloned().chain(parity.iter().cloned()).collect();

        // One scratch across every loss pattern — the steady-state shape.
        let mut scratch = DecodeScratch::default();
        let n = k + h;
        for mask in 0u32..(1 << n) {
            if mask.count_ones() as usize != k {
                continue;
            }
            let shards: Vec<(usize, &[u8])> = (0..n)
                .filter(|i| mask & (1 << i) != 0)
                .map(|i| (i, all[i].as_slice()))
                .collect();
            let rec = codec.decode(&shards, &mut scratch).unwrap();
            assert_eq!(rec.to_vecs(), data, "mask={mask:07b}");
        }
    }

    #[test]
    fn decode_uses_only_first_k_and_ignores_extras() {
        let codec = GroupCodec::new(3, 2).unwrap();
        let data = sample_data(3, 8);
        let parity = encode_parity(&codec, &refs(&data));
        let shards = vec![
            (0usize, data[0].as_slice()),
            (3, parity[0].as_slice()),
            (2, data[2].as_slice()),
            (4, parity[1].as_slice()), // extra
            (1, data[1].as_slice()),   // extra
        ];
        assert_eq!(decode_vecs(&codec, &shards).unwrap(), data);
    }

    #[test]
    fn decode_fast_path_with_all_data_shards() {
        let codec = GroupCodec::new(4, 2).unwrap();
        let data = sample_data(4, 10);
        let shards: Vec<(usize, &[u8])> = data
            .iter()
            .enumerate()
            .map(|(i, d)| (i, d.as_slice()))
            .collect();
        assert_eq!(decode_vecs(&codec, &shards).unwrap(), data);
        // Out-of-order data shards still land in the right slots.
        let shuffled = vec![
            (2usize, data[2].as_slice()),
            (0, data[0].as_slice()),
            (3, data[3].as_slice()),
            (1, data[1].as_slice()),
        ];
        assert_eq!(decode_vecs(&codec, &shuffled).unwrap(), data);
    }

    #[test]
    fn encode_shard_matches_batch_encode() {
        let codec = GroupCodec::new(5, 4).unwrap();
        let data = sample_data(5, 20);
        let parity = encode_parity(&codec, &refs(&data));
        let mut out = vec![0u8; 20];
        for (j, expected) in parity.iter().enumerate() {
            codec
                .encode_shard_into(&refs(&data), 5 + j, &mut out)
                .unwrap();
            assert_eq!(&out, expected);
        }
        for (i, expected) in data.iter().enumerate() {
            codec.encode_shard_into(&refs(&data), i, &mut out).unwrap();
            assert_eq!(&out, expected);
        }
    }

    #[test]
    fn error_cases_are_reported() {
        assert_eq!(GroupCodec::new(0, 1).unwrap_err(), FecError::ZeroDataShards);
        assert!(matches!(
            GroupCodec::new(200, 100).unwrap_err(),
            FecError::GroupTooLarge { .. }
        ));

        let codec = GroupCodec::new(3, 2).unwrap();
        let data = sample_data(3, 8);
        let mut parity = vec![vec![0u8; 8]; 2];

        let encode = |codec: &GroupCodec, data: &[&[u8]], parity: &mut [Vec<u8>]| {
            let mut bufs: Vec<&mut [u8]> = parity.iter_mut().map(|v| v.as_mut_slice()).collect();
            codec.encode_into(data, &mut bufs)
        };
        // wrong shard count
        assert!(matches!(
            encode(&codec, &refs(&data)[..2], &mut parity).unwrap_err(),
            FecError::WrongShardCount {
                expected: 3,
                got: 2
            }
        ));
        // unequal lengths
        let bad = vec![&data[0][..], &data[1][..4], &data[2][..]];
        assert_eq!(
            encode(&codec, &bad, &mut parity).unwrap_err(),
            FecError::UnequalShardLengths
        );
        // empty shards
        let empty: Vec<&[u8]> = vec![&[], &[], &[]];
        assert_eq!(
            encode(&codec, &empty, &mut parity).unwrap_err(),
            FecError::EmptyShards
        );
        // wrong number of parity buffers
        assert!(matches!(
            encode(&codec, &refs(&data), &mut parity[..1]).unwrap_err(),
            FecError::WrongShardCount {
                expected: 2,
                got: 1
            }
        ));
        // mis-sized parity buffer
        let mut short = vec![vec![0u8; 8], vec![0u8; 4]];
        assert_eq!(
            encode(&codec, &refs(&data), &mut short).unwrap_err(),
            FecError::UnequalShardLengths
        );
        // decode: not enough
        assert!(matches!(
            decode_vecs(&codec, &[(0, data[0].as_slice())]).unwrap_err(),
            FecError::NotEnoughShards { needed: 3, got: 1 }
        ));
        // decode: duplicate index
        let dup = vec![
            (0usize, data[0].as_slice()),
            (0, data[0].as_slice()),
            (1, data[1].as_slice()),
        ];
        assert_eq!(
            decode_vecs(&codec, &dup).unwrap_err(),
            FecError::DuplicateIndex(0)
        );
        // decode: index out of range
        let oor = vec![
            (0usize, data[0].as_slice()),
            (1, data[1].as_slice()),
            (9, data[2].as_slice()),
        ];
        assert!(matches!(
            decode_vecs(&codec, &oor).unwrap_err(),
            FecError::IndexOutOfRange { index: 9, group: 5 }
        ));
        // encode_shard_into: index out of range
        let mut out = vec![0u8; 8];
        assert!(matches!(
            codec
                .encode_shard_into(&refs(&data), 5, &mut out)
                .unwrap_err(),
            FecError::IndexOutOfRange { index: 5, group: 5 }
        ));
        // encode_shard_into: mis-sized output buffer
        let mut short_out = vec![0u8; 4];
        assert_eq!(
            codec
                .encode_shard_into(&refs(&data), 0, &mut short_out)
                .unwrap_err(),
            FecError::UnequalShardLengths
        );
    }

    #[test]
    fn one_byte_payloads_work() {
        let codec = GroupCodec::new(2, 1).unwrap();
        let data = vec![vec![0xAAu8], vec![0x55u8]];
        let parity = encode_parity(&codec, &refs(&data));
        let shards = vec![(1usize, data[1].as_slice()), (2, parity[0].as_slice())];
        assert_eq!(decode_vecs(&codec, &shards).unwrap(), data);
    }

    #[test]
    fn k_equals_one_repetition_code() {
        // With k=1 every parity packet is a copy of the single data packet.
        let codec = GroupCodec::new(1, 3).unwrap();
        let data = vec![vec![1u8, 2, 3]];
        let parity = encode_parity(&codec, &refs(&data));
        for p in &parity {
            assert_eq!(p, &data[0]);
        }
        let rec = decode_vecs(&codec, &[(3usize, parity[2].as_slice())]).unwrap();
        assert_eq!(rec, data);
    }

    #[test]
    fn zero_parity_codec_is_a_noop_pass_through() {
        let codec = GroupCodec::new(4, 0).unwrap();
        let data = sample_data(4, 6);
        assert!(encode_parity(&codec, &refs(&data)).is_empty());
        let shards: Vec<(usize, &[u8])> = data
            .iter()
            .enumerate()
            .map(|(i, d)| (i, d.as_slice()))
            .collect();
        assert_eq!(decode_vecs(&codec, &shards).unwrap(), data);
    }

    #[test]
    fn debug_format_names_shape() {
        let codec = GroupCodec::new(16, 4).unwrap();
        assert_eq!(format!("{codec:?}"), "GroupCodec(k=16, h=4)");
    }

    #[test]
    fn recovered_group_view_exposes_shards_and_flat_layout() {
        let codec = GroupCodec::new(3, 2).unwrap();
        let data = sample_data(3, 8);
        let parity = encode_parity(&codec, &refs(&data));
        let shards = vec![
            (1usize, data[1].as_slice()),
            (3, parity[0].as_slice()),
            (4, parity[1].as_slice()),
        ];
        let mut scratch = DecodeScratch::default();
        let rec = codec.decode(&shards, &mut scratch).unwrap();
        assert_eq!(rec.k(), 3);
        assert_eq!(rec.shard_len(), 8);
        for (i, d) in data.iter().enumerate() {
            assert_eq!(rec.shard(i), d.as_slice());
        }
        assert_eq!(rec.iter().count(), 3);
        // Flat layout: shard i at offset i * shard_len.
        assert_eq!(&rec.flat()[8..16], data[1].as_slice());
        assert_eq!(rec.flat().len(), 24);
    }

    #[test]
    fn one_scratch_serves_codecs_of_different_shapes() {
        // A session decodes tail groups (smaller k) with the same scratch
        // it used for full groups; shrinking shapes must not read stale
        // bytes from the previous, larger decode.
        let mut scratch = DecodeScratch::default();
        for (k, h) in [(16usize, 4usize), (4, 2), (7, 3), (2, 1)] {
            let codec = GroupCodec::new(k, h).unwrap();
            let data = sample_data(k, 32);
            let parity = encode_parity(&codec, &refs(&data));
            // Lose the first min(h, k) data shards.
            let lost = h.min(k);
            let shards: Vec<(usize, &[u8])> = data
                .iter()
                .enumerate()
                .skip(lost)
                .map(|(i, d)| (i, d.as_slice()))
                .chain(
                    parity
                        .iter()
                        .enumerate()
                        .map(|(j, p)| (k + j, p.as_slice())),
                )
                .collect();
            let rec = codec.decode(&shards, &mut scratch).unwrap();
            assert_eq!(rec.to_vecs(), data, "k={k} h={h}");
        }
    }
}
