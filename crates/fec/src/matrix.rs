//! Dense matrices over GF(256).
//!
//! Only what the erasure codec needs: construction (zero, identity,
//! Vandermonde), multiplication, row extraction, and Gauss–Jordan
//! inversion.  Matrices are small (at most 255×255) so a dense row-major
//! `Vec<Gf256>` is the right representation; no sparse cleverness.

use sharqfec_gf256::Gf256;

/// A dense row-major matrix over GF(256).
#[derive(Clone, PartialEq, Eq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<Gf256>,
}

impl core::fmt::Debug for Matrix {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(f, "Matrix({}x{})", self.rows, self.cols)?;
        for r in 0..self.rows {
            for c in 0..self.cols {
                write!(f, "{} ", self[(r, c)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

impl Default for Matrix {
    /// A dimensionless (0 × 0) placeholder, the initial state of reusable
    /// scratch matrices; give it a shape with [`Matrix::reset`] before use.
    fn default() -> Matrix {
        Matrix {
            rows: 0,
            cols: 0,
            data: Vec::new(),
        }
    }
}

impl Matrix {
    /// An all-zero matrix.
    pub fn zero(rows: usize, cols: usize) -> Matrix {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Matrix {
            rows,
            cols,
            data: vec![Gf256::ZERO; rows * cols],
        }
    }

    /// The identity matrix of the given size.
    pub fn identity(n: usize) -> Matrix {
        let mut m = Matrix::zero(n, n);
        for i in 0..n {
            m[(i, i)] = Gf256::ONE;
        }
        m
    }

    /// Builds a matrix from a row-major nested slice (for tests and docs).
    ///
    /// # Panics
    ///
    /// Panics if rows have unequal lengths or the input is empty.
    pub fn from_rows(rows: &[&[u8]]) -> Matrix {
        assert!(!rows.is_empty(), "matrix must have at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "matrix must have at least one column");
        let mut m = Matrix::zero(rows.len(), cols);
        for (r, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), cols, "ragged rows");
            for (c, &v) in row.iter().enumerate() {
                m[(r, c)] = Gf256(v);
            }
        }
        m
    }

    /// The `rows x cols` Vandermonde matrix with evaluation points
    /// `x_r = α^r`: entry `(r, c) = x_r ^ c`.
    ///
    /// Every square submatrix formed by choosing any `cols` *rows* is
    /// invertible because the `x_r` are pairwise distinct — the property the
    /// erasure code's "any k of n" guarantee rests on.
    ///
    /// # Panics
    ///
    /// Panics if `rows > 255` (the points would repeat) or dims are zero.
    pub fn vandermonde(rows: usize, cols: usize) -> Matrix {
        assert!(
            rows <= 255,
            "at most 255 distinct evaluation points exist in GF(256)*"
        );
        let mut m = Matrix::zero(rows, cols);
        for r in 0..rows {
            let x = Gf256::alpha_pow(r);
            for c in 0..cols {
                m[(r, c)] = x.pow(c);
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow row `r` as a slice.
    pub fn row(&self, r: usize) -> &[Gf256] {
        assert!(r < self.rows, "row index out of range");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// A new matrix consisting of the selected rows, in order.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut m = Matrix::default();
        m.select_rows_into(self, indices);
        m
    }

    /// Reshapes this matrix in place to `rows × cols` with every entry
    /// zeroed, reusing the existing allocation when its capacity suffices.
    /// This is what lets decode scratch buffers go allocation-free once
    /// they have seen their largest shape.
    pub fn reset(&mut self, rows: usize, cols: usize) {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, Gf256::ZERO);
    }

    /// Overwrites `self` with the selected rows of `src`, in order,
    /// reusing `self`'s storage.
    pub fn select_rows_into(&mut self, src: &Matrix, indices: &[usize]) {
        self.reset(indices.len(), src.cols);
        for (dst, &s) in indices.iter().enumerate() {
            self.data[dst * self.cols..(dst + 1) * self.cols].copy_from_slice(src.row(s));
        }
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn mul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "inner dimensions must agree");
        let mut out = Matrix::zero(self.rows, rhs.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(r, k)];
                if a.is_zero() {
                    continue;
                }
                for c in 0..rhs.cols {
                    let add = a * rhs[(k, c)];
                    out[(r, c)] += add;
                }
            }
        }
        out
    }

    /// Gauss–Jordan inverse.  Returns `None` if the matrix is singular.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn inverse(&self) -> Option<Matrix> {
        let mut a = self.clone();
        let mut inv = Matrix::default();
        a.invert_into(&mut inv).then_some(inv)
    }

    /// Allocation-reusing Gauss–Jordan: reduces `self` in place (leaving it
    /// as the identity on success) and writes the inverse into `inv`, whose
    /// storage is reused.  Returns `false` if `self` is singular, in which
    /// case both matrices hold partially-reduced garbage.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn invert_into(&mut self, inv: &mut Matrix) -> bool {
        assert_eq!(self.rows, self.cols, "only square matrices invert");
        let n = self.rows;
        inv.reset(n, n);
        for i in 0..n {
            inv[(i, i)] = Gf256::ONE;
        }
        for col in 0..n {
            // Find a pivot: any nonzero entry works (exact field arithmetic,
            // no numerical-stability concerns).
            let Some(pivot_row) = (col..n).find(|&r| !self[(r, col)].is_zero()) else {
                return false;
            };
            if pivot_row != col {
                self.swap_rows(pivot_row, col);
                inv.swap_rows(pivot_row, col);
            }
            let pivot = self[(col, col)];
            let pinv = pivot.inverse().expect("pivot chosen nonzero");
            self.scale_row(col, pinv);
            inv.scale_row(col, pinv);
            for r in 0..n {
                if r != col {
                    let factor = self[(r, col)];
                    if !factor.is_zero() {
                        self.add_scaled_row(col, r, factor);
                        inv.add_scaled_row(col, r, factor);
                    }
                }
            }
        }
        true
    }

    fn swap_rows(&mut self, r1: usize, r2: usize) {
        if r1 == r2 {
            return;
        }
        for c in 0..self.cols {
            self.data.swap(r1 * self.cols + c, r2 * self.cols + c);
        }
    }

    fn scale_row(&mut self, r: usize, factor: Gf256) {
        for c in 0..self.cols {
            self[(r, c)] *= factor;
        }
    }

    /// `row[dst] += factor * row[src]` (subtraction == addition in GF(2^8)).
    fn add_scaled_row(&mut self, src: usize, dst: usize, factor: Gf256) {
        for c in 0..self.cols {
            let add = factor * self[(src, c)];
            self[(dst, c)] += add;
        }
    }

    /// Whether this matrix is the identity.
    pub fn is_identity(&self) -> bool {
        if self.rows != self.cols {
            return false;
        }
        (0..self.rows).all(|r| {
            (0..self.cols).all(|c| self[(r, c)] == if r == c { Gf256::ONE } else { Gf256::ZERO })
        })
    }
}

impl core::ops::Index<(usize, usize)> for Matrix {
    type Output = Gf256;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &Gf256 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl core::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut Gf256 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_times_anything_is_that_thing() {
        let m = Matrix::vandermonde(5, 3);
        let id = Matrix::identity(5);
        assert_eq!(id.mul(&m), m);
    }

    #[test]
    fn inverse_of_identity_is_identity() {
        let id = Matrix::identity(7);
        assert_eq!(id.inverse().unwrap(), id);
    }

    #[test]
    fn inverse_round_trips() {
        let m = Matrix::vandermonde(6, 6);
        let inv = m.inverse().expect("square Vandermonde inverts");
        assert!(m.mul(&inv).is_identity());
        assert!(inv.mul(&m).is_identity());
    }

    #[test]
    fn singular_matrix_returns_none() {
        // Two identical rows.
        let m = Matrix::from_rows(&[&[1, 2, 3], &[1, 2, 3], &[0, 1, 0]]);
        assert!(m.inverse().is_none());
        // All-zero matrix.
        assert!(Matrix::zero(4, 4).inverse().is_none());
    }

    #[test]
    fn inverse_requires_pivot_search_with_leading_zero() {
        // Leading zero forces a row swap in Gauss-Jordan.
        let m = Matrix::from_rows(&[&[0, 1], &[1, 0]]);
        let inv = m.inverse().unwrap();
        assert!(m.mul(&inv).is_identity());
    }

    #[test]
    fn vandermonde_row_entries_are_powers() {
        let m = Matrix::vandermonde(4, 3);
        for r in 0..4 {
            let x = Gf256::alpha_pow(r);
            for c in 0..3 {
                assert_eq!(m[(r, c)], x.pow(c));
            }
        }
    }

    #[test]
    fn every_square_row_selection_of_vandermonde_inverts() {
        // The core guarantee behind "any k of n": exhaustively verify for a
        // small group.
        let n = 8;
        let k = 3;
        let v = Matrix::vandermonde(n, k);
        for a in 0..n {
            for b in (a + 1)..n {
                for c in (b + 1)..n {
                    let sub = v.select_rows(&[a, b, c]);
                    assert!(
                        sub.inverse().is_some(),
                        "rows {a},{b},{c} should be independent"
                    );
                }
            }
        }
    }

    #[test]
    fn invert_into_reuses_buffers_across_shapes() {
        let mut scratch = Matrix::default();
        let mut inv = Matrix::default();
        for n in [6usize, 3, 5] {
            let m = Matrix::vandermonde(n, n);
            scratch.select_rows_into(&m, &(0..n).collect::<Vec<_>>());
            assert!(scratch.invert_into(&mut inv));
            assert!(m.mul(&inv).is_identity(), "n={n}");
        }
        // Singular input reports failure through the same path.
        let singular = Matrix::from_rows(&[&[1, 2], &[1, 2]]);
        scratch.select_rows_into(&singular, &[0, 1]);
        assert!(!scratch.invert_into(&mut inv));
    }

    #[test]
    fn select_rows_preserves_content_and_order() {
        let m = Matrix::vandermonde(5, 4);
        let s = m.select_rows(&[4, 0, 2]);
        assert_eq!(s.rows(), 3);
        assert_eq!(s.row(0), m.row(4));
        assert_eq!(s.row(1), m.row(0));
        assert_eq!(s.row(2), m.row(2));
    }

    #[test]
    fn multiplication_agrees_with_hand_example() {
        // Over GF(2^8): [[1,2],[3,4]] * [[5],[6]]
        let a = Matrix::from_rows(&[&[1, 2], &[3, 4]]);
        let b = Matrix::from_rows(&[&[5], &[6]]);
        let p = a.mul(&b);
        assert_eq!(p[(0, 0)], Gf256(1) * Gf256(5) + Gf256(2) * Gf256(6));
        assert_eq!(p[(1, 0)], Gf256(3) * Gf256(5) + Gf256(4) * Gf256(6));
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn mismatched_multiplication_panics() {
        let a = Matrix::zero(2, 3);
        let b = Matrix::zero(2, 3);
        let _ = a.mul(&b);
    }

    #[test]
    #[should_panic(expected = "only square")]
    fn non_square_inverse_panics() {
        let _ = Matrix::zero(2, 3).inverse();
    }

    #[test]
    fn debug_render_contains_dimensions() {
        let s = format!("{:?}", Matrix::identity(2));
        assert!(s.contains("Matrix(2x2)"));
    }
}
