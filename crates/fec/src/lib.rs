//! Packet-level Forward Error Correction for SHARQFEC.
//!
//! The SHARQFEC paper (Kermode, SIGCOMM '98) transmits data in *packet
//! groups* of `k` packets and repairs losses by sending *FEC packets*
//! generated from the group, in the style of Rizzo's erasure-code library
//! ("Effective Erasure Codes for Reliable Computer Communication
//! Protocols", CCR 1997, the paper's reference \[14\]).  Any `k` distinct
//! packets out of the `k + h` transmitted reconstruct the original group —
//! which is exactly why SHARQFEC NACKs carry a *count* of missing packets
//! rather than packet identities.
//!
//! This crate provides that codec:
//!
//! * [`matrix`] — dense matrices over GF(256) with Gauss–Jordan inversion;
//! * [`codec`] — the systematic encoder/decoder ([`GroupCodec`]);
//! * [`group`] — framing of an application byte stream into packet groups
//!   ([`GroupEncoder`] / [`GroupDecoder`]), the shape used by the examples.
//!
//! # Quickstart
//!
//! The codec works over borrowed shard views: encoding writes parity into
//! caller-provided buffers, and decoding reuses a [`DecodeScratch`]
//! workspace so steady-state repair decoding never allocates.
//!
//! ```
//! use sharqfec_fec::codec::{DecodeScratch, GroupCodec};
//!
//! // A group of k = 4 data packets, able to survive any 2 losses.
//! let codec = GroupCodec::new(4, 2).unwrap();
//! let data: Vec<Vec<u8>> = (0..4).map(|i| vec![i as u8; 16]).collect();
//! let shards: Vec<&[u8]> = data.iter().map(|v| v.as_slice()).collect();
//! let mut parity = vec![vec![0u8; 16]; 2];
//! {
//!     let mut bufs: Vec<&mut [u8]> = parity.iter_mut().map(|v| v.as_mut_slice()).collect();
//!     codec.encode_into(&shards, &mut bufs).unwrap();
//! }
//!
//! // Lose packets 1 and 3; recover from 0, 2 and the two parity packets.
//! let received = vec![
//!     (0usize, data[0].as_slice()),
//!     (2, data[2].as_slice()),
//!     (4, parity[0].as_slice()),
//!     (5, parity[1].as_slice()),
//! ];
//! let mut scratch = DecodeScratch::default();
//! let recovered = codec.decode(&received, &mut scratch).unwrap();
//! assert_eq!(recovered.to_vecs(), data);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod group;
pub mod matrix;

pub use codec::{DecodeScratch, GroupCodec, RecoveredGroup};
pub use group::{GroupDecoder, GroupEncoder};

/// Maximum total number of packets (`k + h`) in one group.
///
/// The codec evaluates its generator rows at the 255 distinct nonzero
/// points of GF(256), so a group may contain at most 255 packets.
pub const MAX_GROUP: usize = 255;

/// Errors produced by the erasure codec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FecError {
    /// `k` must be at least 1.
    ZeroDataShards,
    /// `k + h` exceeded [`MAX_GROUP`].
    GroupTooLarge {
        /// Requested number of data packets.
        k: usize,
        /// Requested number of parity packets.
        h: usize,
    },
    /// The number of shards handed to encode/decode does not match `k`.
    WrongShardCount {
        /// Shards expected.
        expected: usize,
        /// Shards received.
        got: usize,
    },
    /// Shards must all have the same length.
    UnequalShardLengths,
    /// Shards must be non-empty.
    EmptyShards,
    /// A shard index was out of range for this group.
    IndexOutOfRange {
        /// The offending index.
        index: usize,
        /// Number of shards in the group (`k + h`).
        group: usize,
    },
    /// The same shard index appeared twice in a decode call.
    DuplicateIndex(usize),
    /// Fewer than `k` shards were supplied to decode.
    NotEnoughShards {
        /// Shards needed (`k`).
        needed: usize,
        /// Shards supplied.
        got: usize,
    },
    /// Internal error: the decode matrix was singular.  With the systematic
    /// Vandermonde construction this cannot happen for valid inputs; seeing
    /// it indicates shard indices that lie, or memory corruption.
    SingularMatrix,
    /// The framed byte-stream header was malformed.
    BadFrame(&'static str),
}

impl core::fmt::Display for FecError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FecError::ZeroDataShards => write!(f, "k (data packets per group) must be >= 1"),
            FecError::GroupTooLarge { k, h } => write!(
                f,
                "group size k+h = {} exceeds the GF(256) limit of {}",
                k + h,
                MAX_GROUP
            ),
            FecError::WrongShardCount { expected, got } => {
                write!(f, "expected {expected} data shards, got {got}")
            }
            FecError::UnequalShardLengths => write!(f, "all shards must have equal length"),
            FecError::EmptyShards => write!(f, "shards must be non-empty"),
            FecError::IndexOutOfRange { index, group } => {
                write!(f, "shard index {index} out of range for group of {group}")
            }
            FecError::DuplicateIndex(i) => write!(f, "duplicate shard index {i}"),
            FecError::NotEnoughShards { needed, got } => {
                write!(f, "need at least {needed} shards to decode, got {got}")
            }
            FecError::SingularMatrix => write!(f, "decode matrix is singular (corrupt input?)"),
            FecError::BadFrame(msg) => write!(f, "malformed frame: {msg}"),
        }
    }
}

impl std::error::Error for FecError {}
