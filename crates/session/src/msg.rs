//! Session wire messages.

use crate::reports::LossReport;
use sharqfec_netsim::{NodeId, SimDuration, SimTime};
use sharqfec_scoping::ZoneId;

/// One receiver line in a session announcement (paper §5: identity, time
/// elapsed since that receiver was last heard, and the sender's RTT
/// estimate to it).  We also echo the peer's own transmit timestamp so the
/// peer can close the RTT loop on its own clock, exactly as SRM's session
/// messages do.
#[derive(Clone, Debug, PartialEq)]
pub struct PeerEntry {
    /// The peer being reported.
    pub peer: NodeId,
    /// Timestamp carried by the last message we received from `peer`.
    pub echo_sent_at: SimTime,
    /// Time elapsed on our clock between receiving that message and
    /// sending this announcement.
    pub elapsed: SimDuration,
    /// Our current RTT estimate to `peer`, if any.
    pub rtt_est: Option<SimDuration>,
}

/// A session announcement for one zone.
#[derive(Clone, Debug, PartialEq)]
pub struct Announce {
    /// The zone this announcement is addressed to (its session scope).
    pub zone: ZoneId,
    /// Sender's transmit timestamp.
    pub sent_at: SimTime,
    /// Sender's belief of this zone's ZCR.
    pub zcr: Option<NodeId>,
    /// Recorded one-way distance between this zone's ZCR and the parent
    /// zone's ZCR, if known (paper §5's third announcement field).
    pub zcr_to_parent: Option<SimDuration>,
    /// Summarized receiver report for the subtree this sender speaks for
    /// (the §7 RTCP-RR summarization extension): its own reception
    /// quality, merged — when it is a ZCR — with the reports heard in its
    /// child zone.
    pub report: Option<LossReport>,
    /// Per-peer report lines.
    pub entries: Vec<PeerEntry>,
}

/// An ancestor-ZCR distance attached to outgoing non-session traffic
/// (paper §5: "the sending node includes estimates of the distance between
/// itself and each of the parent ZCRs that will hear the message").
/// Distances are one-way.
#[derive(Clone, Debug, PartialEq)]
pub struct AncestorEntry {
    /// The zone whose ZCR this entry names.
    pub zone: ZoneId,
    /// That zone's ZCR.
    pub zcr: NodeId,
    /// Sender's one-way distance estimate to that ZCR.
    pub dist: SimDuration,
}

/// Session-protocol messages.
#[derive(Clone, Debug, PartialEq)]
pub enum SessionMsg {
    /// Periodic announcement into one zone.
    Announce(Announce),
    /// ZCR challenge for `zone`, multicast into the *parent* zone so that
    /// the parent ZCR and all of `zone`'s members hear it (paper §5.2).
    ZcrChallenge {
        /// Zone whose representative is being (re)determined.
        zone: ZoneId,
        /// Issuing node (usually the sitting ZCR).
        challenger: NodeId,
        /// Challenger's current one-way distance estimate to the parent
        /// ZCR; `None` during bootstrap when it has never measured one.
        claimed_dist: Option<SimDuration>,
    },
    /// Parent ZCR's reply to a challenge, multicast into the parent zone.
    ZcrResponse {
        /// The zone the original challenge named.
        zone: ZoneId,
        /// The node that issued that challenge.
        challenger: NodeId,
        /// Delay between the responder receiving the challenge and sending
        /// this response ("containing the delay between when the ZCR
        /// challenge was received and the ZCR response was sent").
        hold: SimDuration,
    },
    /// New-representative declaration, multicast into both the zone and
    /// its parent (paper §5.2 sends two takeover packets).
    ZcrTakeover {
        /// The zone being taken over.
        zone: ZoneId,
        /// The new representative.
        new_zcr: NodeId,
        /// The new representative's one-way distance to the parent ZCR.
        dist_to_parent: SimDuration,
    },
    /// Measurement probe — the §6.1 experiment's "fake NACK", multicast at
    /// the largest scope carrying the sender's ancestor chain, so every
    /// other receiver can exercise indirect RTT estimation against ground
    /// truth.
    Probe {
        /// Probe sequence number (the experiment sends several to show the
        /// estimate converging).
        seq: u32,
        /// Sender's transmit timestamp.
        sent_at: SimTime,
        /// Sender's ancestor-ZCR distance chain, smallest zone first.
        chain: Vec<AncestorEntry>,
    },
}

impl SessionMsg {
    /// A short name for traces and debugging.
    pub fn kind(&self) -> &'static str {
        match self {
            SessionMsg::Announce(_) => "announce",
            SessionMsg::ZcrChallenge { .. } => "zcr-challenge",
            SessionMsg::ZcrResponse { .. } => "zcr-response",
            SessionMsg::ZcrTakeover { .. } => "zcr-takeover",
            SessionMsg::Probe { .. } => "probe",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_distinct() {
        let msgs = [
            SessionMsg::Announce(Announce {
                zone: ZoneId(0),
                sent_at: SimTime::ZERO,
                zcr: None,
                zcr_to_parent: None,
                report: None,
                entries: vec![],
            }),
            SessionMsg::ZcrChallenge {
                zone: ZoneId(0),
                challenger: NodeId(1),
                claimed_dist: None,
            },
            SessionMsg::ZcrResponse {
                zone: ZoneId(0),
                challenger: NodeId(1),
                hold: SimDuration::ZERO,
            },
            SessionMsg::ZcrTakeover {
                zone: ZoneId(0),
                new_zcr: NodeId(1),
                dist_to_parent: SimDuration::ZERO,
            },
            SessionMsg::Probe {
                seq: 0,
                sent_at: SimTime::ZERO,
                chain: vec![],
            },
        ];
        let kinds: std::collections::HashSet<&str> = msgs.iter().map(|m| m.kind()).collect();
        assert_eq!(kinds.len(), msgs.len());
    }
}
