//! SHARQFEC's scoped session management (paper §5, §5.1, §5.2).
//!
//! Reliable-multicast suppression timers need RTT estimates between
//! members.  SRM maintains them with O(n²) global session traffic; the
//! paper's key scalability contribution is doing it *hierarchically*:
//!
//! * every node exchanges full session announcements only inside its
//!   **smallest** administratively scoped zone;
//! * each zone elects a **Zone Closest Receiver (ZCR)** — the member
//!   closest to the parent zone's ZCR — which additionally participates in
//!   the parent zone's session;
//! * distances to remote nodes are **composed indirectly**: my distance to
//!   my chain of ancestral ZCRs, plus a ZCR-to-sibling-ZCR hop learned
//!   from my ZCR's announcements in its parent zone, plus the distance the
//!   remote sender attaches to its own packets.
//!
//! The result (paper Figure 8): session state per receiver collapses from
//! 10,000,210 entries to tens, and session traffic from O(n²) to
//! O(Σ n_α²) over the small per-zone populations.
//!
//! Layout:
//!
//! * [`config`] — protocol constants (the paper's §5 staggering intervals
//!   are the defaults);
//! * [`msg`] — wire messages: announcements, ZCR challenge / response /
//!   takeover, and the measurement probe ("fake NACK") of §6.1;
//! * [`rtt`] — EWMA-merged RTT estimates and per-zone peer tables;
//! * [`core`] — [`SessionCore`], the engine-agnostic state machine, driven
//!   through the [`core::SessionCtx`] trait so both the standalone session
//!   agent and the full SHARQFEC agent can embed it;
//! * [`agent`] — a standalone netsim agent running only the session
//!   protocol, used to reproduce Figures 11–13 and the §6.1 election
//!   claims.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agent;
pub mod config;
pub mod core;
pub mod msg;
pub mod reports;
pub mod rtt;

pub use crate::core::{SessionCore, SessionCtx, ZcrSeeding};
pub use agent::{setup_session_sim, ProbePlan, SessionAgent, SessionObservation, SessionWire};
pub use config::SessionConfig;
pub use msg::{AncestorEntry, PeerEntry, SessionMsg};
pub use reports::LossReport;
pub use rtt::{PeerTable, RttEstimate};
