//! RTT estimates and per-zone peer tables.

use crate::msg::PeerEntry;
use sharqfec_netsim::{NodeId, SimDuration, SimTime};
use std::collections::HashMap;

/// One EWMA-merged RTT estimate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RttEstimate {
    rtt: SimDuration,
    samples: u32,
}

impl RttEstimate {
    /// Starts an estimate from a first sample.
    pub fn new(first: SimDuration) -> RttEstimate {
        RttEstimate {
            rtt: first,
            samples: 1,
        }
    }

    /// Merges a new sample: `est ← (1-gain)·est + gain·sample` (paper §6.1:
    /// "new measurements are merged with the old using an exponential
    /// weighted moving average filter").
    pub fn merge(&mut self, sample: SimDuration, gain: f64) {
        debug_assert!((0.0..=1.0).contains(&gain));
        let old = self.rtt.as_secs_f64();
        let new = old + gain * (sample.as_secs_f64() - old);
        self.rtt = SimDuration::from_secs_f64(new.max(0.0));
        self.samples = self.samples.saturating_add(1);
    }

    /// The current estimate.
    pub fn rtt(&self) -> SimDuration {
        self.rtt
    }

    /// One-way distance (RTT / 2), the unit the ZCR-challenge arithmetic
    /// works in.
    pub fn one_way(&self) -> SimDuration {
        self.rtt / 2
    }

    /// Number of samples merged so far.
    pub fn samples(&self) -> u32 {
        self.samples
    }
}

/// Echo bookkeeping plus RTT estimate for one peer.
#[derive(Clone, Debug)]
pub struct PeerState {
    /// Timestamp carried in the peer's last message.
    pub last_sent_at: SimTime,
    /// Our local time when that message arrived.
    pub last_recv_at: SimTime,
    /// Merged RTT estimate, if at least one echo has closed the loop.
    pub rtt: Option<RttEstimate>,
}

/// The session table a node keeps for one zone it participates in: echo
/// state and RTT estimates for every peer heard there.
#[derive(Clone, Debug, Default)]
pub struct PeerTable {
    peers: HashMap<NodeId, PeerState>,
}

impl PeerTable {
    /// Empty table.
    pub fn new() -> PeerTable {
        PeerTable::default()
    }

    /// Records that `peer` was heard `now`, with its carried timestamp.
    pub fn heard(&mut self, peer: NodeId, sent_at: SimTime, now: SimTime) {
        let entry = self.peers.entry(peer).or_insert(PeerState {
            last_sent_at: sent_at,
            last_recv_at: now,
            rtt: None,
        });
        entry.last_sent_at = sent_at;
        entry.last_recv_at = now;
    }

    /// Merges an RTT sample for `peer` (creates the peer if unknown —
    /// ZCR-challenge measurements can precede any announcement exchange).
    pub fn sample(&mut self, peer: NodeId, rtt: SimDuration, gain: f64, now: SimTime) {
        let entry = self.peers.entry(peer).or_insert(PeerState {
            last_sent_at: SimTime::ZERO,
            last_recv_at: now,
            rtt: None,
        });
        match &mut entry.rtt {
            Some(est) => est.merge(rtt, gain),
            none => *none = Some(RttEstimate::new(rtt)),
        }
    }

    /// Current RTT estimate to `peer`.
    pub fn rtt(&self, peer: NodeId) -> Option<SimDuration> {
        self.peers.get(&peer)?.rtt.map(|e| e.rtt())
    }

    /// Echo state for `peer`.
    pub fn state(&self, peer: NodeId) -> Option<&PeerState> {
        self.peers.get(&peer)
    }

    /// Number of tracked peers — the paper's "state per receiver" metric
    /// (Figure 8 counts exactly these entries).
    pub fn len(&self) -> usize {
        self.peers.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.peers.is_empty()
    }

    /// Approximate resident heap bytes of this table, for the scaling
    /// harness's per-receiver state accounting (Figure 8's entry count
    /// converted to memory).
    pub fn state_bytes(&self) -> usize {
        use std::mem::size_of;
        self.peers.capacity() * (size_of::<NodeId>() + size_of::<PeerState>() + size_of::<u64>())
    }

    /// Largest RTT estimate in the table (used for the paper's
    /// "2.5 × RTT to the most distant known receiver" ZLC window).
    pub fn max_rtt(&self) -> Option<SimDuration> {
        self.peers
            .values()
            .filter_map(|p| p.rtt.map(|e| e.rtt()))
            .max()
    }

    /// Most recent local time any peer in the table was heard, if the
    /// table is non-empty.  Used as zone-connectivity evidence: a node
    /// that has heard nobody in a zone for a whole liveness window is
    /// on the wrong side of a partition from it.
    pub fn last_heard(&self) -> Option<SimTime> {
        self.peers.values().map(|p| p.last_recv_at).max()
    }

    /// Drops peers not heard from since `cutoff`.
    pub fn expire(&mut self, cutoff: SimTime) {
        self.peers.retain(|_, p| p.last_recv_at >= cutoff);
    }

    /// Builds announcement entries for every tracked peer (paper §5's
    /// receiver list), deterministically ordered by peer id.
    pub fn entries(&self, now: SimTime) -> Vec<PeerEntry> {
        let mut ids: Vec<NodeId> = self.peers.keys().copied().collect();
        ids.sort();
        ids.into_iter()
            .map(|peer| {
                let p = &self.peers[&peer];
                PeerEntry {
                    peer,
                    echo_sent_at: p.last_sent_at,
                    elapsed: now.saturating_since(p.last_recv_at),
                    rtt_est: p.rtt.map(|e| e.rtt()),
                }
            })
            .collect()
    }

    /// Iterates over tracked peers.
    pub fn peers(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.peers.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }
    fn at(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    #[test]
    fn estimate_converges_to_constant_input() {
        let mut e = RttEstimate::new(ms(100));
        for _ in 0..20 {
            e.merge(ms(40), 0.5);
        }
        let err = (e.rtt().as_secs_f64() - 0.040).abs();
        assert!(err < 1e-4, "estimate {:?} should approach 40ms", e.rtt());
        assert_eq!(e.samples(), 21);
    }

    #[test]
    fn gain_one_overwrites_gain_zero_freezes() {
        let mut e = RttEstimate::new(ms(100));
        e.merge(ms(10), 1.0);
        assert_eq!(e.rtt(), ms(10));
        e.merge(ms(500), 0.0);
        assert_eq!(e.rtt(), ms(10));
    }

    #[test]
    fn one_way_is_half_rtt() {
        let e = RttEstimate::new(ms(80));
        assert_eq!(e.one_way(), ms(40));
    }

    #[test]
    fn table_heard_then_sample_round_trip() {
        let mut t = PeerTable::new();
        let p = NodeId(7);
        t.heard(p, at(100), at(130));
        assert_eq!(t.rtt(p), None);
        t.sample(p, ms(60), 0.5, at(130));
        assert_eq!(t.rtt(p), Some(ms(60)));
        t.sample(p, ms(20), 0.5, at(140));
        assert_eq!(t.rtt(p), Some(ms(40)));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn entries_echo_the_right_fields() {
        let mut t = PeerTable::new();
        t.heard(NodeId(3), at(100), at(120));
        t.sample(NodeId(3), ms(50), 0.5, at(120));
        t.heard(NodeId(1), at(90), at(95));
        let entries = t.entries(at(200));
        assert_eq!(entries.len(), 2);
        // sorted by peer id
        assert_eq!(entries[0].peer, NodeId(1));
        assert_eq!(entries[0].echo_sent_at, at(90));
        assert_eq!(entries[0].elapsed, ms(105));
        assert_eq!(entries[0].rtt_est, None);
        assert_eq!(entries[1].peer, NodeId(3));
        assert_eq!(entries[1].elapsed, ms(80));
        assert_eq!(entries[1].rtt_est, Some(ms(50)));
    }

    #[test]
    fn expiry_drops_stale_peers() {
        let mut t = PeerTable::new();
        t.heard(NodeId(1), at(0), at(10));
        t.heard(NodeId(2), at(0), at(500));
        t.expire(at(100));
        assert_eq!(t.len(), 1);
        assert!(t.state(NodeId(2)).is_some());
        assert!(t.state(NodeId(1)).is_none());
    }

    #[test]
    fn max_rtt_tracks_most_distant_peer() {
        let mut t = PeerTable::new();
        assert_eq!(t.max_rtt(), None);
        t.sample(NodeId(1), ms(30), 0.5, at(0));
        t.sample(NodeId(2), ms(90), 0.5, at(0));
        t.sample(NodeId(3), ms(60), 0.5, at(0));
        assert_eq!(t.max_rtt(), Some(ms(90)));
    }

    #[test]
    fn heard_updates_do_not_clear_estimates() {
        let mut t = PeerTable::new();
        t.sample(NodeId(1), ms(40), 0.5, at(0));
        t.heard(NodeId(1), at(100), at(110));
        assert_eq!(t.rtt(NodeId(1)), Some(ms(40)));
        let st = t.state(NodeId(1)).unwrap();
        assert_eq!(st.last_sent_at, at(100));
        assert_eq!(st.last_recv_at, at(110));
    }
}
